"""Domain-0 software runtime: domain and gate registration (Section 5.2).

:class:`DomainManager` is the software that runs in domain-0.  It owns
the id spaces of domains and gates, edits the HPT and SGT through the
PCU, and applies a pluggable :class:`RegistrationPolicy` so deployments
can e.g. reject domains with overlapping privileges (the paper notes
ISA-Grid itself does not force exclusivity; policy is software's job).

The API is name-based: callers grant ``"csrrw"`` or ``"satp"`` rather
than raw indices, using the architecture's
:class:`~repro.core.isa_extension.IsaGridIsaMap`.
"""

from __future__ import annotations

import copy
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from .errors import ConfigurationError
from .pcu import DOMAIN_0, PrivilegeCheckUnit
from .sgt import GateEntry


@dataclass
class DomainDescriptor:
    """Bookkeeping for one ISA domain (domain-0 software state)."""

    domain_id: int
    name: str
    instructions: Set[str] = field(default_factory=set)
    readable_csrs: Set[str] = field(default_factory=set)
    writable_csrs: Set[str] = field(default_factory=set)
    bit_grants: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        return "%s(id=%d): %d inst classes, %d readable, %d writable CSRs" % (
            self.name,
            self.domain_id,
            len(self.instructions),
            len(self.readable_csrs),
            len(self.writable_csrs),
        )


class RegistrationRejected(ConfigurationError):
    """A registration policy refused a domain or gate registration."""


#: A policy receives (manager, descriptor-or-gate) and raises
#: :class:`RegistrationRejected` to refuse; return value is ignored.
RegistrationPolicy = Callable[["DomainManager", object], None]


def allow_all_policy(manager: "DomainManager", request: object) -> None:
    """Default policy: accept every registration."""


def exclusive_writers_policy(manager: "DomainManager", request: object) -> None:
    """Example policy: no two domains may both write the same CSR.

    The paper suggests domain-0 software may "reject creating domains
    with overlapping privileges"; this is the natural reading for write
    privileges, where overlap defeats least-privilege decomposition.
    """
    if not isinstance(request, DomainDescriptor):
        return
    for other in manager.domains.values():
        if other.domain_id in (request.domain_id, DOMAIN_0):
            continue
        overlap = other.writable_csrs & request.writable_csrs
        if overlap:
            raise RegistrationRejected(
                "domain %s overlaps write privileges %s with %s"
                % (request.name, sorted(overlap), other.name)
            )


class DomainManager:
    """The domain-0 runtime controlling one PCU."""

    def __init__(
        self,
        pcu: PrivilegeCheckUnit,
        policy: RegistrationPolicy = allow_all_policy,
    ):
        self.pcu = pcu
        self.isa_map = pcu.isa_map
        self.policy = policy
        self.domains: Dict[int, DomainDescriptor] = {
            DOMAIN_0: DomainDescriptor(DOMAIN_0, "domain-0")
        }
        self._names: Dict[str, int] = {"domain-0": DOMAIN_0}
        self._next_domain = 1
        self.gates: Dict[int, GateEntry] = {}
        # Commit-window accounting: how many top-level reconfiguration
        # transactions ran to completion or rolled back, and how many
        # journalled stores the most recent one performed.  Machine-level
        # fault campaigns use these to verify their faults landed inside
        # (or outside) a window.
        self.transactions_committed = 0
        self.transactions_rolled_back = 0
        # Contract-monitor tap (repro.contracts, DESIGN §3.16).  Every
        # mutating method narrates its table edits through ``_emit``;
        # ``None`` makes that a no-op.
        self._tap = None
        # Domain virtualization layer (DESIGN §3.17).  A
        # :class:`~repro.core.domain_virtualization.DomainVirtualizer`
        # installs itself here so the integrity scrubber and the
        # contract monitor can discover slot bindings and generation
        # words without any call-site plumbing.
        self.virtualizer = None

    def _emit(self, op: str, **fields) -> None:
        """Narrate one table mutation to the attached contract tap."""
        if self._tap is not None:
            self._tap.on_reconfig(op, **fields)

    # ------------------------------------------------------------------
    # Transactional reconfiguration (fault containment, Section 4.4).
    # ------------------------------------------------------------------
    @contextmanager
    def _transaction(self, domains: Tuple[int, ...] = (), gates: bool = False):
        """Run one reconfiguration atomically against faults.

        Arms the trusted-memory journal and snapshots the python-side
        mirrors (HPT bitmaps, descriptors, gate table) the update will
        touch.  If anything raises mid-update — most importantly an
        injected trusted-memory store fault — every journalled word is
        restored, the mirrors are rolled back, and the privilege caches
        are swept so a half-applied grant can never widen privileges.
        Nested calls (destroy_domain → unregister_gate) join the open
        transaction instead of starting their own.
        """
        memory = self.pcu.trusted_memory
        if memory.in_transaction:
            yield
            return
        hpt = self.pcu.hpt
        domain_snaps = []
        seal_snaps = []
        for d in domains:
            desc = self.domains.get(d)
            domain_snaps.append((
                d,
                (d in hpt._inst, copy.deepcopy(hpt._inst.get(d))),
                (d in hpt._regs, copy.deepcopy(hpt._regs.get(d))),
                (d in hpt._masks, copy.deepcopy(hpt._masks.get(d))),
                desc,
                None if desc is None else (
                    set(desc.instructions), set(desc.readable_csrs),
                    set(desc.writable_csrs), dict(desc.bit_grants),
                ),
            ))
            # Seal mirrors are restored by OR-merging the snapshot with
            # whatever is sealed at abort time: a journalled seal *clear*
            # (teardown/recycle) rolls back with the memory journal, but
            # a journal-bypassed seal *set* can never be reverted — the
            # merge only ever moves toward more sealed.
            seal_snaps.append((
                d,
                list(hpt._seal_inst.get(d, ())),
                list(hpt._seal_regs.get(d, ())),
                list(hpt._seal_masks.get(d, ())),
            ))
        gate_snap = None
        if gates:
            gate_snap = (dict(self.gates), self.pcu.sgt._next_id,
                         self.pcu.registers.gate_nr)
        memory.begin_transaction()
        try:
            yield
        except BaseException:
            memory.abort_transaction()
            for d, inst, regs, masks, desc, fields in domain_snaps:
                for mirror, (present, value) in ((hpt._inst, inst),
                                                 (hpt._regs, regs),
                                                 (hpt._masks, masks)):
                    if present:
                        mirror[d] = value
                    else:
                        mirror.pop(d, None)
                if desc is not None:
                    (desc.instructions, desc.readable_csrs,
                     desc.writable_csrs, desc.bit_grants) = fields
                    self.domains[d] = desc
                    self._names[desc.name] = d
            for d, seal_inst, seal_regs, seal_masks in seal_snaps:
                for mirror, snap, n_words in (
                    (hpt._seal_inst, seal_inst, hpt.inst_words_per_domain),
                    (hpt._seal_regs, seal_regs, hpt.reg_words_per_domain),
                    (hpt._seal_masks, seal_masks, hpt.mask_words_per_domain),
                ):
                    current = mirror.get(d, ())
                    merged = [
                        (snap[i] if i < len(snap) else 0)
                        | (current[i] if i < len(current) else 0)
                        for i in range(n_words)
                    ]
                    if any(merged):
                        mirror[d] = merged
                    else:
                        mirror.pop(d, None)
            if gate_snap is not None:
                self.gates, self.pcu.sgt._next_id = gate_snap[0], gate_snap[1]
                self.pcu.registers.gate_nr = gate_snap[2]
                self.pcu.sgt_cache.flush()
            # The PCU may have cached words filled mid-update; sweep the
            # touched domains so refills see only the rolled-back truth.
            for d in domains:
                self.pcu.invalidate_privileges(d)
            if not domains:
                self.pcu.invalidate_privileges()
            self.pcu.stats.reconfig_rollbacks += 1
            self.transactions_rolled_back += 1
            raise
        else:
            memory.commit_transaction()
            self.transactions_committed += 1

    @property
    def last_transaction_stores(self) -> int:
        """Journalled stores of the current or most recent transaction."""
        return self.pcu.trusted_memory.transaction_stores

    # ------------------------------------------------------------------
    # Domain registration.
    # ------------------------------------------------------------------
    def create_domain(self, name: Optional[str] = None) -> DomainDescriptor:
        """Create a fresh, fully de-privileged ISA domain.

        New domains start with *no* privileges; code in them must be
        granted instruction classes and CSR access explicitly
        (Section 8, "Development Complexity").
        """
        domain_id = self._next_domain
        if domain_id >= self.pcu.config.max_domains:
            raise ConfigurationError("out of domain ids")
        if name is None:
            name = "domain-%d" % domain_id
        if name in self._names:
            raise ConfigurationError("duplicate domain name %r" % name)
        descriptor = DomainDescriptor(domain_id, name)
        self.policy(self, descriptor)
        self._next_domain += 1
        self.domains[domain_id] = descriptor
        self._names[name] = domain_id
        self.pcu.registers.domain_nr = self._next_domain
        self._emit("create_domain", domain=domain_id)
        return descriptor

    def domain_id(self, name: str) -> int:
        try:
            return self._names[name]
        except KeyError:
            raise ConfigurationError("unknown domain %r" % name) from None

    # ------------------------------------------------------------------
    # Privilege grants (write-through to the HPT in trusted memory).
    # ------------------------------------------------------------------
    def allow_instructions(self, domain_id: int, class_names: Iterable[str]) -> None:
        descriptor = self._descriptor(domain_id)
        names = list(class_names)
        classes = [self.isa_map.inst_class(n) for n in names]
        with self._transaction((domain_id,)):
            self.pcu.hpt.allow_instructions(domain_id, classes)
            descriptor.instructions.update(names)
            for inst_class in classes:
                self._emit("allow_inst", domain=domain_id, inst=inst_class)
            # Grants need invalidation too: a word cached while the class
            # was denied would keep faulting the freshly-granted
            # instruction.
            self.pcu.invalidate_privileges(domain_id, regs=False, masks=False)
            self._refresh_policy(descriptor)

    def allow_all_instructions(self, domain_id: int) -> None:
        descriptor = self._descriptor(domain_id)
        with self._transaction((domain_id,)):
            self.pcu.hpt.allow_all_instructions(domain_id)
            descriptor.instructions.update(self.isa_map.inst_class_names)
            for inst_class in range(self.isa_map.n_inst_classes):
                self._emit("allow_inst", domain=domain_id, inst=inst_class)
            self.pcu.invalidate_privileges(domain_id, regs=False, masks=False)
            self._refresh_policy(descriptor)

    def deny_instruction(self, domain_id: int, class_name: str) -> None:
        descriptor = self._descriptor(domain_id)
        inst_class = self.isa_map.inst_class(class_name)
        with self._transaction((domain_id,)):
            self.pcu.hpt.deny_instruction(domain_id, inst_class)
            descriptor.instructions.discard(class_name)
            self._emit("deny_inst", domain=domain_id, inst=inst_class)
            # Revocation: drop stale cached privileges of this domain only.
            self.pcu.invalidate_privileges(domain_id, regs=False, masks=False)

    def grant_register(
        self, domain_id: int, csr_name: str, *, read: bool = False, write: bool = False
    ) -> None:
        descriptor = self._descriptor(domain_id)
        csr = self.isa_map.csr_index(csr_name)
        with self._transaction((domain_id,)):
            self.pcu.hpt.grant_register(domain_id, csr, read=read, write=write)
            self._emit("grant_csr", domain=domain_id, csr=csr,
                       read=read, write=write)
            if read:
                descriptor.readable_csrs.add(csr_name)
            if write:
                descriptor.writable_csrs.add(csr_name)
                if self.isa_map.mask_slot(csr) is not None and csr_name not in descriptor.bit_grants:
                    # A full write grant on a bitwise CSR exposes every bit.
                    width = self.isa_map.csr_descriptor(csr).width
                    self.pcu.hpt.set_mask(domain_id, csr, (1 << width) - 1)
                    descriptor.bit_grants[csr_name] = (1 << width) - 1
                    self._emit("set_mask", domain=domain_id, csr=csr,
                               bits=(1 << width) - 1)
            self.pcu.invalidate_privileges(domain_id, inst=False, csr=csr)
            self._refresh_policy(descriptor)

    def grant_register_bits(self, domain_id: int, csr_name: str, bits: int) -> None:
        """Bit-level grant: expose only ``bits`` of a bitwise CSR."""
        descriptor = self._descriptor(domain_id)
        csr = self.isa_map.csr_index(csr_name)
        if self.isa_map.mask_slot(csr) is None:
            raise ConfigurationError(
                "CSR %s is not bitwise-controlled; use grant_register" % csr_name
            )
        with self._transaction((domain_id,)):
            self.pcu.hpt.grant_register(domain_id, csr, write=True)
            self.pcu.hpt.allow_bits(domain_id, csr, bits)
            descriptor.writable_csrs.add(csr_name)
            descriptor.bit_grants[csr_name] = descriptor.bit_grants.get(csr_name, 0) | bits
            self._emit("grant_csr", domain=domain_id, csr=csr, write=True)
            self._emit("set_mask", domain=domain_id, csr=csr,
                       bits=descriptor.bit_grants[csr_name])
            self.pcu.invalidate_privileges(domain_id, inst=False, csr=csr)
            self._refresh_policy(descriptor)

    def set_register_mask(self, domain_id: int, csr_name: str, mask: int) -> None:
        """Set the *exact* write mask of a bitwise CSR (replacing grants)."""
        descriptor = self._descriptor(domain_id)
        csr = self.isa_map.csr_index(csr_name)
        if self.isa_map.mask_slot(csr) is None:
            raise ConfigurationError(
                "CSR %s is not bitwise-controlled" % csr_name
            )
        with self._transaction((domain_id,)):
            self.pcu.hpt.set_mask(domain_id, csr, mask)
            descriptor.bit_grants[csr_name] = mask
            self._emit("set_mask", domain=domain_id, csr=csr, bits=mask)
            self.pcu.invalidate_privileges(domain_id, inst=False, csr=csr)
            self._refresh_policy(descriptor)

    def revoke_register(
        self, domain_id: int, csr_name: str, *, read: bool = False, write: bool = False
    ) -> None:
        descriptor = self._descriptor(domain_id)
        csr = self.isa_map.csr_index(csr_name)
        with self._transaction((domain_id,)):
            self.pcu.hpt.revoke_register(domain_id, csr, read=read, write=write)
            self._emit("revoke_csr", domain=domain_id, csr=csr,
                       read=read, write=write)
            if read:
                descriptor.readable_csrs.discard(csr_name)
            if write:
                descriptor.writable_csrs.discard(csr_name)
                if self.isa_map.mask_slot(csr) is not None:
                    self.pcu.hpt.set_mask(domain_id, csr, 0)
                    descriptor.bit_grants.pop(csr_name, None)
                    self._emit("set_mask", domain=domain_id, csr=csr, bits=0)
            # Revocation: drop stale cached privileges of this domain only.
            self.pcu.invalidate_privileges(domain_id, inst=False, csr=csr)

    # ------------------------------------------------------------------
    # Seals: one-way privilege drops (Efficient Sealable Protection
    # Keys' seal operation, generalized to instruction classes and CSRs).
    # ------------------------------------------------------------------
    def seal_privileges(
        self,
        domain_id: int,
        instructions: Iterable[str] = (),
        csrs: Iterable[str] = (),
        *,
        read: bool = True,
        write: bool = True,
    ) -> None:
        """Irrevocably drop privileges of ``domain_id``.

        Sealed instruction classes and CSR accesses are ANDed out of
        every HPT read below the verdict paths, so later domain-0
        re-grants, slot recycling under a stale flush, and transactional
        rollback all leave the seal in force.  There is deliberately no
        unseal: the seal words are written journal-bypassed (a rolled
        back transaction cannot restore the pre-seal value) and only a
        full domain teardown (``destroy_domain`` / slot recycle under a
        fresh generation) retires them.

        The descriptor keeps the sealed names: it records what was
        *granted*; the seal is an enforcement overlay the PCU applies
        below it.  ``sealed_privileges`` reports the overlay.
        """
        if domain_id == DOMAIN_0:
            raise ConfigurationError("domain-0 privileges cannot be sealed")
        self._descriptor(domain_id)  # domain must exist
        inst_names = list(instructions)
        csr_names = list(csrs)
        if not read and not write:
            csr_names = []
        classes = [self.isa_map.inst_class(n) for n in inst_names]
        csr_indices = [self.isa_map.csr_index(n) for n in csr_names]
        for inst_class in classes:
            self.pcu.hpt.seal_instruction(domain_id, inst_class)
            self._emit("seal", domain=domain_id, inst=inst_class)
        for csr in csr_indices:
            self.pcu.hpt.seal_register(domain_id, csr, read=read, write=write)
            self._emit("seal", domain=domain_id, csr=csr,
                       read=read, write=write)
        if classes or csr_indices:
            # Pre-seal verdicts may still sit in the caches, the bypass
            # register and the Draco proven-legal table; sweep them.
            self.pcu.invalidate_privileges(domain_id)

    def sealed_privileges(self, domain_id: int) -> Dict[str, Set[str]]:
        """The seal overlay of one domain, by resource name."""
        self._descriptor(domain_id)
        hpt = self.pcu.hpt
        sealed_insts = {
            self.isa_map.inst_class_name(i)
            for i in hpt.sealed_instructions(domain_id)
        }
        sealed_reads: Set[str] = set()
        sealed_writes: Set[str] = set()
        for csr, (r, w) in hpt.sealed_registers(domain_id).items():
            name = self.isa_map.csr_name(csr)
            if r:
                sealed_reads.add(name)
            if w:
                sealed_writes.add(name)
        return {
            "instructions": sealed_insts,
            "read_csrs": sealed_reads,
            "write_csrs": sealed_writes,
        }

    def destroy_domain(self, domain_id: int) -> None:
        """Retire a domain: revoke every privilege and drop its gates.

        Domain ids are never reused by this allocator (it is monotonic),
        but the HPT words are zeroed write-through and the privilege
        caches swept so no refill can resurrect the dead domain's
        grants.  (Slot *recycling* — mapping many logical tenants onto
        one physical id — lives a layer above, in
        :mod:`~repro.core.domain_virtualization`, which keeps the
        descriptor alive and guards reuse with generation counters.)
        """
        if domain_id == DOMAIN_0:
            raise ConfigurationError("domain-0 cannot be destroyed")
        descriptor = self._descriptor(domain_id)
        with self._transaction((domain_id,), gates=True):
            self.pcu.hpt.clear_domain(domain_id)
            for gate_id, entry in list(self.gates.items()):
                if entry.destination_domain == domain_id:
                    self.unregister_gate(gate_id)
            self.pcu.invalidate_privileges(domain_id)
            del self.domains[domain_id]
            del self._names[descriptor.name]
            self._emit("clear_domain", domain=domain_id)

    def _descriptor(self, domain_id: int) -> DomainDescriptor:
        try:
            return self.domains[domain_id]
        except KeyError:
            raise ConfigurationError("unknown domain id %d" % domain_id) from None

    def _refresh_policy(self, descriptor: DomainDescriptor) -> None:
        self.policy(self, descriptor)

    # ------------------------------------------------------------------
    # Gate registration.
    # ------------------------------------------------------------------
    def register_gate(
        self,
        gate_address: int,
        destination_address: int,
        destination_domain: int,
        *,
        gate_id: Optional[int] = None,
    ) -> int:
        """Register an unforgeable switching gate; returns the gate id.

        Passing ``gate_id`` re-registers an existing slot (e.g. after a
        module reload); the stale SGT-cache entry is invalidated so the
        next ``hccall`` sees the new triple.
        """
        self._descriptor(destination_domain)  # destination must exist
        # A half-written SGT entry is privilege-widening (a valid bit
        # over a stale triple), so registration is transactional too.
        with self._transaction(gates=True):
            entry = self.pcu.sgt.register(
                gate_address, destination_address, destination_domain, gate_id=gate_id
            )
            self.policy(self, entry)
            self.gates[entry.gate_id] = entry
            self.pcu.sgt_cache.invalidate(entry.gate_id)
            self.pcu.registers.gate_nr = self.pcu.sgt.gate_nr
            self._emit("register_gate", gate=entry.gate_id,
                       dest=destination_domain)
        return entry.gate_id

    def unregister_gate(self, gate_id: int) -> None:
        with self._transaction(gates=True):
            self.pcu.sgt.unregister(gate_id)
            self.pcu.sgt_cache.invalidate(gate_id)
            self.gates.pop(gate_id, None)
            self._emit("unregister_gate", gate=gate_id)

    # ------------------------------------------------------------------
    # Trusted stack management (per-thread contexts, Section 5.2).
    # ------------------------------------------------------------------
    def allocate_trusted_stack(self, frames: int = 64) -> Tuple[int, int]:
        """Carve a trusted-stack window out of trusted memory."""
        words = frames * 2
        base = self.pcu.trusted_memory.allocate(words)
        limit = base + words * 8
        self.pcu.trusted_stack.configure(base, limit)
        return base, limit

    def create_thread_stack(
        self,
        frames: int = 64,
        *,
        entry_address: Optional[int] = None,
        entry_domain: Optional[int] = None,
    ) -> Tuple[int, int, int]:
        """Allocate a trusted stack for another thread (Section 5.2).

        Returns the thread's ``(hcsp, hcsb, hcsl)`` context without
        touching the live registers.  With an entry point given, the
        stack is seeded with one frame so the first ``hcrets`` executed
        on this context "returns" into the thread's entry — the idiom a
        domain-0 scheduler uses to start a fresh thread.
        """
        words = frames * 2
        base = self.pcu.trusted_memory.allocate(words)
        limit = base + words * 8
        pointer = base
        if entry_address is not None:
            if entry_domain is None or entry_domain == DOMAIN_0:
                raise ConfigurationError(
                    "thread entries need a non-domain-0 entry domain"
                )
            self.pcu.trusted_memory.store_word(base, entry_address,
                                               origin="d0")
            self.pcu.trusted_memory.store_word(base + 8, entry_domain,
                                               origin="d0")
            pointer = base + 16
        # The seed frame was written with raw stores, not push(): adopt it
        # into the stack's integrity digest so the first scrub after a
        # switch onto this context doesn't flag the frame as corruption.
        self.pcu.trusted_stack.reseed_digest(base, pointer)
        return pointer, base, limit

    def describe(self) -> List[str]:
        """Human-readable inventory of all registered domains."""
        return [self.domains[i].summary() for i in sorted(self.domains)]
