"""The Privilege Check Unit (Sections 3.3 and 4).

The PCU is the single hardware unit ISA-Grid adds to a core.  It owns

* the architectural registers of Table 2 (:class:`PcuRegisters`),
* the hybrid-grained privilege check engine (against the HPT),
* the unforgeable domain switching engine (against the SGT and the
  trusted stack), and
* the domain privilege cache with its bypass register.

The host CPU calls :meth:`check` for every issued instruction and
:meth:`execute_gate` for the three gate instructions.  Both return the
stall cycles the check added (0 on every cache hit); privilege
violations raise :class:`~repro.core.errors.PrivilegeFault` subclasses,
which the simulated machine turns into architectural traps.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .cache import FullyAssociativeCache, HptCacheSet, InstPrivilegeRegister, SgtCache
from .config import PcuConfig
from .errors import (
    BitMaskViolationFault,
    ConfigurationError,
    GateFault,
    InstructionPrivilegeFault,
    RegisterReadFault,
    RegisterWriteFault,
    StaleGenerationFault,
    TrustedMemoryFault,
)
from .hpt import HybridPrivilegeTable
from .isa_extension import AccessInfo, CacheId, GateKind, IsaGridIsaMap, PcuRegisters
from .sgt import SwitchingGateTable
from .stats import BlockSummaryStats, PcuStats
from .trusted_memory import TrustedMemory, TrustedStack

DOMAIN_0 = 0

#: Verdict modes of :meth:`PrivilegeCheckUnit.check_block_summary`.
#: ``BLOCK_REFUSED`` sends the CPU back to the per-instruction check
#: path for this block; the other three authorize executing the whole
#: block against the one probe, and name the statistics profile
#: :meth:`~PrivilegeCheckUnit.account_block` must replay afterwards.
BLOCK_REFUSED = 0
BLOCK_DOMAIN0 = 1   # domain-0: per-inst checks would count inst_checks only
BLOCK_BYPASS = 2    # warm bypass: per-inst checks would also count bypass_hits
BLOCK_SILENT = 3    # PCU disabled: per-inst checks would count nothing


class PrivilegeCheckUnit:
    """One PCU instance attached to one simulated core."""

    def __init__(
        self,
        isa_map: IsaGridIsaMap,
        config: PcuConfig,
        trusted_memory: TrustedMemory,
    ):
        self.isa_map = isa_map
        self.config = config
        self.trusted_memory = trusted_memory
        self.registers = PcuRegisters(
            tmemb=trusted_memory.base, tmeml=trusted_memory.limit
        )

        self.hpt = HybridPrivilegeTable(
            isa_map, trusted_memory, max_domains=config.max_domains
        )
        self.sgt = SwitchingGateTable(trusted_memory, max_gates=config.max_gates)
        self.registers.inst_cap = self.hpt.inst_cap
        self.registers.csr_cap = self.hpt.csr_cap
        self.registers.csr_bit_mask = self.hpt.csr_bit_mask
        self.registers.gate_addr = self.sgt.base

        self.hpt_cache = HptCacheSet(config, self.hpt)
        self.sgt_cache = SgtCache(config, self.sgt)
        self.bypass = InstPrivilegeRegister()
        # Optional Draco-style cache of known-legal accesses (Section 8):
        # a hit proves legality without running the check pipeline.
        self.draco = (
            FullyAssociativeCache(config.draco_entries)
            if config.draco_entries
            else None
        )
        self.trusted_stack = TrustedStack(trusted_memory, self.registers)
        self.stats = PcuStats()
        self.enabled = True
        # Degraded mode (fault recovery): after the scrubber detects
        # cache-vs-HPT divergence the PCU stops trusting its caches and
        # serves every check via direct trusted-memory walks — correct
        # but paying the refill latency on each access — until a clean
        # scrub re-enables caching.
        self.degraded = False
        # Compiled verdict plan (simulator fast path, DESIGN §3.14).
        # Eligibility is static per config: the warm-bypass short
        # circuit in :meth:`check` is only a faithful compression of
        # the pipeline when the bypass register exists to be its
        # backing store and no Draco cache wants its hit/fill
        # bookkeeping run.  ``_fast`` is the live switch — cleared for
        # the duration of degraded mode, where every check must pay
        # the direct-walk path.  ``_csr_plan`` holds the per-CSR bit
        # geometry (word index, read/write shifts, mask slot), which
        # depends only on the immutable ISA map, never on privileges,
        # so it is computed once and never invalidated.
        self._fast_capable = (
            config.fast_path and config.bypass_enabled and self.draco is None
        )
        self._fast = self._fast_capable
        self._csr_plan: dict = {}
        # Block-summary eligibility (DESIGN §3.18).  Static per config:
        # the summary probe is only a faithful compression of N warm
        # bypass checks when the compiled verdict plan is the backing
        # store, so every condition that forbids ``_fast_capable``
        # (bypass disabled, armed Draco entries, ``fast_path=False``)
        # forbids block summaries too, plus the dedicated
        # ``block_summaries`` escape hatch.  The *live* conditions
        # (degraded mode, armed contract tap, shadowed ``check``, cold
        # or foreign bypass, stale generation) are re-tested on every
        # probe in :meth:`check_block_summary`.
        self._block_capable = config.block_summaries and self._fast_capable
        self.block_stats = BlockSummaryStats()
        # Contract-monitor tap (repro.contracts, DESIGN §3.16).  ``None``
        # keeps every hot path on its original instruction sequence, so
        # an unmonitored run is bit-identical to pre-tap builds; a
        # ContractMonitor installs itself here via ``attach``.
        self._tap = None
        # Slot-generation table (domain virtualization, DESIGN §3.17).
        # ``None`` keeps every check path generation-blind (one
        # is-not-None test when dormant); a DomainVirtualizer installs
        # its live {physical domain: generation} mapping here.  The PCU
        # latches the destination's generation on every domain switch;
        # a later mismatch means the slot was recycled under the
        # running core and the check must hard-fault, never serve a
        # stale verdict.
        self.generation_table = None
        self._entry_generation = 0

    # ------------------------------------------------------------------
    # State.
    # ------------------------------------------------------------------
    @property
    def current_domain(self) -> int:
        return self.registers.domain

    @property
    def previous_domain(self) -> int:
        return self.registers.pdomain

    def reset(self) -> None:
        """Processor reset: back to the all-privileged domain-0."""
        self.registers.domain = DOMAIN_0
        self.registers.pdomain = DOMAIN_0
        self.bypass.invalidate()
        self._entry_generation = 0

    def _enter_domain(self, destination: int) -> None:
        if self.config.flush_on_switch:
            # Section 8 trade-off: flush privilege state on every switch
            # so one domain cannot PRIME+PROBE another's check history.
            self.flush(CacheId.ALL)
            if self.draco is not None:
                self.draco.flush()
        self.registers.pdomain = self.registers.domain
        self.registers.domain = destination
        self.bypass.invalidate()
        self.stats.domain_switches += 1
        table = self.generation_table
        if table is not None:
            self._entry_generation = table.get(destination, 0)

    # ------------------------------------------------------------------
    # Hybrid-grained privilege check engine (Section 4.1).
    # ------------------------------------------------------------------
    def check(self, access: AccessInfo) -> int:
        """Check one issued instruction; return added stall cycles.

        Domain-0 holds every privilege by default (Section 4.4), so its
        checks always pass without touching the caches.

        The warm-cache common case — bypass register loaded for the
        current domain, no Draco cache, not degraded — is served by the
        compiled verdict plan inline here: the instruction verdict is
        one shift of the live bypass words, and CSR accesses go through
        :meth:`_fast_csr` with precomputed bit geometry.  Everything
        else falls back to :meth:`_check_slow`, the original pipeline.
        The two paths are bit-identical in verdicts, faults, stall
        cycles and statistics (see DESIGN §3.14 and the fast-vs-slow
        differential tests); only the number of Python frames differs.
        """
        if not self.enabled:
            return 0
        if self._tap is not None:
            return self._traced_check(access)
        stats = self.stats
        stats.inst_checks += 1
        domain = self.registers.domain
        if domain == DOMAIN_0:
            return 0
        table = self.generation_table
        if table is not None and table.get(domain, 0) != self._entry_generation:
            self._fault(
                StaleGenerationFault(
                    domain, table.get(domain, 0), self._entry_generation,
                    address=access.address,
                )
            )
        if self._fast:
            bypass = self.bypass
            if bypass._domain == domain:
                # Mirrors _check_instruction's bypass-hit arm: the live
                # register words are the verdict vector (reading them
                # live keeps fault-injected corruption visible, exactly
                # like InstPrivilegeRegister.allowed would).
                stats.bypass_hits += 1
                inst_class = access.inst_class
                if not bypass._words[inst_class >> 6] >> (inst_class & 63) & 1:
                    self._fault(
                        InstructionPrivilegeFault(
                            inst_class, domain=domain, address=access.address
                        )
                    )
                if access.csr is None:
                    return 0
                return self._fast_csr(domain, access)
        return self._check_slow(domain, access)

    def _traced_check(self, access: AccessInfo) -> int:
        """Run :meth:`check` with the tap muted, then emit one event.

        The class-qualified inner call sidesteps both recursion through
        this wrapper and instance-attribute shadowing (the machine
        campaigns' lockstep monitor replaces ``pcu.check`` on the
        instance), so the traced verdict — stall cycles, faults and
        statistics included — is exactly the untraced one.
        """
        tap, self._tap = self._tap, None
        status = "ok"
        try:
            return PrivilegeCheckUnit.check(self, access)
        except BaseException as error:
            status = type(error).__name__
            raise
        finally:
            self._tap = tap
            tap.on_check(self, access, status)

    def _check_slow(self, domain: int, access: AccessInfo) -> int:
        """The uncompiled pipeline: cold bypass, Draco, degraded mode."""
        if self.degraded:
            return self._check_degraded(domain, access)

        # Draco-style shortcut (Section 8): a previously proven-legal
        # access tuple skips the whole check pipeline.
        draco_key = None
        if self.draco is not None:
            # The written value only decides legality for bit-masked
            # CSRs; folding it into every key would make ordinary CSR
            # writes with varying values miss forever.
            masked = (
                access.csr is not None
                and access.csr_write
                and self.isa_map.mask_slot(access.csr) is not None
            )
            draco_key = (
                domain, access.inst_class, access.csr,
                access.csr_read, access.csr_write,
                access.write_value if masked else None,
                access.old_value if masked else None,
            )
            if self.draco.lookup(draco_key) is not None:
                self.stats.draco_hits += 1
                return 0

        stall = self._check_instruction(domain, access)
        if access.csr is not None:
            stall += self._check_csr(domain, access)
        if draco_key is not None:
            self.draco.fill(draco_key, True)  # only reached if legal
        self.stats.stall_cycles += stall
        return stall

    def _fast_csr(self, domain: int, access: AccessInfo) -> int:
        """Verdict-plan CSR check: _check_csr with precompiled geometry.

        Replays the exact statistics, LRU promotion, fill and fault
        sequence of ``hpt_cache.reg_word`` + ``_check_csr``, but with
        the per-CSR shifts and mask slot fetched from the static
        ``_csr_plan`` and the cache touched through its dict directly
        (fetched fresh each call — ``flush`` may replace the dict when
        lines are pinned).
        """
        csr = access.csr
        plan = self._csr_plan.get(csr)
        if plan is None:
            shift = (2 * csr) % 64
            plan = ((2 * csr) // 64, shift, shift + 1,
                    self.isa_map.mask_slot(csr))
            self._csr_plan[csr] = plan
        word_index, read_shift, write_shift, mask_slot = plan
        stats = self.stats
        reg_stats = stats.reg_cache
        reg_stats.lookups += 1
        reg = self.hpt_cache.reg
        entries = reg._entries
        tag = (domain, word_index)
        word = entries.get(tag)
        if word is not None:
            reg_stats.hits += 1
            entries.move_to_end(tag)
            stall = 0
        else:
            reg_stats.misses += 1
            word = self.hpt.read_reg_word(domain, word_index)
            reg.fill(tag, word)
            reg_stats.fills += 1
            stall = self.config.refill_latency

        if access.csr_read:
            stats.csr_read_checks += 1
            if not word >> read_shift & 1:
                self._fault(
                    RegisterReadFault(csr, domain=domain, address=access.address)
                )
        if access.csr_write:
            stats.csr_write_checks += 1
            if mask_slot is not None:
                stall += self._check_mask(domain, mask_slot, access)
            elif not word >> write_shift & 1:
                self._fault(
                    RegisterWriteFault(csr, domain=domain, address=access.address)
                )
        stats.stall_cycles += stall
        return stall

    def verdict_plan(self):
        """The active compiled verdict, or ``None`` when decompiled.

        Introspection for the coherence tests: returns
        ``(domain, instruction_words)`` exactly when the next warm
        check would be served by the fast path.  Every invalidation
        entry point (``invalidate_privileges``, ``flush``, degraded
        mode, domain switches) must leave this ``None`` or freshly
        reloaded, never stale.
        """
        if not self._fast:
            return None
        domain = self.bypass._domain
        if domain is None:
            return None
        return domain, tuple(self.bypass._words)

    # ------------------------------------------------------------------
    # Block-level privilege summaries (DESIGN §3.18).
    # ------------------------------------------------------------------
    def check_block_summary(self, summary) -> int:
        """One probe deciding a whole straight-line block.

        ``summary`` is the union of everything the block's instructions
        would ask :meth:`check` for — inst-bitmap bits per 64-bit word
        and CSR touches (blocks containing CSR accesses are never
        formed, so a non-empty CSR set always refuses).  Returns a
        ``BLOCK_*`` mode: anything but :data:`BLOCK_REFUSED` proves
        that running :meth:`check` once per member would pass with zero
        stall and touch only the counters
        :meth:`account_block` replays — so the CPU may execute the
        block and skip the N per-instruction calls.

        Refusal is always safe (the CPU falls back to per-instruction
        checks, the reference semantics), so every live condition the
        verdict plan invalidates on refuses here: degraded mode and
        decompiled plans (``_fast``), an armed contract tap (per-check
        events must keep their per-instruction cadence), an
        instance-shadowed ``check`` (the machine campaigns' lockstep
        monitor must see every call), a recycled tenant slot
        (generation mismatch — the per-instruction path raises the
        architectural :class:`StaleGenerationFault`), and a cold or
        foreign bypass register.  The probe itself never mutates
        privilege or statistics state beyond :attr:`block_stats`,
        which is deliberately outside :class:`PcuStats`.
        """
        if not self.enabled:
            return BLOCK_SILENT
        block_stats = self.block_stats
        block_stats.probes += 1
        if (
            not self._block_capable
            or not self._fast
            or self._tap is not None
            or "check" in self.__dict__
        ):
            block_stats.refusals += 1
            return BLOCK_REFUSED
        domain = self.registers.domain
        if domain == DOMAIN_0:
            block_stats.hits += 1
            return BLOCK_DOMAIN0
        table = self.generation_table
        if table is not None and table.get(domain, 0) != self._entry_generation:
            block_stats.refusals += 1
            return BLOCK_REFUSED
        bypass = self.bypass
        if bypass._domain != domain or summary.csrs:
            block_stats.refusals += 1
            return BLOCK_REFUSED
        words = bypass._words
        for index, needed in summary.class_words:
            if words[index] & needed != needed:
                block_stats.refusals += 1
                return BLOCK_REFUSED
        block_stats.hits += 1
        return BLOCK_BYPASS

    def account_block(self, mode: int, retired: int) -> None:
        """Replay the counters ``retired`` per-instruction checks would
        have bumped under ``mode``.

        Called after the block (or its faulting prefix) executed, with
        the exact retired count, so a mid-block trap accounts the same
        checks the per-instruction path would have run — the check of
        a faulting instruction precedes its handler, so the faulting
        member itself is included by the caller.
        """
        stats = self.stats
        if mode == BLOCK_BYPASS:
            stats.inst_checks += retired
            stats.bypass_hits += retired
        elif mode == BLOCK_DOMAIN0:
            stats.inst_checks += retired
        self.block_stats.insts += retired

    def _check_instruction(self, domain: int, access: AccessInfo) -> int:
        if self.config.bypass_enabled:
            verdict = self.bypass.allowed(domain, access.inst_class)
            if verdict is not None:
                self.stats.bypass_hits += 1
                if not verdict:
                    self._fault(
                        InstructionPrivilegeFault(
                            access.inst_class, domain=domain, address=access.address
                        )
                    )
                return 0
            stall = self._fill_bypass(domain)
            if not self.bypass.allowed(domain, access.inst_class):
                self._fault(
                    InstructionPrivilegeFault(
                        access.inst_class, domain=domain, address=access.address
                    )
                )
            return stall

        word_index, offset = divmod(access.inst_class, 64)
        word, stall = self.hpt_cache.inst_word(
            domain, word_index, self.stats.inst_cache
        )
        if not word >> offset & 1:
            self._fault(
                InstructionPrivilegeFault(
                    access.inst_class, domain=domain, address=access.address
                )
            )
        return stall

    def _fill_bypass(self, domain: int) -> int:
        """Pull the whole instruction bitmap into the bypass register."""
        words = []
        stall = 0
        for index in range(self.hpt.inst_words_per_domain):
            word, cycles = self.hpt_cache.inst_word(
                domain, index, self.stats.inst_cache
            )
            words.append(word)
            stall += cycles
        self.bypass.load(domain, words)
        self.stats.bypass_fills += 1
        return stall

    def _check_csr(self, domain: int, access: AccessInfo) -> int:
        csr = access.csr
        word_index = (2 * csr) // 64
        word, stall = self.hpt_cache.reg_word(domain, word_index, self.stats.reg_cache)
        read_bit = word >> ((2 * csr) % 64) & 1
        write_bit = word >> ((2 * csr) % 64 + 1) & 1

        if access.csr_read:
            self.stats.csr_read_checks += 1
            if not read_bit:
                self._fault(
                    RegisterReadFault(csr, domain=domain, address=access.address)
                )
        if access.csr_write:
            self.stats.csr_write_checks += 1
            slot = self.isa_map.mask_slot(csr)
            if slot is not None:
                # Bitwise-controlled CSR: the mask decides writability.
                stall += self._check_mask(domain, slot, access)
            elif not write_bit:
                self._fault(
                    RegisterWriteFault(csr, domain=domain, address=access.address)
                )
        return stall

    def _check_mask(self, domain: int, slot: int, access: AccessInfo) -> int:
        self.stats.mask_checks += 1
        mask, stall = self.hpt_cache.mask_word(domain, slot, self.stats.mask_cache)
        if access.write_value is None or access.old_value is None:
            raise ConfigurationError(
                "bitwise CSR write check requires old and new values"
            )
        if (access.old_value ^ access.write_value) & ~mask:
            self._fault(
                BitMaskViolationFault(
                    access.csr,
                    access.old_value,
                    access.write_value,
                    mask,
                    domain=domain,
                    address=access.address,
                )
            )
        return stall

    def _check_degraded(self, domain: int, access: AccessInfo) -> int:
        """Serve one check via direct HPT walks, bypassing every cache.

        Semantically identical to the cached pipeline (the oracle path):
        only the latency differs — each structure read pays the full
        refill latency because nothing may be cached while degraded.
        """
        self.stats.degraded_checks += 1
        stall = self.config.refill_latency
        word_index, offset = divmod(access.inst_class, 64)
        if not self.hpt.read_inst_word(domain, word_index) >> offset & 1:
            self._fault(
                InstructionPrivilegeFault(
                    access.inst_class, domain=domain, address=access.address
                )
            )
        csr = access.csr
        if csr is not None:
            stall += self.config.refill_latency
            word = self.hpt.read_reg_word(domain, (2 * csr) // 64)
            read_bit = word >> ((2 * csr) % 64) & 1
            write_bit = word >> ((2 * csr) % 64 + 1) & 1
            if access.csr_read:
                self.stats.csr_read_checks += 1
                if not read_bit:
                    self._fault(
                        RegisterReadFault(csr, domain=domain, address=access.address)
                    )
            if access.csr_write:
                self.stats.csr_write_checks += 1
                slot = self.isa_map.mask_slot(csr)
                if slot is not None:
                    self.stats.mask_checks += 1
                    stall += self.config.refill_latency
                    mask = self.hpt.read_mask(domain, slot)
                    if access.write_value is None or access.old_value is None:
                        raise ConfigurationError(
                            "bitwise CSR write check requires old and new values"
                        )
                    if (access.old_value ^ access.write_value) & ~mask:
                        self._fault(
                            BitMaskViolationFault(
                                access.csr, access.old_value, access.write_value,
                                mask, domain=domain, address=access.address,
                            )
                        )
                elif not write_bit:
                    self._fault(
                        RegisterWriteFault(csr, domain=domain, address=access.address)
                    )
        self.stats.stall_cycles += stall
        return stall

    def _fault(self, fault) -> None:
        self.stats.record_fault(fault)
        raise fault

    # ------------------------------------------------------------------
    # Unforgeable domain switching engine (Section 4.2).
    # ------------------------------------------------------------------
    def execute_gate(
        self,
        kind: GateKind,
        gate_id: int,
        pc: int,
        return_address: Optional[int] = None,
    ) -> Tuple[int, int]:
        """Execute a gate instruction at ``pc``.

        Returns ``(target_pc, stall_cycles)``.  Gate instructions are
        executable from every domain; the SGT entry, not the HPT, decides
        legality.  Raises :class:`GateFault` when the runtime address
        does not match the registered gate address (defeating injected or
        ROP-constructed gates) or the gate is unregistered.
        """
        if self._tap is not None:
            return self._traced_gate(kind, gate_id, pc, return_address)
        table = self.generation_table
        if table is not None:
            domain = self.registers.domain
            if domain != DOMAIN_0 and \
                    table.get(domain, 0) != self._entry_generation:
                self._fault(
                    StaleGenerationFault(
                        domain, table.get(domain, 0),
                        self._entry_generation, address=pc,
                    )
                )
        if kind is GateKind.HCRETS:
            return self._execute_return(pc)

        try:
            if self.degraded:
                # No SGT caching while degraded: read the entry straight
                # from trusted memory (may raise GateFault when invalid).
                self.stats.degraded_checks += 1
                entry = self.sgt.read_entry(gate_id)
                stall = self.config.refill_latency
            else:
                entry, stall = self.sgt_cache.entry(gate_id, self.stats.sgt_cache)
        except GateFault as fault:
            fault.domain = self.registers.domain
            fault.address = pc
            self._fault(fault)
            raise  # unreachable; _fault always raises

        if not entry.matches_call_site(pc):
            self._fault(
                GateFault(
                    "gate %d called from 0x%x, registered at 0x%x"
                    % (gate_id, pc, entry.gate_address),
                    gate_id=gate_id,
                    domain=self.registers.domain,
                    address=pc,
                )
            )

        if kind is GateKind.HCCALLS:
            if return_address is None:
                raise ConfigurationError("hccalls requires a return address")
            self.trusted_stack.push(return_address, self.registers.domain)
            self.stats.gate_calls_extended += 1
        else:
            self.stats.gate_calls += 1

        self._enter_domain(entry.destination_domain)
        self.stats.stall_cycles += stall
        return entry.destination_address, stall

    def _traced_gate(
        self,
        kind: GateKind,
        gate_id: int,
        pc: int,
        return_address: Optional[int],
    ) -> Tuple[int, int]:
        """Run :meth:`execute_gate` tap-muted, then emit one gate event.

        Same shape as :meth:`_traced_check`: the pre-domain is captured
        before the call and the event carries both sides of the switch,
        so the gate-only-switches contract can judge the transition.
        """
        tap, self._tap = self._tap, None
        pre_domain = self.registers.domain
        status = "ok"
        try:
            return PrivilegeCheckUnit.execute_gate(
                self, kind, gate_id, pc, return_address
            )
        except BaseException as error:
            status = type(error).__name__
            raise
        finally:
            self._tap = tap
            tap.on_gate(self, kind, gate_id, pre_domain, status)

    def _execute_return(self, pc: int) -> Tuple[int, int]:
        """``hcrets``: pop the trusted stack and return cross-domain."""
        return_address, domain = self.trusted_stack.pop()
        if domain == DOMAIN_0:
            # Section 4.4: hcrets must never re-enter the all-privileged
            # init domain at a non-registered address.
            self._fault(
                GateFault(
                    "hcrets may not return to domain-0",
                    domain=self.registers.domain,
                    address=pc,
                )
            )
        self.stats.gate_returns += 1
        self._enter_domain(domain)
        return return_address, 0

    # ------------------------------------------------------------------
    # Cache management instructions (Section 5.1).
    # ------------------------------------------------------------------
    def prefetch(self, csr: int = 0) -> None:
        """``pfch #csr``: warm the HPT caches; ``csr == 0`` fetches all.

        (CSR index 0 is reserved by the ISA maps for this encoding.)
        """
        if not self.config.prefetch_enabled:
            return
        domain = self.registers.domain
        if csr == 0:
            self.hpt_cache.prefetch_all(
                domain, self.stats.reg_cache, self.stats.mask_cache
            )
        else:
            self.hpt_cache.prefetch_csr(
                domain, csr, self.stats.reg_cache, self.stats.mask_cache
            )

    def flush(self, cache_id: CacheId = CacheId.ALL) -> None:
        """``pflh #bufid``: flush one privilege-cache module (0 = all)."""
        if cache_id in (CacheId.ALL, CacheId.INST_BITMAP):
            self.hpt_cache.inst.flush()
            self.bypass.invalidate()
            self.stats.inst_cache.flushes += 1
        if cache_id in (CacheId.ALL, CacheId.REG_BITMAP):
            self.hpt_cache.reg.flush()
            self.stats.reg_cache.flushes += 1
        if cache_id in (CacheId.ALL, CacheId.BIT_MASK):
            self.hpt_cache.mask.flush()
            self.stats.mask_cache.flushes += 1
        if cache_id in (CacheId.ALL, CacheId.SGT):
            self.sgt_cache.flush()
            self.stats.sgt_cache.flushes += 1
        if cache_id is CacheId.ALL and self.draco is not None:
            self.draco.flush()

    def invalidate_privileges(
        self,
        domain: Optional[int] = None,
        *,
        inst: bool = True,
        regs: bool = True,
        masks: bool = True,
        csr: Optional[int] = None,
    ) -> None:
        """Coherence sweep after domain-0 edits the HPT.

        A cached word filled before the edit would keep granting (or
        denying) the *old* privileges, so every HPT mutation must drop
        the affected entries.  Tags in all three HPT caches (and keys in
        the Draco cache) lead with the domain id, so one predicate sweep
        per module covers every group the domain shares.  ``domain=None``
        sweeps every domain.

        When the edit touched a single CSR, passing ``csr`` narrows the
        sweep: only the register-bitmap word and mask slot covering that
        CSR are dropped, and only the Draco tuples proven against that
        CSR — warm entries for the domain's other registers survive the
        reconfigure instead of being collateral damage.
        """
        def hits(tag) -> bool:
            return domain is None or tag[0] == domain

        narrow = csr is not None and domain is not None
        if inst:
            self.hpt_cache.inst.invalidate_where(hits)
            if domain is None or self.bypass.loaded_domain == domain:
                self.bypass.invalidate()
        if regs:
            if narrow:
                self.hpt_cache.reg.invalidate((domain, (2 * csr) // 64))
            else:
                self.hpt_cache.reg.invalidate_where(hits)
        if masks:
            if narrow:
                slot = self.isa_map.mask_slot(csr)
                if slot is not None:
                    self.hpt_cache.mask.invalidate((domain, slot))
            else:
                self.hpt_cache.mask.invalidate_where(hits)
        if self.draco is not None:
            # Draco caches whole proven-legal tuples; a privilege edit
            # can retroactively falsify them.  A CSR-scoped edit only
            # falsifies tuples proven against that CSR (key layout:
            # (domain, inst_class, csr, ...)); instruction edits falsify
            # the whole domain.
            if narrow and not inst:
                self.draco.invalidate_where(
                    lambda tag: tag[0] == domain and tag[2] == csr
                )
            else:
                self.draco.invalidate_where(hits)

    # ------------------------------------------------------------------
    # Degraded (cache-distrust) operation — fault recovery support.
    # ------------------------------------------------------------------
    def enter_degraded_mode(self) -> None:
        """Stop trusting the privilege caches until the next clean scrub.

        Flushes everything (including the Draco cache and the bypass
        register) and routes all subsequent checks through direct
        trusted-memory walks.  Idempotent.
        """
        self.flush(CacheId.ALL)
        # Decompile the verdict plan explicitly: while degraded, even a
        # freshly refilled bypass register must not short-circuit the
        # direct-HPT-walk path.
        self._fast = False
        if not self.degraded:
            self.degraded = True
            self.stats.degraded_entries += 1

    def exit_degraded_mode(self) -> None:
        """Re-enable caching; only the scrubber calls this, post-repair."""
        self.degraded = False
        self._fast = self._fast_capable

    # ------------------------------------------------------------------
    # Trusted memory enforcement (Section 4.5).
    # ------------------------------------------------------------------
    def check_memory_access(self, address: int, pc: int = 0) -> None:
        """Software load/store filter: trusted memory is domain-0-only."""
        if not self.enabled:
            return
        domain = self.registers.domain
        if domain == DOMAIN_0:
            return
        table = self.generation_table
        if table is not None and table.get(domain, 0) != self._entry_generation:
            self._fault(
                StaleGenerationFault(
                    domain, table.get(domain, 0), self._entry_generation,
                    address=pc,
                )
            )
        if self.trusted_memory.contains(address):
            self._fault(
                TrustedMemoryFault(address, domain=domain, address=pc)
            )
