"""Trusted memory region and trusted stack (Sections 4.2, 4.5).

ISA-Grid reserves a power-of-two-sized, aligned range of physical memory
for the HPT, the SGT and the trusted stack.  Two dedicated registers
(``tmemb``/``tmeml``) bound the range.  Loads and stores may touch the
range only while the core is in domain-0; in any other domain only the
PCU itself may read it.  The bound check is a simple mask compare thanks
to the power-of-two constraint.
"""

from __future__ import annotations

from typing import Dict, Protocol

from .errors import ConfigurationError, TrustedStackFault

WORD_BYTES = 8


class WordBacking(Protocol):
    """Minimal memory interface trusted structures are stored through."""

    def load_word(self, address: int) -> int: ...

    def store_word(self, address: int, value: int) -> None: ...


class WordMemory:
    """Sparse 64-bit word store; the default backing for unit tests."""

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    def load_word(self, address: int) -> int:
        if address % WORD_BYTES:
            raise ValueError("unaligned word load at 0x%x" % address)
        return self._words.get(address, 0)

    def store_word(self, address: int, value: int) -> None:
        if address % WORD_BYTES:
            raise ValueError("unaligned word store at 0x%x" % address)
        self._words[address] = value & (1 << 64) - 1


class TrustedMemory:
    """The reserved physical range holding HPT, SGT and trusted stacks.

    Parameters
    ----------
    base, size:
        Physical range ``[base, base + size)``.  ``size`` must be a power
        of two and ``base`` aligned to it, which lets the hardware bound
        check be a single mask compare (Section 4.5).
    backing:
        Word-granular memory the region lives in.  Defaults to a private
        :class:`WordMemory` so the core package is usable stand-alone.
    """

    def __init__(self, base: int, size: int, backing: WordBacking = None):
        if size <= 0 or size & (size - 1):
            raise ConfigurationError("trusted memory size must be a power of two")
        if base % size:
            raise ConfigurationError("trusted memory base must be size-aligned")
        self.base = base
        self.size = size
        self.limit = base + size
        self._backing: WordBacking = backing if backing is not None else WordMemory()
        self._next_alloc = base

    def contains(self, address: int) -> bool:
        """Hardware bound check: is ``address`` inside the trusted range?"""
        return (address & ~(self.size - 1)) == self.base

    def load_word(self, address: int) -> int:
        """PCU-side read; bypasses the domain-0-only software check."""
        if not self.contains(address):
            raise ConfigurationError("PCU read outside trusted memory: 0x%x" % address)
        return self._backing.load_word(address)

    def store_word(self, address: int, value: int) -> None:
        """Domain-0 software write path (the Machine enforces domain-0)."""
        if not self.contains(address):
            raise ConfigurationError("write outside trusted memory: 0x%x" % address)
        self._backing.store_word(address, value)

    def allocate(self, n_words: int) -> int:
        """Bump-allocate ``n_words`` words; used by domain-0 init code."""
        address = self._next_alloc
        end = address + n_words * WORD_BYTES
        if end > self.limit:
            raise ConfigurationError(
                "trusted memory exhausted (%d words requested)" % n_words
            )
        self._next_alloc = end
        return address

    @property
    def words_free(self) -> int:
        return (self.limit - self._next_alloc) // WORD_BYTES


class TrustedStack:
    """The trusted stack used by ``hccalls``/``hcrets`` (Section 4.2).

    Each frame is two words: the return address and the source domain id.
    The stack grows upward from ``hcsb``; pushes beyond ``hcsl`` or pops
    below ``hcsb`` raise :class:`TrustedStackFault`.  The three pointer
    registers live in the PCU register file; this class manipulates them
    through the ``registers`` object it is given (duck-typed to
    :class:`~repro.core.isa_extension.PcuRegisters`).
    """

    FRAME_WORDS = 2

    def __init__(self, memory: TrustedMemory, registers) -> None:
        self._memory = memory
        self._regs = registers

    def configure(self, base: int, limit: int) -> None:
        """Domain-0 initialization of hcsb/hcsl/hcsp."""
        if not (self._memory.contains(base) and self._memory.contains(limit - WORD_BYTES)):
            raise ConfigurationError("trusted stack must live in trusted memory")
        if limit <= base:
            raise ConfigurationError("trusted stack limit must exceed base")
        self._regs.hcsb = base
        self._regs.hcsl = limit
        self._regs.hcsp = base

    def push(self, return_address: int, source_domain: int) -> None:
        sp = self._regs.hcsp
        new_sp = sp + self.FRAME_WORDS * WORD_BYTES
        if sp < self._regs.hcsb or new_sp > self._regs.hcsl:
            raise TrustedStackFault(
                "trusted stack overflow", sp, domain=source_domain
            )
        self._memory.store_word(sp, return_address)
        self._memory.store_word(sp + WORD_BYTES, source_domain)
        self._regs.hcsp = new_sp

    def pop(self) -> "tuple[int, int]":
        sp = self._regs.hcsp - self.FRAME_WORDS * WORD_BYTES
        if sp < self._regs.hcsb:
            raise TrustedStackFault("trusted stack underflow", self._regs.hcsp)
        return_address = self._memory.load_word(sp)
        domain = self._memory.load_word(sp + WORD_BYTES)
        self._regs.hcsp = sp
        return return_address, domain

    @property
    def depth(self) -> int:
        """Number of frames currently on the stack."""
        return (self._regs.hcsp - self._regs.hcsb) // (self.FRAME_WORDS * WORD_BYTES)

    def save_context(self) -> "tuple[int, int, int]":
        """Snapshot (hcsp, hcsb, hcsl) for a thread switch (Section 5.2)."""
        return self._regs.hcsp, self._regs.hcsb, self._regs.hcsl

    def restore_context(self, context: "tuple[int, int, int]") -> None:
        self._regs.hcsp, self._regs.hcsb, self._regs.hcsl = context
