"""Trusted memory region and trusted stack (Sections 4.2, 4.5).

ISA-Grid reserves a power-of-two-sized, aligned range of physical memory
for the HPT, the SGT and the trusted stack.  Two dedicated registers
(``tmemb``/``tmeml``) bound the range.  Loads and stores may touch the
range only while the core is in domain-0; in any other domain only the
PCU itself may read it.  The bound check is a simple mask compare thanks
to the power-of-two constraint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Tuple

from .errors import ConfigurationError, IntegrityFault, TrustedStackFault

WORD_BYTES = 8

_MASK64 = (1 << 64) - 1


class WordBacking(Protocol):
    """Minimal memory interface trusted structures are stored through."""

    def load_word(self, address: int) -> int: ...

    def store_word(self, address: int, value: int) -> None: ...


class WordMemory:
    """Sparse 64-bit word store; the default backing for unit tests."""

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    def load_word(self, address: int) -> int:
        if address % WORD_BYTES:
            raise ValueError("unaligned word load at 0x%x" % address)
        return self._words.get(address, 0)

    def store_word(self, address: int, value: int) -> None:
        if address % WORD_BYTES:
            raise ValueError("unaligned word store at 0x%x" % address)
        self._words[address] = value & (1 << 64) - 1


class TrustedMemory:
    """The reserved physical range holding HPT, SGT and trusted stacks.

    Parameters
    ----------
    base, size:
        Physical range ``[base, base + size)``.  ``size`` must be a power
        of two and ``base`` aligned to it, which lets the hardware bound
        check be a single mask compare (Section 4.5).
    backing:
        Word-granular memory the region lives in.  Defaults to a private
        :class:`WordMemory` so the core package is usable stand-alone.
    """

    def __init__(self, base: int, size: int, backing: WordBacking = None):
        if size <= 0 or size & (size - 1):
            raise ConfigurationError("trusted memory size must be a power of two")
        if base % size:
            raise ConfigurationError("trusted memory base must be size-aligned")
        self.base = base
        self.size = size
        self.limit = base + size
        self._backing: WordBacking = backing if backing is not None else WordMemory()
        self._next_alloc = base
        # Transactional-reconfiguration journal: while armed, store_word
        # records the first-touch old value of every word it overwrites so
        # a fault mid-update can be rolled back (Section 4.4 requires a
        # half-applied grant to never become architecturally visible).
        self._journal: Optional[List[Tuple[int, int]]] = None
        self._journalled: set = set()
        # Journalled-store accounting for commit-window fault targeting:
        # ``transaction_stores`` counts every store executed under the
        # current (or, after commit/abort, the most recent) journal;
        # ``journalled_stores_total`` never resets.
        self.transaction_stores = 0
        self.journalled_stores_total = 0
        # Contract-monitor tap (repro.contracts, DESIGN §3.16): ``None``
        # keeps stores and transaction boundaries on their original
        # instruction sequences.
        self._tap = None

    def contains(self, address: int) -> bool:
        """Hardware bound check: is ``address`` inside the trusted range?"""
        return (address & ~(self.size - 1)) == self.base

    def load_word(self, address: int) -> int:
        """PCU-side read; bypasses the domain-0-only software check."""
        if not self.contains(address):
            raise ConfigurationError("PCU read outside trusted memory: 0x%x" % address)
        return self._backing.load_word(address)

    def store_word(self, address: int, value: int, *,
                   origin: str = "sw", journal: bool = True) -> None:
        """Domain-0 software write path (the Machine enforces domain-0).

        ``origin`` tags who issued the store for the contract trace:
        ``"sw"`` for manager-transaction software stores, ``"hw"`` for
        hardware trusted-stack pushes, ``"d0"`` for domain-0
        provisioning, ``"scrub"`` for scrubber repairs, ``"seal"`` for
        one-way seal-word sets.  It changes nothing about the store
        itself.

        ``journal=False`` keeps the store out of any open transaction
        journal: an aborting transaction must never replay the old value
        over it.  Seal-word *sets* use this — sealing is one-way, so a
        rollback that un-sealed would violate the no-unseal contract.
        """
        if not self.contains(address):
            raise ConfigurationError("write outside trusted memory: 0x%x" % address)
        if self._journal is not None and journal:
            if address not in self._journalled:
                # Record the old value *before* attempting the store so a
                # backing that faults mid-write still rolls back cleanly.
                self._journalled.add(address)
                self._journal.append((address, self._backing.load_word(address)))
            self.transaction_stores += 1
            self.journalled_stores_total += 1
        if self._tap is not None:
            # Emitted before the backing store so the monitor can read
            # the old value; an injected store fault is still reported
            # through the check/gate status that observes it.
            self._tap.on_mem_write(self, address, value, origin)
        self._backing.store_word(address, value)

    # -- transactional reconfiguration ----------------------------------
    @property
    def in_transaction(self) -> bool:
        return self._journal is not None

    def begin_transaction(self) -> None:
        """Arm the journal; every store records its first-touch old value."""
        if self._journal is not None:
            raise ConfigurationError("trusted-memory transaction already open")
        self._journal = []
        self._journalled = set()
        self.transaction_stores = 0
        if self._tap is not None:
            self._tap.on_txn(self, "begin")

    def commit_transaction(self) -> None:
        """Discard the journal — the update completed without faulting."""
        if self._journal is None:
            raise ConfigurationError("no trusted-memory transaction to commit")
        self._journal = None
        self._journalled = set()
        if self._tap is not None:
            self._tap.on_txn(self, "commit")

    def journalled_addresses(self) -> List[int]:
        """Addresses of the open journal, oldest first (empty when closed).

        The commit-window fault injector uses this to mutate a word the
        journal already covers, so ``abort_transaction``'s replay is
        forced to overwrite (and thereby repair) the corruption.
        """
        if self._journal is None:
            return []
        return [address for address, _ in self._journal]

    def abort_transaction(self) -> None:
        """Restore every journalled word, newest first, and disarm."""
        if self._journal is None:
            raise ConfigurationError("no trusted-memory transaction to abort")
        journal, self._journal = self._journal, None
        self._journalled = set()
        for address, old_value in reversed(journal):
            # Raw backing stores: the rollback replay is the mechanism
            # under test, so it must not narrate itself as new writes.
            self._backing.store_word(address, old_value)
        if self._tap is not None:
            # Emitted after the replay so the monitor snapshots the
            # post-abort word values for the atomicity contract.
            self._tap.on_txn(self, "abort")

    def allocate(self, n_words: int) -> int:
        """Bump-allocate ``n_words`` words; used by domain-0 init code."""
        address = self._next_alloc
        end = address + n_words * WORD_BYTES
        if end > self.limit:
            raise ConfigurationError(
                "trusted memory exhausted (%d words requested)" % n_words
            )
        self._next_alloc = end
        return address

    @property
    def words_free(self) -> int:
        return (self.limit - self._next_alloc) // WORD_BYTES


class TrustedStack:
    """The trusted stack used by ``hccalls``/``hcrets`` (Section 4.2).

    Each frame is two words: the return address and the source domain id.
    The stack grows upward from ``hcsb``; pushes beyond ``hcsl`` or pops
    below ``hcsb`` raise :class:`TrustedStackFault`.  The three pointer
    registers live in the PCU register file; this class manipulates them
    through the ``registers`` object it is given (duck-typed to
    :class:`~repro.core.isa_extension.PcuRegisters`).
    """

    FRAME_WORDS = 2

    def __init__(self, memory: TrustedMemory, registers) -> None:
        self._memory = memory
        self._regs = registers
        # Integrity digest per stack window, keyed by hcsb: an XOR fold of
        # every live frame.  XOR makes push/pop self-inverse, so the PCU
        # maintains it in O(1); the scrubber recomputes it from memory to
        # detect a flipped word inside a live frame (which has no software
        # mirror to repair from — see IntegrityFault).  Keying by base
        # means save_context/restore_context thread switches naturally
        # select the right digest.
        self._digests: Dict[int, int] = {}

    @staticmethod
    def _frame_hash(sp: int, return_address: int, domain: int) -> int:
        return (
            sp * 0x9E3779B97F4A7C15
            ^ return_address * 0xC2B2AE3D27D4EB4F
            ^ domain * 0x165667B19E3779F9
        ) & _MASK64

    def configure(self, base: int, limit: int) -> None:
        """Domain-0 initialization of hcsb/hcsl/hcsp."""
        if not (self._memory.contains(base) and self._memory.contains(limit - WORD_BYTES)):
            raise ConfigurationError("trusted stack must live in trusted memory")
        if limit <= base:
            raise ConfigurationError("trusted stack limit must exceed base")
        self._regs.hcsb = base
        self._regs.hcsl = limit
        self._regs.hcsp = base
        self._digests[base] = 0

    def push(self, return_address: int, source_domain: int) -> None:
        sp = self._regs.hcsp
        new_sp = sp + self.FRAME_WORDS * WORD_BYTES
        if sp < self._regs.hcsb or new_sp > self._regs.hcsl:
            raise TrustedStackFault(
                "trusted stack overflow", sp, domain=source_domain
            )
        self._memory.store_word(sp, return_address, origin="hw")
        self._memory.store_word(sp + WORD_BYTES, source_domain, origin="hw")
        base = self._regs.hcsb
        self._digests[base] = self._digests.get(base, 0) ^ self._frame_hash(
            sp, return_address & _MASK64, source_domain
        )
        self._regs.hcsp = new_sp

    def pop(self) -> "tuple[int, int]":
        sp = self._regs.hcsp - self.FRAME_WORDS * WORD_BYTES
        if sp < self._regs.hcsb:
            raise TrustedStackFault("trusted stack underflow", self._regs.hcsp)
        return_address = self._memory.load_word(sp)
        domain = self._memory.load_word(sp + WORD_BYTES)
        base = self._regs.hcsb
        # Fold with the values read back from memory: an unmodified frame
        # cancels exactly; a corrupted one leaves a residue the scrubber's
        # recomputation will surface.
        self._digests[base] = self._digests.get(base, 0) ^ self._frame_hash(
            sp, return_address, domain
        )
        self._regs.hcsp = sp
        return return_address, domain

    @property
    def depth(self) -> int:
        """Number of frames currently on the stack."""
        return (self._regs.hcsp - self._regs.hcsb) // (self.FRAME_WORDS * WORD_BYTES)

    def save_context(self) -> "tuple[int, int, int]":
        """Snapshot (hcsp, hcsb, hcsl) for a thread switch (Section 5.2)."""
        return self._regs.hcsp, self._regs.hcsb, self._regs.hcsl

    def restore_context(self, context: "tuple[int, int, int]") -> None:
        self._regs.hcsp, self._regs.hcsb, self._regs.hcsl = context

    # -- integrity digest (fault-detection surface) ---------------------
    def recompute_digest(self, base: int = None, pointer: int = None) -> int:
        """Fold every live frame of ``[base, pointer)`` read from memory."""
        base = self._regs.hcsb if base is None else base
        pointer = self._regs.hcsp if pointer is None else pointer
        digest = 0
        frame_bytes = self.FRAME_WORDS * WORD_BYTES
        for sp in range(base, pointer, frame_bytes):
            digest ^= self._frame_hash(
                sp,
                self._memory.load_word(sp),
                self._memory.load_word(sp + WORD_BYTES),
            )
        return digest

    def reseed_digest(self, base: int, pointer: int) -> None:
        """Adopt memory as truth for a window seeded by raw domain-0
        stores (thread-stack creation writes frames without push)."""
        self._digests[base] = self.recompute_digest(base, pointer)

    def verify_digest(self) -> None:
        """Scrubber entry point: recompute the current window's digest.

        A mismatch means a live frame was modified behind the PCU's back.
        There is no software mirror of stack contents to repair from, so
        this is unrepairable corruption.
        """
        expected = self._digests.get(self._regs.hcsb, 0)
        if self.recompute_digest() != expected:
            raise IntegrityFault(
                "trusted-stack frame digest mismatch in [0x%x, 0x%x)"
                % (self._regs.hcsb, self._regs.hcsp),
                region="trusted_stack",
            )
