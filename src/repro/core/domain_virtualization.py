"""Domain-ID virtualization: unbounded tenants over fixed HPT slots.

The paper's HPT/bitmap tables hold a fixed number of domain slots
(``PcuConfig.max_domains``), but a production deployment — ERIM-style
per-tenant in-process isolation — means thousands-to-millions of
short-lived *logical* domains with constant create/grant/revoke/destroy
churn.  :class:`DomainVirtualizer` multiplexes that unbounded logical id
space onto a small pool of *physical* slots with free-list recycling.

The dangerous failure mode is a classic use-after-free: a recycled
physical slot serving a stale privilege verdict for a dead tenant.
Three mechanisms close it (DESIGN §3.17):

* **Per-slot generation counters.**  Every slot owns one trusted-memory
  word (and a domain-0 software mirror shared with the PCU as
  ``pcu.generation_table``).  The PCU latches the slot's generation when
  the core enters a domain; any later check or gate against a bumped
  generation raises :class:`~repro.core.errors.StaleGenerationFault` —
  a hard fault, never a stale verdict.
* **Transactional flush-on-reuse.**  Rebinding a slot clears its HPT
  words, descriptor and gate inside one
  :meth:`DomainManager._transaction`, riding the existing trusted-memory
  journal: a fault mid-recycle rolls the whole rebind back rather than
  leaving the new tenant with the old tenant's grants.
* **Graceful degradation.**  When every slot is live the virtualizer
  applies bounded backpressure: it evicts the least-recently-used
  *evictable* binding (never a pinned tenant, never the current /
  previous domain, never a domain live on the trusted stack) and counts
  the event in ``stats.slot_exhausted``.  Only when nothing is evictable
  does it raise the catchable :class:`SlotExhausted` — it never crashes
  and never silently reuses a live slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from .errors import ConfigurationError
from .pcu import DOMAIN_0
from .trusted_memory import WORD_BYTES

#: Per-slot gate call sites and destination entry points live outside
#: trusted memory at fixed strides so a slot's gate address is a pure
#: function of its index (stable across recycling).
GATE_BASE = 0x50_0000
DEST_BASE = 0x58_0000
_GATE_STRIDE = 0x40


class SlotExhausted(ConfigurationError):
    """Every physical slot is live and none may be evicted.

    Raised as *bounded backpressure*, not a crash: callers (the churn
    workload, a scheduler) catch it and retry after retiring a tenant or
    letting gate traffic drain the trusted stack.
    """

    def __init__(self, max_slots: int):
        super().__init__(
            "all %d domain slots are live and none is evictable" % max_slots
        )
        self.max_slots = max_slots


@dataclass
class TenantManifest:
    """The privilege set a logical tenant *should* hold when bound.

    The manifest is the durable, slot-independent record of a tenant's
    grants: binding a slot replays it through the
    :class:`~repro.core.domain.DomainManager` grant API, and the
    integrity scrubber compares a bound slot's descriptor against it to
    catch a dropped flush-on-reuse (stale grants from the slot's prior
    tenant surviving into the new binding).
    """

    instructions: Set[str] = field(default_factory=set)
    readable_csrs: Set[str] = field(default_factory=set)
    writable_csrs: Set[str] = field(default_factory=set)


@dataclass
class VirtualizerStats:
    """Lifetime counters of one virtualizer (reported by churn campaigns)."""

    spawned: int = 0
    retired: int = 0
    binds: int = 0
    recycles: int = 0
    evictions: int = 0
    slot_exhausted: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "spawned": self.spawned,
            "retired": self.retired,
            "binds": self.binds,
            "recycles": self.recycles,
            "evictions": self.evictions,
            "slot_exhausted": self.slot_exhausted,
        }


class DomainVirtualizer:
    """Maps unbounded logical tenant ids onto a bounded slot pool.

    Physical slots are ordinary :class:`DomainManager` domains, created
    lazily (at most ``max_slots`` of them) and *never* destroyed — their
    descriptors stay alive across recycling and only their contents are
    flushed and replayed.  Python-side binding state is mutated strictly
    after the enclosing trusted-memory transaction commits, so an
    injected fault that aborts a bind or recycle leaves the virtualizer
    agreeing with the rolled-back tables.
    """

    def __init__(self, manager, max_slots: int = 64):
        if max_slots < 1:
            raise ConfigurationError("need at least one domain slot")
        if max_slots >= manager.pcu.config.max_domains:
            raise ConfigurationError(
                "max_slots %d must leave room under max_domains %d"
                % (max_slots, manager.pcu.config.max_domains)
            )
        self.manager = manager
        self.pcu = manager.pcu
        self.max_slots = max_slots
        memory = self.pcu.trusted_memory
        # One generation word per slot, in trusted memory (scrub target).
        self._gen_base = memory.allocate(max_slots)
        #: physical domain id -> slot index (0..max_slots-1)
        self._slot_index: Dict[int, int] = {}
        #: physical domain id -> generation (domain-0 software mirror;
        #: shared with the PCU/oracle as their ``generation_table``)
        self.generations: Dict[int, int] = {}
        #: logical tenant id -> manifest
        self.tenants: Dict[int, TenantManifest] = {}
        #: logical tenant id -> physical domain id (bound tenants only)
        self.bindings: Dict[int, int] = {}
        #: physical domain id -> logical tenant id
        self.slot_owner: Dict[int, int] = {}
        #: physical domain id -> registered gate id
        self.slot_gate: Dict[int, int] = {}
        #: physical domain id -> last-activation tick (LRU eviction key)
        self.last_use: Dict[int, int] = {}
        self.free_slots: List[int] = []
        self.pinned: Set[int] = set()
        self._next_logical = 1
        self._tick = 0
        self.stats = VirtualizerStats()
        # Install: the manager exposes us to the scrubber / contract
        # monitor, and the PCU starts latching slot generations.
        manager.virtualizer = self
        self.pcu.generation_table = self.generations

    # ------------------------------------------------------------------
    # Slot geometry.
    # ------------------------------------------------------------------
    def generation_address_of(self, physical: int) -> int:
        """Trusted-memory address of a slot's generation word."""
        return self._gen_base + self._slot_index[physical] * WORD_BYTES

    def gate_address_of(self, physical: int) -> int:
        return GATE_BASE + self._slot_index[physical] * _GATE_STRIDE

    def dest_address_of(self, physical: int) -> int:
        return DEST_BASE + self._slot_index[physical] * _GATE_STRIDE

    def gate_id_of(self, physical: int) -> int:
        return self.slot_gate[physical]

    @property
    def live_tenants(self) -> int:
        return len(self.tenants)

    @property
    def bound_slots(self) -> int:
        return len(self.slot_owner)

    def _new_slot(self) -> int:
        index = len(self._slot_index)
        descriptor = self.manager.create_domain("vslot%d" % index)
        physical = descriptor.domain_id
        self._slot_index[physical] = index
        self.generations[physical] = 0
        self.pcu.trusted_memory.store_word(
            self.generation_address_of(physical), 0, origin="d0"
        )
        return physical

    # ------------------------------------------------------------------
    # Tenant lifecycle.
    # ------------------------------------------------------------------
    def spawn(self, manifest: Optional[TenantManifest] = None) -> int:
        """Create a logical tenant; no slot is consumed until activation."""
        logical = self._next_logical
        self._next_logical += 1
        self.tenants[logical] = manifest if manifest is not None else TenantManifest()
        self.stats.spawned += 1
        return logical

    def retire(self, logical: int) -> None:
        """Destroy a logical tenant, recycling its slot if bound."""
        if logical not in self.tenants:
            raise ConfigurationError("unknown logical tenant %d" % logical)
        if logical in self.bindings:
            self._unbind(logical)
        del self.tenants[logical]
        self.stats.retired += 1

    def activate(self, logical: int) -> int:
        """Return the tenant's physical slot, binding one if needed.

        Raises :class:`SlotExhausted` when the pool is saturated with
        unevictable bindings — the caller's backpressure signal.
        """
        if logical not in self.tenants:
            raise ConfigurationError("unknown logical tenant %d" % logical)
        self._tick += 1
        physical = self.bindings.get(logical)
        if physical is None:
            physical = self._bind(logical)
        self.last_use[physical] = self._tick
        return physical

    def pin(self, logical: int) -> None:
        """Exempt a tenant's binding from LRU eviction."""
        self.pinned.add(logical)

    def unpin(self, logical: int) -> None:
        self.pinned.discard(logical)

    # ------------------------------------------------------------------
    # Tenant reconfiguration (SYS_DCONF on logical ids).
    # ------------------------------------------------------------------
    def allow_instructions(self, logical: int, class_names: Iterable[str]) -> None:
        names = list(class_names)
        manifest = self._manifest(logical)
        physical = self.bindings.get(logical)
        if physical is not None:
            self.manager.allow_instructions(physical, names)
        manifest.instructions.update(names)

    def deny_instruction(self, logical: int, class_name: str) -> None:
        manifest = self._manifest(logical)
        physical = self.bindings.get(logical)
        if physical is not None:
            self.manager.deny_instruction(physical, class_name)
        manifest.instructions.discard(class_name)

    def grant_register(
        self, logical: int, csr_name: str, *, read: bool = False, write: bool = False
    ) -> None:
        manifest = self._manifest(logical)
        physical = self.bindings.get(logical)
        if physical is not None:
            self.manager.grant_register(physical, csr_name, read=read, write=write)
        if read:
            manifest.readable_csrs.add(csr_name)
        if write:
            manifest.writable_csrs.add(csr_name)

    def revoke_register(
        self, logical: int, csr_name: str, *, read: bool = False, write: bool = False
    ) -> None:
        manifest = self._manifest(logical)
        physical = self.bindings.get(logical)
        if physical is not None:
            self.manager.revoke_register(physical, csr_name, read=read, write=write)
        if read:
            manifest.readable_csrs.discard(csr_name)
        if write:
            manifest.writable_csrs.discard(csr_name)

    def seal_privileges(
        self, logical: int, instructions: Iterable[str] = (),
        csrs: Iterable[str] = (), *, read: bool = True, write: bool = True,
    ) -> None:
        """One-way seal on the tenant's *current* slot incarnation.

        Seals are slot state, not manifest state: they retire with the
        binding (``_reset_seals`` on recycle) and are deliberately not
        replayed on a rebind — a seal pins down a live incarnation, it
        is not a durable grant-shaped intent.  Sealing an unbound
        tenant is therefore a no-op.
        """
        self._manifest(logical)
        physical = self.bindings.get(logical)
        if physical is not None:
            self.manager.seal_privileges(physical, instructions=instructions,
                                         csrs=csrs, read=read, write=write)

    def _manifest(self, logical: int) -> TenantManifest:
        try:
            return self.tenants[logical]
        except KeyError:
            raise ConfigurationError("unknown logical tenant %d" % logical) from None

    # ------------------------------------------------------------------
    # Slot conformance (scrubber surface).
    # ------------------------------------------------------------------
    def slot_conforms(self, physical: int) -> bool:
        """Does a bound slot's descriptor match its tenant's manifest?

        A mismatch means the flush-on-reuse (or a grant replay) was lost:
        the slot holds grants its tenant never asked for — exactly the
        stale-privilege escape recycling must prevent.
        """
        logical = self.slot_owner.get(physical)
        if logical is None:
            return True
        manifest = self.tenants[logical]
        descriptor = self.manager.domains[physical]
        return (
            descriptor.instructions == manifest.instructions
            and descriptor.readable_csrs == manifest.readable_csrs
            and descriptor.writable_csrs == manifest.writable_csrs
        )

    def refresh_slot(self, physical: int) -> None:
        """Scrubber repair: flush the slot and replay its manifest."""
        logical = self.slot_owner.get(physical)
        if logical is None:
            return
        manifest = self.tenants[logical]
        with self.manager._transaction((physical,)):
            self._do_flush(physical)
            self.manager._emit("clear_domain", domain=physical)
            self._apply_manifest(physical, manifest)

    # ------------------------------------------------------------------
    # Bind / recycle (the transactional slot machinery).
    # ------------------------------------------------------------------
    def _recycle_window(self, physical: int) -> None:
        """Fault-injection hook: runs inside every bind/recycle
        transaction, before the stores, so campaigns can arm a trusted-
        memory store fault squarely in the recycle window."""

    def _flush_slot(self, physical: int) -> None:
        """The droppable flush-on-reuse step (fault-injection hook)."""
        self._do_flush(physical)

    def _reset_seals(self, physical: int) -> None:
        """The droppable seal-retirement step (fault-injection hook).

        Runs with the generation bump so a recycled slot never inherits
        the retired tenant's seal overlay; if dropped, the stale seals
        only *narrow* the next tenant until bind-time flush clears them.
        """
        self.pcu.hpt.clear_seals(physical)

    def _do_flush(self, physical: int) -> None:
        descriptor = self.manager.domains[physical]
        self.pcu.hpt.clear_domain(physical)
        descriptor.instructions.clear()
        descriptor.readable_csrs.clear()
        descriptor.writable_csrs.clear()
        descriptor.bit_grants.clear()
        self.pcu.invalidate_privileges(physical)

    def _apply_manifest(self, physical: int, manifest: TenantManifest) -> None:
        if manifest.instructions:
            self.manager.allow_instructions(physical, sorted(manifest.instructions))
        for csr_name in sorted(manifest.readable_csrs):
            self.manager.grant_register(physical, csr_name, read=True)
        for csr_name in sorted(manifest.writable_csrs):
            self.manager.grant_register(physical, csr_name, write=True)

    def _bind(self, logical: int) -> int:
        physical = self._acquire_slot()
        manifest = self.tenants[logical]
        index = self._slot_index[physical]
        gate_id = index  # stable per-slot gate id, reused across recycling
        generation = self.generations[physical]
        try:
            with self.manager._transaction((physical,), gates=True):
                self._recycle_window(physical)
                self._flush_slot(physical)
                # Narrated independently of the (droppable) flush itself:
                # the contract monitor must model the *intended* table
                # state.
                self.manager._emit("clear_domain", domain=physical)
                self._apply_manifest(physical, manifest)
                self.manager.register_gate(
                    self.gate_address_of(physical),
                    self.dest_address_of(physical),
                    physical,
                    gate_id=gate_id,
                )
                self.manager._emit(
                    "bind_slot", domain=physical, bits=generation, dest=logical
                )
        except BaseException:
            # The acquired slot was already popped off the free list; an
            # aborted bind must hand it back (front of the FIFO, so a
            # retried bind deterministically reuses the same slot).
            self.free_slots.insert(0, physical)
            raise
        self.bindings[logical] = physical
        self.slot_owner[physical] = logical
        self.slot_gate[physical] = gate_id
        self.stats.binds += 1
        return physical

    def _unbind(self, logical: int) -> None:
        physical = self.bindings[logical]
        gate_id = self.slot_gate[physical]
        new_generation = self.generations[physical] + 1
        memory = self.pcu.trusted_memory
        with self.manager._transaction((physical,), gates=True):
            self._recycle_window(physical)
            # Bump the slot generation *first*: from this commit on, any
            # core still holding the old entry generation hard-faults.
            memory.store_word(
                self.generation_address_of(physical), new_generation, origin="sw"
            )
            # Retire the tenant's seal overlay with the generation bump:
            # the seal belongs to the tenant, not the slot.  These clears
            # are journalled, and the seal mirrors merge back on abort,
            # so a rolled-back recycle leaves the tenant still sealed.
            self._reset_seals(physical)
            self.manager.unregister_gate(gate_id)
            self.manager._emit(
                "recycle_slot", domain=physical, bits=new_generation, dest=logical
            )
        self.generations[physical] = new_generation
        del self.bindings[logical]
        del self.slot_owner[physical]
        del self.slot_gate[physical]
        self.free_slots.append(physical)
        self.pcu.invalidate_privileges(physical)
        self.stats.recycles += 1

    def _acquire_slot(self) -> int:
        if self.free_slots:
            return self.free_slots.pop(0)
        if len(self._slot_index) < self.max_slots:
            return self._new_slot()
        # Pool saturated: bounded backpressure, not a crash.
        self.stats.slot_exhausted += 1
        candidates = self._evictable()
        if not candidates:
            raise SlotExhausted(self.max_slots)
        victim = min(
            candidates,
            key=lambda p: (self.last_use.get(p, -1), self._slot_index[p]),
        )
        self._unbind(self.slot_owner[victim])
        self.stats.evictions += 1
        return self.free_slots.pop()

    def _evictable(self) -> List[int]:
        """Bound slots that may be recycled right now.

        Never the current or previous domain (the core could retire a
        check against them this instant), never a domain live in a
        trusted-stack frame (an ``hcrets`` would return into the
        recycled slot), never a pinned tenant's slot.
        """
        live = {self.pcu.current_domain, self.pcu.previous_domain}
        live |= self._stack_live_domains()
        return [
            physical
            for physical, logical in self.slot_owner.items()
            if logical not in self.pinned and physical not in live
        ]

    def _stack_live_domains(self) -> Set[int]:
        registers = self.pcu.registers
        memory = self.pcu.trusted_memory
        frame_bytes = 2 * WORD_BYTES
        live = set()
        for sp in range(registers.hcsb, registers.hcsp, frame_bytes):
            domain = memory.load_word(sp + WORD_BYTES)
            if domain != DOMAIN_0:
                live.add(domain)
        return live
