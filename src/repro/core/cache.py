"""The domain privilege cache (Section 4.3).

Four fully-associative LRU modules sit inside the PCU:

* the **instruction-bitmap cache** — one entry per (domain, word group);
* the **register-bitmap cache** — one entry per (domain, CSR group);
* the **bit-mask cache** — one entry per (domain, mask slot);
* the **SGT cache** — one entry per gate id.

A hit costs no extra cycles; a miss stalls for the configured refill
latency while the PCU reads the HPT/SGT word(s) from trusted memory.
Tags include the domain id, so no flush is needed on a domain switch.

The **instruction privilege register** implements the paper's cache
bypass: after a domain switch the instruction bitmap of the new domain is
pulled into a plain register once, and subsequent per-instruction checks
read that register instead of searching the CAM, cutting dynamic energy.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, List, Optional, Tuple

from .config import PcuConfig
from .errors import GateFault
from .hpt import HybridPrivilegeTable
from .sgt import GateEntry, SwitchingGateTable
from .stats import CacheStats


class FullyAssociativeCache:
    """A tag → payload cache with true-LRU replacement.

    Fault-injection hooks (``repro.faults``): :meth:`corrupt` rewrites a
    resident payload in place (a CAM data-array bit flip) and
    :meth:`pin` marks an entry *stuck* — a pinned entry survives
    invalidation and flush, modelling a CAM line whose valid bit is stuck
    at one, so a stale privilege can outlive the coherence sweep that
    should have dropped it.  Both leave the functional lookup/fill path
    untouched; the integrity scrubber is what must catch the damage.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._pinned: "set[Hashable]" = set()

    def lookup(self, tag: Hashable) -> Optional[object]:
        """Search the CAM; promotes the entry to most-recently-used."""
        if tag in self._entries:
            self._entries.move_to_end(tag)
            return self._entries[tag]
        return None

    def fill(self, tag: Hashable, payload: object) -> None:
        """Insert an entry, evicting the LRU victim when full."""
        if tag in self._entries:
            self._entries.move_to_end(tag)
            self._entries[tag] = payload
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[tag] = payload

    def invalidate(self, tag: Hashable) -> None:
        if tag in self._pinned:
            return
        self._entries.pop(tag, None)

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose tag satisfies ``predicate``.

        Reconfiguration needs group invalidation — e.g. sweeping every
        cached word of one domain — which an exact-tag :meth:`invalidate`
        cannot express.  Returns the number of entries dropped.
        """
        victims = [tag for tag in self._entries
                   if predicate(tag) and tag not in self._pinned]
        for tag in victims:
            del self._entries[tag]
        return len(victims)

    def flush(self) -> None:
        if self._pinned:
            survivors = [(tag, self._entries[tag]) for tag in self._entries
                         if tag in self._pinned]
            self._entries = OrderedDict(survivors)
            return
        self._entries.clear()

    # -- fault-injection hooks ------------------------------------------
    def corrupt(self, tag: Hashable, transform: Callable[[object], object]) -> bool:
        """Rewrite a resident payload in place; False if not resident."""
        if tag not in self._entries:
            return False
        self._entries[tag] = transform(self._entries[tag])
        return True

    def pin(self, tag: Hashable) -> bool:
        """Make an entry immune to invalidation/flush (stuck CAM line)."""
        if tag not in self._entries:
            return False
        self._pinned.add(tag)
        return True

    def unpin_all(self) -> None:
        """Clear every stuck line (the scrubber's repair action)."""
        self._pinned.clear()

    def items(self):
        """Resident (tag, payload) pairs — the scrubber's audit surface."""
        return list(self._entries.items())

    def tags(self):
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, tag: Hashable) -> bool:
        return tag in self._entries


class HptCacheSet:
    """The three HPT caches plus refill logic against trusted memory."""

    def __init__(self, config: PcuConfig, hpt: HybridPrivilegeTable):
        self.config = config
        self.hpt = hpt
        self.inst = FullyAssociativeCache(config.hpt_cache_entries)
        self.reg = FullyAssociativeCache(config.hpt_cache_entries)
        self.mask = FullyAssociativeCache(config.hpt_cache_entries)
        self.words_per_inst_entry = config.inst_group_bits // 64 or 1

    # -- instruction bitmap -------------------------------------------
    def inst_word(
        self, domain: int, word_index: int, stats: CacheStats
    ) -> Tuple[int, int]:
        """Return (bitmap word, stall cycles) for one instruction group."""
        tag = (domain, word_index)
        stats.lookups += 1
        cached = self.inst.lookup(tag)
        if cached is not None:
            stats.hits += 1
            return cached, 0
        stats.misses += 1
        word = self.hpt.read_inst_word(domain, word_index)
        self.inst.fill(tag, word)
        stats.fills += 1
        return word, self.config.refill_latency

    # -- register bitmap ----------------------------------------------
    def reg_word(
        self, domain: int, word_index: int, stats: CacheStats
    ) -> Tuple[int, int]:
        """Return (R/W bitmap word, stall cycles) for one CSR group."""
        tag = (domain, word_index)
        stats.lookups += 1
        cached = self.reg.lookup(tag)
        if cached is not None:
            stats.hits += 1
            return cached, 0
        stats.misses += 1
        word = self.hpt.read_reg_word(domain, word_index)
        self.reg.fill(tag, word)
        stats.fills += 1
        return word, self.config.refill_latency

    # -- bit-mask array -------------------------------------------------
    def mask_word(self, domain: int, slot: int, stats: CacheStats) -> Tuple[int, int]:
        """Return (write mask, stall cycles) for one bitwise CSR."""
        tag = (domain, slot)
        stats.lookups += 1
        cached = self.mask.lookup(tag)
        if cached is not None:
            stats.hits += 1
            return cached, 0
        stats.misses += 1
        word = self.hpt.read_mask(domain, slot)
        self.mask.fill(tag, word)
        stats.fills += 1
        return word, self.config.refill_latency

    # -- software cache management --------------------------------------
    def prefetch_csr(
        self, domain: int, csr: int, reg_stats: CacheStats, mask_stats: CacheStats
    ) -> None:
        """``pfch #csr``: pull one CSR's bitmap word and mask into cache.

        Prefetch requests are lower priority than demand misses
        (Section 4.3), so they add no stall cycles here; they only warm
        the cache.
        """
        word_index = (2 * csr) // 64
        if self.reg.lookup((domain, word_index)) is None:
            self.reg.fill((domain, word_index), self.hpt.read_reg_word(domain, word_index))
            reg_stats.prefetch_fills += 1
        slot = self.hpt.isa_map.mask_slot(csr)
        if slot is not None and self.mask.lookup((domain, slot)) is None:
            self.mask.fill((domain, slot), self.hpt.read_mask(domain, slot))
            mask_stats.prefetch_fills += 1

    def prefetch_all(
        self, domain: int, reg_stats: CacheStats, mask_stats: CacheStats
    ) -> None:
        """``pfch`` with a zero operand: prefetch every CSR's structures."""
        for csr in range(self.hpt.isa_map.n_csrs):
            self.prefetch_csr(domain, csr, reg_stats, mask_stats)


class SgtCache:
    """SGT cache: gate id → SGT entry (Section 4.3).

    Configured with zero entries (the ``8E.N`` variant) every access
    misses and pays the refill latency, modelling a PCU that always reads
    the SGT from memory.
    """

    def __init__(self, config: PcuConfig, sgt: SwitchingGateTable):
        self.config = config
        self.sgt = sgt
        self._cache = (
            FullyAssociativeCache(config.sgt_cache_entries)
            if config.has_sgt_cache
            else None
        )

    def entry(self, gate_id: int, stats: CacheStats) -> Tuple[GateEntry, int]:
        """Return (gate entry, stall cycles); faults on unregistered gates."""
        if self._cache is not None:
            stats.lookups += 1
            cached = self._cache.lookup(gate_id)
            if cached is not None:
                stats.hits += 1
                return cached, 0
            stats.misses += 1
        entry = self.sgt.read_entry(gate_id)  # may raise GateFault
        if self._cache is not None:
            self._cache.fill(gate_id, entry)
            stats.fills += 1
        return entry, self.config.refill_latency

    def invalidate(self, gate_id: int) -> None:
        """Drop a cached gate (after domain-0 re-registers the slot)."""
        if self._cache is not None:
            self._cache.invalidate(gate_id)

    def flush(self) -> None:
        if self._cache is not None:
            self._cache.flush()


class InstPrivilegeRegister:
    """The cache-bypass register holding the current domain's inst bitmap.

    Filled lazily when the first instruction of a freshly-entered domain
    is checked; afterwards instruction checks read this register and skip
    the CAM entirely (Section 4.3, "Cache Bypass For Saving Energy").
    """

    def __init__(self) -> None:
        self._domain: Optional[int] = None
        self._words: List[int] = []

    @property
    def loaded_domain(self) -> Optional[int]:
        return self._domain

    def invalidate(self) -> None:
        self._domain = None
        self._words = []

    def load(self, domain: int, words: List[int]) -> None:
        self._domain = domain
        self._words = list(words)

    def allowed(self, domain: int, inst_class: int) -> Optional[bool]:
        """Check a class against the register; ``None`` if not loaded."""
        if domain != self._domain:
            return None
        word, offset = divmod(inst_class, 64)
        return bool(self._words[word] >> offset & 1)
