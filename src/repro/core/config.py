"""PCU configurations (Section 7, "Configuration").

The paper evaluates three configurations of the domain privilege cache,
each fully associative with LRU replacement:

* ``16E.`` — 16 entries in each of the three HPT caches and the SGT cache;
* ``8E.``  — 8 entries in each cache;
* ``8E.N`` — 8 entries in each HPT cache but *no* SGT cache.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .errors import ConfigurationError


@dataclass(frozen=True)
class PcuConfig:
    """Static parameters of one Privilege Check Unit instance.

    Attributes
    ----------
    name:
        Label used in reports ("16E.", "8E.", "8E.N").
    hpt_cache_entries:
        Entries in each of the three HPT caches (instruction bitmap,
        register bitmap, bit-mask).
    sgt_cache_entries:
        Entries in the SGT cache; 0 disables it (the ``8E.N`` variant),
        making every gate execution read the SGT from memory.
    inst_group_bits:
        Instruction classes covered by one instruction-bitmap cache entry
        (one 64-bit word).
    reg_group_csrs:
        CSRs covered by one register-bitmap cache entry (32, since each
        CSR takes two bits of a 64-bit word).
    refill_latency:
        Cycles to fetch one HPT/SGT word from memory on a cache miss.
        Stand-alone core uses this constant; a full Machine overrides it
        with its memory-hierarchy latency.
    bypass_enabled:
        Use the instruction privilege register so the instruction bitmap
        cache is only searched right after a domain switch (Section 4.3,
        "Cache Bypass For Saving Energy").
    prefetch_enabled:
        Honour the ``pfch`` instruction.
    draco_entries:
        Entries in the optional Draco-style legal-access cache the
        paper suggests in Section 8 ("Cache Optimization"): known-legal
        (domain, instruction, register, value) tuples skip the whole
        check pipeline.  0 disables it (the paper's baseline design).
    fast_path:
        Let the PCU serve warm-cache checks through its compiled
        verdict plan (the zero-stall short circuit) instead of walking
        the cache pipeline object by object.  Verdicts, faults, stall
        cycles and every statistics counter are bit-identical either
        way — this trades nothing but simulator wall-clock, and
        ``--slow-path`` on the bench/conformance CLIs sets it to False
        to prove exactly that.
    block_summaries:
        Let the CPUs execute warm straight-line blocks against one
        privilege-summary probe (:meth:`PrivilegeCheckUnit.
        check_block_summary`) instead of one check per instruction
        (DESIGN §3.18).  Like ``fast_path``, purely a simulator
        wall-clock optimization: cycles, stats, faults and contract
        events are bit-identical either way, and ``--no-block-cache``
        on the bench CLI sets it to False to prove exactly that.
        Block summaries require the compiled verdict plan to be the
        backing store, so they are inert when ``fast_path`` or
        ``bypass_enabled`` is off or a Draco cache is configured.
    flush_on_switch:
        Flush the domain privilege cache on every domain switch — the
        Section 8 performance/security trade-off against PRIME+PROBE
        on the privilege caches.
    max_domains / max_gates:
        Capacity of the HPT and SGT.
    """

    name: str = "8E."
    hpt_cache_entries: int = 8
    sgt_cache_entries: int = 8
    inst_group_bits: int = 64
    reg_group_csrs: int = 32
    refill_latency: int = 120
    bypass_enabled: bool = True
    prefetch_enabled: bool = True
    draco_entries: int = 0
    fast_path: bool = True
    block_summaries: bool = True
    flush_on_switch: bool = False
    max_domains: int = 4096
    max_gates: int = 1024

    def __post_init__(self):
        if self.hpt_cache_entries < 1:
            raise ConfigurationError("HPT caches need at least one entry")
        if self.sgt_cache_entries < 0:
            raise ConfigurationError("SGT cache entries must be >= 0")
        if self.inst_group_bits not in (8, 16, 32, 64):
            raise ConfigurationError("inst_group_bits must divide a 64-bit word")
        if self.reg_group_csrs not in (4, 8, 16, 32):
            raise ConfigurationError("reg_group_csrs must be <= 32 and a power of two")
        if self.draco_entries < 0:
            raise ConfigurationError("draco_entries must be >= 0")

    @property
    def has_sgt_cache(self) -> bool:
        return self.sgt_cache_entries > 0

    def with_refill_latency(self, cycles: int) -> "PcuConfig":
        """Copy of this config with a machine-specific refill latency."""
        return replace(self, refill_latency=cycles)


#: The three configurations evaluated in the paper.
CONFIG_16E = PcuConfig(name="16E.", hpt_cache_entries=16, sgt_cache_entries=16)
CONFIG_8E = PcuConfig(name="8E.", hpt_cache_entries=8, sgt_cache_entries=8)
CONFIG_8EN = PcuConfig(name="8E.N", hpt_cache_entries=8, sgt_cache_entries=0)

ALL_CONFIGS = (CONFIG_16E, CONFIG_8E, CONFIG_8EN)
