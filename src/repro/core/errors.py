"""Exception hierarchy for ISA-Grid.

The paper specifies that any privilege-check rejection by the PCU raises a
*hardware exception*.  In this reproduction those hardware exceptions are
modelled as Python exceptions derived from :class:`PrivilegeFault`; the
simulated CPUs catch them and vector to the architectural trap handler
(see ``repro.sim.machine``).  Configuration mistakes that the real
hardware could never observe (e.g. registering a gate for a non-existent
domain) raise :class:`IsaGridError` instead.
"""

from __future__ import annotations


class IsaGridError(Exception):
    """Base class for all errors raised by the ISA-Grid model."""


class ConfigurationError(IsaGridError):
    """Invalid static configuration (sizes, overlapping regions, ...)."""


class PrivilegeFault(IsaGridError):
    """Base class for faults the PCU raises as hardware exceptions.

    Attributes
    ----------
    domain:
        The ISA domain that was active when the fault occurred.
    address:
        Program counter of the faulting instruction, when known.
    """

    def __init__(self, message: str, *, domain: int = -1, address: int = -1):
        super().__init__(message)
        self.domain = domain
        self.address = address


class InstructionPrivilegeFault(PrivilegeFault):
    """The current domain may not execute this instruction class."""

    def __init__(self, inst_class: int, *, domain: int = -1, address: int = -1):
        super().__init__(
            "domain %d may not execute instruction class %d" % (domain, inst_class),
            domain=domain,
            address=address,
        )
        self.inst_class = inst_class


class RegisterReadFault(PrivilegeFault):
    """The current domain may not read this control/status register."""

    def __init__(self, csr: int, *, domain: int = -1, address: int = -1):
        super().__init__(
            "domain %d may not read CSR %d" % (domain, csr),
            domain=domain,
            address=address,
        )
        self.csr = csr


class RegisterWriteFault(PrivilegeFault):
    """The current domain may not write this control/status register."""

    def __init__(self, csr: int, *, domain: int = -1, address: int = -1):
        super().__init__(
            "domain %d may not write CSR %d" % (domain, csr),
            domain=domain,
            address=address,
        )
        self.csr = csr


class BitMaskViolationFault(PrivilegeFault):
    """A CSR write flips bits outside the domain's write mask.

    The PCU permits a write of ``value`` to a bitwise-controlled CSR
    currently holding ``old`` under mask ``mask`` iff
    ``(old ^ value) & ~mask == 0`` (Section 4.1 of the paper).
    """

    def __init__(
        self,
        csr: int,
        old: int,
        value: int,
        mask: int,
        *,
        domain: int = -1,
        address: int = -1,
    ):
        illegal = (old ^ value) & ~mask
        super().__init__(
            "domain %d write to CSR %d flips protected bits 0x%x"
            % (domain, csr, illegal),
            domain=domain,
            address=address,
        )
        self.csr = csr
        self.old = old
        self.value = value
        self.mask = mask
        self.illegal_bits = illegal


class GateFault(PrivilegeFault):
    """A domain-switching gate was used illegally.

    Raised when a gate instruction executes at an address other than the
    registered one, when the gate id is invalid or unregistered, or when
    ``hcrets`` attempts to return to domain-0 (Sections 4.2 and 4.4).
    """

    def __init__(self, reason: str, *, gate_id: int = -1, domain: int = -1, address: int = -1):
        super().__init__(reason, domain=domain, address=address)
        self.gate_id = gate_id


class TrustedMemoryFault(PrivilegeFault):
    """A load/store touched the trusted memory region outside domain-0."""

    def __init__(self, access_address: int, *, domain: int = -1, address: int = -1):
        super().__init__(
            "domain %d accessed trusted memory at 0x%x" % (domain, access_address),
            domain=domain,
            address=address,
        )
        self.access_address = access_address


class StaleGenerationFault(PrivilegeFault):
    """A check or gate retired against a recycled domain slot.

    With domain-ID virtualization (``repro.core.domain_virtualization``)
    a physical HPT slot can be recycled between logical tenants.  The
    PCU records the slot's generation when the core enters a domain; any
    subsequent check whose slot generation no longer matches is served
    with this hard fault instead of a stale verdict — the use-after-free
    of the privilege table is never silently survivable.
    """

    def __init__(
        self,
        domain: int,
        generation: int,
        entered: int,
        *,
        address: int = -1,
    ):
        super().__init__(
            "domain %d slot generation is %d but the core entered at "
            "generation %d" % (domain, generation, entered),
            domain=domain,
            address=address,
        )
        self.generation = generation
        self.entered = entered


class TrustedStackFault(PrivilegeFault):
    """Trusted stack pointer left the [hcsb, hcsl) window (over/underflow)."""

    def __init__(self, reason: str, pointer: int, *, domain: int = -1, address: int = -1):
        super().__init__(reason, domain=domain, address=address)
        self.pointer = pointer


class IntegrityFault(IsaGridError):
    """An integrity scrub found trusted-state corruption it cannot repair.

    Raised by the scrubber when a checksum mismatch has no good copy to
    restore from (e.g. a flipped word in a *live* trusted-stack frame:
    domain-0 keeps mirrors of the HPT and SGT, but the stack contents are
    produced by the PCU at ``hccalls`` time and have no software shadow).
    The only safe response is to halt the affected core.
    """

    def __init__(self, reason: str, *, region: str = "?"):
        super().__init__(reason)
        self.region = region


class InjectedFault(IsaGridError):
    """A fault-injection campaign fired a simulated hardware fault.

    Used by the fault-injection subsystem (``repro.faults``) to model a
    trusted-memory store that fails mid-way through a domain-0
    reconfiguration; :class:`~repro.core.domain.DomainManager` must react
    by rolling the transaction back, never by leaving a half-applied
    grant in the HPT.
    """
