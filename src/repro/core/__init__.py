"""ISA-Grid core: the paper's primary contribution.

This package is architecture-neutral.  It models the Privilege Check
Unit (PCU) with its hybrid-grained privilege check engine, unforgeable
domain switching engine and domain privilege cache, plus the trusted
memory structures (HPT, SGT, trusted stack) and the domain-0 software
runtime.

Typical wiring (see ``examples/quickstart.py``)::

    from repro.core import (
        PcuConfig, PrivilegeCheckUnit, DomainManager, TrustedMemory,
    )
    from repro.riscv import RISCV_ISA_MAP

    tmem = TrustedMemory(base=0x8000_0000, size=1 << 20)
    pcu = PrivilegeCheckUnit(RISCV_ISA_MAP, PcuConfig(), tmem)
    manager = DomainManager(pcu)
    kernel = manager.create_domain("kernel")
    manager.allow_instructions(kernel.domain_id, ["alu", "load", "store"])
"""

from .bitmap import BitMaskArray, InstructionBitmap, RegisterBitmap, words_for_bits
from .cache import FullyAssociativeCache, HptCacheSet, InstPrivilegeRegister, SgtCache
from .config import ALL_CONFIGS, CONFIG_16E, CONFIG_8E, CONFIG_8EN, PcuConfig
from .domain import (
    DomainDescriptor,
    DomainManager,
    RegistrationRejected,
    allow_all_policy,
    exclusive_writers_policy,
)
from .domain_virtualization import (
    DomainVirtualizer,
    SlotExhausted,
    TenantManifest,
    VirtualizerStats,
)
from .errors import (
    BitMaskViolationFault,
    ConfigurationError,
    GateFault,
    InjectedFault,
    InstructionPrivilegeFault,
    IntegrityFault,
    IsaGridError,
    PrivilegeFault,
    RegisterReadFault,
    RegisterWriteFault,
    StaleGenerationFault,
    TrustedMemoryFault,
    TrustedStackFault,
)
from .hpt import HybridPrivilegeTable
from .manifest import apply_manifest, dumps as manifest_dumps, export_manifest, loads as manifest_loads
from .isa_extension import (
    AccessInfo,
    CacheId,
    CsrDescriptor,
    GateKind,
    IsaGridIsaMap,
    NEW_INSTRUCTIONS,
    NEW_REGISTERS,
    PcuRegisters,
)
from .pcu import DOMAIN_0, PrivilegeCheckUnit
from .sgt import GateEntry, SwitchingGateTable
from .stats import CacheStats, PcuStats
from .trusted_memory import TrustedMemory, TrustedStack, WordMemory

__all__ = [
    "AccessInfo",
    "ALL_CONFIGS",
    "BitMaskArray",
    "BitMaskViolationFault",
    "CacheId",
    "CacheStats",
    "CONFIG_16E",
    "CONFIG_8E",
    "CONFIG_8EN",
    "ConfigurationError",
    "CsrDescriptor",
    "DOMAIN_0",
    "DomainDescriptor",
    "DomainManager",
    "DomainVirtualizer",
    "FullyAssociativeCache",
    "GateEntry",
    "GateFault",
    "GateKind",
    "HptCacheSet",
    "HybridPrivilegeTable",
    "InjectedFault",
    "InstPrivilegeRegister",
    "IntegrityFault",
    "InstructionBitmap",
    "InstructionPrivilegeFault",
    "IsaGridError",
    "IsaGridIsaMap",
    "NEW_INSTRUCTIONS",
    "NEW_REGISTERS",
    "PcuConfig",
    "PcuRegisters",
    "PcuStats",
    "PrivilegeCheckUnit",
    "PrivilegeFault",
    "RegisterBitmap",
    "RegisterReadFault",
    "RegisterWriteFault",
    "RegistrationRejected",
    "SgtCache",
    "SlotExhausted",
    "StaleGenerationFault",
    "SwitchingGateTable",
    "TenantManifest",
    "TrustedMemory",
    "TrustedMemoryFault",
    "TrustedStack",
    "TrustedStackFault",
    "VirtualizerStats",
    "WordMemory",
    "allow_all_policy",
    "apply_manifest",
    "export_manifest",
    "manifest_dumps",
    "manifest_loads",
    "exclusive_writers_policy",
    "words_for_bits",
]
