"""Dense privilege bitmaps used by the Hybrid Privilege Table.

Three structures implement the hybrid-grained privilege data of
Section 4.1:

* :class:`InstructionBitmap` — one bit per instruction class; bit set
  means the class may be executed.
* :class:`RegisterBitmap` — two bits (read, write) per CSR.
* :class:`BitMaskArray` — one full-width write mask per bitwise-controlled
  CSR; a set mask bit means the corresponding CSR bit may be modified.

All three serialize to little-endian sequences of 64-bit words so they can
be stored in (and fetched from) trusted memory exactly the way the
hardware tables would be.
"""

from __future__ import annotations

from typing import Iterable, List

WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1


def words_for_bits(nbits: int) -> int:
    """Number of 64-bit words needed to hold ``nbits`` bits."""
    return (nbits + WORD_BITS - 1) // WORD_BITS


class InstructionBitmap:
    """Execution-privilege bitmap over ``n_classes`` instruction classes."""

    def __init__(self, n_classes: int, *, fill: bool = False):
        if n_classes <= 0:
            raise ValueError("n_classes must be positive")
        self.n_classes = n_classes
        self._words: List[int] = [WORD_MASK if fill else 0] * words_for_bits(n_classes)
        if fill:
            self._clear_tail()

    def _clear_tail(self) -> None:
        tail = self.n_classes % WORD_BITS
        if tail:
            self._words[-1] &= (1 << tail) - 1

    def _check_index(self, inst_class: int) -> None:
        if not 0 <= inst_class < self.n_classes:
            raise IndexError("instruction class %d out of range" % inst_class)

    def allow(self, inst_class: int) -> None:
        """Grant execution privilege for one instruction class."""
        self._check_index(inst_class)
        self._words[inst_class // WORD_BITS] |= 1 << (inst_class % WORD_BITS)

    def deny(self, inst_class: int) -> None:
        """Revoke execution privilege for one instruction class."""
        self._check_index(inst_class)
        self._words[inst_class // WORD_BITS] &= ~(1 << (inst_class % WORD_BITS)) & WORD_MASK

    def allow_many(self, classes: Iterable[int]) -> None:
        for inst_class in classes:
            self.allow(inst_class)

    def allowed(self, inst_class: int) -> bool:
        self._check_index(inst_class)
        return bool(self._words[inst_class // WORD_BITS] >> (inst_class % WORD_BITS) & 1)

    @property
    def n_words(self) -> int:
        return len(self._words)

    def word(self, index: int) -> int:
        """64-bit word ``index`` of the serialized bitmap."""
        return self._words[index]

    def set_word(self, index: int, value: int) -> None:
        self._words[index] = value & WORD_MASK
        self._clear_tail()

    def to_words(self) -> List[int]:
        return list(self._words)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        granted = sum(bin(w).count("1") for w in self._words)
        return "InstructionBitmap(%d/%d allowed)" % (granted, self.n_classes)


class RegisterBitmap:
    """Read/write privilege double-bitmap over ``n_csrs`` registers.

    The serialized layout interleaves permissions: CSR ``i`` occupies bits
    ``2*i`` (read) and ``2*i + 1`` (write) of the bit stream, so one 64-bit
    word covers 32 CSRs.  This matches the HPT-cache grouping where one
    cache entry holds the R/W bits of a group of CSRs with adjacent
    indices (Section 4.3).
    """

    CSRS_PER_WORD = WORD_BITS // 2

    def __init__(self, n_csrs: int, *, fill: bool = False):
        if n_csrs <= 0:
            raise ValueError("n_csrs must be positive")
        self.n_csrs = n_csrs
        self._words: List[int] = [WORD_MASK if fill else 0] * words_for_bits(2 * n_csrs)
        if fill:
            self._clear_tail()

    def _clear_tail(self) -> None:
        tail = (2 * self.n_csrs) % WORD_BITS
        if tail:
            self._words[-1] &= (1 << tail) - 1

    def _check_index(self, csr: int) -> None:
        if not 0 <= csr < self.n_csrs:
            raise IndexError("CSR index %d out of range" % csr)

    def _bit(self, csr: int, write: bool) -> int:
        return 2 * csr + (1 if write else 0)

    def _set(self, csr: int, write: bool, value: bool) -> None:
        self._check_index(csr)
        bit = self._bit(csr, write)
        word, offset = divmod(bit, WORD_BITS)
        if value:
            self._words[word] |= 1 << offset
        else:
            self._words[word] &= ~(1 << offset) & WORD_MASK

    def grant_read(self, csr: int) -> None:
        self._set(csr, write=False, value=True)

    def grant_write(self, csr: int) -> None:
        self._set(csr, write=True, value=True)

    def grant(self, csr: int, *, read: bool = False, write: bool = False) -> None:
        if read:
            self.grant_read(csr)
        if write:
            self.grant_write(csr)

    def revoke_read(self, csr: int) -> None:
        self._set(csr, write=False, value=False)

    def revoke_write(self, csr: int) -> None:
        self._set(csr, write=True, value=False)

    def can_read(self, csr: int) -> bool:
        self._check_index(csr)
        bit = self._bit(csr, write=False)
        word, offset = divmod(bit, WORD_BITS)
        return bool(self._words[word] >> offset & 1)

    def can_write(self, csr: int) -> bool:
        self._check_index(csr)
        bit = self._bit(csr, write=True)
        word, offset = divmod(bit, WORD_BITS)
        return bool(self._words[word] >> offset & 1)

    @property
    def n_words(self) -> int:
        return len(self._words)

    def word(self, index: int) -> int:
        return self._words[index]

    def set_word(self, index: int, value: int) -> None:
        self._words[index] = value & WORD_MASK
        self._clear_tail()

    def to_words(self) -> List[int]:
        return list(self._words)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        readable = sum(self.can_read(i) for i in range(self.n_csrs))
        writable = sum(self.can_write(i) for i in range(self.n_csrs))
        return "RegisterBitmap(%d readable, %d writable of %d)" % (
            readable,
            writable,
            self.n_csrs,
        )


class BitMaskArray:
    """Per-domain write masks for bitwise-controlled CSRs.

    Only CSRs that need bit-level control get a slot; the architecture's
    :class:`~repro.core.isa_extension.IsaGridIsaMap` maps CSR indices to
    slots.  A write is legal iff ``(old ^ new) & ~mask == 0`` — i.e. the
    write only flips bits the mask exposes.
    """

    def __init__(self, n_masks: int, width: int = WORD_BITS, *, fill: bool = False):
        if n_masks < 0:
            raise ValueError("n_masks must be non-negative")
        if not 0 < width <= WORD_BITS:
            raise ValueError("mask width must be in (0, 64]")
        self.n_masks = n_masks
        self.width = width
        full = (1 << width) - 1
        self._masks: List[int] = [full if fill else 0] * n_masks

    def _check_index(self, slot: int) -> None:
        if not 0 <= slot < self.n_masks:
            raise IndexError("mask slot %d out of range" % slot)

    def set_mask(self, slot: int, mask: int) -> None:
        self._check_index(slot)
        self._masks[slot] = mask & ((1 << self.width) - 1)

    def get_mask(self, slot: int) -> int:
        self._check_index(slot)
        return self._masks[slot]

    def allow_bits(self, slot: int, bits: int) -> None:
        """Expose additional writable bits in one mask."""
        self._check_index(slot)
        self._masks[slot] |= bits & ((1 << self.width) - 1)

    def deny_bits(self, slot: int, bits: int) -> None:
        self._check_index(slot)
        self._masks[slot] &= ~bits

    def write_permitted(self, slot: int, old: int, new: int) -> bool:
        """Evaluate the paper's write-legality equation for one mask."""
        self._check_index(slot)
        return ((old ^ new) & ~self._masks[slot]) == 0

    def to_words(self) -> List[int]:
        return list(self._masks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BitMaskArray(%d masks, width=%d)" % (self.n_masks, self.width)
