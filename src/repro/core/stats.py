"""Counters collected by the PCU.

These counters back the paper's cache-hit-rate result (Section 7.1, all
caches reach 99.9% on the decomposed kernel) and our energy-proxy
ablation (fully-associative CAM lookups saved by the bypass register).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CacheStats:
    """Hit/miss/lookup counters for one privilege-cache module."""

    hits: int = 0
    misses: int = 0
    lookups: int = 0  # CAM searches performed — the dynamic-energy proxy
    fills: int = 0
    prefetch_fills: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit rate in [0, 1]; 1.0 when the cache was never accessed."""
        if not self.accesses:
            return 1.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = self.misses = self.lookups = 0
        self.fills = self.prefetch_fills = self.flushes = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.lookups += other.lookups
        self.fills += other.fills
        self.prefetch_fills += other.prefetch_fills
        self.flushes += other.flushes


@dataclass
class BlockSummaryStats:
    """Diagnostics for the block-level privilege summaries (§3.18).

    Deliberately *not* part of :class:`PcuStats`: the block cache is a
    simulator acceleration, so its hit/miss profile depends on whether
    the block path is enabled at all.  ``PcuStats`` must stay
    bit-identical between the per-instruction and block-summary paths
    (that equality is an acceptance gate), which is only possible if
    the block bookkeeping lives outside it.
    """

    probes: int = 0         # check_block_summary calls (one per warm block)
    hits: int = 0           # probes that served the whole block
    refusals: int = 0       # probes that fell back to per-instruction checks
    insts: int = 0          # instructions retired under a block summary
    invalidations: int = 0  # block-cache flushes (icache coherence)

    @property
    def hit_rate(self) -> float:
        """Hit rate in [0, 1]; 1.0 when no block was ever probed."""
        if not self.probes:
            return 1.0
        return self.hits / self.probes

    def reset(self) -> None:
        self.probes = self.hits = self.refusals = 0
        self.insts = self.invalidations = 0

    def merge(self, other: "BlockSummaryStats") -> None:
        self.probes += other.probes
        self.hits += other.hits
        self.refusals += other.refusals
        self.insts += other.insts
        self.invalidations += other.invalidations

    def as_dict(self) -> Dict[str, object]:
        return {
            "probes": self.probes,
            "hits": self.hits,
            "refusals": self.refusals,
            "insts": self.insts,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


@dataclass
class PcuStats:
    """All counters of one Privilege Check Unit."""

    inst_checks: int = 0
    csr_read_checks: int = 0
    csr_write_checks: int = 0
    mask_checks: int = 0
    bypass_hits: int = 0       # instruction checks served by the bypass register
    bypass_fills: int = 0      # bypass-register refills after a domain switch
    draco_hits: int = 0        # checks skipped by the legal-access cache (§8)
    domain_switches: int = 0
    gate_calls: int = 0        # hccall
    gate_calls_extended: int = 0  # hccalls
    gate_returns: int = 0      # hcrets
    degraded_checks: int = 0   # checks served by direct HPT/SGT walks
    degraded_entries: int = 0  # times the PCU fell into degraded mode
    scrubs: int = 0            # integrity-scrub passes over trusted state
    scrub_repairs: int = 0     # trusted-memory words rewritten by scrubs
    reconfig_rollbacks: int = 0  # transactional reconfigurations rolled back
    faults: Dict[str, int] = field(default_factory=dict)
    stall_cycles: int = 0      # cycles spent waiting on privilege-structure fetches

    inst_cache: CacheStats = field(default_factory=CacheStats)
    reg_cache: CacheStats = field(default_factory=CacheStats)
    mask_cache: CacheStats = field(default_factory=CacheStats)
    sgt_cache: CacheStats = field(default_factory=CacheStats)

    def record_fault(self, fault: BaseException) -> None:
        name = type(fault).__name__
        self.faults[name] = self.faults.get(name, 0) + 1

    @property
    def total_checks(self) -> int:
        return self.inst_checks + self.csr_read_checks + self.csr_write_checks

    @property
    def total_faults(self) -> int:
        return sum(self.faults.values())

    @property
    def total_cam_lookups(self) -> int:
        """Energy proxy: fully-associative searches across all modules."""
        return (
            self.inst_cache.lookups
            + self.reg_cache.lookups
            + self.mask_cache.lookups
            + self.sgt_cache.lookups
        )

    def hit_rates(self) -> Dict[str, float]:
        return {
            "inst": self.inst_cache.hit_rate,
            "reg": self.reg_cache.hit_rate,
            "mask": self.mask_cache.hit_rate,
            "sgt": self.sgt_cache.hit_rate,
        }

    def reset(self) -> None:
        self.inst_checks = 0
        self.csr_read_checks = 0
        self.csr_write_checks = 0
        self.mask_checks = 0
        self.bypass_hits = 0
        self.bypass_fills = 0
        self.draco_hits = 0
        self.domain_switches = 0
        self.gate_calls = 0
        self.gate_calls_extended = 0
        self.gate_returns = 0
        self.degraded_checks = 0
        self.degraded_entries = 0
        self.scrubs = 0
        self.scrub_repairs = 0
        self.reconfig_rollbacks = 0
        self.stall_cycles = 0
        self.faults.clear()
        self.inst_cache.reset()
        self.reg_cache.reset()
        self.mask_cache.reset()
        self.sgt_cache.reset()

    def merge(self, other: "PcuStats") -> None:
        """Accumulate another PCU's counters (aggregating across runs)."""
        self.inst_checks += other.inst_checks
        self.csr_read_checks += other.csr_read_checks
        self.csr_write_checks += other.csr_write_checks
        self.mask_checks += other.mask_checks
        self.bypass_hits += other.bypass_hits
        self.bypass_fills += other.bypass_fills
        self.draco_hits += other.draco_hits
        self.domain_switches += other.domain_switches
        self.gate_calls += other.gate_calls
        self.gate_calls_extended += other.gate_calls_extended
        self.gate_returns += other.gate_returns
        self.degraded_checks += other.degraded_checks
        self.degraded_entries += other.degraded_entries
        self.scrubs += other.scrubs
        self.scrub_repairs += other.scrub_repairs
        self.reconfig_rollbacks += other.reconfig_rollbacks
        self.stall_cycles += other.stall_cycles
        for name, count in other.faults.items():
            self.faults[name] = self.faults.get(name, 0) + count
        self.inst_cache.merge(other.inst_cache)
        self.reg_cache.merge(other.reg_cache)
        self.mask_cache.merge(other.mask_cache)
        self.sgt_cache.merge(other.sgt_cache)

    def as_dict(self) -> Dict[str, object]:
        return {
            "inst_checks": self.inst_checks,
            "csr_read_checks": self.csr_read_checks,
            "csr_write_checks": self.csr_write_checks,
            "mask_checks": self.mask_checks,
            "bypass_hits": self.bypass_hits,
            "bypass_fills": self.bypass_fills,
            "draco_hits": self.draco_hits,
            "domain_switches": self.domain_switches,
            "gate_calls": self.gate_calls,
            "gate_calls_extended": self.gate_calls_extended,
            "gate_returns": self.gate_returns,
            "degraded_checks": self.degraded_checks,
            "degraded_entries": self.degraded_entries,
            "scrubs": self.scrubs,
            "scrub_repairs": self.scrub_repairs,
            "reconfig_rollbacks": self.reconfig_rollbacks,
            "stall_cycles": self.stall_cycles,
            "faults": dict(self.faults),
            "cam_lookups": self.total_cam_lookups,
            "hit_rates": self.hit_rates(),
        }
