"""Architecture-neutral description of the ISA-Grid ISA extension.

The PCU itself is architecture-agnostic: it checks *instruction classes*
and *CSR indices*.  Each host architecture (``repro.riscv``,
``repro.x86``) supplies an :class:`IsaGridIsaMap` describing the three
hardware mappings the paper calls out in Section 4.1:

1. instruction opcode → instruction-bitmap index,
2. register address → register-bitmap index,
3. register address → bit-mask-array slot (for bitwise-controlled CSRs).

This module also defines :class:`AccessInfo`, the per-instruction record
the CPU hands to the PCU, the gate kinds of Section 4.2, and the new
architectural registers of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Dict, List, Optional, Sequence

from .errors import ConfigurationError


class GateKind(Enum):
    """The three domain-switching instructions (Table 2)."""

    HCCALL = auto()   # basic gate: jump + switch
    HCCALLS = auto()  # extended gate: jump + switch + push trusted stack
    HCRETS = auto()   # extended return: pop trusted stack + jump + switch


class CacheId(Enum):
    """Identifiers accepted by the ``pflh`` cache-flush instruction.

    ``ALL`` (encoded as id zero in the instruction operand) flushes every
    module of the domain privilege cache.
    """

    ALL = 0
    INST_BITMAP = 1
    REG_BITMAP = 2
    BIT_MASK = 3
    SGT = 4


@dataclass(frozen=True)
class AccessInfo:
    """Everything the PCU needs to check one issued instruction.

    ``csr`` is the architecture-level CSR index (already mapped through
    :meth:`IsaGridIsaMap.csr_index`); it is ``None`` for instructions that
    do not *explicitly* access a CSR.  Per Section 4.1 the PCU ignores
    side-effect CSR accesses (e.g. a faulting load updating ``scause``),
    so the decoders only populate ``csr`` for explicit accesses.
    """

    inst_class: int
    address: int = 0
    csr: Optional[int] = None
    csr_read: bool = False
    csr_write: bool = False
    write_value: Optional[int] = None
    old_value: Optional[int] = None  # current CSR value, for the mask equation


@dataclass
class CsrDescriptor:
    """One control/status register known to ISA-Grid."""

    name: str
    index: int
    width: int = 64
    bitwise: bool = False  # does this CSR need a per-domain write mask?
    mask_slot: Optional[int] = None


class IsaGridIsaMap:
    """The hardware parameters of an ISA-Grid instance for one ISA.

    Software developers must know these mappings (Section 4.1); the
    simulated kernels import the map from their architecture package.
    """

    def __init__(self, arch: str, inst_class_names: Sequence[str], csrs: Sequence[CsrDescriptor]):
        self.arch = arch
        self.inst_class_names: List[str] = list(inst_class_names)
        if len(set(self.inst_class_names)) != len(self.inst_class_names):
            raise ConfigurationError("duplicate instruction class names")
        self._class_index: Dict[str, int] = {
            name: i for i, name in enumerate(self.inst_class_names)
        }
        self.csrs: List[CsrDescriptor] = list(csrs)
        self._csr_by_name: Dict[str, CsrDescriptor] = {}
        mask_slot = 0
        for i, csr in enumerate(self.csrs):
            if csr.index != i:
                raise ConfigurationError(
                    "CSR %s has index %d but position %d" % (csr.name, csr.index, i)
                )
            if csr.name in self._csr_by_name:
                raise ConfigurationError("duplicate CSR name %s" % csr.name)
            self._csr_by_name[csr.name] = csr
            if csr.bitwise:
                csr.mask_slot = mask_slot
                mask_slot += 1
        self.n_masked_csrs = mask_slot

    @property
    def n_inst_classes(self) -> int:
        return len(self.inst_class_names)

    @property
    def n_csrs(self) -> int:
        return len(self.csrs)

    def inst_class(self, name: str) -> int:
        """Instruction-bitmap index of a named instruction class."""
        try:
            return self._class_index[name]
        except KeyError:
            raise ConfigurationError("unknown instruction class %r" % name) from None

    def inst_class_name(self, index: int) -> str:
        return self.inst_class_names[index]

    def csr_index(self, name: str) -> int:
        """Register-bitmap index of a named CSR."""
        try:
            return self._csr_by_name[name].index
        except KeyError:
            raise ConfigurationError("unknown CSR %r" % name) from None

    def csr_descriptor(self, index: int) -> CsrDescriptor:
        return self.csrs[index]

    def csr_name(self, index: int) -> str:
        return self.csrs[index].name

    def mask_slot(self, csr_index: int) -> Optional[int]:
        """Bit-mask-array slot for a CSR, or ``None`` if not bitwise."""
        return self.csrs[csr_index].mask_slot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "IsaGridIsaMap(%s: %d classes, %d CSRs, %d masked)" % (
            self.arch,
            self.n_inst_classes,
            self.n_csrs,
            self.n_masked_csrs,
        )


@dataclass
class PcuRegisters:
    """The new architectural registers introduced by ISA-Grid (Table 2).

    All of these are readable/writable only in domain-0, except
    ``domain``/``pdomain`` whose read permission is configurable and whose
    writes only happen through gate instructions.
    """

    domain: int = 0        # id of the current ISA domain (reset: domain-0)
    pdomain: int = 0       # id of the previous domain after a switch
    domain_nr: int = 0     # number of valid domains
    csr_cap: int = 0       # base address of the register bitmaps
    csr_bit_mask: int = 0  # base address of the bit-mask arrays
    inst_cap: int = 0      # base address of the instruction bitmaps
    gate_addr: int = 0     # base address of the SGT
    gate_nr: int = 0       # number of valid gates
    hcsp: int = 0          # trusted stack pointer
    hcsb: int = 0          # trusted stack base
    hcsl: int = 0          # trusted stack limit
    tmemb: int = 0         # trusted memory base
    tmeml: int = 0         # trusted memory limit


#: Human-readable summary of the ISA extension (Table 2), used by docs
#: and the quickstart example.
NEW_INSTRUCTIONS = {
    "hccall #gateid": "Domain switch: verify gate address, jump to the "
                      "registered destination and change domain.",
    "hccalls #gateid": "Extended switch: as hccall, plus push (return "
                       "address, current domain) on the trusted stack.",
    "hcrets": "Extended return: pop (return address, domain) from the "
              "trusted stack, jump and change domain.",
    "pfch #csr": "Prefetch privilege structures of #csr (0 = all) into "
                 "the domain privilege cache.",
    "pflh #bufid": "Flush the privilege cache module #bufid (0 = all).",
}

NEW_REGISTERS = {
    "domain/pdomain": "Current / previous domain id (read-only).",
    "domain-nr": "Number of valid domains.",
    "csr-cap": "Base address of the CSR bitmaps.",
    "csr-bit-mask": "Base address of the CSR bit-mask arrays.",
    "inst-cap": "Base address of the instruction bitmaps.",
    "gate-addr": "Base address of the SGT.",
    "gate-nr": "Number of valid gates.",
    "hcsp/hcsb/hcsl": "Trusted stack pointer / base / limit.",
    "tmemb/tmeml": "Trusted memory base / limit.",
}
