"""The Hybrid Privilege Table (Section 4.1).

The HPT stores, for every ISA domain, the instruction bitmap, the
register (R/W) bitmap and the bit-mask array.  It is laid out in trusted
memory at the base addresses held in the ``inst-cap``, ``csr-cap`` and
``csr-bit-mask`` registers, domain-major, so the PCU can compute the word
address of any privilege bit from (domain id, resource index) alone.

This class is both the layout authority and the domain-0 configuration
API: every mutation is written through to trusted memory, and the PCU's
cache-refill path reads those same words back (paying memory latency on a
privilege-cache miss).
"""

from __future__ import annotations

from typing import Dict, List

from .bitmap import (
    WORD_BITS,
    BitMaskArray,
    InstructionBitmap,
    RegisterBitmap,
    words_for_bits,
)
from .errors import ConfigurationError
from .isa_extension import IsaGridIsaMap
from .trusted_memory import WORD_BYTES, TrustedMemory


class HybridPrivilegeTable:
    """Per-domain privilege store backed by trusted memory.

    Parameters
    ----------
    isa_map:
        The architecture's resource mappings (class/CSR/mask indices).
    memory:
        Trusted memory region the table is allocated in.
    max_domains:
        Capacity of the table.  The RISC-V prototype in the paper uses
        ``2**12`` domains to bound cache-entry tags; the architectural
        limit is ``2**64``.
    """

    def __init__(self, isa_map: IsaGridIsaMap, memory: TrustedMemory, max_domains: int = 4096):
        if max_domains < 1:
            raise ConfigurationError("need at least one domain")
        self.isa_map = isa_map
        self.memory = memory
        self.max_domains = max_domains

        self.inst_words_per_domain = words_for_bits(isa_map.n_inst_classes)
        self.reg_words_per_domain = words_for_bits(2 * isa_map.n_csrs)
        self.mask_words_per_domain = isa_map.n_masked_csrs

        self.inst_cap = memory.allocate(max_domains * self.inst_words_per_domain)
        self.csr_cap = memory.allocate(max_domains * self.reg_words_per_domain)
        self.csr_bit_mask = memory.allocate(
            max(1, max_domains * self.mask_words_per_domain)
        )
        # Seal masks (one-way privilege drops): laid out exactly like the
        # three grant structures, ANDed out below every read path.  A set
        # seal bit permanently suppresses the corresponding grant bit for
        # that domain, whatever domain-0 later writes into the grant word.
        self.seal_inst_cap = memory.allocate(max_domains * self.inst_words_per_domain)
        self.seal_csr_cap = memory.allocate(max_domains * self.reg_words_per_domain)
        self.seal_bit_mask = memory.allocate(
            max(1, max_domains * self.mask_words_per_domain)
        )

        # Python-side mirror for the configuration API; trusted memory is
        # the source of truth for the PCU's refill path.
        self._inst: Dict[int, InstructionBitmap] = {}
        self._regs: Dict[int, RegisterBitmap] = {}
        self._masks: Dict[int, BitMaskArray] = {}
        # Seal mirrors live in plain word lists, deliberately *outside*
        # the three grant mirrors: DomainManager transactions snapshot and
        # restore only the grant mirrors, so a rolled-back transaction can
        # never resurrect a pre-seal state.
        self._seal_inst: Dict[int, List[int]] = {}
        self._seal_regs: Dict[int, List[int]] = {}
        self._seal_masks: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Layout: word addresses the PCU refills cache entries from.
    # ------------------------------------------------------------------
    def inst_word_address(self, domain: int, word_index: int) -> int:
        self._check_domain(domain)
        if not 0 <= word_index < self.inst_words_per_domain:
            raise IndexError("instruction bitmap word %d out of range" % word_index)
        return self.inst_cap + (domain * self.inst_words_per_domain + word_index) * WORD_BYTES

    def reg_word_address(self, domain: int, word_index: int) -> int:
        self._check_domain(domain)
        if not 0 <= word_index < self.reg_words_per_domain:
            raise IndexError("register bitmap word %d out of range" % word_index)
        return self.csr_cap + (domain * self.reg_words_per_domain + word_index) * WORD_BYTES

    def mask_address(self, domain: int, slot: int) -> int:
        self._check_domain(domain)
        if not 0 <= slot < self.mask_words_per_domain:
            raise IndexError("mask slot %d out of range" % slot)
        return self.csr_bit_mask + (domain * self.mask_words_per_domain + slot) * WORD_BYTES

    def seal_inst_address(self, domain: int, word_index: int) -> int:
        self._check_domain(domain)
        if not 0 <= word_index < self.inst_words_per_domain:
            raise IndexError("instruction seal word %d out of range" % word_index)
        return self.seal_inst_cap + (domain * self.inst_words_per_domain + word_index) * WORD_BYTES

    def seal_reg_address(self, domain: int, word_index: int) -> int:
        self._check_domain(domain)
        if not 0 <= word_index < self.reg_words_per_domain:
            raise IndexError("register seal word %d out of range" % word_index)
        return self.seal_csr_cap + (domain * self.reg_words_per_domain + word_index) * WORD_BYTES

    def seal_mask_address(self, domain: int, slot: int) -> int:
        self._check_domain(domain)
        if not 0 <= slot < self.mask_words_per_domain:
            raise IndexError("seal mask slot %d out of range" % slot)
        return self.seal_bit_mask + (domain * self.mask_words_per_domain + slot) * WORD_BYTES

    def _check_domain(self, domain: int) -> None:
        if not 0 <= domain < self.max_domains:
            raise ConfigurationError("domain id %d out of range" % domain)

    # ------------------------------------------------------------------
    # Domain-0 configuration API (write-through to trusted memory).
    # ------------------------------------------------------------------
    def _inst_bitmap(self, domain: int) -> InstructionBitmap:
        self._check_domain(domain)
        bitmap = self._inst.get(domain)
        if bitmap is None:
            bitmap = InstructionBitmap(self.isa_map.n_inst_classes)
            self._inst[domain] = bitmap
        return bitmap

    def _reg_bitmap(self, domain: int) -> RegisterBitmap:
        self._check_domain(domain)
        bitmap = self._regs.get(domain)
        if bitmap is None:
            bitmap = RegisterBitmap(self.isa_map.n_csrs)
            self._regs[domain] = bitmap
        return bitmap

    def _mask_array(self, domain: int) -> BitMaskArray:
        self._check_domain(domain)
        masks = self._masks.get(domain)
        if masks is None:
            masks = BitMaskArray(self.isa_map.n_masked_csrs)
            self._masks[domain] = masks
        return masks

    def _sync_inst(self, domain: int) -> None:
        bitmap = self._inst[domain]
        for i in range(bitmap.n_words):
            self.memory.store_word(self.inst_word_address(domain, i), bitmap.word(i))

    def _sync_regs(self, domain: int) -> None:
        bitmap = self._regs[domain]
        for i in range(bitmap.n_words):
            self.memory.store_word(self.reg_word_address(domain, i), bitmap.word(i))

    def _sync_mask(self, domain: int, slot: int) -> None:
        self.memory.store_word(
            self.mask_address(domain, slot), self._masks[domain].get_mask(slot)
        )

    def allow_instruction(self, domain: int, inst_class: int) -> None:
        bitmap = self._inst_bitmap(domain)
        bitmap.allow(inst_class)
        word = inst_class // WORD_BITS
        self.memory.store_word(self.inst_word_address(domain, word), bitmap.word(word))

    def deny_instruction(self, domain: int, inst_class: int) -> None:
        bitmap = self._inst_bitmap(domain)
        bitmap.deny(inst_class)
        word = inst_class // WORD_BITS
        self.memory.store_word(self.inst_word_address(domain, word), bitmap.word(word))

    def allow_instructions(self, domain: int, classes) -> None:
        bitmap = self._inst_bitmap(domain)
        bitmap.allow_many(classes)
        self._sync_inst(domain)

    def allow_all_instructions(self, domain: int) -> None:
        self._inst[domain] = InstructionBitmap(self.isa_map.n_inst_classes, fill=True)
        self._sync_inst(domain)

    def grant_register(self, domain: int, csr: int, *, read: bool = False, write: bool = False) -> None:
        bitmap = self._reg_bitmap(domain)
        bitmap.grant(csr, read=read, write=write)
        word = (2 * csr) // WORD_BITS
        self.memory.store_word(self.reg_word_address(domain, word), bitmap.word(word))

    def revoke_register(self, domain: int, csr: int, *, read: bool = False, write: bool = False) -> None:
        bitmap = self._reg_bitmap(domain)
        if read:
            bitmap.revoke_read(csr)
        if write:
            bitmap.revoke_write(csr)
        word = (2 * csr) // WORD_BITS
        self.memory.store_word(self.reg_word_address(domain, word), bitmap.word(word))

    def grant_all_registers(self, domain: int) -> None:
        self._regs[domain] = RegisterBitmap(self.isa_map.n_csrs, fill=True)
        self._sync_regs(domain)

    def set_mask(self, domain: int, csr: int, mask: int) -> None:
        """Set the full write mask for a bitwise-controlled CSR."""
        slot = self.isa_map.mask_slot(csr)
        if slot is None:
            raise ConfigurationError(
                "CSR %s is not bitwise-controlled" % self.isa_map.csr_name(csr)
            )
        masks = self._mask_array(domain)
        masks.set_mask(slot, mask)
        self._sync_mask(domain, slot)

    def allow_bits(self, domain: int, csr: int, bits: int) -> None:
        """Expose additional writable bits of a bitwise-controlled CSR."""
        slot = self.isa_map.mask_slot(csr)
        if slot is None:
            raise ConfigurationError(
                "CSR %s is not bitwise-controlled" % self.isa_map.csr_name(csr)
            )
        masks = self._mask_array(domain)
        masks.allow_bits(slot, bits)
        self._sync_mask(domain, slot)

    def clear_domain(self, domain: int) -> None:
        """Zero every privilege of one domain (write-through).

        Used when domain-0 retires a domain: the id is never reused, but
        the trusted-memory words must not keep granting privileges to a
        PCU refill racing the teardown.  Seals are cleared too — a seal
        belongs to the tenant that earned it, and a retired domain id is
        never handed back out (slot recycling re-creates under a fresh
        id and bumps the generation word first).
        """
        self._check_domain(domain)
        self._inst[domain] = InstructionBitmap(self.isa_map.n_inst_classes)
        self._sync_inst(domain)
        self._regs[domain] = RegisterBitmap(self.isa_map.n_csrs)
        self._sync_regs(domain)
        if self.mask_words_per_domain:
            self._masks[domain] = BitMaskArray(self.isa_map.n_masked_csrs)
            for slot in range(self.mask_words_per_domain):
                self._sync_mask(domain, slot)
        self.clear_seals(domain)

    def set_all_masks(self, domain: int, mask: int) -> None:
        masks = self._mask_array(domain)
        for slot in range(self.isa_map.n_masked_csrs):
            masks.set_mask(slot, mask)
            self._sync_mask(domain, slot)

    # ------------------------------------------------------------------
    # Seals: one-way privilege drops (write-through, journal-bypassed).
    # ------------------------------------------------------------------
    def _seal_inst_words(self, domain: int) -> List[int]:
        self._check_domain(domain)
        words = self._seal_inst.get(domain)
        if words is None:
            words = [0] * self.inst_words_per_domain
            self._seal_inst[domain] = words
        return words

    def _seal_reg_words(self, domain: int) -> List[int]:
        self._check_domain(domain)
        words = self._seal_regs.get(domain)
        if words is None:
            words = [0] * self.reg_words_per_domain
            self._seal_regs[domain] = words
        return words

    def _seal_mask_words(self, domain: int) -> List[int]:
        self._check_domain(domain)
        words = self._seal_masks.get(domain)
        if words is None:
            words = [0] * self.mask_words_per_domain
            self._seal_masks[domain] = words
        return words

    def seal_instruction(self, domain: int, inst_class: int) -> None:
        """Permanently drop one instruction class for ``domain``.

        The mirror is updated *before* the store: if the store faults
        mid-seal, the scrubber repairs toward the sealed state, so the
        seal completes rather than silently unwinding.
        """
        if not 0 <= inst_class < self.isa_map.n_inst_classes:
            raise ConfigurationError("instruction class %d out of range" % inst_class)
        words = self._seal_inst_words(domain)
        word, bit = divmod(inst_class, WORD_BITS)
        words[word] |= 1 << bit
        self.memory.store_word(self.seal_inst_address(domain, word), words[word],
                               origin="seal", journal=False)

    def seal_register(self, domain: int, csr: int, *,
                      read: bool = False, write: bool = False) -> None:
        """Permanently drop read and/or write access to one CSR.

        Sealing the write side of a bitwise-controlled CSR also seals the
        whole bit-mask slot: masked writes are checked against the mask
        alone, so the seal must force the effective mask to zero.
        """
        if not 0 <= csr < self.isa_map.n_csrs:
            raise ConfigurationError("CSR index %d out of range" % csr)
        words = self._seal_reg_words(domain)
        bit_index = 2 * csr
        word, bit = divmod(bit_index, WORD_BITS)
        if read:
            words[word] |= 1 << bit
        if write:
            words[word] |= 1 << (bit + 1)
        if read or write:
            self.memory.store_word(self.seal_reg_address(domain, word), words[word],
                                   origin="seal", journal=False)
        slot = self.isa_map.mask_slot(csr)
        if write and slot is not None:
            mask_words = self._seal_mask_words(domain)
            mask_words[slot] = (1 << WORD_BITS) - 1
            self.memory.store_word(self.seal_mask_address(domain, slot),
                                   mask_words[slot], origin="seal", journal=False)

    def clear_seals(self, domain: int) -> None:
        """Retire a domain's seals (teardown/recycle only, never a grant
        path).  These stores stay journalled: a rollback that *restores*
        a seal narrows privileges, which is always safe."""
        self._check_domain(domain)
        if domain in self._seal_inst:
            for i in range(self.inst_words_per_domain):
                self.memory.store_word(self.seal_inst_address(domain, i), 0)
            del self._seal_inst[domain]
        if domain in self._seal_regs:
            for i in range(self.reg_words_per_domain):
                self.memory.store_word(self.seal_reg_address(domain, i), 0)
            del self._seal_regs[domain]
        if domain in self._seal_masks:
            for slot in range(self.mask_words_per_domain):
                self.memory.store_word(self.seal_mask_address(domain, slot), 0)
            del self._seal_masks[domain]

    def sealed_instructions(self, domain: int) -> List[int]:
        """Instruction classes currently sealed for ``domain`` (mirror view)."""
        self._check_domain(domain)
        words = self._seal_inst.get(domain)
        if not words:
            return []
        return [
            i for i in range(self.isa_map.n_inst_classes)
            if words[i // WORD_BITS] >> (i % WORD_BITS) & 1
        ]

    def sealed_registers(self, domain: int) -> Dict[int, "tuple[bool, bool]"]:
        """``{csr: (read_sealed, write_sealed)}`` for ``domain`` (mirror view)."""
        self._check_domain(domain)
        words = self._seal_regs.get(domain)
        sealed: Dict[int, tuple] = {}
        if not words:
            return sealed
        for csr in range(self.isa_map.n_csrs):
            word, bit = divmod(2 * csr, WORD_BITS)
            read = bool(words[word] >> bit & 1)
            write = bool(words[word] >> (bit + 1) & 1)
            if read or write:
                sealed[csr] = (read, write)
        return sealed

    # ------------------------------------------------------------------
    # PCU refill path: word reads from trusted memory.  Every read ANDs
    # the seal word out, so compiled plans, block summaries, degraded
    # mode, the bypass register and the conformance oracle all enforce
    # seals from one place.
    # ------------------------------------------------------------------
    def read_inst_word(self, domain: int, word_index: int) -> int:
        raw = self.memory.load_word(self.inst_word_address(domain, word_index))
        seal = self.memory.load_word(self.seal_inst_address(domain, word_index))
        return raw & ~seal

    def read_reg_word(self, domain: int, word_index: int) -> int:
        raw = self.memory.load_word(self.reg_word_address(domain, word_index))
        seal = self.memory.load_word(self.seal_reg_address(domain, word_index))
        return raw & ~seal

    def read_mask(self, domain: int, slot: int) -> int:
        raw = self.memory.load_word(self.mask_address(domain, slot))
        seal = self.memory.load_word(self.seal_mask_address(domain, slot))
        return raw & ~seal

    # Raw seal-word reads (scrubber audit surface; not a verdict path).
    def read_seal_inst_word(self, domain: int, word_index: int) -> int:
        return self.memory.load_word(self.seal_inst_address(domain, word_index))

    def read_seal_reg_word(self, domain: int, word_index: int) -> int:
        return self.memory.load_word(self.seal_reg_address(domain, word_index))

    def read_seal_mask(self, domain: int, slot: int) -> int:
        return self.memory.load_word(self.seal_mask_address(domain, slot))

    def read_inst_words(self, domain: int) -> List[int]:
        """All instruction-bitmap words of one domain (bypass-register fill)."""
        return [
            self.read_inst_word(domain, i) for i in range(self.inst_words_per_domain)
        ]

    def footprint_words(self) -> int:
        """Trusted-memory footprint of the whole table, in words.

        Doubled by the seal overlay: every grant structure has a
        shadow seal structure of identical geometry.
        """
        return 2 * self.max_domains * (
            self.inst_words_per_domain
            + self.reg_words_per_domain
            + self.mask_words_per_domain
        )
