"""The Switching Gate Table (Section 4.2).

Every legal domain switch corresponds to one registered gate.  An SGT
entry freezes the triple (gate address, destination address, destination
domain); the entry's index is the *gate id* that the ``hccall``/
``hccalls`` instructions name at runtime.  The table lives in trusted
memory at the address held in the ``gate-addr`` register, four words per
entry, so the PCU's SGT-cache refill is an indexed memory read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .errors import ConfigurationError, GateFault
from .trusted_memory import WORD_BYTES, TrustedMemory

ENTRY_WORDS = 4  # gate address, destination address, destination domain, valid


@dataclass(frozen=True)
class GateEntry:
    """One registered switching gate."""

    gate_id: int
    gate_address: int
    destination_address: int
    destination_domain: int

    def matches_call_site(self, address: int) -> bool:
        """Property (i): a gate may only be called at its frozen address."""
        return address == self.gate_address


class SwitchingGateTable:
    """Trusted-memory-backed table of unforgeable switching gates."""

    def __init__(self, memory: TrustedMemory, max_gates: int = 1024):
        if max_gates < 1:
            raise ConfigurationError("need at least one gate slot")
        self.memory = memory
        self.max_gates = max_gates
        self.base = memory.allocate(max_gates * ENTRY_WORDS)
        self._next_id = 0

    def entry_address(self, gate_id: int) -> int:
        if not 0 <= gate_id < self.max_gates:
            raise ConfigurationError("gate id %d out of range" % gate_id)
        return self.base + gate_id * ENTRY_WORDS * WORD_BYTES

    # ------------------------------------------------------------------
    # Domain-0 registration API.
    # ------------------------------------------------------------------
    def register(
        self,
        gate_address: int,
        destination_address: int,
        destination_domain: int,
        *,
        gate_id: Optional[int] = None,
    ) -> GateEntry:
        """Register a new gate and return its entry.

        ``gate_id`` defaults to the next free slot; passing it explicitly
        lets domain-0 software manage its own id space (e.g. re-using
        slots of unloaded modules).
        """
        if gate_id is None:
            gate_id = self._next_id
            self._next_id += 1
        elif gate_id >= self._next_id:
            self._next_id = gate_id + 1
        entry = GateEntry(gate_id, gate_address, destination_address, destination_domain)
        address = self.entry_address(gate_id)
        self.memory.store_word(address, gate_address)
        self.memory.store_word(address + WORD_BYTES, destination_address)
        self.memory.store_word(address + 2 * WORD_BYTES, destination_domain)
        self.memory.store_word(address + 3 * WORD_BYTES, 1)
        return entry

    def unregister(self, gate_id: int) -> None:
        address = self.entry_address(gate_id)
        self.memory.store_word(address + 3 * WORD_BYTES, 0)

    @property
    def gate_nr(self) -> int:
        """Number of gate slots handed out so far (the gate-nr register)."""
        return self._next_id

    # ------------------------------------------------------------------
    # PCU refill path.
    # ------------------------------------------------------------------
    def read_entry(self, gate_id: int) -> GateEntry:
        """Load one SGT entry from trusted memory; faults if unregistered.

        Property (iv): an unregistered gate can never be executed — the
        valid word is zero and the lookup raises :class:`GateFault`.
        """
        if not 0 <= gate_id < self.max_gates:
            raise GateFault("gate id %d out of range" % gate_id, gate_id=gate_id)
        address = self.entry_address(gate_id)
        if not self.memory.load_word(address + 3 * WORD_BYTES):
            raise GateFault("gate %d is not registered" % gate_id, gate_id=gate_id)
        return GateEntry(
            gate_id,
            self.memory.load_word(address),
            self.memory.load_word(address + WORD_BYTES),
            self.memory.load_word(address + 2 * WORD_BYTES),
        )
