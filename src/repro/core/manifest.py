"""Domain-configuration manifests: export/apply as plain data.

Deployments want privilege policy in review-able files, not imperative
setup code.  A manifest captures every domain's grants and every gate
registration; :func:`apply_manifest` replays it onto a fresh
:class:`~repro.core.domain.DomainManager`.  Gate/dest addresses may be
given numerically or symbolically against a provided symbol table (so
manifests survive relinking).

Example manifest::

    {
      "domains": [
        {"name": "vm",
         "instructions": ["alu", "csr"],
         "registers": [{"csr": "satp", "read": true, "write": true}],
         "register_bits": [{"csr": "sstatus", "bits": "0x6000"}]}
      ],
      "gates": [
        {"gate": "g_set_satp", "destination": "fn_set_satp", "domain": "vm"}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Union

from .domain import DomainManager
from .errors import ConfigurationError
from .pcu import DOMAIN_0

Address = Union[int, str]


def _resolve(value: Address, symbols: Optional[Mapping[str, int]]) -> int:
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        if symbols is not None and value in symbols:
            return symbols[value]
        try:
            return int(value, 0)
        except ValueError:
            raise ConfigurationError(
                "manifest address %r is not a symbol or number" % value
            ) from None
    raise ConfigurationError("bad manifest address %r" % (value,))


def _parse_bits(value: Union[int, str]) -> int:
    if isinstance(value, int):
        return value
    return int(value, 0)


def export_manifest(manager: DomainManager) -> Dict[str, object]:
    """Capture the manager's current configuration as plain data."""
    domains: List[Dict[str, object]] = []
    for domain_id in sorted(manager.domains):
        if domain_id == DOMAIN_0:
            continue
        descriptor = manager.domains[domain_id]
        registers = []
        for csr in sorted(descriptor.readable_csrs | descriptor.writable_csrs):
            if csr in descriptor.bit_grants and csr not in descriptor.readable_csrs:
                continue  # bit-grant-only CSRs are captured below
            registers.append({
                "csr": csr,
                "read": csr in descriptor.readable_csrs,
                "write": csr in descriptor.writable_csrs
                and csr not in descriptor.bit_grants,
            })
        domains.append({
            "name": descriptor.name,
            "instructions": sorted(descriptor.instructions),
            "registers": registers,
            "register_bits": [
                {"csr": csr, "bits": "0x%X" % bits}
                for csr, bits in sorted(descriptor.bit_grants.items())
            ],
        })
    gates = [
        {
            "gate": entry.gate_address,
            "destination": entry.destination_address,
            "domain": manager.domains[entry.destination_domain].name,
        }
        for _, entry in sorted(manager.gates.items())
    ]
    return {"arch": manager.isa_map.arch, "domains": domains, "gates": gates}


def apply_manifest(
    manager: DomainManager,
    manifest: Mapping[str, object],
    *,
    symbols: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Replay a manifest onto ``manager``; returns name -> domain id."""
    arch = manifest.get("arch")
    if arch is not None and arch != manager.isa_map.arch:
        raise ConfigurationError(
            "manifest is for %r, manager is %r" % (arch, manager.isa_map.arch)
        )
    ids: Dict[str, int] = {"domain-0": DOMAIN_0}
    for spec in manifest.get("domains", ()):
        descriptor = manager.create_domain(spec["name"])
        ids[spec["name"]] = descriptor.domain_id
        manager.allow_instructions(descriptor.domain_id, spec.get("instructions", ()))
        for grant in spec.get("registers", ()):
            manager.grant_register(
                descriptor.domain_id,
                grant["csr"],
                read=bool(grant.get("read")),
                write=bool(grant.get("write")),
            )
        for grant in spec.get("register_bits", ()):
            manager.grant_register_bits(
                descriptor.domain_id, grant["csr"], _parse_bits(grant["bits"])
            )
    for spec in manifest.get("gates", ()):
        domain_name = spec["domain"]
        if domain_name not in ids:
            raise ConfigurationError("gate targets unknown domain %r" % domain_name)
        manager.register_gate(
            _resolve(spec["gate"], symbols),
            _resolve(spec["destination"], symbols),
            ids[domain_name],
        )
    return ids


def dumps(manager: DomainManager, **json_kwargs) -> str:
    """Export as JSON text."""
    json_kwargs.setdefault("indent", 2)
    json_kwargs.setdefault("sort_keys", True)
    return json.dumps(export_manifest(manager), **json_kwargs)


def loads(
    manager: DomainManager,
    text: str,
    *,
    symbols: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Apply a JSON manifest."""
    return apply_manifest(manager, json.loads(text), symbols=symbols)
