"""Comparison baselines: privilege levels, trap-and-emulate, binary scan."""

from .binary_scan import (
    DEFAULT_FORBIDDEN,
    RewriteResult,
    ScanReport,
    find_byte_occurrences,
    linear_disassemble,
    rewrite_hidden_bytes,
    scan_program,
)
from .privilege_levels import (
    ExposureComparison,
    PrivilegeLevelPolicy,
    compare_exposure,
    policy_from_isa_map,
)
from .trap_emulate import (
    EMULATION_CHECK_CYCLES,
    TRAPPABLE_CLASSES,
    UNTRAPPABLE_PRIVILEGED,
    VM_EXIT_CYCLES,
    TrapAndEmulateModel,
    compare_switch_latency,
)

__all__ = [
    "DEFAULT_FORBIDDEN",
    "EMULATION_CHECK_CYCLES",
    "ExposureComparison",
    "PrivilegeLevelPolicy",
    "RewriteResult",
    "ScanReport",
    "TRAPPABLE_CLASSES",
    "TrapAndEmulateModel",
    "UNTRAPPABLE_PRIVILEGED",
    "VM_EXIT_CYCLES",
    "compare_exposure",
    "compare_switch_latency",
    "find_byte_occurrences",
    "linear_disassemble",
    "policy_from_isa_map",
    "rewrite_hidden_bytes",
    "scan_program",
]
