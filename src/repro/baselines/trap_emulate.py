"""The virtualization trap-and-emulate baseline (Section 2.3).

Hypervisors can intercept privileged instructions: each one exits to
the hypervisor (~1700 cycles for even an empty VM call, the figure the
paper quotes from Hodor), gets checked in software, and is emulated.
Two structural limits make this baseline inferior to ISA-Grid:

1. **Cost** — every checked instruction pays the full exit/entry
   round-trip plus software decoding.
2. **Coverage** — only instructions the hardware virtualization
   extension traps can be checked at all.  ``wrpkru``/``wrpkrs`` do not
   trap, so MPK/PKS abuse is invisible to this baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

#: Empty VM call round-trip, cycles (paper §2.3, citing Hodor [29]).
VM_EXIT_CYCLES = 1700

#: Software decode + privilege lookup in the hypervisor, cycles.
EMULATION_CHECK_CYCLES = 150

#: x86 instruction classes that cause VM exits under classic VT-x
#: controls.  Notably absent: wrpkru / rdpkru / wrpkrs / rdpkrs.
TRAPPABLE_CLASSES: FrozenSet[str] = frozenset(
    {
        "rdmsr", "wrmsr", "cpuid", "mov_cr", "mov_dr", "lgdt", "lidt",
        "lldt", "ltr", "sgdt", "sidt", "invlpg", "wbinvd", "in", "out",
        "hlt", "rdpmc", "rdtsc",
    }
)

#: Classes that access privileged state but never trap — the coverage
#: hole Section 2.3 calls out.
UNTRAPPABLE_PRIVILEGED: FrozenSet[str] = frozenset(
    {"wrpkru", "rdpkru", "wrpkrs", "rdpkrs"}
)


@dataclass
class TrapAndEmulateModel:
    """Cost/coverage model of hypervisor-mediated ISA-resource control."""

    vm_exit_cycles: int = VM_EXIT_CYCLES
    check_cycles: int = EMULATION_CHECK_CYCLES
    exits: int = 0
    uncovered_accesses: int = 0

    def can_control(self, inst_class: str) -> bool:
        """Can this baseline check accesses of ``inst_class`` at all?"""
        return inst_class in TRAPPABLE_CLASSES

    def check_cost(self, inst_class: str) -> int:
        """Cycles this baseline spends checking one access (0 = cannot)."""
        if not self.can_control(inst_class):
            self.uncovered_accesses += 1
            return 0
        self.exits += 1
        return self.vm_exit_cycles + self.check_cycles

    def domain_switch_cost(self) -> int:
        """A protection-domain change needs a hypercall round-trip."""
        self.exits += 1
        return self.vm_exit_cycles

    def total_overhead_cycles(self) -> int:
        return self.exits * (self.vm_exit_cycles + self.check_cycles)


def compare_switch_latency(isagrid_hccall_cycles: float) -> Dict[str, float]:
    """Table-4-style comparison rows: ISA-Grid vs trap-and-emulate."""
    model = TrapAndEmulateModel()
    return {
        "isa-grid hccall": isagrid_hccall_cycles,
        "hypervisor trap": float(model.domain_switch_cost()),
        "speedup": model.vm_exit_cycles / isagrid_hccall_cycles,
    }
