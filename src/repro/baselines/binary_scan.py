"""The binary-scanning software baseline (Section 2.3, ERIM / Nested
Kernel style).

These systems grep compiled binaries for forbidden instruction byte
sequences and either rewrite them (ERIM) or reject/manually refactor
the code (Nested Kernel).  Two measurable failure modes:

* **Unintended occurrences** — on a variable-length ISA the forbidden
  bytes appear *inside* other instructions (immediates, displacements)
  and at instruction boundaries.  A byte-level scan finds them; a
  linear disassembly from the entry point does not execute them — yet a
  ROP/jump-into-the-middle attacker can.  (The paper's example: the
  one-byte ``out`` appears >50k times in a Linux image, ~300 intended.)
* **Unsafe rewriting** — replacing the hidden bytes destroys the
  carrier instruction; proving a rewrite safe is equivalent to solving
  instruction alignment, which is undecidable in general [55, 69].

:func:`scan_program` quantifies the first; :func:`rewrite_hidden_bytes`
demonstrates the second by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from repro.x86.encoding import EncodingError, decode, simple_bytes

#: Sequences a Nested-Kernel-style scanner must eliminate.
DEFAULT_FORBIDDEN: Tuple[str, ...] = ("wrmsr", "wrpkru", "wrpkrs", "hlt", "cli")

#: A forbidden entry: a fixed-encoding mnemonic, or raw pattern bytes
#: (for sequences with no single mnemonic, e.g. an opcode prefix).
ForbiddenEntry = Union[str, bytes]


def resolve_pattern(entry: ForbiddenEntry) -> Tuple[str, bytes]:
    """(report name, pattern bytes) for one forbidden entry."""
    if isinstance(entry, (bytes, bytearray)):
        pattern = bytes(entry)
        return pattern.hex(), pattern
    return entry, simple_bytes(entry)


def find_byte_occurrences(code: bytes, pattern: bytes) -> List[int]:
    """Every offset where ``pattern`` occurs — aligned or not."""
    out: List[int] = []
    start = 0
    while True:
        index = code.find(pattern, start)
        if index < 0:
            return out
        out.append(index)
        start = index + 1


def linear_disassemble(code: bytes) -> List[Tuple[int, str, int]]:
    """Walk the code linearly from offset 0: (offset, mnemonic, size).

    Undecodable bytes resynchronize at +1, the way objdump-style
    scanners do.
    """
    out: List[Tuple[int, str, int]] = []
    offset = 0
    while offset < len(code):
        try:
            inst = decode(code, offset)
        except EncodingError:
            offset += 1
            continue
        out.append((offset, inst.mnemonic, inst.size))
        offset += inst.size
    return out


@dataclass
class ScanReport:
    """What a byte-level scan finds vs what linear disassembly sees."""

    mnemonic: str
    pattern: bytes
    total_occurrences: List[int] = field(default_factory=list)
    intended_offsets: List[int] = field(default_factory=list)

    @property
    def unintended_offsets(self) -> List[int]:
        intended = set(self.intended_offsets)
        return [o for o in self.total_occurrences if o not in intended]

    @property
    def has_hidden_instances(self) -> bool:
        return bool(self.unintended_offsets)


def scan_program(
    code: bytes, forbidden: Sequence[ForbiddenEntry] = DEFAULT_FORBIDDEN
) -> Dict[str, ScanReport]:
    """Scan a binary for forbidden sequences, splitting intended (on the
    linear instruction stream) from unintended (hidden) occurrences.

    ``forbidden`` entries are fixed-encoding mnemonics or raw pattern
    bytes; a raw pattern counts as *intended* where an instruction on
    the linear stream begins with exactly those bytes.
    """
    listing = linear_disassemble(code)
    by_mnemonic: Dict[str, List[int]] = {}
    for offset, mnemonic, _size in listing:
        by_mnemonic.setdefault(mnemonic, []).append(offset)

    reports: Dict[str, ScanReport] = {}
    for entry in forbidden:
        name, pattern = resolve_pattern(entry)
        if isinstance(entry, (bytes, bytearray)):
            intended = [offset for offset, _m, _s in listing
                        if code[offset:offset + len(pattern)] == pattern]
        else:
            intended = by_mnemonic.get(name, [])
        reports[name] = ScanReport(
            mnemonic=name,
            pattern=pattern,
            total_occurrences=find_byte_occurrences(code, pattern),
            intended_offsets=intended,
        )
    return reports


@dataclass
class RewriteResult:
    """Outcome of a naive NOP-out rewrite of hidden occurrences."""

    rewritten: bytes
    patched_offsets: List[int]
    corrupted_instructions: List[Tuple[int, str]]

    @property
    def safe(self) -> bool:
        """True iff no legitimate instruction was destroyed."""
        return not self.corrupted_instructions


def _merge_ranges(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Coalesce overlapping ``[start, end)`` byte ranges."""
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(ranges):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def rewrite_hidden_bytes(
    code: bytes, forbidden: Sequence[ForbiddenEntry] = DEFAULT_FORBIDDEN
) -> RewriteResult:
    """ERIM-style naive rewrite: overwrite hidden occurrences with NOPs.

    Returns which *legitimate* instructions got corrupted in the
    process — demonstrating why scanning-and-rewriting cannot be both
    complete and safe on a variable-length ISA.

    Hidden occurrences of different patterns may overlap (and a pattern
    may overlap itself); their byte ranges are coalesced before
    patching, and each distinct occurrence offset is reported once.
    """
    reports = scan_program(code, forbidden)
    ranges: List[Tuple[int, int]] = []
    offsets = set()
    for report in reports.values():
        for offset in report.unintended_offsets:
            ranges.append((offset, offset + len(report.pattern)))
            offsets.add(offset)
    patched = bytearray(code)
    for start, end in _merge_ranges(ranges):
        patched[start:end] = b"\x90" * (end - start)

    # Corruption is semantic as well as structural: re-decode the
    # patched bytes at every pre-existing instruction boundary and
    # compare mnemonic, size AND immediate.  A patch can leave the
    # boundary undecodable altogether (the NOPs formed an illegal
    # ModRM/suffix) — that is corruption too, not a scan crash.
    corrupted: List[Tuple[int, str]] = []
    patched_bytes = bytes(patched)
    for offset, mnemonic, size in linear_disassemble(code):
        inst = decode(code, offset)
        try:
            after = decode(patched_bytes, offset)
        except EncodingError:
            corrupted.append((offset, mnemonic))
            continue
        if (after.mnemonic, after.size, after.imm) != (mnemonic, size, inst.imm):
            corrupted.append((offset, mnemonic))
    return RewriteResult(patched_bytes, sorted(offsets), corrupted)
