"""The binary-scanning software baseline (Section 2.3, ERIM / Nested
Kernel style).

These systems grep compiled binaries for forbidden instruction byte
sequences and either rewrite them (ERIM) or reject/manually refactor
the code (Nested Kernel).  Two measurable failure modes:

* **Unintended occurrences** — on a variable-length ISA the forbidden
  bytes appear *inside* other instructions (immediates, displacements)
  and at instruction boundaries.  A byte-level scan finds them; a
  linear disassembly from the entry point does not execute them — yet a
  ROP/jump-into-the-middle attacker can.  (The paper's example: the
  one-byte ``out`` appears >50k times in a Linux image, ~300 intended.)
* **Unsafe rewriting** — replacing the hidden bytes destroys the
  carrier instruction; proving a rewrite safe is equivalent to solving
  instruction alignment, which is undecidable in general [55, 69].

:func:`scan_program` quantifies the first; :func:`rewrite_hidden_bytes`
demonstrates the second by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.x86.encoding import EncodingError, decode, simple_bytes

#: Sequences a Nested-Kernel-style scanner must eliminate.
DEFAULT_FORBIDDEN: Tuple[str, ...] = ("wrmsr", "wrpkru", "wrpkrs", "hlt", "cli")


def find_byte_occurrences(code: bytes, pattern: bytes) -> List[int]:
    """Every offset where ``pattern`` occurs — aligned or not."""
    out: List[int] = []
    start = 0
    while True:
        index = code.find(pattern, start)
        if index < 0:
            return out
        out.append(index)
        start = index + 1


def linear_disassemble(code: bytes) -> List[Tuple[int, str, int]]:
    """Walk the code linearly from offset 0: (offset, mnemonic, size).

    Undecodable bytes resynchronize at +1, the way objdump-style
    scanners do.
    """
    out: List[Tuple[int, str, int]] = []
    offset = 0
    while offset < len(code):
        try:
            inst = decode(code, offset)
        except EncodingError:
            offset += 1
            continue
        out.append((offset, inst.mnemonic, inst.size))
        offset += inst.size
    return out


@dataclass
class ScanReport:
    """What a byte-level scan finds vs what linear disassembly sees."""

    mnemonic: str
    pattern: bytes
    total_occurrences: List[int] = field(default_factory=list)
    intended_offsets: List[int] = field(default_factory=list)

    @property
    def unintended_offsets(self) -> List[int]:
        intended = set(self.intended_offsets)
        return [o for o in self.total_occurrences if o not in intended]

    @property
    def has_hidden_instances(self) -> bool:
        return bool(self.unintended_offsets)


def scan_program(
    code: bytes, forbidden: Sequence[str] = DEFAULT_FORBIDDEN
) -> Dict[str, ScanReport]:
    """Scan a binary for forbidden sequences, splitting intended (on the
    linear instruction stream) from unintended (hidden) occurrences."""
    listing = linear_disassemble(code)
    by_mnemonic: Dict[str, List[int]] = {}
    for offset, mnemonic, _size in listing:
        by_mnemonic.setdefault(mnemonic, []).append(offset)

    reports: Dict[str, ScanReport] = {}
    for mnemonic in forbidden:
        pattern = simple_bytes(mnemonic)
        reports[mnemonic] = ScanReport(
            mnemonic=mnemonic,
            pattern=pattern,
            total_occurrences=find_byte_occurrences(code, pattern),
            intended_offsets=by_mnemonic.get(mnemonic, []),
        )
    return reports


@dataclass
class RewriteResult:
    """Outcome of a naive NOP-out rewrite of hidden occurrences."""

    rewritten: bytes
    patched_offsets: List[int]
    corrupted_instructions: List[Tuple[int, str]]

    @property
    def safe(self) -> bool:
        """True iff no legitimate instruction was destroyed."""
        return not self.corrupted_instructions


def rewrite_hidden_bytes(
    code: bytes, forbidden: Sequence[str] = DEFAULT_FORBIDDEN
) -> RewriteResult:
    """ERIM-style naive rewrite: overwrite hidden occurrences with NOPs.

    Returns which *legitimate* instructions got corrupted in the
    process — demonstrating why scanning-and-rewriting cannot be both
    complete and safe on a variable-length ISA.
    """
    reports = scan_program(code, forbidden)
    patched = bytearray(code)
    patched_offsets: List[int] = []
    for report in reports.values():
        for offset in report.unintended_offsets:
            patched[offset : offset + len(report.pattern)] = b"\x90" * len(report.pattern)
            patched_offsets.append(offset)

    def full_listing(data: bytes) -> Dict[int, Tuple[str, int, int]]:
        out: Dict[int, Tuple[str, int, int]] = {}
        for offset, mnemonic, size in linear_disassemble(data):
            inst = decode(data, offset)
            out[offset] = (mnemonic, size, inst.imm)
        return out

    # Corruption is semantic as well as structural: compare mnemonic,
    # size AND immediate of every pre-existing instruction.
    corrupted: List[Tuple[int, str]] = []
    before = full_listing(code)
    after = full_listing(bytes(patched))
    for offset, description in before.items():
        if after.get(offset) != description:
            corrupted.append((offset, description[0]))
    return RewriteResult(bytes(patched), sorted(patched_offsets), corrupted)
