"""The privilege-level baseline (Section 2.3, "Hardware Approaches").

Modern CPUs gate ISA resources only by privilege level: all code at one
level shares one privilege set.  The MiniKernel's ``native`` mode *is*
this baseline operationally; this module additionally models the policy
itself so experiments can quantify exposure — how many privileged
resources a compromised component can reach under levels alone versus
under an ISA-Grid decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from repro.core.domain import DomainManager
from repro.core.isa_extension import IsaGridIsaMap


@dataclass(frozen=True)
class PrivilegeLevelPolicy:
    """Classic ring/exception-level access control for one ISA.

    ``level_resources`` maps privilege level -> the set of resource
    names accessible at that level; lower levels inherit nothing, higher
    levels inherit everything below them (x86 ring semantics inverted to
    "bigger number = more privileged" for uniformity with RISC-V U<S<M).
    """

    arch: str
    level_names: Dict[int, str]
    level_resources: Dict[int, FrozenSet[str]]

    def accessible(self, level: int) -> Set[str]:
        """All resources code at ``level`` can touch."""
        out: Set[str] = set()
        for other, resources in self.level_resources.items():
            if other <= level:
                out |= resources
        return out

    def exposure(self, level: int) -> int:
        """Number of privileged resources exposed to one compromised
        component at ``level`` — under levels alone, that is *all* of
        them."""
        return len(self.accessible(level))


def policy_from_isa_map(isa_map: IsaGridIsaMap, kernel_level: int = 1) -> PrivilegeLevelPolicy:
    """Build the baseline policy for an ISA-Grid ISA map: every system
    CSR and system instruction class is kernel-level."""
    user: Set[str] = set()
    kernel: Set[str] = set()
    for name in isa_map.inst_class_names:
        target = user if name in ("alu", "mul", "mov", "load", "store", "stack",
                                  "branch", "jump", "call", "nop", "fence",
                                  "string", "ecall", "ebreak", "int") else kernel
        target.add("inst:%s" % name)
    for csr in isa_map.csrs[1:]:  # skip the reserved slot
        kernel.add("csr:%s" % csr.name)
    return PrivilegeLevelPolicy(
        arch=isa_map.arch,
        level_names={0: "user", kernel_level: "kernel"},
        level_resources={0: frozenset(user), kernel_level: frozenset(kernel)},
    )


@dataclass
class ExposureComparison:
    """Attack-surface comparison: levels-only vs ISA-Grid domains."""

    arch: str
    baseline_exposure: int                 # resources a compromised kernel
                                           # component reaches under levels
    domain_exposure: Dict[str, int]        # per-domain exposure under ISA-Grid

    @property
    def worst_domain_exposure(self) -> int:
        return max(self.domain_exposure.values()) if self.domain_exposure else 0

    @property
    def reduction_factor(self) -> float:
        """baseline / worst-case-domain exposure (>1 is better)."""
        worst = self.worst_domain_exposure
        return self.baseline_exposure / worst if worst else float("inf")


def compare_exposure(manager: DomainManager, kernel_level: int = 1) -> ExposureComparison:
    """Quantify least-privilege: what can each compromised domain reach?

    Counts privileged resources (system instruction classes + writable
    CSRs) available to each non-domain-0 domain and compares with the
    levels-only baseline where any kernel component reaches everything.
    """
    isa_map = manager.isa_map
    policy = policy_from_isa_map(isa_map, kernel_level)
    baseline = policy.exposure(kernel_level) - policy.exposure(0)

    per_domain: Dict[str, int] = {}
    user_classes = {
        name for name in isa_map.inst_class_names
        if "inst:%s" % name in policy.level_resources[0]
    }
    for domain_id, descriptor in manager.domains.items():
        if domain_id == 0:
            continue
        privileged_instructions = descriptor.instructions - user_classes
        per_domain[descriptor.name] = (
            len(privileged_instructions) + len(descriptor.writable_csrs)
        )
    return ExposureComparison(
        arch=isa_map.arch,
        baseline_exposure=baseline,
        domain_exposure=per_domain,
    )
