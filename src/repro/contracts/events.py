"""The normalized trace vocabulary the contract layer consumes.

Every driver (conformance runner, abstract fault campaigns, machine
lockstep) narrates its run as a stream of :class:`TraceEvent` records —
one flat, JSON-plain shape for all six event kinds, so a trace can be
committed as a regression corpus and replayed without any live
hardware model behind it.

Kinds and the fields they carry:

``check``
    One PCU verdict.  ``domain`` is the checking domain, ``inst`` the
    instruction class, ``csr`` the register index (``-1`` when the
    access touches no CSR) with ``read``/``write`` intent and, for
    writes, ``value``/``old``.  ``status`` is ``"ok"`` or the fault
    class name the check raised (``PrivilegeFault``, ...).

``gate``
    One gate-instruction execution.  ``op`` is the gate kind
    (``hccall``/``hccalls``/``hcrets``), ``gate`` the gate id
    (``-1`` for returns), ``pre_domain``/``domain`` the domain before
    and after, ``status`` as for checks.

``mem_write``
    One trusted-memory word store.  ``op`` is the *origin*: ``"sw"``
    for software stores issued through manager transactions, ``"hw"``
    for hardware-initiated stores (trusted-stack pushes), ``"d0"`` for
    domain-0 provisioning (thread-stack seeding), ``"scrub"`` for
    scrubber repairs.  ``address``/``value``/``old`` describe the
    store; ``domain`` is the domain the core sat in when it happened.

``reconfig``
    One privilege-table mutation, post-commit.  ``op`` is one of
    ``create_domain``, ``clear_domain``, ``allow_inst``, ``deny_inst``,
    ``grant_csr``, ``revoke_csr``, ``set_mask``, ``register_gate``,
    ``unregister_gate``, ``sync_domain`` (the monitor's "the core is
    currently in ``domain``" synchronization marker), plus the domain
    virtualization pair ``bind_slot``/``recycle_slot`` (``domain`` is
    the physical slot, ``dest`` the logical tenant, ``bits`` the slot
    generation the bind is valid for / the recycle bumped to).

``txn``
    Trusted-memory transaction boundary; ``op`` is ``begin``,
    ``commit`` or ``abort``.  Abort events carry ``values`` — the
    post-abort contents of every word the transaction touched — so
    rollback atomicity is checkable from the trace alone.

``fault``
    Fault-campaign bookkeeping: ``op`` ``injected``/``detected`` with a
    human ``detail``.  Injection events arm the monitor's waiver logic.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional

#: The trace vocabulary, in narration order of a typical run.
TRACE_EVENT_KINDS = ("check", "gate", "mem_write", "reconfig", "txn", "fault")

#: Reconfiguration sub-operations (``TraceEvent.op`` when kind is
#: ``reconfig``).
RECONFIG_OPS = (
    "create_domain", "clear_domain", "allow_inst", "deny_inst",
    "grant_csr", "revoke_csr", "set_mask", "register_gate",
    "unregister_gate", "sync_domain", "bind_slot", "recycle_slot",
    "seal",
)

#: Trusted-memory store origins (``TraceEvent.op`` when kind is
#: ``mem_write``).  ``"seal"`` marks the journal-bypassed one-way
#: seal-word sets: rollback atomicity deliberately does not cover them.
MEM_ORIGINS = ("sw", "hw", "d0", "scrub", "seal")


@dataclass
class TraceEvent:
    """One normalized record of the contract trace vocabulary."""

    kind: str
    op: str = ""
    index: int = -1                # stream position, stamped by the monitor
    domain: int = -1
    status: str = "ok"
    inst: int = -1
    csr: int = -1
    read: bool = False
    write: bool = False
    value: int = 0
    old: int = 0
    bits: int = 0                  # mask value for ``set_mask``
    gate: int = -1
    dest: int = -1                 # registered destination domain
    pre_domain: int = -1
    address: int = -1
    detail: str = ""
    #: Post-abort word values keyed by address (``txn``/``abort`` only).
    values: Optional[Dict[int, int]] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-plain form, defaults elided so corpora stay readable."""
        data: Dict[str, object] = {"kind": self.kind}
        for spec in fields(self):
            if spec.name in ("kind", "values"):
                continue
            value = getattr(self, spec.name)
            if value != spec.default:
                data[spec.name] = value
        if self.values is not None:
            data["values"] = {str(addr): val
                              for addr, val in sorted(self.values.items())}
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceEvent":
        payload = dict(data)
        values = payload.pop("values", None)
        event = cls(**payload)
        if values is not None:
            # JSON turns integer keys into strings; undo that here.
            event.values = {int(addr): int(val)
                            for addr, val in values.items()}
        return event
