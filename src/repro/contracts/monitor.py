"""The contract monitor: one trace stream fanned into every contract.

The :class:`ContractMonitor` is both the fan-out hub and the *tap* the
core models call into (``PrivilegeCheckUnit._tap``,
``TrustedMemory._tap``, ``DomainManager._tap``).  Attached to a live
world it narrates checks, gates, trusted-memory stores, transactions
and reconfigurations as :class:`~repro.contracts.events.TraceEvent`
records; fed a committed corpus it replays the same records with no
hardware behind them.  Either way every event reaches every registered
contract, and each problem a contract reports becomes a
:class:`ContractViolation` carrying first-violation reproducer context:
the seed, the campaign id and the event index.

Two pieces of stream discipline keep the shadows honest:

* **Transaction buffering** — ``reconfig`` events emitted inside an
  open trusted-memory transaction are buffered and only delivered at
  commit; an abort discards them, exactly as the rollback discards the
  mutation.  (Memory stores are delivered live — the rollback
  atomicity contract needs to see them to judge the abort.)
* **Attach-time seeding** — attaching mid-run replays the manager's
  current descriptors and gate table as synthetic ``reconfig`` events,
  so contracts judge a machine world whose kernel configured domains
  long before monitoring started.

Waivers: in a fault campaign an injected fault *should* trip contracts
— that is the detection working.  A violation is waived when the
driver's ``waiver_probe`` reports an armed-and-fired fault (or a
``fault``/``injected`` trace event preceded it); only unwaived
violations count against the run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from .contracts import Contract, make_contracts
from .events import TraceEvent


@dataclass
class ContractViolation:
    """One contract problem, with enough context to reproduce it."""

    contract: str
    index: int                     # event index within the trace
    detail: str
    event: TraceEvent
    seed: Optional[int] = None
    campaign: Optional[int] = None
    waived: bool = False
    waived_by: Optional[str] = None

    def describe(self) -> str:
        where = "event %d" % self.index
        if self.campaign is not None:
            where = "campaign %s, %s" % (self.campaign, where)
        if self.seed is not None:
            where = "seed %s, %s" % (self.seed, where)
        return "%s (%s): %s" % (self.contract, where, self.detail)

    def to_dict(self) -> Dict[str, object]:
        return {
            "contract": self.contract,
            "index": self.index,
            "detail": self.detail,
            "seed": self.seed,
            "campaign": self.campaign,
            "waived": self.waived,
            "waived_by": self.waived_by,
            "event": self.event.to_dict(),
        }


class ContractMonitor:
    """Fan one event stream into all registered contracts."""

    def __init__(self, contracts: Optional[Sequence[Contract]] = None, *,
                 seed: Optional[int] = None,
                 campaign: Optional[int] = None,
                 record: bool = False):
        self.contracts: List[Contract] = (list(contracts)
                                          if contracts is not None
                                          else make_contracts())
        self.seed = seed
        self.campaign = campaign
        #: With ``record=True`` every fed event is appended to
        #: ``recorded`` in feed order (including transaction-buffered
        #: reconfigs at their *feed* position), so a live run can be
        #: dumped as a replayable contract trace.
        self.record = record
        self.recorded: List[TraceEvent] = []
        #: Zero-arg callable the driver installs: returns a detail
        #: string while an injected fault is armed/fired, else None.
        self.waiver_probe: Optional[Callable[[], Optional[str]]] = None
        self.violations: List[ContractViolation] = []
        self.events_seen = 0
        self._index = 0
        self._armed_detail: Optional[str] = None
        self._buffer: List[TraceEvent] = []
        self._in_txn = False
        self._txn_touched: Dict[int, int] = {}
        self._pcu = None
        self._memory = None
        self._manager = None

    # -- configuration and live attachment -----------------------------
    def configure(self, geometry: Dict[str, object]) -> None:
        for contract in self.contracts:
            contract.configure(geometry)

    def attach(self, pcu, manager) -> None:
        """Hook the monitor into a live world's tap points.

        Seeds every contract with the manager's *current* privilege
        state first, so mid-run attachment (machine kernels configure
        their domains at boot) starts from a truthful shadow.
        """
        self._pcu = pcu
        self._manager = manager
        self._memory = pcu.trusted_memory
        isa = pcu.isa_map
        self.configure({
            "n_inst_classes": isa.n_inst_classes,
            "n_csrs": isa.n_csrs,
            "masked_csrs": [csr for csr in range(isa.n_csrs)
                            if isa.mask_slot(csr) is not None],
        })
        self._seed_from(manager, pcu)
        pcu._tap = self
        self._memory._tap = self
        manager._tap = self

    def detach(self) -> None:
        for holder in (self._pcu, self._memory, self._manager):
            if holder is not None:
                holder._tap = None

    def _seed_from(self, manager, pcu) -> None:
        isa = pcu.isa_map
        feed = self.feed
        for domain_id in sorted(manager.domains):
            descriptor = manager.domains[domain_id]
            feed(TraceEvent(kind="reconfig", op="create_domain",
                            domain=domain_id))
            for name in sorted(descriptor.instructions):
                feed(TraceEvent(kind="reconfig", op="allow_inst",
                                domain=domain_id, inst=isa.inst_class(name)))
            for name in sorted(descriptor.readable_csrs):
                feed(TraceEvent(kind="reconfig", op="grant_csr",
                                domain=domain_id, csr=isa.csr_index(name),
                                read=True))
            for name in sorted(descriptor.writable_csrs):
                feed(TraceEvent(kind="reconfig", op="grant_csr",
                                domain=domain_id, csr=isa.csr_index(name),
                                write=True))
            for name, mask in sorted(descriptor.bit_grants.items()):
                feed(TraceEvent(kind="reconfig", op="set_mask",
                                domain=domain_id, csr=isa.csr_index(name),
                                bits=mask))
            if domain_id and hasattr(manager, "sealed_privileges"):
                sealed = manager.sealed_privileges(domain_id)
                for name in sorted(sealed["instructions"]):
                    feed(TraceEvent(kind="reconfig", op="seal",
                                    domain=domain_id,
                                    inst=isa.inst_class(name)))
                for name in sorted(sealed["read_csrs"]
                                   | sealed["write_csrs"]):
                    feed(TraceEvent(
                        kind="reconfig", op="seal", domain=domain_id,
                        csr=isa.csr_index(name),
                        read=name in sealed["read_csrs"],
                        write=name in sealed["write_csrs"]))
        for gate_id in sorted(manager.gates):
            feed(TraceEvent(kind="reconfig", op="register_gate",
                            gate=gate_id,
                            dest=manager.gates[gate_id].destination_domain))
        virtualizer = getattr(manager, "virtualizer", None)
        if virtualizer is not None:
            # Replay the live slot bindings so the generation-coherence
            # shadow starts truthful on mid-run attachment.
            for logical in sorted(virtualizer.bindings):
                physical = virtualizer.bindings[logical]
                feed(TraceEvent(
                    kind="reconfig", op="bind_slot", domain=physical,
                    bits=virtualizer.generations.get(physical, 0),
                    dest=logical))
        feed(TraceEvent(kind="reconfig", op="sync_domain",
                        domain=pcu.current_domain))

    # -- the event stream ----------------------------------------------
    def feed(self, event: TraceEvent) -> None:
        """Stamp, route and deliver one event."""
        if event.index < 0:
            event.index = self._index
        self._index = event.index + 1
        self.events_seen += 1
        if self.record:
            self.recorded.append(event)
        kind = event.kind
        if kind == "fault":
            if event.op == "injected":
                self._armed_detail = event.detail or "injected fault"
            self._deliver(event)
            return
        if kind == "txn":
            if event.op == "begin":
                self._in_txn = True
                self._txn_touched = {}
                self._deliver(event)
            elif event.op == "commit":
                self._in_txn = False
                buffered, self._buffer = self._buffer, []
                for reconfig in buffered:
                    self._deliver(reconfig)
                self._deliver(event)
            else:  # abort discards the buffered reconfigs with the txn
                self._in_txn = False
                self._buffer = []
                self._deliver(event)
            self._txn_touched = {}
            return
        if kind == "reconfig" and self._in_txn:
            self._buffer.append(event)
            return
        if kind == "mem_write" and self._in_txn and event.op != "seal":
            # Journal-bypassed seal sets are not part of the transaction:
            # the abort replay will not restore them, so the post-abort
            # snapshot must not cover their addresses.
            self._txn_touched.setdefault(event.address, event.old)
        self._deliver(event)

    def _deliver(self, event: TraceEvent) -> None:
        for contract in self.contracts:
            problems = contract.observe(event)
            if not problems:
                continue
            waived_by = self._waiver()
            for problem in problems:
                self.violations.append(ContractViolation(
                    contract=contract.name, index=event.index,
                    detail=problem, event=event, seed=self.seed,
                    campaign=self.campaign, waived=waived_by is not None,
                    waived_by=waived_by))

    def _waiver(self) -> Optional[str]:
        if self.waiver_probe is not None:
            detail = self.waiver_probe()
            if detail:
                return detail
        return self._armed_detail

    def note_injection(self, detail: str) -> None:
        """Record an injected fault; subsequent violations are waived."""
        self.feed(TraceEvent(kind="fault", op="injected", detail=detail))

    def note_detection(self, detail: str) -> None:
        self.feed(TraceEvent(kind="fault", op="detected", detail=detail))

    # -- tap interface (called by the instrumented core) ----------------
    def on_check(self, pcu, access, status: str) -> None:
        csr = getattr(access, "csr", None)
        self.feed(TraceEvent(
            kind="check", domain=pcu.registers.domain, status=status,
            inst=access.inst_class, csr=-1 if csr is None else csr,
            read=bool(getattr(access, "csr_read", False)),
            write=bool(getattr(access, "csr_write", False)),
            value=getattr(access, "write_value", None) or 0,
            old=getattr(access, "old_value", None) or 0))

    def on_gate(self, pcu, kind, gate_id: int, pre_domain: int,
                status: str) -> None:
        self.feed(TraceEvent(
            kind="gate", op=kind.name.lower(), gate=gate_id,
            pre_domain=pre_domain, domain=pcu.registers.domain,
            status=status))

    def on_mem_write(self, memory, address: int, value: int,
                     origin: str) -> None:
        domain = (self._pcu.registers.domain
                  if self._pcu is not None else -1)
        self.feed(TraceEvent(
            kind="mem_write", op=origin, address=address, value=value,
            old=memory._backing.load_word(address), domain=domain))

    def on_txn(self, memory, op: str) -> None:
        if op == "abort":
            values = {address: memory._backing.load_word(address)
                      for address in sorted(self._txn_touched)}
            self.feed(TraceEvent(kind="txn", op="abort", values=values))
        else:
            self.feed(TraceEvent(kind="txn", op=op))

    def on_reconfig(self, op: str, domain: int = -1, inst: int = -1,
                    csr: int = -1, read: bool = False, write: bool = False,
                    bits: int = 0, gate: int = -1, dest: int = -1) -> None:
        self.feed(TraceEvent(kind="reconfig", op=op, domain=domain,
                             inst=inst, csr=csr, read=read, write=write,
                             bits=bits, gate=gate, dest=dest))

    # -- verdicts --------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Violations per contract — every contract, canonical order."""
        table = {contract.name: 0 for contract in self.contracts}
        for violation in self.violations:
            table[violation.contract] += 1
        return table

    def nonzero_counts(self) -> Dict[str, int]:
        return {name: count for name, count in self.counts().items()
                if count}

    @property
    def total_violations(self) -> int:
        return len(self.violations)

    @property
    def unwaived_violations(self) -> int:
        return sum(1 for violation in self.violations
                   if not violation.waived)

    def first_unwaived(self) -> Optional[ContractViolation]:
        for violation in self.violations:
            if not violation.waived:
                return violation
        return None

    def summary(self) -> Dict[str, object]:
        first = self.first_unwaived()
        return {
            "events": self.events_seen,
            "counts": self.counts(),
            "violations": self.total_violations,
            "unwaived": self.unwaived_violations,
            "first_unwaived": None if first is None else first.describe(),
        }


def replay_trace(events: Iterable, geometry: Optional[Dict[str, object]] = None,
                 contracts: Optional[Sequence[Contract]] = None, *,
                 seed: Optional[int] = None,
                 campaign: Optional[int] = None) -> ContractMonitor:
    """Feed a recorded trace (dicts or TraceEvents) through a monitor."""
    monitor = ContractMonitor(contracts, seed=seed, campaign=campaign)
    if geometry:
        monitor.configure(geometry)
    for event in events:
        if not isinstance(event, TraceEvent):
            event = TraceEvent.from_dict(event)
        monitor.feed(event)
    return monitor


def load_trace(path: str):
    """Load a committed corpus file; return ``(meta, events)``."""
    with open(path) as handle:
        data = json.load(handle)
    events = [TraceEvent.from_dict(entry) for entry in data["events"]]
    meta = {key: value for key, value in data.items() if key != "events"}
    return meta, events
