"""Universal contracts: machine-checkable ISA-Grid guarantees.

The paper states its security argument as a handful of informal
invariants — no instruction retires without its inst-bitmap bit, every
domain switch goes through a registered gate, trusted memory is only
written from domain-0.  Following the universal-contract framing
(PAPERS.md), this package states those invariants as stateful checkers
over a normalized trace vocabulary and enforces them over every event
stream the repo already generates: conformance fuzzing, abstract fault
campaigns and machine-level lockstep runs.  See DESIGN §3.16.

Pure Python over plain records — no dependency on the core models —
so committed traces replay as regression tests without a simulator.
"""

from .contracts import (
    CONTRACT_CLASSES,
    CONTRACT_NAMES,
    Contract,
    CoherenceAfterRevokeContract,
    CsrRetirementContract,
    GateOnlySwitchContract,
    InstRetirementContract,
    NoStaleGenerationContract,
    RollbackAtomicityContract,
    TrustedMemConfinementContract,
    make_contracts,
)
from .events import MEM_ORIGINS, RECONFIG_OPS, TRACE_EVENT_KINDS, TraceEvent
from .monitor import (
    ContractMonitor,
    ContractViolation,
    load_trace,
    replay_trace,
)

__all__ = [
    "CONTRACT_CLASSES",
    "CONTRACT_NAMES",
    "Contract",
    "ContractMonitor",
    "ContractViolation",
    "CoherenceAfterRevokeContract",
    "CsrRetirementContract",
    "GateOnlySwitchContract",
    "InstRetirementContract",
    "MEM_ORIGINS",
    "NoStaleGenerationContract",
    "RECONFIG_OPS",
    "RollbackAtomicityContract",
    "TRACE_EVENT_KINDS",
    "TraceEvent",
    "TrustedMemConfinementContract",
    "load_trace",
    "make_contracts",
    "replay_trace",
]
