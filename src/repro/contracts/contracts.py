"""The universal contracts: ISA-Grid's informal guarantees, made checkable.

Each contract is a small stateful checker over the normalized trace
vocabulary (:mod:`repro.contracts.events`).  A contract keeps its own
*shadow* of the privilege state, rebuilt purely from ``reconfig``
events, and judges every observable event against it — so a checker
never trusts the hardware model it is checking.  ``observe`` returns a
list of human-readable problem strings (empty almost always); the
:class:`~repro.contracts.monitor.ContractMonitor` turns those into
violation records with reproducer context.

Contracts are deliberately *strict*: they state what the architecture
guarantees, not what the current implementation happens to do.  In a
fault campaign an injected HPT flip legitimately makes the hardware
disagree with the shadow — those violations are expected and get
*waived* by the monitor's fault attribution (DESIGN §3.16); an unwaived
violation is always a real finding.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .events import TraceEvent

#: The architectural root domain (mirrors ``repro.core.domain.DOMAIN_0``;
#: kept literal so this package stays importable without the core).
DOMAIN_0 = 0


class Contract:
    """Base class: a named, stateful checker over trace events."""

    name = "contract"
    description = ""
    #: Event kinds this contract consumes (its trace vocabulary).
    vocabulary: tuple = ()

    def __init__(self):
        self.geometry: Dict[str, object] = {}
        self.reset()

    def reset(self) -> None:
        """Drop all shadow state (called once at construction)."""

    def configure(self, geometry: Dict[str, object]) -> None:
        """Learn the backend geometry (class/CSR counts, masked CSRs)."""
        self.geometry = dict(geometry)

    def _masked(self, csr: int) -> bool:
        return csr in self.geometry.get("masked_csrs", ())

    def observe(self, event: TraceEvent) -> List[str]:
        """Judge one event; return problem strings (usually empty)."""
        raise NotImplementedError


class InstRetirementContract(Contract):
    """C1 — no instruction retires without its inst-bitmap bit set.

    Shadow: the per-domain set of granted instruction classes.  Any
    ``ok`` check outside domain-0 whose class is not currently granted
    is a violation — the defining HPT guarantee of the paper's §4.1.
    """

    name = "inst_retirement"
    description = ("an ok verdict outside domain-0 requires the issuing "
                   "domain's inst-bitmap bit for that instruction class")
    vocabulary = ("check", "reconfig")

    def reset(self) -> None:
        self.allowed: Dict[int, Set[int]] = {}

    def observe(self, event: TraceEvent) -> List[str]:
        if event.kind == "reconfig":
            if event.op == "create_domain" or event.op == "clear_domain":
                self.allowed[event.domain] = set()
            elif event.op == "allow_inst":
                self.allowed.setdefault(event.domain, set()).add(event.inst)
            elif event.op == "deny_inst":
                self.allowed.setdefault(event.domain,
                                        set()).discard(event.inst)
            return []
        if event.kind != "check" or event.status != "ok":
            return []
        if event.domain == DOMAIN_0 or event.inst < 0:
            return []
        if event.inst not in self.allowed.get(event.domain, ()):
            return ["instruction class %d retired in domain %d without an "
                    "inst-bitmap grant" % (event.inst, event.domain)]
        return []


class CsrRetirementContract(Contract):
    """C2 — CSR accesses honour the register bitmap and write masks.

    Shadow: per-domain readable/writable CSR sets plus per-CSR write
    masks.  An ``ok`` read needs the read bit; an ``ok`` write to an
    unmasked CSR needs the write bit; an ``ok`` write to a *masked* CSR
    must not change bits outside the granted mask — the mask rule
    replaces the write bit entirely for masked registers (§4.2).
    """

    name = "csr_retirement"
    description = ("an ok CSR access outside domain-0 requires the "
                   "read/write bitmap bit, and masked writes may only "
                   "change bits inside the granted mask")
    vocabulary = ("check", "reconfig")

    def reset(self) -> None:
        self.readable: Dict[int, Set[int]] = {}
        self.writable: Dict[int, Set[int]] = {}
        self.masks: Dict[int, Dict[int, int]] = {}

    def observe(self, event: TraceEvent) -> List[str]:
        if event.kind == "reconfig":
            domain = event.domain
            if event.op == "create_domain" or event.op == "clear_domain":
                self.readable[domain] = set()
                self.writable[domain] = set()
                self.masks[domain] = {}
            elif event.op == "grant_csr":
                if event.read:
                    self.readable.setdefault(domain, set()).add(event.csr)
                if event.write:
                    self.writable.setdefault(domain, set()).add(event.csr)
            elif event.op == "revoke_csr":
                if event.read:
                    self.readable.setdefault(domain,
                                             set()).discard(event.csr)
                if event.write:
                    self.writable.setdefault(domain,
                                             set()).discard(event.csr)
            elif event.op == "set_mask":
                self.masks.setdefault(domain, {})[event.csr] = event.bits
            return []
        if event.kind != "check" or event.status != "ok":
            return []
        if event.domain == DOMAIN_0 or event.csr < 0:
            return []
        problems: List[str] = []
        if event.read and event.csr not in self.readable.get(event.domain,
                                                             ()):
            problems.append("CSR %d read in domain %d without a read grant"
                            % (event.csr, event.domain))
        if event.write:
            if self._masked(event.csr):
                mask = self.masks.get(event.domain, {}).get(event.csr, 0)
                if (event.old ^ event.value) & ~mask:
                    problems.append(
                        "masked CSR %d write in domain %d changed bits "
                        "0x%x outside the granted mask 0x%x"
                        % (event.csr, event.domain,
                           (event.old ^ event.value) & ~mask, mask))
            elif event.csr not in self.writable.get(event.domain, ()):
                problems.append("CSR %d written in domain %d without a "
                                "write grant" % (event.csr, event.domain))
        return problems


class GateOnlySwitchContract(Contract):
    """C3 — every domain switch passes through a registered gate.

    Shadow: the expected current domain plus the gate table.  Every
    domain-bearing event must occur in the expected domain; successful
    calls must land exactly on the called gate's registered destination;
    successful returns may land anywhere except domain-0; failed gates
    must leave the domain untouched.  (The trusted *stack* is contract
    C6's and the lockstep oracle's business — this contract only polices
    that no switch bypasses the SGT.)
    """

    name = "gate_only_switches"
    description = ("the core's domain only ever changes through a "
                   "successful, registered gate instruction")
    vocabulary = ("check", "gate", "mem_write", "reconfig")

    def reset(self) -> None:
        self.expected = DOMAIN_0
        self.gates: Dict[int, int] = {}

    def _resync(self, event: TraceEvent, where: str) -> List[str]:
        problem = ("%s observed in domain %d but the last gate left the "
                   "core in domain %d" % (where, event.domain, self.expected))
        self.expected = event.domain  # resync: one finding, not a storm
        return [problem]

    def observe(self, event: TraceEvent) -> List[str]:
        if event.kind == "reconfig":
            if event.op == "register_gate":
                self.gates[event.gate] = event.dest
            elif event.op == "unregister_gate":
                self.gates.pop(event.gate, None)
            elif event.op == "sync_domain":
                self.expected = event.domain
            return []
        if event.kind == "check":
            if event.domain != self.expected:
                return self._resync(event, "a check")
            return []
        if event.kind == "mem_write":
            if event.domain >= 0 and event.domain != self.expected:
                return self._resync(event, "a trusted-memory store")
            return []
        if event.kind != "gate":
            return []
        problems: List[str] = []
        if event.pre_domain != self.expected:
            problems.append("gate executed from domain %d but the core was "
                            "last seen in domain %d"
                            % (event.pre_domain, self.expected))
            self.expected = event.pre_domain
        if event.status != "ok":
            if event.domain != self.expected:
                problems.append("faulted %s changed the domain from %d to %d"
                                % (event.op, self.expected, event.domain))
                self.expected = event.domain
            return problems
        if event.op in ("hccall", "hccalls"):
            dest = self.gates.get(event.gate)
            if dest is None:
                problems.append("successful %s through unregistered gate %d"
                                % (event.op, event.gate))
            elif event.domain != dest:
                problems.append(
                    "gate %d switched the core to domain %d; its registered "
                    "destination is domain %d"
                    % (event.gate, event.domain, dest))
        elif event.op == "hcrets" and event.domain == DOMAIN_0:
            problems.append("successful hcrets returned into domain-0")
        self.expected = event.domain
        return problems


class TrustedMemConfinementContract(Contract):
    """C4 — trusted memory is only written by software from domain-0.

    Software stores must sit inside a domain-0 manager transaction;
    hardware pushes (``hw``), domain-0 provisioning (``d0``) and
    scrubber repairs (``scrub``) are the architecture's own writers and
    are exempt by origin.
    """

    name = "trusted_mem_d0"
    description = ("software writes to trusted memory only occur inside "
                   "domain-0 manager transactions")
    vocabulary = ("mem_write", "txn")

    def reset(self) -> None:
        self.in_txn = False

    def observe(self, event: TraceEvent) -> List[str]:
        if event.kind == "txn":
            self.in_txn = event.op == "begin"
            return []
        if event.kind != "mem_write" or event.op != "sw":
            return []
        if not self.in_txn and event.domain not in (-1, DOMAIN_0):
            return ["software stored 0x%x to trusted word 0x%x from domain "
                    "%d outside any domain-0 transaction"
                    % (event.value, event.address, event.domain)]
        return []


class CoherenceAfterRevokeContract(Contract):
    """C5 — no verdict uses a privilege revoked before the check.

    Shadow: per-domain sets of *revoked* privileges — ever granted,
    later removed, not re-granted since.  An ``ok`` check consuming a
    revoked grant means a stale cached privilege survived the revoke's
    invalidation sweep (§5's cache-coherence obligation).  Masked-CSR
    write staleness is covered by C2's mask rule (revokes zero the
    mask), so only unmasked writes are tracked here.
    """

    name = "coherence_after_revoke"
    description = ("an ok verdict never consumes a privilege whose grant "
                   "was revoked before the check (no stale caches)")
    vocabulary = ("check", "reconfig")

    def reset(self) -> None:
        self.inst_allowed: Dict[int, Set[int]] = {}
        self.inst_revoked: Dict[int, Set[int]] = {}
        self.read_allowed: Dict[int, Set[int]] = {}
        self.read_revoked: Dict[int, Set[int]] = {}
        self.write_allowed: Dict[int, Set[int]] = {}
        self.write_revoked: Dict[int, Set[int]] = {}

    @staticmethod
    def _grant(allowed, revoked, domain, item) -> None:
        allowed.setdefault(domain, set()).add(item)
        revoked.setdefault(domain, set()).discard(item)

    @staticmethod
    def _revoke(allowed, revoked, domain, item) -> None:
        if item in allowed.get(domain, ()):
            allowed[domain].discard(item)
            revoked.setdefault(domain, set()).add(item)

    @staticmethod
    def _clear(allowed, revoked, domain) -> None:
        revoked.setdefault(domain, set()).update(allowed.get(domain, ()))
        allowed[domain] = set()

    def observe(self, event: TraceEvent) -> List[str]:
        if event.kind == "reconfig":
            domain = event.domain
            if event.op == "create_domain":
                for table in (self.inst_allowed, self.inst_revoked,
                              self.read_allowed, self.read_revoked,
                              self.write_allowed, self.write_revoked):
                    table[domain] = set()
            elif event.op == "clear_domain":
                self._clear(self.inst_allowed, self.inst_revoked, domain)
                self._clear(self.read_allowed, self.read_revoked, domain)
                self._clear(self.write_allowed, self.write_revoked, domain)
            elif event.op == "allow_inst":
                self._grant(self.inst_allowed, self.inst_revoked, domain,
                            event.inst)
            elif event.op == "deny_inst":
                self._revoke(self.inst_allowed, self.inst_revoked, domain,
                             event.inst)
            elif event.op == "grant_csr":
                if event.read:
                    self._grant(self.read_allowed, self.read_revoked,
                                domain, event.csr)
                if event.write:
                    self._grant(self.write_allowed, self.write_revoked,
                                domain, event.csr)
            elif event.op == "revoke_csr":
                if event.read:
                    self._revoke(self.read_allowed, self.read_revoked,
                                 domain, event.csr)
                if event.write:
                    self._revoke(self.write_allowed, self.write_revoked,
                                 domain, event.csr)
            return []
        if event.kind != "check" or event.status != "ok":
            return []
        if event.domain == DOMAIN_0:
            return []
        problems: List[str] = []
        if event.inst in self.inst_revoked.get(event.domain, ()):
            problems.append(
                "verdict honoured instruction class %d in domain %d after "
                "its grant was revoked (stale cached privilege)"
                % (event.inst, event.domain))
        if event.csr >= 0:
            if event.read and event.csr in self.read_revoked.get(
                    event.domain, ()):
                problems.append(
                    "verdict honoured a read of CSR %d in domain %d after "
                    "the read grant was revoked" % (event.csr, event.domain))
            if (event.write and not self._masked(event.csr)
                    and event.csr in self.write_revoked.get(event.domain,
                                                            ())):
                problems.append(
                    "verdict honoured a write of CSR %d in domain %d after "
                    "the write grant was revoked" % (event.csr, event.domain))
        return problems


class RollbackAtomicityContract(Contract):
    """C6 — an aborted transaction restores pre-transaction memory.

    Shadow: the first-touch journal of the open transaction — each
    touched address mapped to the value it held *before* the first
    store.  Abort events carry the post-abort contents of every touched
    word; any mismatch means the HPT/SGT backing store rolled back to
    something other than the pre-transaction state.
    """

    name = "rollback_atomicity"
    description = ("after an aborted transaction, every touched trusted "
                   "word holds its pre-transaction value")
    vocabulary = ("mem_write", "txn")

    def reset(self) -> None:
        self.in_txn = False
        self.first_touch: Dict[int, int] = {}

    def observe(self, event: TraceEvent) -> List[str]:
        if event.kind == "mem_write":
            # Seal-word sets bypass the journal by design (sealing is
            # one-way); the abort replay will not restore them, so they
            # must not enter the first-touch shadow.
            if self.in_txn and event.op != "seal":
                self.first_touch.setdefault(event.address, event.old)
            return []
        if event.kind != "txn":
            return []
        if event.op == "begin":
            self.in_txn = True
            self.first_touch = {}
            return []
        if event.op == "commit":
            self.in_txn = False
            self.first_touch = {}
            return []
        # abort: compare the post-abort snapshot with first-touch values
        problems: List[str] = []
        observed = event.values or {}
        for address in sorted(self.first_touch):
            want = self.first_touch[address]
            got = observed.get(address, want)
            if got != want:
                problems.append(
                    "post-abort trusted word 0x%x holds 0x%x; the "
                    "pre-transaction value was 0x%x" % (address, got, want))
        self.in_txn = False
        self.first_touch = {}
        return problems


class NoStaleGenerationContract(Contract):
    """C7 — no check retires against a recycled slot's prior tenant.

    Shadow of the domain-virtualization layer (DESIGN §3.17): per-slot
    generation counters driven by ``bind_slot``/``recycle_slot``
    reconfigs, plus the generation the core *entered* each slot at
    (latched from successful gate events).  An ``ok`` check in a
    slot-managed domain is a violation when the slot is unbound (its
    tenant was recycled away) or when the core's entry generation no
    longer matches the slot's — either way the verdict was served
    against a dead tenant's tables.  A generation mismatch surfacing as
    a *hard fault* is the architecture working as specified and never
    violates.
    """

    name = "no_stale_generation"
    description = ("an ok verdict in a virtualized slot requires the slot "
                   "to be bound and the core's entry generation to match "
                   "the slot's current generation")
    vocabulary = ("check", "gate", "reconfig")

    def reset(self) -> None:
        #: physical slot -> current generation (tracked slots only)
        self.slot_gen: Dict[int, int] = {}
        #: physical slot -> bound logical tenant
        self.bound: Dict[int, int] = {}
        #: physical slot -> generation the core last entered it at
        self.entry_gen: Dict[int, int] = {}

    def observe(self, event: TraceEvent) -> List[str]:
        if event.kind == "reconfig":
            if event.op == "bind_slot":
                self.slot_gen[event.domain] = event.bits
                self.bound[event.domain] = event.dest
            elif event.op == "recycle_slot":
                self.slot_gen[event.domain] = event.bits
                self.bound.pop(event.domain, None)
            return []
        if event.status != "ok":
            return []
        if event.kind == "gate":
            if event.domain in self.slot_gen:
                self.entry_gen[event.domain] = self.slot_gen[event.domain]
            return []
        if event.kind != "check":
            return []
        domain = event.domain
        if domain == DOMAIN_0 or domain not in self.slot_gen:
            return []
        current = self.slot_gen[domain]
        if domain not in self.bound:
            return ["check retired ok in slot %d after its tenant was "
                    "recycled away (generation %d)" % (domain, current)]
        entered = self.entry_gen.get(domain, current)
        if entered != current:
            return ["check retired ok in slot %d at generation %d but the "
                    "core entered at generation %d — a prior tenant's "
                    "verdict" % (domain, current, entered)]
        return []


class NoUnsealContract(Contract):
    """C8 — a sealed privilege is never honoured again.

    Shadow: per-domain sets of sealed instruction classes and sealed
    CSR read/write sides, built from ``seal`` reconfigs.  Seals only
    retire with the domain itself (``create_domain``/``clear_domain``
    reset, and ``recycle_slot`` — the seal belongs to the tenant, and
    the virtualizer clears it with the generation bump).  Any later
    ``ok`` check consuming a sealed privilege is a violation — however
    it came back: a domain-0 re-grant, a rolled-back transaction, a
    recycled slot under a stale flush, or a flipped seal word.

    A masked-CSR write that changes no bits is not *consuming* the
    sealed write privilege (the PCU legitimately allows it: the seal
    forces the effective mask to zero, and a no-change write passes a
    zero mask), so only bit-changing masked writes violate.
    """

    name = "no_unseal"
    description = ("an ok verdict never consumes a privilege that was "
                   "sealed earlier in the domain's lifetime")
    vocabulary = ("check", "reconfig")

    def reset(self) -> None:
        self.sealed_inst: Dict[int, Set[int]] = {}
        self.sealed_read: Dict[int, Set[int]] = {}
        self.sealed_write: Dict[int, Set[int]] = {}

    def observe(self, event: TraceEvent) -> List[str]:
        if event.kind == "reconfig":
            domain = event.domain
            if event.op in ("create_domain", "clear_domain", "recycle_slot"):
                self.sealed_inst[domain] = set()
                self.sealed_read[domain] = set()
                self.sealed_write[domain] = set()
            elif event.op == "seal":
                if event.inst >= 0:
                    self.sealed_inst.setdefault(domain,
                                                set()).add(event.inst)
                if event.csr >= 0:
                    if event.read:
                        self.sealed_read.setdefault(domain,
                                                    set()).add(event.csr)
                    if event.write:
                        self.sealed_write.setdefault(domain,
                                                     set()).add(event.csr)
            return []
        if event.kind != "check" or event.status != "ok":
            return []
        if event.domain == DOMAIN_0:
            return []
        problems: List[str] = []
        if event.inst in self.sealed_inst.get(event.domain, ()):
            problems.append(
                "verdict honoured instruction class %d in domain %d after "
                "it was sealed" % (event.inst, event.domain))
        if event.csr >= 0:
            if event.read and event.csr in self.sealed_read.get(
                    event.domain, ()):
                problems.append(
                    "verdict honoured a read of sealed CSR %d in domain %d"
                    % (event.csr, event.domain))
            if event.write and event.csr in self.sealed_write.get(
                    event.domain, ()):
                if not (self._masked(event.csr)
                        and event.old == event.value):
                    problems.append(
                        "verdict honoured a write of sealed CSR %d in "
                        "domain %d" % (event.csr, event.domain))
        return problems


#: Registry, in canonical report order.
CONTRACT_CLASSES = (
    InstRetirementContract,
    CsrRetirementContract,
    GateOnlySwitchContract,
    TrustedMemConfinementContract,
    CoherenceAfterRevokeContract,
    RollbackAtomicityContract,
    NoStaleGenerationContract,
    NoUnsealContract,
)

#: Canonical contract names, matching :data:`CONTRACT_CLASSES` order.
CONTRACT_NAMES = tuple(cls.name for cls in CONTRACT_CLASSES)


def make_contracts() -> List[Contract]:
    """Fresh instances of every registered contract, canonical order."""
    return [cls() for cls in CONTRACT_CLASSES]
