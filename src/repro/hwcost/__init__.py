"""Analytic FPGA resource model (Table 6)."""

from .fpga import (
    FIXED_FF,
    FIXED_LUT,
    FpgaUtilization,
    HPT_ENTRY_FF,
    HPT_ENTRY_LUT,
    ROCKET_BASELINE,
    SGT_ENTRY_FF,
    SGT_ENTRY_LUT,
    estimate,
    pcu_cost,
    rocket_baseline,
    table6_rows,
)

__all__ = [
    "FIXED_FF",
    "FIXED_LUT",
    "FpgaUtilization",
    "HPT_ENTRY_FF",
    "HPT_ENTRY_LUT",
    "ROCKET_BASELINE",
    "SGT_ENTRY_FF",
    "SGT_ENTRY_LUT",
    "estimate",
    "pcu_cost",
    "rocket_baseline",
    "table6_rows",
]
