"""Analytic FPGA resource model for the PCU (Table 6).

The paper synthesizes the modified Rocket Core with Vivado; the PCU's
cost is dominated by its fully-associative caches (tag comparators and
payload/LRU registers) plus the fixed check/switch logic.  This model
prices those components per entry and is calibrated so the three
evaluated configurations land on the paper's Table 6 utilization:

=========  =========  =========  ==========  ==========
config     ΔLUT       ΔFF        LUT %       FF %
=========  =========  =========  ==========  ==========
``16E.``   +2284      +2704      4.47%       7.20%
``8E.``    +1548      +1632      3.03%       4.34%
``8E.N``   +1130      +1107      2.21%       2.95%
=========  =========  =========  ==========  ==========

RAM blocks and DSPs stay at the baseline (the caches are register
files, not BRAM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import ALL_CONFIGS, PcuConfig

#: Unmodified Rocket Core utilization on the VC707 (Table 6 baseline).
ROCKET_BASELINE = {
    "lut_logic": 51137,
    "lut_memory": 6420,
    "flip_flops": 37576,
    "ramb36": 10,
    "ramb18": 10,
    "dsp48e1": 15,
}

# Per-component prices, calibrated against the paper's Vivado reports.
# An HPT cache entry: ~76-bit tag+payload+LRU state in FFs, a tag
# comparator plus hit-mux slice in LUTs.
HPT_ENTRY_LUT = 13.25
HPT_ENTRY_FF = 22.8
# An SGT entry is wider (gate address, destination, domain): more FFs
# per entry and a wider comparator.
SGT_ENTRY_LUT = 52.25
SGT_ENTRY_FF = 65.6
# Fixed logic: the hybrid check engine (bit-mask XOR/AND-reduce tree,
# bitmap index decode), the switching engine (address equality, trusted
# stack pointer datapath), the bypass register, and the Table-2
# architectural registers.
FIXED_LUT = 812
FIXED_FF = 560


@dataclass(frozen=True)
class FpgaUtilization:
    """Synthesis result for one configuration."""

    name: str
    lut_logic: int
    lut_memory: int
    flip_flops: int
    ramb36: int
    ramb18: int
    dsp48e1: int

    def overhead_vs(self, baseline: "FpgaUtilization") -> Dict[str, float]:
        """Fractional increase per resource class."""
        def pct(ours: int, base: int) -> float:
            return (ours - base) / base if base else 0.0

        return {
            "lut_logic": pct(self.lut_logic, baseline.lut_logic),
            "lut_memory": pct(self.lut_memory, baseline.lut_memory),
            "flip_flops": pct(self.flip_flops, baseline.flip_flops),
            "ramb36": pct(self.ramb36, baseline.ramb36),
            "ramb18": pct(self.ramb18, baseline.ramb18),
            "dsp48e1": pct(self.dsp48e1, baseline.dsp48e1),
        }


def rocket_baseline() -> FpgaUtilization:
    return FpgaUtilization(name="Rocket Core", **{
        "lut_logic": ROCKET_BASELINE["lut_logic"],
        "lut_memory": ROCKET_BASELINE["lut_memory"],
        "flip_flops": ROCKET_BASELINE["flip_flops"],
        "ramb36": ROCKET_BASELINE["ramb36"],
        "ramb18": ROCKET_BASELINE["ramb18"],
        "dsp48e1": ROCKET_BASELINE["dsp48e1"],
    })


def pcu_cost(config: PcuConfig) -> Dict[str, int]:
    """Incremental LUT/FF cost of one PCU configuration."""
    hpt_entries = 3 * config.hpt_cache_entries
    sgt_entries = config.sgt_cache_entries
    lut = FIXED_LUT + HPT_ENTRY_LUT * hpt_entries + SGT_ENTRY_LUT * sgt_entries
    ff = FIXED_FF + HPT_ENTRY_FF * hpt_entries + SGT_ENTRY_FF * sgt_entries
    return {"lut_logic": round(lut), "flip_flops": round(ff)}


def estimate(config: PcuConfig) -> FpgaUtilization:
    """Rocket + PCU utilization for one configuration."""
    delta = pcu_cost(config)
    base = rocket_baseline()
    return FpgaUtilization(
        name=config.name,
        lut_logic=base.lut_logic + delta["lut_logic"],
        lut_memory=base.lut_memory,          # caches are FFs, not LUTRAM
        flip_flops=base.flip_flops + delta["flip_flops"],
        ramb36=base.ramb36,                  # no BRAM added
        ramb18=base.ramb18,
        dsp48e1=base.dsp48e1,                # no multipliers added
    )


def table6_rows() -> List[Dict[str, object]]:
    """All Table 6 rows: baseline plus the three configurations."""
    base = rocket_baseline()
    rows: List[Dict[str, object]] = [
        {
            "name": base.name,
            "lut_logic": base.lut_logic,
            "lut_memory": base.lut_memory,
            "flip_flops": base.flip_flops,
            "ramb36": base.ramb36,
            "ramb18": base.ramb18,
            "dsp48e1": base.dsp48e1,
            "lut_pct": 0.0,
            "ff_pct": 0.0,
        }
    ]
    for config in ALL_CONFIGS:
        utilization = estimate(config)
        overhead = utilization.overhead_vs(base)
        rows.append(
            {
                "name": utilization.name,
                "lut_logic": utilization.lut_logic,
                "lut_memory": utilization.lut_memory,
                "flip_flops": utilization.flip_flops,
                "ramb36": utilization.ramb36,
                "ramb18": utilization.ramb18,
                "dsp48e1": utilization.dsp48e1,
                "lut_pct": overhead["lut_logic"] * 100,
                "ff_pct": overhead["flip_flops"] * 100,
            }
        )
    return rows
