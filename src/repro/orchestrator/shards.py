"""Shard planning: deterministic partitioning of a campaign's seed space.

A *shard* is the orchestrator's unit of distribution: one self-contained
slice of a campaign matrix that a worker process can execute without
talking to anyone else, described entirely by JSON-serializable
parameters.  Two invariants make parallel runs trustworthy:

* **Seed-space determinism** — the shard layout is a pure function of
  the campaign parameters (backends, configs, seed, event and campaign
  counts), never of ``--jobs``, worker scheduling, or a previous run's
  state.  ``--jobs 4`` therefore generates exactly the streams that
  ``--jobs 1`` generates, and a resumed run slots its completed shards
  back into the same layout.
* **Order-independent merging** — every shard result carries enough
  indexing (backend, config, campaign range) for the merge step to
  reassemble results in canonical matrix order no matter which worker
  finished first.

Shard granularity: the conformance fuzzer replays one stateful stream
per (backend, config) pair, so that pair is the smallest splittable
unit.  Fault campaigns are independent per campaign index, so each
(backend, config) unit is further chunked into contiguous campaign
ranges; the chunk size is derived from the campaign count alone (see
:data:`FAULT_SHARDS_PER_UNIT`) so the layout survives re-planning with
a different worker count.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: How many shards one (backend, config) fault unit is split into, at
#: most.  A policy constant, not a tunable: changing it changes shard
#: ids and orphans the checkpoints of in-flight runs.
FAULT_SHARDS_PER_UNIT = 8


@dataclass(frozen=True)
class ShardSpec:
    """One self-contained slice of a campaign, ready to hand a worker.

    ``params`` must stay JSON-plain: it crosses the process boundary as
    the worker's whole world view.  ``sabotage`` is a test-only hook the
    failure-path tests use to make a worker crash, hang or raise on a
    chosen attempt; production planners never set it.
    """

    shard_id: str
    kind: str                      # "faults" | "conformance" | "bench"
    params: Dict[str, object] = field(default_factory=dict, hash=False)
    weight: int = 0                # events this shard replays (metrics)
    sabotage: Optional[Dict[str, object]] = field(default=None, hash=False)

    def to_dict(self) -> Dict[str, object]:
        return {
            "shard_id": self.shard_id,
            "kind": self.kind,
            "params": dict(self.params),
            "weight": self.weight,
            "sabotage": dict(self.sabotage) if self.sabotage else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardSpec":
        return cls(
            shard_id=data["shard_id"],
            kind=data["kind"],
            params=dict(data.get("params") or {}),
            weight=int(data.get("weight") or 0),
            sabotage=dict(data["sabotage"]) if data.get("sabotage") else None,
        )


@dataclass
class ShardResult:
    """What came back from one shard: payload plus run accounting."""

    shard_id: str
    status: str                    # "ok" | "quarantined"
    payload: Dict[str, object] = field(default_factory=dict)
    elapsed_s: float = 0.0
    events_run: int = 0
    worker_pid: int = 0
    max_rss_kb: int = 0
    attempt: int = 0
    failures: List[str] = field(default_factory=list)
    cached: bool = False           # satisfied from the resume journal

    def to_dict(self) -> Dict[str, object]:
        return {
            "shard_id": self.shard_id,
            "status": self.status,
            "payload": self.payload,
            "elapsed_s": self.elapsed_s,
            "events_run": self.events_run,
            "worker_pid": self.worker_pid,
            "max_rss_kb": self.max_rss_kb,
            "attempt": self.attempt,
            "failures": list(self.failures),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardResult":
        return cls(
            shard_id=data["shard_id"],
            status=data.get("status", "ok"),
            payload=data.get("payload") or {},
            elapsed_s=float(data.get("elapsed_s") or 0.0),
            events_run=int(data.get("events_run") or 0),
            worker_pid=int(data.get("worker_pid") or 0),
            max_rss_kb=int(data.get("max_rss_kb") or 0),
            attempt=int(data.get("attempt") or 0),
            failures=list(data.get("failures") or []),
        )


@dataclass
class ShardPlan:
    """The full deterministic shard layout of one orchestrated run."""

    kind: str
    params: Dict[str, object]      # the campaign-level parameters
    shards: List[ShardSpec]

    @property
    def total_weight(self) -> int:
        return sum(shard.weight for shard in self.shards)

    def fingerprint(self) -> str:
        """Content hash of the layout: the resume-compatibility key.

        Two plans with the same fingerprint generate identical streams
        shard for shard, so their checkpoints are interchangeable.
        """
        digest = hashlib.sha256()
        digest.update(json.dumps(self.params, sort_keys=True).encode())
        for shard in self.shards:
            digest.update(shard.shard_id.encode())
        return digest.hexdigest()[:16]


def _fault_chunk(n_campaigns: int) -> int:
    """Campaigns per fault shard — a function of the matrix size only."""
    return max(1, -(-n_campaigns // FAULT_SHARDS_PER_UNIT))


def plan_fault_shards(
    backends: Sequence[str],
    configs: Sequence[str],
    seed: int,
    n_events: int,
    n_campaigns: int,
    scrub_interval: int,
    faults_per_campaign: int = 1,
    profile: bool = False,
    contracts: bool = True,
) -> ShardPlan:
    """Chunk the (backend x config x campaign) fault matrix into shards.

    Each shard runs the contiguous campaign range ``[lo, hi)`` of one
    (backend, config) pair.  Workers re-derive the campaign's
    :class:`~repro.faults.plan.FaultPlan` draws from campaign 0, so a
    shard's fault specs are identical to the ones a serial run would
    hand those campaign indices.
    """
    chunk = _fault_chunk(n_campaigns)
    shards: List[ShardSpec] = []
    for backend in backends:
        for config in configs:
            for lo in range(0, n_campaigns, chunk):
                hi = min(lo + chunk, n_campaigns)
                params = {
                    "backend": backend,
                    "config": config,
                    "seed": seed,
                    "n_events": n_events,
                    "n_campaigns": n_campaigns,
                    "campaign_lo": lo,
                    "campaign_hi": hi,
                    "scrub_interval": scrub_interval,
                    "faults_per_campaign": faults_per_campaign,
                    "contracts": bool(contracts),
                }
                # Only present when set, so profiled and plain runs of
                # the same campaign share shard ids but not run dirs
                # (plan params feed the fingerprint) and pre-profile
                # checkpoints stay resumable.
                if profile:
                    params["profile"] = True
                shards.append(ShardSpec(
                    shard_id="faults-%s-%s-c%04d-c%04d" % (backend, config,
                                                           lo, hi),
                    kind="faults",
                    params=params,
                    weight=(hi - lo) * n_events,
                ))
    plan_params = {
        "backends": list(backends), "configs": list(configs),
        "seed": seed, "n_events": n_events, "n_campaigns": n_campaigns,
        "scrub_interval": scrub_interval,
        "faults_per_campaign": faults_per_campaign,
        "contracts": bool(contracts),
    }
    if profile:
        plan_params["profile"] = True
    return ShardPlan(kind="faults", params=plan_params, shards=shards)


def plan_machine_fault_shards(
    backends: Sequence[str],
    seed: int,
    n_campaigns: int,
    iterations: int,
    faults_per_campaign: int = 1,
    scrub_interval: Optional[int] = None,
    pulse_interval: Optional[int] = None,
    profile: bool = False,
    contracts: bool = True,
    state_changing_pulses: bool = False,
) -> ShardPlan:
    """Chunk the machine-level (backend x campaign) matrix into shards.

    Machine campaigns draw their fault specs from a per-campaign RNG
    (see :meth:`repro.faults.plan.FaultPlan.draw_machine_specs`), so a
    worker executes exactly its ``[lo, hi)`` range — no replay of
    earlier campaigns is needed for stream identity.  The shard weight
    is the geometry's estimated instruction count, making the metrics'
    events/sec a simulated-instructions rate.
    """
    from repro.faults.machine import machine_geometry

    chunk = _fault_chunk(n_campaigns)
    shards: List[ShardSpec] = []
    for backend in backends:
        n_steps = machine_geometry(backend, iterations,
                                   scrub_interval, pulse_interval).n_steps
        for lo in range(0, n_campaigns, chunk):
            hi = min(lo + chunk, n_campaigns)
            params = {
                "backend": backend,
                "seed": seed,
                "n_campaigns": n_campaigns,
                "campaign_lo": lo,
                "campaign_hi": hi,
                "iterations": iterations,
                "faults_per_campaign": faults_per_campaign,
                "scrub_interval": scrub_interval,
                "pulse_interval": pulse_interval,
                "contracts": bool(contracts),
            }
            if profile:
                params["profile"] = True
            # Like "profile": present only when set, so the default
            # (state-neutral) layout keeps its historical shard ids.
            if state_changing_pulses:
                params["state_changing_pulses"] = True
            shards.append(ShardSpec(
                shard_id="mfaults-%s-c%04d-c%04d" % (backend, lo, hi),
                kind="machine_faults",
                params=params,
                weight=(hi - lo) * n_steps,
            ))
    plan_params = {
        "backends": list(backends), "seed": seed,
        "n_campaigns": n_campaigns, "iterations": iterations,
        "faults_per_campaign": faults_per_campaign,
        "scrub_interval": scrub_interval, "pulse_interval": pulse_interval,
        "contracts": bool(contracts),
    }
    if profile:
        plan_params["profile"] = True
    if state_changing_pulses:
        plan_params["state_changing_pulses"] = True
    return ShardPlan(kind="machine_faults", params=plan_params, shards=shards)


def plan_churn_shards(
    backends: Sequence[str],
    seed: int,
    n_ops: int,
    n_campaigns: int,
    max_slots: int,
    config: str = "stress",
    scrub_interval: int = 0,
    profile: bool = False,
    contracts: bool = True,
) -> ShardPlan:
    """Chunk the tenant-churn (backend x campaign) matrix into shards.

    Churn campaigns draw their recycle-window fault specs from a
    per-campaign RNG (:meth:`repro.faults.plan.FaultPlan.draw_churn_specs`)
    and each campaign's tenant stream is seeded ``seed + campaign``, so —
    like the machine matrix — a worker executes exactly its ``[lo, hi)``
    range with no replay of earlier campaigns.  The shard weight is the
    churn-op count the range will generate.
    """
    chunk = _fault_chunk(n_campaigns)
    shards: List[ShardSpec] = []
    for backend in backends:
        for lo in range(0, n_campaigns, chunk):
            hi = min(lo + chunk, n_campaigns)
            params = {
                "backend": backend,
                "seed": seed,
                "n_ops": n_ops,
                "n_campaigns": n_campaigns,
                "campaign_lo": lo,
                "campaign_hi": hi,
                "max_slots": max_slots,
                "config": config,
                "scrub_interval": scrub_interval,
                "contracts": bool(contracts),
            }
            if profile:
                params["profile"] = True
            shards.append(ShardSpec(
                shard_id="churn-%s-c%04d-c%04d" % (backend, lo, hi),
                kind="churn",
                params=params,
                weight=(hi - lo) * n_ops,
            ))
    plan_params = {
        "backends": list(backends), "seed": seed, "n_ops": n_ops,
        "n_campaigns": n_campaigns, "max_slots": max_slots,
        "config": config, "scrub_interval": scrub_interval,
        "contracts": bool(contracts),
    }
    if profile:
        plan_params["profile"] = True
    return ShardPlan(kind="churn", params=plan_params, shards=shards)


def plan_conformance_shards(
    backends: Sequence[str],
    configs: Sequence[str],
    seed: int,
    n_events: int,
    layer: str = "pcu",
    scrub_interval: int = 0,
    oracle_only: bool = False,
    dump_dir: Optional[str] = ".",
    profile: bool = False,
    contracts: bool = True,
) -> ShardPlan:
    """One shard per (backend, config) pair of the conformance matrix.

    A conformance stream is stateful from its first event, so the pair
    is the smallest unit that can move to another process without
    changing which streams get generated.
    """
    shards = []
    for backend in backends:
        for config in configs:
            params = {
                "backend": backend,
                "config": config,
                "seed": seed,
                "n_events": n_events,
                "layer": layer,
                "scrub_interval": scrub_interval,
                "oracle_only": oracle_only,
                "dump_dir": dump_dir,
                "contracts": bool(contracts),
            }
            if profile:
                params["profile"] = True
            shards.append(ShardSpec(
                shard_id="conformance-%s-%s-s%d" % (backend, config, seed),
                kind="conformance",
                params=params,
                weight=n_events,
            ))
    plan_params = {
        "backends": list(backends), "configs": list(configs),
        "seed": seed, "n_events": n_events, "layer": layer,
        "scrub_interval": scrub_interval, "oracle_only": oracle_only,
        "contracts": bool(contracts),
    }
    if profile:
        plan_params["profile"] = True
    return ShardPlan(kind="conformance", params=plan_params, shards=shards)


def plan_bench_shards(
    rigs: Sequence[str],
    fast_path: bool = True,
    block_cache: bool = True,
    profile: bool = False,
) -> ShardPlan:
    """One shard per benchmark rig.

    A rig is self-contained (it boots its own kernels), so the rig is
    the natural distribution unit; the shard weight is the rig's rough
    dynamic instruction count so the run metrics report a meaningful
    events/sec.  ``fast_path`` is part of the layout: a ``--slow-path``
    run fingerprints (and checkpoints) separately from a fast one, and
    ``block_cache`` likewise (``--no-block-cache``).
    """
    from repro.bench.rigs import RIGS

    shards = []
    for rig in rigs:
        params = {"rig": rig, "fast_path": bool(fast_path),
                  "block_cache": bool(block_cache)}
        if profile:
            params["profile"] = True
        suffix = "fast" if fast_path else "slow"
        if not block_cache:
            suffix += "-noblocks"
        shards.append(ShardSpec(
            shard_id="bench-%s-%s" % (rig, suffix),
            kind="bench",
            params=params,
            weight=RIGS[rig].approx_instructions,
        ))
    plan_params = {"rigs": list(rigs), "fast_path": bool(fast_path)}
    if profile:
        plan_params["profile"] = True
    return ShardPlan(kind="bench", params=plan_params, shards=shards)
