"""Orchestrated campaign entry points and result merging.

These functions are what the CLI's ``--jobs N`` paths call: plan the
shards, bind (or resume) a checkpointed run directory, drive the plan
through the :class:`~repro.orchestrator.supervisor.Supervisor`, and
merge the per-shard JSON payloads back into the exact structures the
serial code paths produce.

Merging is where the bit-compatibility contract is enforced: fault
shard payloads are reassembled into
:class:`~repro.faults.campaign.CampaignMatrix` objects in canonical
(backend, config, campaign) order, so ``write_report`` emits the same
bytes a ``--jobs 1`` run would — worker scheduling leaves no trace.
Quarantined shards are the one exception: their campaigns are missing
from the merged matrices (recorded in the run directory instead), which
is precisely the "record the offending seed instead of killing the run"
trade the orchestrator makes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .checkpoint import RunJournal, default_run_dir
from .metrics import RunMetrics
from .shards import ShardPlan, ShardResult, ShardSpec
from .supervisor import DEFAULT_MAX_RETRIES, SupervisedRun, Supervisor


def _drive(
    plan: ShardPlan,
    jobs: int,
    run_dir: Optional[str],
    resume: bool,
    shard_timeout: Optional[float],
    max_retries: int,
    on_shard_done: Optional[Callable[[ShardResult], None]] = None,
    sabotage: Optional[Dict[str, Dict[str, object]]] = None,
) -> Tuple[SupervisedRun, str]:
    """Common plumbing: journal binding + supervised execution.

    ``sabotage`` maps shard ids to test-only failure hooks (see
    :mod:`~repro.orchestrator.worker`); production callers leave it
    unset.
    """
    specs: Sequence[ShardSpec] = plan.shards
    if sabotage:
        specs = [
            ShardSpec(spec.shard_id, spec.kind, spec.params, spec.weight,
                      sabotage.get(spec.shard_id))
            for spec in plan.shards
        ]
    run_dir = run_dir or default_run_dir(plan)
    journal = RunJournal(run_dir)
    journal.bind(plan, resume=resume)
    supervisor = Supervisor(jobs=jobs, shard_timeout=shard_timeout,
                            max_retries=max_retries)
    run = supervisor.run(specs, journal, RunMetrics(jobs=jobs),
                         on_shard_done=on_shard_done)
    return run, run_dir


def orchestrate_faults(
    backends: Sequence[str],
    configs: Sequence[str],
    seed: int,
    n_events: int,
    n_campaigns: int,
    *,
    jobs: int,
    scrub_interval: int,
    faults_per_campaign: int = 1,
    profile: bool = False,
    contracts: bool = True,
    run_dir: Optional[str] = None,
    resume: bool = False,
    shard_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    on_shard_done: Optional[Callable[[ShardResult], None]] = None,
    sabotage: Optional[Dict[str, Dict[str, object]]] = None,
):
    """Run the fault matrix sharded; return serial-identical matrices.

    Returns ``(matrices, run, run_dir)`` where ``matrices`` is the
    same list of :class:`~repro.faults.campaign.CampaignMatrix` a
    serial ``run_campaigns`` loop over (backends x configs) yields.
    """
    from .shards import plan_fault_shards

    plan = plan_fault_shards(backends, configs, seed, n_events, n_campaigns,
                             scrub_interval, faults_per_campaign,
                             profile=profile, contracts=contracts)
    run, run_dir = _drive(plan, jobs, run_dir, resume, shard_timeout,
                          max_retries, on_shard_done, sabotage)
    return merge_fault_results(backends, configs, seed, n_events, run), \
        run, run_dir


def merge_fault_results(
    backends: Sequence[str],
    configs: Sequence[str],
    seed: int,
    n_events: int,
    run: SupervisedRun,
) -> List["CampaignMatrix"]:
    """Reassemble shard payloads into canonical-order CampaignMatrix."""
    from repro.faults.campaign import CampaignMatrix, CampaignResult

    by_unit: Dict[Tuple[str, str], List[Dict[str, object]]] = {}
    for result in run.results:
        payload = result.payload
        key = (payload["backend"], payload["config"])
        by_unit.setdefault(key, []).append(payload)
    matrices: List[CampaignMatrix] = []
    for backend in backends:
        for config in configs:
            payloads = sorted(by_unit.get((backend, config), []),
                              key=lambda p: p["campaign_lo"])
            results = [CampaignResult.from_dict(entry)
                       for payload in payloads
                       for entry in payload["results"]]
            matrices.append(CampaignMatrix(backend, config, seed, n_events,
                                           results))
    return matrices


def orchestrate_machine_faults(
    backends: Sequence[str],
    seed: int,
    n_campaigns: int,
    *,
    jobs: int,
    iterations: Optional[int] = None,
    faults_per_campaign: int = 1,
    scrub_interval: Optional[int] = None,
    pulse_interval: Optional[int] = None,
    profile: bool = False,
    contracts: bool = True,
    state_changing_pulses: bool = False,
    run_dir: Optional[str] = None,
    resume: bool = False,
    shard_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    on_shard_done: Optional[Callable[[ShardResult], None]] = None,
    sabotage: Optional[Dict[str, Dict[str, object]]] = None,
):
    """Run the machine-level fault matrix sharded.

    Returns ``(matrices, run, run_dir)`` where ``matrices`` is the same
    list of :class:`~repro.faults.machine.MachineCampaignMatrix` a
    serial ``run_machine_campaigns`` loop over ``backends`` yields —
    byte-identical, since every campaign derives from a per-campaign RNG
    and a pure-function geometry.
    """
    from repro.faults.machine import DEFAULT_MACHINE_ITERATIONS

    from .shards import plan_machine_fault_shards

    if iterations is None:
        iterations = DEFAULT_MACHINE_ITERATIONS
    plan = plan_machine_fault_shards(
        backends, seed, n_campaigns, iterations,
        faults_per_campaign=faults_per_campaign,
        scrub_interval=scrub_interval, pulse_interval=pulse_interval,
        profile=profile, contracts=contracts,
        state_changing_pulses=state_changing_pulses)
    run, run_dir = _drive(plan, jobs, run_dir, resume, shard_timeout,
                          max_retries, on_shard_done, sabotage)
    return merge_machine_fault_results(backends, seed, iterations, run), \
        run, run_dir


def merge_machine_fault_results(
    backends: Sequence[str],
    seed: int,
    iterations: int,
    run: SupervisedRun,
) -> List["MachineCampaignMatrix"]:
    """Reassemble machine shard payloads in canonical campaign order."""
    from repro.faults.machine import (
        MachineCampaignMatrix,
        MachineCampaignResult,
    )

    by_backend: Dict[str, List[Dict[str, object]]] = {}
    for result in run.results:
        payload = result.payload
        by_backend.setdefault(payload["backend"], []).append(payload)
    matrices: List[MachineCampaignMatrix] = []
    for backend in backends:
        payloads = sorted(by_backend.get(backend, []),
                          key=lambda p: p["campaign_lo"])
        results = [MachineCampaignResult.from_dict(entry)
                   for payload in payloads
                   for entry in payload["results"]]
        matrices.append(MachineCampaignMatrix(backend, seed, iterations,
                                              results))
    return matrices


def orchestrate_churn(
    backends: Sequence[str],
    seed: int,
    n_ops: int,
    n_campaigns: int,
    *,
    jobs: int,
    max_slots: int,
    config: str = "stress",
    scrub_interval: int = 0,
    profile: bool = False,
    contracts: bool = True,
    run_dir: Optional[str] = None,
    resume: bool = False,
    shard_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    on_shard_done: Optional[Callable[[ShardResult], None]] = None,
    sabotage: Optional[Dict[str, Dict[str, object]]] = None,
):
    """Run the tenant-churn matrix sharded.

    Returns ``(matrices, run, run_dir)`` where ``matrices`` is the same
    list of :class:`~repro.faults.churn.ChurnMatrix` a serial
    ``run_churn_campaigns`` loop over ``backends`` yields —
    byte-identical, since every campaign derives from a per-campaign
    fault RNG and a ``seed + campaign`` tenant stream.
    """
    from .shards import plan_churn_shards

    plan = plan_churn_shards(backends, seed, n_ops, n_campaigns, max_slots,
                             config=config, scrub_interval=scrub_interval,
                             profile=profile, contracts=contracts)
    run, run_dir = _drive(plan, jobs, run_dir, resume, shard_timeout,
                          max_retries, on_shard_done, sabotage)
    return merge_churn_results(backends, seed, n_ops, max_slots, run), \
        run, run_dir


def merge_churn_results(
    backends: Sequence[str],
    seed: int,
    n_ops: int,
    max_slots: int,
    run: SupervisedRun,
) -> List["ChurnMatrix"]:
    """Reassemble churn shard payloads in canonical campaign order."""
    from repro.faults.churn import ChurnCampaignResult, ChurnMatrix

    by_backend: Dict[str, List[Dict[str, object]]] = {}
    for result in run.results:
        payload = result.payload
        by_backend.setdefault(payload["backend"], []).append(payload)
    matrices: List[ChurnMatrix] = []
    for backend in backends:
        payloads = sorted(by_backend.get(backend, []),
                          key=lambda p: p["campaign_lo"])
        results = [ChurnCampaignResult.from_dict(entry)
                   for payload in payloads
                   for entry in payload["results"]]
        matrices.append(ChurnMatrix(backend, seed, n_ops, max_slots, results))
    return matrices


def orchestrate_conformance(
    backends: Sequence[str],
    configs: Sequence[str],
    seed: int,
    n_events: int,
    *,
    jobs: int,
    layer: str = "pcu",
    scrub_interval: int = 0,
    oracle_only: bool = False,
    dump_dir: Optional[str] = ".",
    profile: bool = False,
    contracts: bool = True,
    run_dir: Optional[str] = None,
    resume: bool = False,
    shard_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    on_shard_done: Optional[Callable[[ShardResult], None]] = None,
    sabotage: Optional[Dict[str, Dict[str, object]]] = None,
):
    """Fuzz the conformance matrix sharded across workers.

    Returns ``(payloads, run, run_dir)``; ``payloads`` holds one result
    dict per (backend, config) pair in canonical order, shaped exactly
    like the serial path's summary (see
    :func:`repro.orchestrator.worker.run_conformance_shard`).
    """
    from .shards import plan_conformance_shards

    plan = plan_conformance_shards(backends, configs, seed, n_events,
                                   layer=layer,
                                   scrub_interval=scrub_interval,
                                   oracle_only=oracle_only,
                                   dump_dir=dump_dir,
                                   profile=profile, contracts=contracts)
    run, run_dir = _drive(plan, jobs, run_dir, resume, shard_timeout,
                          max_retries, on_shard_done, sabotage)
    by_unit = {(r.payload["backend"], r.payload["config"]): r.payload
               for r in run.results}
    payloads = [by_unit[(backend, config)]
                for backend in backends for config in configs
                if (backend, config) in by_unit]
    return payloads, run, run_dir


def orchestrate_bench(
    rigs: Sequence[str],
    *,
    fast_path: bool = True,
    block_cache: bool = True,
    jobs: int = 1,
    profile: bool = False,
    run_dir: Optional[str] = None,
    resume: bool = False,
    shard_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    on_shard_done: Optional[Callable[[ShardResult], None]] = None,
    sabotage: Optional[Dict[str, Dict[str, object]]] = None,
):
    """Run the benchmark rigs sharded; return per-rig trajectory records.

    Returns ``(payloads, run, run_dir)`` with one payload per requested
    rig, in request order (quarantined rigs are simply absent — they are
    recorded in the run directory like any other quarantined shard).
    One caveat the fuzz/fault campaigns don't have: wall-clock and
    instructions/s are *host* measurements, so ``--jobs N`` changes the
    numbers (workers share cores) even though the simulated
    instruction/cycle counts stay identical.
    """
    from .shards import plan_bench_shards

    plan = plan_bench_shards(rigs, fast_path=fast_path,
                             block_cache=block_cache, profile=profile)
    run, run_dir = _drive(plan, jobs, run_dir, resume, shard_timeout,
                          max_retries, on_shard_done, sabotage)
    by_rig = {result.payload["rig"]: result.payload for result in run.results}
    payloads = [by_rig[rig] for rig in rigs if rig in by_rig]
    return payloads, run, run_dir
