"""The shard worker: one process, one shard, one JSON result file.

``worker_entry`` is the ``multiprocessing`` target.  It executes the
shard described by a :class:`~repro.orchestrator.shards.ShardSpec`
dict and writes the :class:`~repro.orchestrator.shards.ShardResult`
payload to ``result_path`` with a write-to-temp-then-rename, so the
supervisor can treat "result file exists" as "shard completed":
a worker that crashed or was killed mid-shard leaves no file (or a
stray ``.tmp`` the next attempt overwrites), never a torn one.

Workers are deliberately dumb: no queues, no shared state, no retry
logic.  All supervision policy (timeouts, retries, quarantine) lives in
:mod:`~repro.orchestrator.supervisor`; all layout policy lives in
:mod:`~repro.orchestrator.shards`.  That split keeps the failure
semantics auditable — whatever a worker does, the worst outcome is a
missing result file.

The ``sabotage`` hook exists for the failure-path tests only: it lets a
spec ask the worker to SIGKILL itself, hang, or raise on attempts below
a threshold, which is how "a worker crashed mid-shard" is reproduced
deterministically inside the test suite.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
from typing import Dict, List

try:  # Unix-only; absent on some platforms, so peak RSS degrades to 0.
    import resource
except ImportError:  # pragma: no cover - non-posix fallback
    resource = None


def _max_rss_kb() -> int:
    """Peak RSS of this worker in KiB (0 where unsupported)."""
    if resource is None:  # pragma: no cover - non-posix fallback
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux but bytes on macOS — keyed on the
    # platform, not the magnitude (a Darwin worker peaking under 1 GiB
    # must not be reported 1024x too large).
    return usage // 1024 if sys.platform == "darwin" else usage


def _apply_sabotage(sabotage, attempt: int) -> None:
    """Test-only failure injection, keyed on the attempt number."""
    if not sabotage or attempt >= int(sabotage.get("attempts", 1)):
        return
    kind = sabotage.get("kind")
    if kind == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "hang":
        time.sleep(float(sabotage.get("seconds", 3600)))
    elif kind == "exception":
        raise RuntimeError("sabotaged shard (test hook)")


def run_fault_shard(params: Dict[str, object]) -> Dict[str, object]:
    """Execute the campaign range ``[campaign_lo, campaign_hi)``.

    The worker re-derives the full :class:`~repro.faults.plan.FaultPlan`
    sequence from campaign 0 so the specs for its range are drawn from
    exactly the RNG state a serial run would have reached — the heart of
    the "``--jobs N`` never changes the streams" contract.
    """
    from repro.faults.campaign import run_campaign
    from repro.faults.plan import FaultPlan

    plan = FaultPlan(int(params["seed"]))
    lo, hi = int(params["campaign_lo"]), int(params["campaign_hi"])
    per_campaign = int(params.get("faults_per_campaign", 1))
    n_events = int(params["n_events"])
    results: List[Dict[str, object]] = []
    events_run = 0
    for campaign in range(hi):
        specs = plan.draw_specs(campaign, n_events, count=per_campaign)
        if campaign < lo:
            continue  # drawn only to advance the plan's RNG
        result = run_campaign(
            params["backend"], specs[0],
            stream_seed=int(params["seed"]) + campaign,
            n_events=n_events,
            config=params["config"],
            scrub_interval=int(params["scrub_interval"]),
            campaign=campaign,
            extra_specs=specs[1:],
            contracts=bool(params.get("contracts", True)),
        )
        results.append(result.to_dict())
        events_run += result.events_run
    return {
        "backend": params["backend"],
        "config": params["config"],
        "campaign_lo": lo,
        "campaign_hi": hi,
        "results": results,
        "events_run": events_run,
    }


def run_machine_fault_shard(params: Dict[str, object]) -> Dict[str, object]:
    """Execute the machine-level campaign range ``[campaign_lo, campaign_hi)``.

    Unlike :func:`run_fault_shard` there is nothing to replay: machine
    campaigns use a per-campaign RNG, so drawing campaign ``k`` in a
    worker is byte-identical to drawing it in a serial loop.
    ``events_run`` reports simulated instructions (the machine-level
    analogue of replayed events).
    """
    from repro.faults.machine import run_planned_machine_campaign

    lo, hi = int(params["campaign_lo"]), int(params["campaign_hi"])
    scrub_interval = params.get("scrub_interval")
    pulse_interval = params.get("pulse_interval")
    results: List[Dict[str, object]] = []
    events_run = 0
    for campaign in range(lo, hi):
        result = run_planned_machine_campaign(
            params["backend"], int(params["seed"]), campaign,
            iterations=int(params["iterations"]),
            faults_per_campaign=int(params.get("faults_per_campaign", 1)),
            scrub_interval=(None if scrub_interval is None
                            else int(scrub_interval)),
            pulse_interval=(None if pulse_interval is None
                            else int(pulse_interval)),
            contracts=bool(params.get("contracts", True)),
            state_changing_pulses=bool(
                params.get("state_changing_pulses", False)),
        )
        results.append(result.to_dict())
        events_run += result.instructions
    return {
        "backend": params["backend"],
        "campaign_lo": lo,
        "campaign_hi": hi,
        "results": results,
        "events_run": events_run,
    }


def run_churn_shard(params: Dict[str, object]) -> Dict[str, object]:
    """Execute the tenant-churn campaign range ``[campaign_lo, campaign_hi)``.

    Like the machine matrix, churn campaigns draw from a per-campaign
    RNG and seed their tenant stream ``seed + campaign``, so the worker
    runs exactly its range.  ``events_run`` reports churn ops executed.
    """
    from repro.faults.churn import run_churn_campaigns

    lo, hi = int(params["campaign_lo"]), int(params["campaign_hi"])
    matrix = run_churn_campaigns(
        params["backend"], int(params["seed"]), int(params["n_ops"]),
        int(params["n_campaigns"]),
        max_slots=int(params["max_slots"]),
        config=params.get("config", "stress"),
        scrub_interval=int(params.get("scrub_interval", 0)),
        contracts=bool(params.get("contracts", True)),
        campaign_lo=lo, campaign_hi=hi,
    )
    return {
        "backend": params["backend"],
        "campaign_lo": lo,
        "campaign_hi": hi,
        "results": [result.to_dict() for result in matrix.results],
        "events_run": sum(result.ops_run for result in matrix.results),
    }


def run_conformance_shard(params: Dict[str, object]) -> Dict[str, object]:
    """Fuzz one (backend, config) pair; mirror of the serial CLI path."""
    from repro.conformance.runner import fuzz_backend

    result = fuzz_backend(
        params["backend"], int(params["seed"]), int(params["n_events"]),
        config=params["config"],
        oracle_only=bool(params.get("oracle_only")),
        dump_dir=params.get("dump_dir"),
        layer=params.get("layer", "pcu"),
        scrub_interval=int(params.get("scrub_interval", 0)),
        contracts=bool(params.get("contracts", True)),
    )
    payload = result.summary()
    payload["events_run"] = result.events
    return payload


def run_bench_shard(params: Dict[str, object]) -> Dict[str, object]:
    """Execute one benchmark rig; the payload is a trajectory record."""
    from repro.bench.rigs import run_rig

    payload = run_rig(params["rig"], fast_path=bool(params["fast_path"]),
                      block_cache=bool(params.get("block_cache", True)))
    payload["events_run"] = payload["instructions"]
    return payload


_SHARD_RUNNERS = {
    "faults": run_fault_shard,
    "machine_faults": run_machine_fault_shard,
    "churn": run_churn_shard,
    "conformance": run_conformance_shard,
    "bench": run_bench_shard,
}

#: How many cumulative-time rows a per-shard profile dump keeps.
PROFILE_TOP_N = 40


def _profiled_execute(spec_dict: Dict[str, object],
                      result_path: str) -> Dict[str, object]:
    """Run the shard under cProfile; dump top-N rows next to the result.

    The dump lands in the run directory as ``profile-<shard_id>.txt``
    so ``--resume`` and ``orchestrate --status`` users find it beside
    the shard checkpoint it explains.  Profiling must never turn a good
    shard into a failed one, so dump errors are swallowed.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        payload = execute_shard(spec_dict)
    finally:
        profiler.disable()
        try:
            buffer = io.StringIO()
            stats = pstats.Stats(profiler, stream=buffer)
            stats.sort_stats("cumulative").print_stats(PROFILE_TOP_N)
            dump_path = os.path.join(
                os.path.dirname(result_path) or ".",
                "profile-%s.txt" % spec_dict["shard_id"],
            )
            with open(dump_path, "w") as handle:
                handle.write(buffer.getvalue())
        except OSError:  # pragma: no cover - diagnostic only
            pass
    return payload


def execute_shard(spec_dict: Dict[str, object]) -> Dict[str, object]:
    """Dispatch one shard spec dict to its runner (in-process)."""
    return _SHARD_RUNNERS[spec_dict["kind"]](spec_dict["params"])


def worker_entry(spec_dict: Dict[str, object], attempt: int,
                 result_path: str) -> None:
    """Process target: run the shard, atomically publish the result."""
    started = time.monotonic()
    _apply_sabotage(spec_dict.get("sabotage"), attempt)
    if (spec_dict.get("params") or {}).get("profile"):
        payload = _profiled_execute(spec_dict, result_path)
    else:
        payload = execute_shard(spec_dict)
    result = {
        "shard_id": spec_dict["shard_id"],
        "status": "ok",
        "payload": payload,
        "elapsed_s": time.monotonic() - started,
        "events_run": int(payload.get("events_run", 0)),
        "worker_pid": os.getpid(),
        "max_rss_kb": _max_rss_kb(),
        "attempt": attempt,
        "failures": [],
    }
    tmp_path = result_path + ".tmp.%d" % os.getpid()
    with open(tmp_path, "w") as handle:
        json.dump(result, handle, indent=2)
    os.replace(tmp_path, result_path)
