"""Parallel campaign orchestration (the scalability substrate).

Every heavy harness in this reproduction — the differential conformance
fuzzer, the fault-injection campaigns, and whatever workload PRs come
next — boils down to "replay a seeded matrix of event streams and merge
the verdicts".  This package makes that one scalable operation:

* :mod:`~repro.orchestrator.shards` — deterministic partitioning of a
  campaign's seed space into JSON-plain :class:`ShardSpec` units, with
  a layout that depends only on the campaign parameters (never on
  ``--jobs``), so parallelism can never change which streams run;
* :mod:`~repro.orchestrator.worker` — the dumb per-shard process that
  publishes its :class:`ShardResult` with an atomic rename;
* :mod:`~repro.orchestrator.supervisor` — the policy loop: per-shard
  timeouts, SIGKILL recovery with bounded retries on fresh workers, and
  poison-shard quarantine that records the offending seeds and moves on;
* :mod:`~repro.orchestrator.checkpoint` — journaled run directories
  whose shard files double as resume checkpoints (``--resume``);
* :mod:`~repro.orchestrator.metrics` — events/sec per worker, shard
  latency histogram, retry/quarantine counters and peak worker RSS,
  persisted per run and printable via
  ``python -m repro orchestrate --status``;
* :mod:`~repro.orchestrator.api` — the merge layer that reassembles
  shard payloads into the exact report structures the serial paths
  emit (``--jobs N`` is bit-compatible with ``--jobs 1``).

CLI: ``python -m repro faults --jobs 4`` /
``python -m repro conformance --jobs 4 --resume`` /
``python -m repro orchestrate --status``.
"""

from .api import (
    merge_churn_results,
    merge_fault_results,
    merge_machine_fault_results,
    orchestrate_bench,
    orchestrate_churn,
    orchestrate_conformance,
    orchestrate_faults,
    orchestrate_machine_faults,
)
from .checkpoint import (
    RunJournal,
    default_run_dir,
    latest_run_dir,
)
from .metrics import RunMetrics, render_metrics
from .shards import (
    FAULT_SHARDS_PER_UNIT,
    ShardPlan,
    ShardResult,
    ShardSpec,
    plan_bench_shards,
    plan_churn_shards,
    plan_conformance_shards,
    plan_fault_shards,
    plan_machine_fault_shards,
)
from .supervisor import (
    DEFAULT_MAX_RETRIES,
    SupervisedRun,
    Supervisor,
)
from .worker import execute_shard, worker_entry

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "FAULT_SHARDS_PER_UNIT",
    "RunJournal",
    "RunMetrics",
    "ShardPlan",
    "ShardResult",
    "ShardSpec",
    "SupervisedRun",
    "Supervisor",
    "default_run_dir",
    "execute_shard",
    "latest_run_dir",
    "merge_churn_results",
    "merge_fault_results",
    "merge_machine_fault_results",
    "orchestrate_bench",
    "orchestrate_churn",
    "orchestrate_conformance",
    "orchestrate_faults",
    "orchestrate_machine_faults",
    "plan_bench_shards",
    "plan_churn_shards",
    "plan_conformance_shards",
    "plan_fault_shards",
    "plan_machine_fault_shards",
    "render_metrics",
    "worker_entry",
]
