"""The worker supervisor: spawn, watch, kill, retry, quarantine.

One :class:`Supervisor` drives a shard plan to completion over a pool
of at most ``jobs`` concurrent worker processes (one fresh process per
shard attempt — crash isolation is the whole point, so workers are
never reused across shards).  The loop enforces three policies:

* **Timeout** — a shard that exceeds ``shard_timeout`` seconds is
  SIGKILLed and treated like a crash.  Hangs are indistinguishable from
  livelock to the supervisor, so both get the same medicine.
* **Bounded retry** — a crashed / killed / timed-out shard is re-run on
  a fresh worker up to ``max_retries`` more times.  The attempt number
  is passed to the worker (the failure-path tests key sabotage on it).
* **Poison quarantine** — a shard that fails every attempt is recorded
  in the run journal with its parameters and failure history, and the
  run *continues*: one poison seed must cost its shard, not the soak.

Completion is detected through the checkpoint contract of
:mod:`~repro.orchestrator.worker`: a shard is done iff its result file
exists and parses; a dead worker without a result file is a crash, no
matter how it died.  ``KeyboardInterrupt`` terminates the pool but
leaves every published checkpoint behind for ``--resume``.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence

from .checkpoint import RunJournal
from .metrics import RunMetrics
from .shards import ShardResult, ShardSpec
from .worker import worker_entry

#: Extra attempts after the first failure (3 attempts total).
DEFAULT_MAX_RETRIES = 2

#: Supervisor poll period.  Short enough that shard-level timeouts are
#: meaningful for the tests' sub-second budgets.
POLL_INTERVAL_S = 0.05


def _mp_context():
    """Fork where available (fast, inherits the import graph); spawn
    otherwise.  Workers only touch picklable/JSON state either way."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-posix fallback
        return multiprocessing.get_context("spawn")


class _Active:
    """Bookkeeping for one in-flight worker process."""

    __slots__ = ("process", "spec", "attempt", "deadline")

    def __init__(self, process, spec: ShardSpec, attempt: int,
                 deadline: Optional[float]):
        self.process = process
        self.spec = spec
        self.attempt = attempt
        self.deadline = deadline


class SupervisedRun:
    """What a supervised plan execution produced."""

    def __init__(self, results: List[ShardResult],
                 quarantined: List[ShardSpec], metrics: RunMetrics):
        self.results = results
        self.quarantined = quarantined
        self.metrics = metrics

    @property
    def complete(self) -> bool:
        return not self.quarantined

    def by_id(self) -> Dict[str, ShardResult]:
        return {result.shard_id: result for result in self.results}


class Supervisor:
    """Runs shard specs on a supervised multiprocessing pool."""

    def __init__(
        self,
        jobs: int,
        shard_timeout: Optional[float] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        poll_interval: float = POLL_INTERVAL_S,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.shard_timeout = shard_timeout or None
        self.max_retries = max_retries
        self.poll_interval = poll_interval
        self._ctx = _mp_context()

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------
    def run(
        self,
        specs: Sequence[ShardSpec],
        journal: RunJournal,
        metrics: Optional[RunMetrics] = None,
        on_shard_done: Optional[Callable[[ShardResult], None]] = None,
    ) -> SupervisedRun:
        """Execute ``specs`` to completion (or quarantine) and return
        every shard result, checkpoint-cached ones included.

        ``on_shard_done`` fires after each *fresh* completion — the
        resume tests use it to interrupt a run at a chosen point.
        """
        metrics = metrics or RunMetrics(jobs=self.jobs)
        results: Dict[str, ShardResult] = {}
        quarantined: List[ShardSpec] = []
        failures: Dict[str, List[str]] = {}
        pending: "deque[tuple[ShardSpec, int]]" = deque()

        for spec in specs:
            cached = journal.completed(spec)
            if cached is not None:
                results[spec.shard_id] = cached
                metrics.record_result(cached)
                journal.log_event("resumed", shard=spec.shard_id)
            else:
                pending.append((spec, 0))

        active: List[_Active] = []
        try:
            while pending or active:
                while pending and len(active) < self.jobs:
                    active.append(self._launch(pending.popleft(), journal))
                time.sleep(self.poll_interval)
                still_active: List[_Active] = []
                for entry in active:
                    outcome = self._poll(entry, journal)
                    if outcome is None:
                        still_active.append(entry)
                        continue
                    kind, detail = outcome
                    if kind == "done":
                        result = detail
                        result.failures = failures.get(
                            entry.spec.shard_id, [])
                        results[entry.spec.shard_id] = result
                        metrics.record_result(result)
                        journal.log_event(
                            "done", shard=entry.spec.shard_id,
                            attempt=entry.attempt,
                            elapsed_s=round(result.elapsed_s, 3),
                            events=result.events_run)
                        if on_shard_done is not None:
                            on_shard_done(result)
                    else:
                        history = failures.setdefault(
                            entry.spec.shard_id, [])
                        history.append(detail)
                        retry = entry.attempt < self.max_retries
                        metrics.record_failure(
                            "timeout" if "timeout" in detail else "crash",
                            retried=retry)
                        journal.log_event(
                            "failure", shard=entry.spec.shard_id,
                            attempt=entry.attempt, detail=detail,
                            retried=retry)
                        if retry:
                            pending.append((entry.spec, entry.attempt + 1))
                        else:
                            quarantined.append(entry.spec)
                            journal.quarantine(entry.spec, history)
                active = still_active
        except BaseException:
            # Interrupt / crash of the supervisor itself: reap children,
            # keep every published checkpoint for --resume.
            for entry in active:
                if entry.process.is_alive():
                    entry.process.kill()
                entry.process.join()
            journal.log_event("interrupted",
                              outstanding=len(active) + len(pending))
            raise

        metrics.finish()
        journal.write_metrics(metrics.to_dict())
        ordered = [results[spec.shard_id] for spec in specs
                   if spec.shard_id in results]
        return SupervisedRun(ordered, quarantined, metrics)

    # ------------------------------------------------------------------
    # Process management.
    # ------------------------------------------------------------------
    def _launch(self, item: "tuple[ShardSpec, int]",
                journal: RunJournal) -> _Active:
        spec, attempt = item
        process = self._ctx.Process(
            target=worker_entry,
            args=(spec.to_dict(), attempt,
                  journal.result_path(spec.shard_id)),
            daemon=True,
        )
        process.start()
        journal.log_event("started", shard=spec.shard_id, attempt=attempt,
                          pid=process.pid)
        deadline = (time.monotonic() + self.shard_timeout
                    if self.shard_timeout else None)
        return _Active(process, spec, attempt, deadline)

    def _poll(self, entry: _Active, journal: RunJournal):
        """One liveness check: ('done', result) | ('failed', why) | None."""
        process = entry.process
        if not process.is_alive():
            process.join()
            result = journal.completed(entry.spec)
            if result is not None:
                result.cached = False  # fresh this run, not resumed
                return "done", result
            return "failed", ("worker crashed (exit code %s)"
                              % process.exitcode)
        if entry.deadline is not None and time.monotonic() > entry.deadline:
            process.kill()
            process.join()
            # A result published in the kill window still counts.
            result = journal.completed(entry.spec)
            if result is not None:
                result.cached = False
                return "done", result
            return "failed", ("shard timeout after %.3gs"
                              % self.shard_timeout)
        return None
