"""Checkpointed run directories: journal, resume, quarantine records.

Every orchestrated run owns a *run directory*::

    <run_dir>/
        manifest.json     # kind + campaign params + plan fingerprint
        shards/<id>.json  # one atomically-written result per shard
        journal.jsonl     # append-only event log (done/retry/quarantine)
        quarantine.json   # poison shards with their offending seeds
        metrics.json      # final RunMetrics snapshot

The shard result files *are* the checkpoint: a worker publishes its
result with a rename, so any file that exists is complete, and resuming
is nothing more than skipping shards whose files already exist under a
manifest with the same plan fingerprint.  The journal is diagnostic
history for ``python -m repro orchestrate --status``, not state the
resume logic depends on — deleting it loses nothing but the narrative.

The default run directory name is derived from the plan fingerprint, so
re-invoking the same campaign with ``--resume`` finds its own
checkpoints without the caller tracking paths.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from .shards import ShardPlan, ShardResult, ShardSpec

#: Where unnamed run directories live, relative to the working tree.
RUNS_ROOT = os.path.join("results", "runs")

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
QUARANTINE_NAME = "quarantine.json"
METRICS_NAME = "metrics.json"


def default_run_dir(plan: ShardPlan, root: str = RUNS_ROOT) -> str:
    """Deterministic run directory for a plan: resume finds it again."""
    return os.path.join(root, "%s-%s" % (plan.kind, plan.fingerprint()))


def latest_run_dir(root: str = RUNS_ROOT) -> Optional[str]:
    """Most recently touched run directory under ``root`` (status view)."""
    try:
        candidates = [
            os.path.join(root, name) for name in os.listdir(root)
            if os.path.isfile(os.path.join(root, name, MANIFEST_NAME))
        ]
    except OSError:
        return None
    if not candidates:
        return None
    return max(candidates, key=os.path.getmtime)


class RunJournal:
    """One run directory's checkpoint and event-log surface."""

    def __init__(self, run_dir: str):
        self.run_dir = run_dir
        self.shard_dir = os.path.join(run_dir, "shards")
        os.makedirs(self.shard_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # Manifest: binds the directory to one plan fingerprint.
    # ------------------------------------------------------------------
    def _manifest_path(self) -> str:
        return os.path.join(self.run_dir, MANIFEST_NAME)

    def read_manifest(self) -> Optional[Dict[str, object]]:
        try:
            with open(self._manifest_path()) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def bind(self, plan: ShardPlan, resume: bool) -> None:
        """Attach this directory to ``plan``.

        Without ``resume``, stale checkpoints are cleared so the run
        starts fresh.  With ``resume``, an existing manifest must carry
        the same plan fingerprint — resuming a *different* campaign into
        the same directory would silently merge unrelated streams, so it
        is an error.
        """
        manifest = self.read_manifest()
        fingerprint = plan.fingerprint()
        if resume and manifest is not None:
            if manifest.get("fingerprint") != fingerprint:
                raise ValueError(
                    "run dir %s holds a different campaign "
                    "(fingerprint %s, this plan is %s); pick another "
                    "--run-dir or drop --resume"
                    % (self.run_dir, manifest.get("fingerprint"), fingerprint))
        if not resume:
            self.clear()
        with open(self._manifest_path(), "w") as handle:
            json.dump({
                "format": "isagrid-orchestrator-run-v1",
                "kind": plan.kind,
                "fingerprint": fingerprint,
                "params": plan.params,
                "shards": [shard.shard_id for shard in plan.shards],
                "total_weight": plan.total_weight,
            }, handle, indent=2)
        self.log_event("bind", fingerprint=fingerprint, resume=resume,
                       shards=len(plan.shards))

    def clear(self) -> None:
        """Drop all checkpoints (fresh-run semantics)."""
        for name in os.listdir(self.shard_dir):
            os.unlink(os.path.join(self.shard_dir, name))
        for name in (JOURNAL_NAME, QUARANTINE_NAME, METRICS_NAME,
                     MANIFEST_NAME):
            path = os.path.join(self.run_dir, name)
            if os.path.exists(path):
                os.unlink(path)

    # ------------------------------------------------------------------
    # Shard checkpoints.
    # ------------------------------------------------------------------
    def result_path(self, shard_id: str) -> str:
        return os.path.join(self.shard_dir, shard_id + ".json")

    def completed(self, spec: ShardSpec) -> Optional[ShardResult]:
        """The checkpointed result for ``spec``, if one exists intact."""
        try:
            with open(self.result_path(spec.shard_id)) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        if data.get("shard_id") != spec.shard_id or data.get("status") != "ok":
            return None
        result = ShardResult.from_dict(data)
        result.cached = True
        return result

    # ------------------------------------------------------------------
    # Event log + quarantine records.
    # ------------------------------------------------------------------
    def log_event(self, event: str, **fields) -> None:
        record = {"event": event, "wall_time": time.time()}
        record.update(fields)
        with open(os.path.join(self.run_dir, JOURNAL_NAME), "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def read_events(self) -> List[Dict[str, object]]:
        events: List[Dict[str, object]] = []
        try:
            with open(os.path.join(self.run_dir, JOURNAL_NAME)) as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        events.append(json.loads(line))
        except OSError:
            pass
        return events

    def quarantine(self, spec: ShardSpec, failures: List[str]) -> None:
        """Record a poison shard — parameters, seeds and failure history
        — so the offending streams can be replayed in isolation."""
        path = os.path.join(self.run_dir, QUARANTINE_NAME)
        try:
            with open(path) as handle:
                entries = json.load(handle)
        except (OSError, ValueError):
            entries = []
        entries.append({
            "shard_id": spec.shard_id,
            "kind": spec.kind,
            "params": dict(spec.params),
            "failures": list(failures),
        })
        with open(path, "w") as handle:
            json.dump(entries, handle, indent=2)
        self.log_event("quarantine", shard=spec.shard_id, failures=failures)

    def read_quarantine(self) -> List[Dict[str, object]]:
        try:
            with open(os.path.join(self.run_dir, QUARANTINE_NAME)) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return []

    def write_metrics(self, metrics_dict: Dict[str, object]) -> None:
        with open(os.path.join(self.run_dir, METRICS_NAME), "w") as handle:
            json.dump(metrics_dict, handle, indent=2)

    def read_metrics(self) -> Optional[Dict[str, object]]:
        try:
            with open(os.path.join(self.run_dir, METRICS_NAME)) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None
