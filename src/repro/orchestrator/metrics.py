"""Run metrics: throughput, shard latency, supervision counters, RSS.

The orchestrator's value claim is "the checking machinery scales with
the workload", so every run measures itself: per-worker and aggregate
events/second, a log2 shard-latency histogram, retry / timeout /
quarantine counters, and the peak worker RSS (sampled by each worker
via ``resource.getrusage`` and carried home in its shard result).

The numbers live in the run directory (``metrics.json``) rather than in
the campaign report, on purpose: the report is required to be
bit-compatible between serial and parallel runs, and throughput is
exactly the part that is not.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, List

from .shards import ShardResult

#: Latency histogram bucket upper bounds (seconds), log2-spaced.
LATENCY_BUCKETS = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _bucket_label(index: int) -> str:
    if index == 0:
        return "<%.2gs" % LATENCY_BUCKETS[0]
    if index == len(LATENCY_BUCKETS):
        return ">=%.3gs" % LATENCY_BUCKETS[-1]
    return "%.3g-%.3gs" % (LATENCY_BUCKETS[index - 1], LATENCY_BUCKETS[index])


class RunMetrics:
    """Accumulates one orchestrated run's execution statistics."""

    def __init__(self, jobs: int = 1):
        self.jobs = jobs
        self.started_monotonic = time.monotonic()
        self.wall_elapsed_s = 0.0
        self.shards_done = 0
        self.shards_resumed = 0
        self.retries = 0
        self.timeouts = 0
        self.crashes = 0
        self.quarantined = 0
        self.events_total = 0
        self.busy_seconds = 0.0
        self.peak_rss_kb = 0
        self.latency_counts = [0] * (len(LATENCY_BUCKETS) + 1)
        # pid -> {"shards", "events", "busy_s"}; insertion-ordered so the
        # status view lists workers in first-result order.
        self.workers: "OrderedDict[int, Dict[str, float]]" = OrderedDict()

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def record_result(self, result: ShardResult) -> None:
        if result.cached:
            self.shards_resumed += 1
            return
        self.shards_done += 1
        self.events_total += result.events_run
        self.busy_seconds += result.elapsed_s
        self.peak_rss_kb = max(self.peak_rss_kb, result.max_rss_kb)
        bucket = 0
        while (bucket < len(LATENCY_BUCKETS)
               and result.elapsed_s >= LATENCY_BUCKETS[bucket]):
            bucket += 1
        self.latency_counts[bucket] += 1
        worker = self.workers.setdefault(
            result.worker_pid, {"shards": 0, "events": 0, "busy_s": 0.0})
        worker["shards"] += 1
        worker["events"] += result.events_run
        worker["busy_s"] += result.elapsed_s

    def record_failure(self, reason: str, retried: bool) -> None:
        if reason == "timeout":
            self.timeouts += 1
        else:
            self.crashes += 1
        if retried:
            self.retries += 1
        else:
            self.quarantined += 1

    def finish(self) -> None:
        self.wall_elapsed_s = time.monotonic() - self.started_monotonic

    # ------------------------------------------------------------------
    # Derived numbers.
    # ------------------------------------------------------------------
    @property
    def events_per_second(self) -> float:
        """Aggregate throughput against wall-clock time."""
        elapsed = self.wall_elapsed_s or (
            time.monotonic() - self.started_monotonic)
        return self.events_total / elapsed if elapsed > 0 else 0.0

    def worker_rates(self) -> Dict[int, float]:
        """Per-worker events/second against that worker's busy time."""
        return {
            pid: (stats["events"] / stats["busy_s"]
                  if stats["busy_s"] > 0 else 0.0)
            for pid, stats in self.workers.items()
        }

    def latency_histogram(self) -> "OrderedDict[str, int]":
        return OrderedDict(
            (_bucket_label(i), count)
            for i, count in enumerate(self.latency_counts) if count
        )

    # ------------------------------------------------------------------
    # Serialization + status rendering.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "wall_elapsed_s": round(self.wall_elapsed_s, 3),
            "shards_done": self.shards_done,
            "shards_resumed": self.shards_resumed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "quarantined": self.quarantined,
            "events_total": self.events_total,
            "events_per_second": round(self.events_per_second, 1),
            "busy_seconds": round(self.busy_seconds, 3),
            "peak_rss_kb": self.peak_rss_kb,
            "latency_histogram": dict(self.latency_histogram()),
            "workers": {
                str(pid): {
                    "shards": int(stats["shards"]),
                    "events": int(stats["events"]),
                    "busy_s": round(stats["busy_s"], 3),
                    "events_per_second": round(rate, 1),
                }
                for (pid, stats), rate in zip(
                    self.workers.items(), self.worker_rates().values())
            },
        }

    def render(self) -> str:
        """Human-readable summary for the CLI and --status view."""
        return render_metrics(self.to_dict())


def render_metrics(data: Dict[str, object]) -> str:
    """Render a metrics dict (live or reloaded from metrics.json)."""
    lines: List[str] = []
    lines.append(
        "shards: %d done, %d resumed, %d retried, %d quarantined"
        % (data.get("shards_done", 0), data.get("shards_resumed", 0),
           data.get("retries", 0), data.get("quarantined", 0)))
    lines.append(
        "failures: %d crash(es), %d timeout(s)"
        % (data.get("crashes", 0), data.get("timeouts", 0)))
    lines.append(
        "throughput: %d events in %.2fs wall (%.1f events/s, %d jobs)"
        % (data.get("events_total", 0), data.get("wall_elapsed_s", 0.0),
           data.get("events_per_second", 0.0), data.get("jobs", 1)))
    if data.get("peak_rss_kb"):
        lines.append("peak worker RSS: %d KiB" % data["peak_rss_kb"])
    histogram = data.get("latency_histogram") or {}
    if histogram:
        width = max(len(label) for label in histogram)
        lines.append("shard latency:")
        for label, count in histogram.items():
            lines.append("    %-*s %4d %s" % (width, label, count,
                                              "#" * min(count, 40)))
    workers = data.get("workers") or {}
    if workers:
        lines.append("workers:")
        for pid, stats in workers.items():
            lines.append(
                "    pid %-8s %3d shard(s) %9d events  %8.1f events/s"
                % (pid, stats["shards"], stats["events"],
                   stats["events_per_second"]))
    return "\n".join(lines)
