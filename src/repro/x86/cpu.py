"""Functional x86-64 CPU model with an integrated Privilege Check Unit.

Models ring 0/3, the IDT interrupt path, ``syscall``/``sysret`` via the
LSTAR MSR, the system-register file of :mod:`repro.x86.registers`, and
the instruction subset of :mod:`repro.x86.encoding`.  As on RISC-V,
every issued instruction passes both the ring check (the classic
mechanism) and the PCU check; either rejection vectors through the IDT.

Simplified IDT: the descriptor for vector ``v`` is the 8-byte handler
address at ``idtr.base + 8 * v``.  Interrupt entry pushes (rip, ring)
on the current stack; ``iret`` pops them.
"""

from __future__ import annotations

import operator
from typing import Dict, Optional, Tuple

from repro.core.errors import PrivilegeFault, TrustedMemoryFault
from repro.core.isa_extension import AccessInfo, CacheId, GateKind
from repro.core.pcu import BLOCK_REFUSED, BLOCK_SILENT, PrivilegeCheckUnit
from repro.sim.blocks import (
    MAX_BLOCK_LEN,
    MIN_BLOCK_LEN,
    NO_BLOCK,
    BlockSummary,
    CompiledBlock,
    summarize_classes,
)
from repro.sim.machine import Machine
from repro.sim.pipeline import OutOfOrderPipelineModel, StepInfo
from repro.sim.trap import Trap, TrapKind

from .encoding import EncodingError, Instruction, decode
from .isa import CSR_INDEX, GATE_CLASSES, MSR_CSR_NAME, RING0_CLASSES, X86_ISA_MAP
from .registers import (
    CR4_PCE,
    CR4_TSD,
    DescriptorTableRegister,
    SystemRegisters,
)

MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1

RING0 = 0
RING3 = 3

# Exception vectors.
VEC_UD = 6
VEC_GP = 13
VEC_SYSCALL_INT = 0x80
VEC_ISA_GRID = 32        # custom vector for PCU rejections
VEC_TRUSTED_MEMORY = 33  # custom vector for trusted-memory violations

_GATE_KIND = {
    "hccall": GateKind.HCCALL,
    "hccalls": GateKind.HCCALLS,
    "hcrets": GateKind.HCRETS,
}

#: Instruction-specific execution costs (cycles), roughly matching
#: measured costs on contemporary hardware; wrpkru's 26 cycles is the
#: figure the paper quotes from Hodor for Case 3.
EXTRA_CYCLES = {
    "cpuid": 100,
    "rdtsc": 22,
    "rdpmc": 30,
    "rdmsr": 60,
    "wrmsr": 90,
    "mov_cr": 40,
    "mov_dr": 40,
    "lgdt": 60,
    "lidt": 60,
    "lldt": 40,
    "ltr": 40,
    "sgdt": 20,
    "sidt": 20,
    "invlpg": 120,
    "wbinvd": 2000,
    "in": 40,
    "out": 40,
    "wrpkru": 26,
    "wrpkrs": 26,
    "rdpkru": 8,
    "rdpkrs": 8,
    "cli": 4,
    "sti": 4,
    "clts": 10,
}


class CpuPanic(Exception):
    """An exception occurred with no IDT handler installed."""


#: Binary-ALU semantics, resolved once at decode time (``cmp`` computes
#: like ``sub``, ``test`` like ``and``; neither writes the result back).
_ARITH_FN = {
    "add": operator.add, "sub": operator.sub, "cmp": operator.sub,
    "and": operator.and_, "test": operator.and_, "or": operator.or_,
    "xor": operator.xor,
}

#: Conditional-branch predicates over the flag state.
_JCC_TAKEN = {
    "je": lambda c: c.zf, "jne": lambda c: not c.zf,
    "jl": lambda c: c.sf_lt, "jge": lambda c: not c.sf_lt,
    "jb": lambda c: c.cf, "jae": lambda c: not c.cf,
    "jbe": lambda c: c.cf or c.zf, "ja": lambda c: not c.cf and not c.zf,
    "jle": lambda c: c.sf_lt or c.zf,
    "jg": lambda c: not c.sf_lt and not c.zf,
}


class X86Cpu:
    """A single simulated x86-64 core attached to a :class:`Machine`."""

    def __init__(self, machine: Machine, pcu: Optional[PrivilegeCheckUnit] = None):
        self.machine = machine
        self.memory = machine.memory
        self.pcu = pcu if pcu is not None else machine.pcu
        self.isa_map = X86_ISA_MAP
        self.regs = [0] * 16
        self.pc = 0  # rip; named .pc for the Machine protocol
        self.ring = RING0
        self.sys = SystemRegisters()
        self.zf = False
        self.cf = False
        self.sf_lt = False  # signed less-than from the last cmp/sub
        self.exit_code: Optional[int] = None
        self.trap_count = 0
        self.interrupt_count = 0
        self.last_trap: Optional[Trap] = None
        self._class_index = {
            name: self.isa_map.inst_class(name)
            for name in self.isa_map.inst_class_names
        }
        # rip -> (inst, bound handler, extra_cycles, needs_ring0,
        #         special, access).  ``special`` flags the per-step CR4
        #         gates (1 = rdtsc/TSD, 2 = rdpmc/PCE); ``access`` is
        #         the prebuilt plain-check AccessInfo, or None for
        #         handlers that run their own check sequence.
        self._decode_cache: Dict[int, tuple] = {}
        # rip -> CompiledBlock | NO_BLOCK (DESIGN §3.18): superblocks
        # over the decode entries, each carrying a privilege summary so
        # a warm block costs one PCU probe.  Invalidated together with
        # the decode cache (icache coherence); privilege edits need no
        # explicit invalidation because the summary is re-proved
        # against the *live* bypass register on every entry.
        self._block_cache: Dict[int, object] = {}
        # Block formation bakes the O3 timing model into the member
        # closures, so any other pipeline falls back to the
        # per-instruction loop.
        self.blocks_supported = type(machine.pipeline) is OutOfOrderPipelineModel
        machine.attach_cpu(self)

    # ------------------------------------------------------------------
    @property
    def rip(self) -> int:
        return self.pc

    @rip.setter
    def rip(self, value: int) -> None:
        self.pc = value & MASK64

    def reg(self, index: int) -> int:
        return self.regs[index]

    def set_reg(self, index: int, value: int) -> None:
        self.regs[index] = value & MASK64

    def flush_decode_cache(self) -> None:
        """Call after writing instruction memory (icache coherence)."""
        self._decode_cache.clear()
        if self._block_cache:
            self._block_cache.clear()
            if self.pcu is not None:
                self.pcu.block_stats.invalidations += 1

    # ------------------------------------------------------------------
    # Interrupt/trap machinery.
    # ------------------------------------------------------------------
    def _handler_address(self, vector: int) -> int:
        base = self.sys.idtr.base
        if not base:
            return 0
        return self.memory.load(base + 8 * vector, 8)

    def _vector(self, vector: int, return_rip: int, info: StepInfo, trap: Trap) -> None:
        self.trap_count += 1
        self.interrupt_count += 1
        self.last_trap = trap
        handler = self._handler_address(vector)
        if not handler:
            raise CpuPanic(
                "vector %d at rip=0x%x with no IDT handler (%s)"
                % (vector, return_rip, trap)
            )
        # Push (rip, ring) on the current stack, like a long-mode
        # interrupt frame (simplified).
        rsp = (self.regs[4] - 16) & MASK64
        self.memory.store(rsp + 8, return_rip, 8)
        self.memory.store(rsp, self.ring, 8)
        self.regs[4] = rsp
        self.ring = RING0
        self.rip = handler
        info.trapped = True

    def _iret(self, info: StepInfo) -> None:
        rsp = self.regs[4]
        self.ring = self.memory.load(rsp, 8) & 3
        self.rip = self.memory.load(rsp + 8, 8)
        self.regs[4] = (rsp + 16) & MASK64
        info.trap_return = True

    # ------------------------------------------------------------------
    def step(self) -> StepInfo:
        rip = self.pc
        info = StepInfo(rip, 1)
        try:
            entry = self._decode_cache.get(rip)
            if entry is None:
                entry = self._decode_entry(rip)
                self._decode_cache[rip] = entry
            inst, handler, size, extra_cycles, needs_ring0, special, access = entry
            info.size = size
            if extra_cycles:
                info.extra_cycles = extra_cycles
            # Classic privilege-level check first (Section 4.1: both).
            if needs_ring0 and self.ring != RING0:
                raise Trap(
                    TrapKind.ILLEGAL_INSTRUCTION, VEC_GP, pc=rip,
                    message="%s requires ring 0" % inst.mnemonic,
                )
            if special:
                if special == 1:
                    if self.ring != RING0 and self.sys.cr4 & CR4_TSD:
                        raise Trap(TrapKind.ILLEGAL_INSTRUCTION, VEC_GP, pc=rip,
                                   message="rdtsc blocked by CR4.TSD")
                elif self.ring != RING0 and not self.sys.cr4 & CR4_PCE:
                    raise Trap(TrapKind.ILLEGAL_INSTRUCTION, VEC_GP, pc=rip,
                               message="rdpmc blocked by CR4.PCE")
            if access is not None:
                pcu = self.pcu
                if pcu is not None:
                    info.pcu_stall += pcu.check(access)
            if not handler(inst, rip, info):
                self.pc = (rip + size) & MASK64
        except (Trap, PrivilegeFault) as error:
            self._dispatch_fault(error, rip, info)
        return info

    def _dispatch_fault(self, error, rip: int, info: StepInfo) -> None:
        """Vector a Trap or PrivilegeFault exactly as ``step()`` does.

        Shared by the per-instruction loop and the block executor so a
        mid-block fault takes the identical IDT path.
        """
        if isinstance(error, Trap):
            vector = {
                TrapKind.ILLEGAL_INSTRUCTION: VEC_UD,
                TrapKind.ISA_GRID_FAULT: VEC_ISA_GRID,
                TrapKind.TRUSTED_MEMORY_FAULT: VEC_TRUSTED_MEMORY,
            }.get(error.kind, VEC_GP)
            self._vector(vector, rip, info, error)
        elif isinstance(error, TrustedMemoryFault):
            trap = Trap(TrapKind.TRUSTED_MEMORY_FAULT, VEC_TRUSTED_MEMORY,
                        pc=rip, message=str(error), fault=error)
            self._vector(VEC_TRUSTED_MEMORY, rip, info, trap)
        else:
            trap = Trap(TrapKind.ISA_GRID_FAULT, VEC_ISA_GRID,
                        pc=rip, message=str(error), fault=error)
            self._vector(VEC_ISA_GRID, rip, info, trap)

    # ------------------------------------------------------------------
    # Block-summary execution (DESIGN §3.18).
    # ------------------------------------------------------------------
    def _block_op_pure(self, handler, inst, rip: int, size: int):
        """Fused member closure: no memory access, no branch predictor."""
        p = self.machine.pipeline
        info = StepInfo(rip, size)

        def op(h=handler, inst=inst, rip=rip, info=info,
               ai=p._access_instruction, inv=p._inv_width,
               icf=p.ICACHE_MISS_FACTOR):
            h(inst, rip, info)
            f = ai(rip)
            if f > 2:
                return inv + (f - 2) * icf
            return inv

        return op

    def _block_op_mem(self, handler, inst, rip: int, size: int, is_store: bool):
        """Fused member closure for loads/stores (mov/stack/call/ret)."""
        p = self.machine.pipeline
        info = StepInfo(rip, size)
        factor = p.STORE_MISS_FACTOR if is_store else p.LOAD_MISS_FACTOR

        def op(h=handler, inst=inst, rip=rip, info=info,
               ai=p._access_instruction, ad=p._access_data,
               inv=p._inv_width, icf=p.ICACHE_MISS_FACTOR,
               is_store=is_store, factor=factor):
            h(inst, rip, info)
            f = ai(rip)
            c = inv + (f - 2) * icf if f > 2 else inv
            d = ad(info.mem_address, is_store)
            if d > 2:
                c += (d - 2) * factor
            return c

        return op

    def _block_op_jcc(self, handler, inst, rip: int, size: int):
        """Fused member closure for conditional branches."""
        p = self.machine.pipeline
        info = StepInfo(rip, size)
        fall_through = (rip + size) & MASK64

        def op(h=handler, inst=inst, rip=rip, info=info,
               ai=p._access_instruction, inv=p._inv_width,
               icf=p.ICACHE_MISS_FACTOR, stats=p.branch_stats,
               pu=p._predictor_update, mp=p._mispredict_penalty,
               cpu=self, fall=fall_through):
            if not h(inst, rip, info):
                cpu.pc = fall
            f = ai(rip)
            c = inv + (f - 2) * icf if f > 2 else inv
            stats.predictions += 1
            if pu(rip, info.branch_taken):
                stats.mispredictions += 1
                c += mp
            return c

        return op

    def _form_block(self, start: int):
        """Compile a superblock at ``start``, or ``NO_BLOCK``.

        Members are straight-line ring-3-eligible instructions whose
        only PCU interaction is the plain instruction-class check and
        whose timing has no serializing component; the first control
        transfer (branch/call/ret) ends the block as its final member.
        Everything else — gates, CSR/MSR access, ring-0 instructions,
        rdtsc/rdpmc, syscall/int/iret, hlt — refuses membership, so a
        block can never contain a domain switch or privilege edit.
        """
        decode_cache = self._decode_cache
        ops = []
        pcs = []
        sizes = []
        classes = []
        touches_memory = False
        sets_pc = False
        pc = start
        while len(ops) < MAX_BLOCK_LEN:
            entry = decode_cache.get(pc)
            if entry is None:
                try:
                    entry = self._decode_entry(pc)
                except Trap:
                    # Undecodable tail: executing it live must raise the
                    # same trap via the reference path, so end the block
                    # here and do not cache the decode failure.
                    break
                decode_cache[pc] = entry
            inst, handler, size, extra_cycles, needs_ring0, special, access = entry
            if access is None or needs_ring0 or special or extra_cycles:
                break
            cls = inst.inst_class
            mnemonic = inst.mnemonic
            ender = False
            if cls in ("nop", "alu"):
                op = self._block_op_pure(handler, inst, pc, size)
            elif cls == "mov":
                if mnemonic == "mov_load":
                    op = self._block_op_mem(handler, inst, pc, size, False)
                    touches_memory = True
                elif mnemonic == "mov_store":
                    op = self._block_op_mem(handler, inst, pc, size, True)
                    touches_memory = True
                else:
                    op = self._block_op_pure(handler, inst, pc, size)
            elif cls == "stack":
                op = self._block_op_mem(handler, inst, pc, size,
                                        mnemonic == "push")
                touches_memory = True
            elif cls == "branch":
                ender = True
                if mnemonic == "jmp":
                    op = self._block_op_pure(handler, inst, pc, size)
                else:
                    op = self._block_op_jcc(handler, inst, pc, size)
            elif cls == "call":
                ender = True
                op = self._block_op_mem(handler, inst, pc, size,
                                        mnemonic == "call")
                touches_memory = True
            else:
                # string (reserved), syscall/int/iret: never members.
                break
            ops.append(op)
            pcs.append(pc)
            sizes.append(size)
            classes.append(access.inst_class)
            pc = (pc + size) & MASK64
            if ender:
                sets_pc = True
                break
        if len(ops) < MIN_BLOCK_LEN:
            return NO_BLOCK
        summary = BlockSummary(summarize_classes(classes), (), touches_memory)
        return CompiledBlock(summary, ops, pcs, sizes, pc, sets_pc)

    def run_blocks(self, max_steps: int, mstats, instruction_cycles) -> None:
        """Hot loop: execute warm blocks under one PCU probe each.

        Called by :meth:`Machine.run` instead of its per-instruction
        loop when block summaries are enabled.  Any cold/ineligible pc
        or refused probe falls back to the reference ``step()`` for
        exactly one instruction, so semantics, cycles and statistics
        are bit-identical to the per-instruction loop by construction.
        """
        blocks = self._block_cache
        pcu = self.pcu
        pipeline = self.machine.pipeline
        step = self.step
        probe = None if pcu is None else pcu.check_block_summary
        account = None if pcu is None else pcu.account_block
        insts = mstats.instructions
        cyc = mstats.cycles
        traps = 0
        remaining = max_steps
        try:
            while remaining > 0:
                pc = self.pc
                block = blocks.get(pc)
                if block is None:
                    block = self._form_block(pc)
                    blocks[pc] = block
                if block is not NO_BLOCK and block.n <= remaining:
                    mode = BLOCK_SILENT if probe is None else probe(block.summary)
                else:
                    mode = BLOCK_REFUSED
                if mode == BLOCK_REFUSED:
                    # Reference path for one instruction.  Flush the
                    # stats mirrors first: rdtsc-style reads and trap
                    # handlers observe them live.
                    mstats.instructions = insts
                    mstats.cycles = cyc
                    info = step()
                    insts += 1
                    cyc += instruction_cycles(info)
                    remaining -= 1
                    if info.trapped:
                        traps += 1
                    if info.halted:
                        mstats.halted = True
                        return
                    continue
                ops = block.ops
                n = block.n
                isp = pipeline._instructions_since_push
                i = 0
                try:
                    while i < n:
                        cyc += ops[i]()
                        i += 1
                except (Trap, PrivilegeFault) as error:
                    # Mid-block fault: members [0, i) retired normally;
                    # the faulting member vectors exactly like step().
                    insts += i
                    if isp is not None:
                        pipeline._instructions_since_push = isp + i
                    info = StepInfo(block.pcs[i], block.sizes[i])
                    self._dispatch_fault(error, block.pcs[i], info)
                    insts += 1
                    cyc += instruction_cycles(info)
                    traps += 1
                    remaining -= i + 1
                    if account is not None:
                        # The faulting member's check preceded its
                        # handler on the reference path, so it counts.
                        account(mode, i + 1)
                    continue
                except BaseException:
                    # e.g. MemoryAccessError escaping the run, as on
                    # the per-instruction path; attribute the retired
                    # members before unwinding.  The faulting member's
                    # check preceded its memory access there, so it
                    # counts here too.
                    insts += i
                    if isp is not None:
                        pipeline._instructions_since_push = isp + i
                    if account is not None:
                        account(mode, i + 1)
                    raise
                if isp is not None:
                    pipeline._instructions_since_push = isp + n
                insts += n
                remaining -= n
                if not block.sets_pc:
                    self.pc = block.end_pc
                if account is not None:
                    account(mode, n)
        finally:
            mstats.instructions = insts
            mstats.cycles = cyc
            mstats.traps += traps

    #: Classes whose only PCU interaction is the plain instruction-class
    #: check; their AccessInfo is prebuilt into the decode entry and the
    #: step loop checks it before dispatch (same order as before: ring
    #: check, then PCU, then execution).
    _PLAIN_CLASSES = frozenset(
        {
            "nop", "string", "mov", "alu", "stack", "branch", "call",
            "syscall", "int", "iret", "cpuid", "invlpg", "wbinvd", "in",
            "out", "cli", "sti", "hlt", "pfch", "pflh",
        }
    )

    def _decode_entry(self, rip: int) -> tuple:
        window = self.memory.load_bytes(rip, 16)
        try:
            inst = decode(window)
        except EncodingError as error:
            raise Trap(
                TrapKind.ILLEGAL_INSTRUCTION, VEC_UD, pc=rip, message=str(error)
            )
        cls = inst.inst_class
        extra_cycles = EXTRA_CYCLES.get(cls, 0)
        if cls in GATE_CLASSES:
            return inst, self._op_gate, inst.size, extra_cycles, False, 0, None
        # The mnemonic-dense classes get per-mnemonic handlers so the
        # steady state never walks an if-chain.
        if cls == "alu":
            handler = self._specialize_alu(inst)
        elif cls == "mov":
            handler = self._specialize_mov(inst)
        elif cls == "branch":
            handler = self._specialize_branch(inst)
        else:
            handler = getattr(self, "_op_" + cls, None)
            if handler is None:  # pragma: no cover - decoder/executor sync
                raise Trap(TrapKind.ILLEGAL_INSTRUCTION, VEC_UD, pc=rip,
                           message="unimplemented class %s" % cls)
        special = 1 if cls == "rdtsc" else 2 if cls == "rdpmc" else 0
        access = (
            AccessInfo(inst_class=self._class_index[cls], address=rip)
            if cls in self._PLAIN_CLASSES
            else None
        )
        return (inst, handler, inst.size, extra_cycles,
                cls in RING0_CLASSES, special, access)

    # ------------------------------------------------------------------
    def _check_pcu(self, info: StepInfo, access: AccessInfo) -> None:
        if self.pcu is not None:
            info.pcu_stall += self.pcu.check(access)

    def _check_plain(self, inst: Instruction, rip: int, info: StepInfo) -> None:
        self._check_pcu(
            info, AccessInfo(inst_class=self._class_index[inst.inst_class], address=rip)
        )

    def _check_sysreg(
        self,
        inst: Instruction,
        rip: int,
        info: StepInfo,
        csr_name: str,
        *,
        read: bool = False,
        write: bool = False,
        old: Optional[int] = None,
        new: Optional[int] = None,
    ) -> None:
        self._check_pcu(
            info,
            AccessInfo(
                inst_class=self._class_index[inst.inst_class],
                address=rip,
                csr=CSR_INDEX[csr_name],
                csr_read=read,
                csr_write=write,
                write_value=new,
                old_value=old,
            ),
        )

    def _require_ring0(self, inst: Instruction, rip: int) -> None:
        if self.ring != RING0:
            raise Trap(
                TrapKind.ILLEGAL_INSTRUCTION, VEC_GP, pc=rip,
                message="%s requires ring 0" % inst.mnemonic,
            )

    # -- general computation -------------------------------------------
    # (Handlers for classes in _PLAIN_CLASSES rely on the step loop
    # having already performed the plain PCU check.)
    def _op_nop(self, inst, rip, info):
        return False

    def _op_string(self, inst, rip, info):  # pragma: no cover - reserved
        return False

    def _specialize_mov(self, inst):
        return {
            "mov_imm": self._op_mov_imm,
            "mov_rr": self._op_mov_rr,
            "mov_load": self._op_mov_load,
            "mov_store": self._op_mov_store,
        }[inst.mnemonic]

    def _op_mov_imm(self, inst, rip, info):
        self.regs[inst.reg] = inst.imm & MASK64
        return False

    def _op_mov_rr(self, inst, rip, info):
        self.regs[inst.reg] = self.regs[inst.rm]
        return False

    def _op_mov_load(self, inst, rip, info):
        address = (self.regs[inst.base] + inst.disp) & MASK64
        self.machine.check_data_access(address, rip)
        self.regs[inst.reg] = self.memory.load(address, 8) & MASK64
        info.is_load = True
        info.mem_address = address
        return False

    def _op_mov_store(self, inst, rip, info):
        address = (self.regs[inst.base] + inst.disp) & MASK64
        self.machine.check_data_access(address, rip)
        self.memory.store(address, self.regs[inst.reg], 8)
        info.is_store = True
        info.mem_address = address
        return False

    def _specialize_alu(self, inst):
        m = inst.mnemonic
        simple = self._ALU_SIMPLE.get(m)
        if simple is not None:
            return simple.__get__(self)
        if m.endswith("_imm"):
            base, use_imm = m[:-4], True
        else:
            # `op r/m, r` encodings: destination in r/m, source in reg.
            base, use_imm = m, False
        fn = _ARITH_FN.get(base, operator.xor)
        cmp_like = base in ("sub", "cmp")
        writeback = base not in ("cmp", "test")

        def op_arith(inst, rip, info, self=self, fn=fn, use_imm=use_imm,
                     cmp_like=cmp_like, writeback=writeback):
            r = self.regs
            a = r[inst.rm]
            b = inst.imm & MASK64 if use_imm else r[inst.reg]
            masked = fn(a, b) & MASK64
            self.zf = masked == 0
            self.cf = a < b if cmp_like else False
            signed_a = a - (1 << 64) if a >> 63 else a
            signed_b = b - (1 << 64) if b >> 63 else b
            self.sf_lt = (
                signed_a < signed_b if cmp_like else masked >> 63 == 1
            )
            if writeback:
                r[inst.rm] = masked
            return False

        return op_arith

    def _op_lea(self, inst, rip, info):
        self.set_reg(inst.reg, self.regs[inst.base] + inst.disp)
        return False

    def _op_mul(self, inst, rip, info):
        product = self.regs[0] * self.regs[inst.rm]
        self.set_reg(0, product)
        self.set_reg(2, product >> 64)
        return False

    def _op_div(self, inst, rip, info):
        r = self.regs
        divisor = r[inst.rm]
        if divisor == 0:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, 0, pc=rip,
                       message="divide by zero")
        dividend = r[2] << 64 | r[0]
        self.set_reg(0, dividend // divisor)
        self.set_reg(2, dividend % divisor)
        return False

    def _op_inc(self, inst, rip, info):
        result = (self.regs[inst.rm] + 1) & MASK64
        self.regs[inst.rm] = result
        self.zf = result == 0
        return False

    def _op_dec(self, inst, rip, info):
        result = (self.regs[inst.rm] - 1) & MASK64
        self.regs[inst.rm] = result
        self.zf = result == 0
        return False

    def _op_neg(self, inst, rip, info):
        result = (-self.regs[inst.rm]) & MASK64
        self.regs[inst.rm] = result
        self.zf = result == 0
        self.cf = result != 0
        return False

    def _op_not(self, inst, rip, info):
        self.regs[inst.rm] = ~self.regs[inst.rm] & MASK64
        return False

    def _op_xchg(self, inst, rip, info):
        r = self.regs
        r[inst.reg], r[inst.rm] = r[inst.rm], r[inst.reg]
        return False

    def _op_shift(self, inst, rip, info):
        m = inst.mnemonic
        value = self.regs[inst.rm]
        amount = inst.imm & 63
        if m == "shl":
            result = value << amount
        elif m == "shr":
            result = value >> amount
        else:  # sar
            sign = value if value < 1 << 63 else value - (1 << 64)
            result = sign >> amount
        self.set_reg(inst.rm, result)
        self.zf = result & MASK64 == 0
        return False

    _ALU_SIMPLE = {
        "lea": _op_lea,
        "mul": _op_mul, "imul": _op_mul,
        "div": _op_div, "idiv": _op_div,
        "inc": _op_inc, "dec": _op_dec,
        "neg": _op_neg, "not": _op_not, "xchg": _op_xchg,
        "shl": _op_shift, "shr": _op_shift, "sar": _op_shift,
    }

    def _op_stack(self, inst, rip, info):
        r = self.regs
        if inst.mnemonic == "push":
            rsp = (r[4] - 8) & MASK64
            self.machine.check_data_access(rsp, rip)
            self.memory.store(rsp, r[inst.reg], 8)
            r[4] = rsp
            info.is_store = True
            info.mem_address = rsp
        else:
            rsp = r[4]
            self.machine.check_data_access(rsp, rip)
            self.set_reg(inst.reg, self.memory.load(rsp, 8))
            r[4] = (rsp + 8) & MASK64
            info.is_load = True
            info.mem_address = rsp
        return False

    def _op_jmp(self, inst, rip, info):
        self.pc = (rip + inst.size + inst.imm) & MASK64
        return True

    def _specialize_branch(self, inst):
        if inst.mnemonic == "jmp":
            return self._op_jmp
        cond = _JCC_TAKEN[inst.mnemonic]

        def op_jcc(inst, rip, info, self=self, cond=cond):
            info.is_branch = True
            taken = cond(self)
            info.branch_taken = taken
            if taken:
                self.pc = (rip + inst.size + inst.imm) & MASK64
                return True
            return False

        return op_jcc

    def _op_call(self, inst, rip, info):
        r = self.regs
        if inst.mnemonic == "call":
            rsp = (r[4] - 8) & MASK64
            self.machine.check_data_access(rsp, rip)
            self.memory.store(rsp, rip + inst.size, 8)
            r[4] = rsp
            self.rip = (rip + inst.size + inst.imm) & MASK64
            info.is_store = True
            info.mem_address = rsp
            return True
        # ret
        rsp = r[4]
        self.machine.check_data_access(rsp, rip)
        self.rip = self.memory.load(rsp, 8)
        r[4] = (rsp + 8) & MASK64
        info.is_load = True
        info.mem_address = rsp
        return True

    # -- system entry/exit -----------------------------------------------
    def _op_syscall(self, inst, rip, info):
        lstar = self.sys.msrs[0xC0000082]
        if not lstar:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, VEC_GP, pc=rip,
                       message="syscall with LSTAR unset")
        self.set_reg(1, rip + inst.size)  # rcx <- return rip
        self.ring = RING0
        self.rip = lstar
        info.trapped = True
        self.trap_count += 1
        return True

    def _op_sysret(self, inst, rip, info):
        self._require_ring0(inst, rip)
        self._check_plain(inst, rip, info)
        self.rip = self.regs[1]
        self.ring = RING3
        info.trap_return = True
        return True

    def _op_int(self, inst, rip, info):
        trap = Trap(TrapKind.SYSCALL, inst.vector, pc=rip)
        self._vector(inst.vector, rip + inst.size, info, trap)
        return True

    def _op_iret(self, inst, rip, info):
        self._iret(info)
        return True

    # -- system registers -------------------------------------------------
    def _op_rdtsc(self, inst, rip, info):
        self._check_sysreg(inst, rip, info, "tsc", read=True)
        tsc = int(self.machine.stats.cycles)
        self.set_reg(0, tsc & MASK32)
        self.set_reg(2, tsc >> 32)
        return False

    def _op_rdpmc(self, inst, rip, info):
        counter = self.regs[1] & 3
        self._check_sysreg(inst, rip, info, "pmc%d" % min(counter, 1), read=True)
        if counter == 0:
            value = self.interrupt_count
        elif counter == 1:
            value = self.machine.hierarchy.l1i.stats.misses
        else:
            value = self.sys.pmc.get(counter, 0)
        self.set_reg(0, value & MASK32)
        self.set_reg(2, value >> 32 & MASK32)
        return False

    def _msr_csr_name(self, rip: int) -> str:
        address = self.regs[1] & MASK32
        name = MSR_CSR_NAME.get(address)
        if name is None:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, VEC_GP, pc=rip,
                       message="unimplemented MSR 0x%x" % address)
        return name

    def _op_rdmsr(self, inst, rip, info):
        name = self._msr_csr_name(rip)
        self._check_sysreg(inst, rip, info, name, read=True)
        value = self.sys.read_msr(self.regs[1] & MASK32)
        self.set_reg(0, value & MASK32)
        self.set_reg(2, value >> 32)
        return False

    def _op_wrmsr(self, inst, rip, info):
        name = self._msr_csr_name(rip)
        address = self.regs[1] & MASK32
        old = self.sys.read_msr(address)
        new = (self.regs[2] & MASK32) << 32 | self.regs[0] & MASK32
        self._check_sysreg(inst, rip, info, name, write=True, old=old, new=new)
        self.sys.write_msr(address, new)
        return False

    def _op_cpuid(self, inst, rip, info):
        leaf = self.regs[0] & MASK32
        if leaf == 0:
            self.set_reg(0, 0x16)
            self.set_reg(3, 0x756E6547)  # "Genu"
            self.set_reg(2, 0x49656E69)  # "ineI"
            self.set_reg(1, 0x6C65746E)  # "ntel"
        elif leaf == 1:
            self.set_reg(0, 0x000906EA)  # family/model/stepping
            self.set_reg(3, 0x1F8BFBFF)  # feature flags (edx)
            self.set_reg(1, 0x7FFAFBBF)  # feature flags (ecx)
            self.set_reg(2, 0x00100800)
        else:
            self.set_reg(0, 0)
            self.set_reg(1, 0)
            self.set_reg(2, 0)
            self.set_reg(3, 0)
        return False

    _CR_NAMES = {0: "cr0", 2: "cr2", 3: "cr3", 4: "cr4"}

    def _op_mov_cr(self, inst, rip, info):
        name = self._CR_NAMES.get(inst.sysreg)
        if name is None:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, VEC_UD, pc=rip,
                       message="no such control register cr%d" % inst.sysreg)
        if inst.to_system:
            old = getattr(self.sys, name)
            new = self.regs[inst.rm]
            self._check_sysreg(inst, rip, info, name, write=True, old=old, new=new)
            setattr(self.sys, name, new & MASK64)
        else:
            self._check_sysreg(inst, rip, info, name, read=True)
            self.set_reg(inst.rm, getattr(self.sys, name))
        return False

    def _op_mov_dr(self, inst, rip, info):
        n = inst.sysreg
        if n in (4, 5):
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, VEC_UD, pc=rip,
                       message="dr%d is reserved" % n)
        name = "dr%d" % n
        if inst.to_system:
            old = self.sys.dr[n]
            new = self.regs[inst.rm]
            self._check_sysreg(inst, rip, info, name, write=True, old=old, new=new)
            self.sys.dr[n] = new & MASK64
        else:
            self._check_sysreg(inst, rip, info, name, read=True)
            self.set_reg(inst.rm, self.sys.dr[n])
        return False

    def _dtr_access(self, inst, rip, info, name: str, write: bool):
        register = getattr(self.sys, name)
        address = (self.regs[inst.base] + inst.disp) & MASK64
        self.machine.check_data_access(address, rip)
        info.mem_address = address
        if write:
            new_base = self.memory.load(address, 8)
            new_limit = self.memory.load(address + 8, 8) & 0xFFFF
            new = DescriptorTableRegister(new_base, new_limit)
            self._check_sysreg(inst, rip, info, name, write=True,
                               old=register.pack(), new=new.pack())
            setattr(self.sys, name, new)
            info.is_load = True
        else:
            self._check_sysreg(inst, rip, info, name, read=True)
            self.memory.store(address, register.base, 8)
            self.memory.store(address + 8, register.limit, 8)
            info.is_store = True

    def _op_lgdt(self, inst, rip, info):
        self._dtr_access(inst, rip, info, "gdtr", write=True)
        return False

    def _op_sgdt(self, inst, rip, info):
        self._dtr_access(inst, rip, info, "gdtr", write=False)
        return False

    def _op_lidt(self, inst, rip, info):
        self._dtr_access(inst, rip, info, "idtr", write=True)
        return False

    def _op_sidt(self, inst, rip, info):
        self._dtr_access(inst, rip, info, "idtr", write=False)
        return False

    def _op_lldt(self, inst, rip, info):
        old = self.sys.ldtr
        new = self.regs[inst.rm] & 0xFFFF
        self._check_sysreg(inst, rip, info, "ldtr", write=True, old=old, new=new)
        self.sys.ldtr = new
        return False

    def _op_ltr(self, inst, rip, info):
        old = self.sys.tr
        new = self.regs[inst.rm] & 0xFFFF
        self._check_sysreg(inst, rip, info, "tr", write=True, old=old, new=new)
        self.sys.tr = new
        return False

    def _op_invlpg(self, inst, rip, info):
        return False

    def _op_wbinvd(self, inst, rip, info):
        self.machine.hierarchy.flush()
        return False

    def _op_in(self, inst, rip, info):
        self.set_reg(0, 0)
        return False

    def _op_out(self, inst, rip, info):
        return False

    def _op_cli(self, inst, rip, info):
        return False

    def _op_sti(self, inst, rip, info):
        return False

    def _op_clts(self, inst, rip, info):
        old = self.sys.cr0
        new = old & ~8 & MASK64  # clear CR0.TS
        self._check_sysreg(inst, rip, info, "cr0", write=True, old=old, new=new)
        self.sys.cr0 = new
        return False

    def _op_hlt(self, inst, rip, info):
        self.exit_code = self.regs[0]
        info.halted = True
        return False

    # -- protection keys ---------------------------------------------------
    def _op_rdpkru(self, inst, rip, info):
        self._check_sysreg(inst, rip, info, "pkru", read=True)
        self.set_reg(0, self.sys.pkru)
        return False

    def _op_wrpkru(self, inst, rip, info):
        old = self.sys.pkru
        new = self.regs[0] & MASK32
        self._check_sysreg(inst, rip, info, "pkru", write=True, old=old, new=new)
        self.sys.pkru = new
        return False

    def _op_rdpkrs(self, inst, rip, info):
        self._check_sysreg(inst, rip, info, "pkrs", read=True)
        self.set_reg(0, self.sys.pkrs)
        return False

    def _op_wrpkrs(self, inst, rip, info):
        old = self.sys.pkrs
        new = self.regs[0] & MASK32
        self._check_sysreg(inst, rip, info, "pkrs", write=True, old=old, new=new)
        self.sys.pkrs = new
        return False

    # -- ISA-Grid cache management ------------------------------------------
    def _op_pfch(self, inst, rip, info):
        if self.pcu is not None:
            self.pcu.prefetch(self.regs[inst.rm] & 0xFFFF)
        info.extra_cycles = 1
        return False

    def _op_pflh(self, inst, rip, info):
        if self.pcu is not None:
            self.pcu.flush(CacheId(self.regs[inst.rm] & 0x7))
        info.extra_cycles = 1
        return False

    # -- gates ---------------------------------------------------------------
    def _op_gate(self, inst: Instruction, rip: int, info: StepInfo) -> bool:
        if self.pcu is None:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, VEC_UD, pc=rip,
                       message="gate instruction without ISA-Grid")
        kind = _GATE_KIND[inst.mnemonic]
        info.is_gate = True
        info.gate_kind = kind
        gate_id = self.regs[inst.rm] if inst.mnemonic != "hcrets" else 0
        target, stall = self.pcu.execute_gate(
            kind, gate_id, rip, return_address=rip + inst.size
        )
        info.pcu_stall += stall
        self.rip = target
        return True
