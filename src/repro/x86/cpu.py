"""Functional x86-64 CPU model with an integrated Privilege Check Unit.

Models ring 0/3, the IDT interrupt path, ``syscall``/``sysret`` via the
LSTAR MSR, the system-register file of :mod:`repro.x86.registers`, and
the instruction subset of :mod:`repro.x86.encoding`.  As on RISC-V,
every issued instruction passes both the ring check (the classic
mechanism) and the PCU check; either rejection vectors through the IDT.

Simplified IDT: the descriptor for vector ``v`` is the 8-byte handler
address at ``idtr.base + 8 * v``.  Interrupt entry pushes (rip, ring)
on the current stack; ``iret`` pops them.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.errors import PrivilegeFault, TrustedMemoryFault
from repro.core.isa_extension import AccessInfo, CacheId, GateKind
from repro.core.pcu import PrivilegeCheckUnit
from repro.sim.machine import Machine
from repro.sim.pipeline import StepInfo
from repro.sim.trap import Trap, TrapKind

from .encoding import EncodingError, Instruction, decode
from .isa import CSR_INDEX, GATE_CLASSES, MSR_CSR_NAME, RING0_CLASSES, X86_ISA_MAP
from .registers import (
    CR4_PCE,
    CR4_TSD,
    DescriptorTableRegister,
    SystemRegisters,
)

MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1

RING0 = 0
RING3 = 3

# Exception vectors.
VEC_UD = 6
VEC_GP = 13
VEC_SYSCALL_INT = 0x80
VEC_ISA_GRID = 32        # custom vector for PCU rejections
VEC_TRUSTED_MEMORY = 33  # custom vector for trusted-memory violations

_GATE_KIND = {
    "hccall": GateKind.HCCALL,
    "hccalls": GateKind.HCCALLS,
    "hcrets": GateKind.HCRETS,
}

#: Instruction-specific execution costs (cycles), roughly matching
#: measured costs on contemporary hardware; wrpkru's 26 cycles is the
#: figure the paper quotes from Hodor for Case 3.
EXTRA_CYCLES = {
    "cpuid": 100,
    "rdtsc": 22,
    "rdpmc": 30,
    "rdmsr": 60,
    "wrmsr": 90,
    "mov_cr": 40,
    "mov_dr": 40,
    "lgdt": 60,
    "lidt": 60,
    "lldt": 40,
    "ltr": 40,
    "sgdt": 20,
    "sidt": 20,
    "invlpg": 120,
    "wbinvd": 2000,
    "in": 40,
    "out": 40,
    "wrpkru": 26,
    "wrpkrs": 26,
    "rdpkru": 8,
    "rdpkrs": 8,
    "cli": 4,
    "sti": 4,
    "clts": 10,
}


class CpuPanic(Exception):
    """An exception occurred with no IDT handler installed."""


class X86Cpu:
    """A single simulated x86-64 core attached to a :class:`Machine`."""

    def __init__(self, machine: Machine, pcu: Optional[PrivilegeCheckUnit] = None):
        self.machine = machine
        self.memory = machine.memory
        self.pcu = pcu if pcu is not None else machine.pcu
        self.isa_map = X86_ISA_MAP
        self.regs = [0] * 16
        self.pc = 0  # rip; named .pc for the Machine protocol
        self.ring = RING0
        self.sys = SystemRegisters()
        self.zf = False
        self.cf = False
        self.sf_lt = False  # signed less-than from the last cmp/sub
        self.exit_code: Optional[int] = None
        self.trap_count = 0
        self.interrupt_count = 0
        self.last_trap: Optional[Trap] = None
        self._class_index = {
            name: self.isa_map.inst_class(name)
            for name in self.isa_map.inst_class_names
        }
        self._decode_cache: Dict[int, Tuple[bytes, Instruction]] = {}
        machine.attach_cpu(self)

    # ------------------------------------------------------------------
    @property
    def rip(self) -> int:
        return self.pc

    @rip.setter
    def rip(self, value: int) -> None:
        self.pc = value & MASK64

    def reg(self, index: int) -> int:
        return self.regs[index]

    def set_reg(self, index: int, value: int) -> None:
        self.regs[index] = value & MASK64

    def flush_decode_cache(self) -> None:
        """Call after writing instruction memory (icache coherence)."""
        self._decode_cache.clear()

    # ------------------------------------------------------------------
    # Interrupt/trap machinery.
    # ------------------------------------------------------------------
    def _handler_address(self, vector: int) -> int:
        base = self.sys.idtr.base
        if not base:
            return 0
        return self.memory.load(base + 8 * vector, 8)

    def _vector(self, vector: int, return_rip: int, info: StepInfo, trap: Trap) -> None:
        self.trap_count += 1
        self.interrupt_count += 1
        self.last_trap = trap
        handler = self._handler_address(vector)
        if not handler:
            raise CpuPanic(
                "vector %d at rip=0x%x with no IDT handler (%s)"
                % (vector, return_rip, trap)
            )
        # Push (rip, ring) on the current stack, like a long-mode
        # interrupt frame (simplified).
        rsp = (self.regs[4] - 16) & MASK64
        self.memory.store(rsp + 8, return_rip, 8)
        self.memory.store(rsp, self.ring, 8)
        self.regs[4] = rsp
        self.ring = RING0
        self.rip = handler
        info.trapped = True

    def _iret(self, info: StepInfo) -> None:
        rsp = self.regs[4]
        self.ring = self.memory.load(rsp, 8) & 3
        self.rip = self.memory.load(rsp + 8, 8)
        self.regs[4] = (rsp + 16) & MASK64
        info.trap_return = True

    # ------------------------------------------------------------------
    def step(self) -> StepInfo:
        rip = self.pc
        info = StepInfo(pc=rip, size=1)
        try:
            inst = self._fetch(rip)
            info.size = inst.size
            self._execute(inst, rip, info)
        except Trap as trap:
            vector = {
                TrapKind.ILLEGAL_INSTRUCTION: VEC_UD,
                TrapKind.ISA_GRID_FAULT: VEC_ISA_GRID,
                TrapKind.TRUSTED_MEMORY_FAULT: VEC_TRUSTED_MEMORY,
            }.get(trap.kind, VEC_GP)
            self._vector(vector, rip, info, trap)
        except PrivilegeFault as fault:
            if isinstance(fault, TrustedMemoryFault):
                trap = Trap(TrapKind.TRUSTED_MEMORY_FAULT, VEC_TRUSTED_MEMORY,
                            pc=rip, message=str(fault), fault=fault)
                self._vector(VEC_TRUSTED_MEMORY, rip, info, trap)
            else:
                trap = Trap(TrapKind.ISA_GRID_FAULT, VEC_ISA_GRID,
                            pc=rip, message=str(fault), fault=fault)
                self._vector(VEC_ISA_GRID, rip, info, trap)
        return info

    def _fetch(self, rip: int) -> Instruction:
        cached = self._decode_cache.get(rip)
        if cached is not None:
            return cached[1]
        window = self.memory.load_bytes(rip, 16)
        try:
            inst = decode(window)
        except EncodingError as error:
            raise Trap(
                TrapKind.ILLEGAL_INSTRUCTION, VEC_UD, pc=rip, message=str(error)
            )
        self._decode_cache[rip] = (window[: inst.size], inst)
        return inst

    # ------------------------------------------------------------------
    def _check_pcu(self, info: StepInfo, access: AccessInfo) -> None:
        if self.pcu is not None:
            info.pcu_stall += self.pcu.check(access)

    def _check_plain(self, inst: Instruction, rip: int, info: StepInfo) -> None:
        self._check_pcu(
            info, AccessInfo(inst_class=self._class_index[inst.inst_class], address=rip)
        )

    def _check_sysreg(
        self,
        inst: Instruction,
        rip: int,
        info: StepInfo,
        csr_name: str,
        *,
        read: bool = False,
        write: bool = False,
        old: Optional[int] = None,
        new: Optional[int] = None,
    ) -> None:
        self._check_pcu(
            info,
            AccessInfo(
                inst_class=self._class_index[inst.inst_class],
                address=rip,
                csr=CSR_INDEX[csr_name],
                csr_read=read,
                csr_write=write,
                write_value=new,
                old_value=old,
            ),
        )

    def _require_ring0(self, inst: Instruction, rip: int) -> None:
        if self.ring != RING0:
            raise Trap(
                TrapKind.ILLEGAL_INSTRUCTION, VEC_GP, pc=rip,
                message="%s requires ring 0" % inst.mnemonic,
            )

    # ------------------------------------------------------------------
    def _execute(self, inst: Instruction, rip: int, info: StepInfo) -> None:
        m = inst.mnemonic
        cls = inst.inst_class
        info.extra_cycles = EXTRA_CYCLES.get(cls, 0)
        next_rip = rip + inst.size
        r = self.regs

        if cls in GATE_CLASSES:
            self._execute_gate(inst, rip, info)
            return

        # Classic privilege-level check first (Section 4.1: both checks).
        if cls in RING0_CLASSES:
            self._require_ring0(inst, rip)
        if cls == "rdtsc" and self.ring != RING0 and self.sys.cr4 & CR4_TSD:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, VEC_GP, pc=rip,
                       message="rdtsc blocked by CR4.TSD")
        if cls == "rdpmc" and self.ring != RING0 and not self.sys.cr4 & CR4_PCE:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, VEC_GP, pc=rip,
                       message="rdpmc blocked by CR4.PCE")

        handler = getattr(self, "_op_" + cls, None)
        if handler is None:  # pragma: no cover - decoder/executor in sync
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, VEC_UD, pc=rip,
                       message="unimplemented class %s" % cls)
        jumped = handler(inst, rip, info)
        if not jumped:
            self.rip = next_rip

    # -- general computation -------------------------------------------
    def _op_nop(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        return False

    def _op_string(self, inst, rip, info):  # pragma: no cover - reserved
        self._check_plain(inst, rip, info)
        return False

    def _op_mov(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        r = self.regs
        m = inst.mnemonic
        if m == "mov_imm":
            self.set_reg(inst.reg, inst.imm)
        elif m == "mov_rr":
            self.set_reg(inst.reg, r[inst.rm])
        elif m == "mov_load":
            address = (r[inst.base] + inst.disp) & MASK64
            self.machine.check_data_access(address, rip)
            self.set_reg(inst.reg, self.memory.load(address, 8))
            info.is_load = True
            info.mem_address = address
        elif m == "mov_store":
            address = (r[inst.base] + inst.disp) & MASK64
            self.machine.check_data_access(address, rip)
            self.memory.store(address, r[inst.reg], 8)
            info.is_store = True
            info.mem_address = address
        return False

    def _op_alu(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        r = self.regs
        m = inst.mnemonic
        if m == "lea":
            self.set_reg(inst.reg, r[inst.base] + inst.disp)
            return False
        if m in ("mul", "imul"):
            product = r[0] * r[inst.rm]
            self.set_reg(0, product)
            self.set_reg(2, product >> 64)
            return False
        if m in ("div", "idiv"):
            divisor = r[inst.rm]
            if divisor == 0:
                raise Trap(TrapKind.ILLEGAL_INSTRUCTION, 0, pc=rip,
                           message="divide by zero")
            dividend = r[2] << 64 | r[0]
            self.set_reg(0, dividend // divisor)
            self.set_reg(2, dividend % divisor)
            return False
        if m in ("inc", "dec"):
            result = (r[inst.rm] + (1 if m == "inc" else -1)) & MASK64
            self.set_reg(inst.rm, result)
            self.zf = result == 0
            return False
        if m == "neg":
            result = (-r[inst.rm]) & MASK64
            self.set_reg(inst.rm, result)
            self.zf = result == 0
            self.cf = result != 0
            return False
        if m == "not":
            self.set_reg(inst.rm, ~r[inst.rm] & MASK64)
            return False
        if m == "xchg":
            r[inst.reg], r[inst.rm] = r[inst.rm], r[inst.reg]
            return False
        if m in ("shl", "shr", "sar"):
            value = r[inst.rm]
            amount = inst.imm & 63
            if m == "shl":
                result = value << amount
            elif m == "shr":
                result = value >> amount
            else:
                sign = value if value < 1 << 63 else value - (1 << 64)
                result = sign >> amount
            self.set_reg(inst.rm, result)
            self.zf = result & MASK64 == 0
            return False
        if m.endswith("_imm"):
            dst, a, b = inst.rm, r[inst.rm], inst.imm & MASK64
            base = m[:-4]
        else:
            # `op r/m, r` encodings: destination in r/m, source in reg.
            dst, a, b = inst.rm, r[inst.rm], r[inst.reg]
            base = m
        if base == "add":
            result = a + b
        elif base == "sub" or base == "cmp":
            result = a - b
        elif base == "and" or base == "test":
            result = a & b
        elif base == "or":
            result = a | b
        else:  # xor
            result = a ^ b
        masked = result & MASK64
        self.zf = masked == 0
        self.cf = a < b if base in ("sub", "cmp") else False
        signed_a = a - (1 << 64) if a >> 63 else a
        signed_b = (b & MASK64) - (1 << 64) if (b & MASK64) >> 63 else b & MASK64
        self.sf_lt = signed_a < signed_b if base in ("sub", "cmp") else masked >> 63 == 1
        if base not in ("cmp", "test"):
            self.set_reg(dst, masked)
        return False

    def _op_stack(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        r = self.regs
        if inst.mnemonic == "push":
            rsp = (r[4] - 8) & MASK64
            self.machine.check_data_access(rsp, rip)
            self.memory.store(rsp, r[inst.reg], 8)
            r[4] = rsp
            info.is_store = True
            info.mem_address = rsp
        else:
            rsp = r[4]
            self.machine.check_data_access(rsp, rip)
            self.set_reg(inst.reg, self.memory.load(rsp, 8))
            r[4] = (rsp + 8) & MASK64
            info.is_load = True
            info.mem_address = rsp
        return False

    def _op_branch(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        m = inst.mnemonic
        target = (rip + inst.size + inst.imm) & MASK64
        if m == "jmp":
            self.rip = target
            return True
        info.is_branch = True
        taken = {
            "je": self.zf, "jne": not self.zf,
            "jl": self.sf_lt, "jge": not self.sf_lt,
            "jb": self.cf, "jae": not self.cf,
            "jbe": self.cf or self.zf, "ja": not self.cf and not self.zf,
            "jle": self.sf_lt or self.zf, "jg": not self.sf_lt and not self.zf,
        }[m]
        info.branch_taken = taken
        if taken:
            self.rip = target
            return True
        return False

    def _op_call(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        r = self.regs
        if inst.mnemonic == "call":
            rsp = (r[4] - 8) & MASK64
            self.machine.check_data_access(rsp, rip)
            self.memory.store(rsp, rip + inst.size, 8)
            r[4] = rsp
            self.rip = (rip + inst.size + inst.imm) & MASK64
            info.is_store = True
            info.mem_address = rsp
            return True
        # ret
        rsp = r[4]
        self.machine.check_data_access(rsp, rip)
        self.rip = self.memory.load(rsp, 8)
        r[4] = (rsp + 8) & MASK64
        info.is_load = True
        info.mem_address = rsp
        return True

    # -- system entry/exit -----------------------------------------------
    def _op_syscall(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        lstar = self.sys.msrs[0xC0000082]
        if not lstar:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, VEC_GP, pc=rip,
                       message="syscall with LSTAR unset")
        self.set_reg(1, rip + inst.size)  # rcx <- return rip
        self.ring = RING0
        self.rip = lstar
        info.trapped = True
        self.trap_count += 1
        return True

    def _op_sysret(self, inst, rip, info):
        self._require_ring0(inst, rip)
        self._check_plain(inst, rip, info)
        self.rip = self.regs[1]
        self.ring = RING3
        info.trap_return = True
        return True

    def _op_int(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        trap = Trap(TrapKind.SYSCALL, inst.vector, pc=rip)
        self._vector(inst.vector, rip + inst.size, info, trap)
        return True

    def _op_iret(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        self._iret(info)
        return True

    # -- system registers -------------------------------------------------
    def _op_rdtsc(self, inst, rip, info):
        self._check_sysreg(inst, rip, info, "tsc", read=True)
        tsc = int(self.machine.stats.cycles)
        self.set_reg(0, tsc & MASK32)
        self.set_reg(2, tsc >> 32)
        return False

    def _op_rdpmc(self, inst, rip, info):
        counter = self.regs[1] & 3
        self._check_sysreg(inst, rip, info, "pmc%d" % min(counter, 1), read=True)
        if counter == 0:
            value = self.interrupt_count
        elif counter == 1:
            value = self.machine.hierarchy.l1i.stats.misses
        else:
            value = self.sys.pmc.get(counter, 0)
        self.set_reg(0, value & MASK32)
        self.set_reg(2, value >> 32 & MASK32)
        return False

    def _msr_csr_name(self, rip: int) -> str:
        address = self.regs[1] & MASK32
        name = MSR_CSR_NAME.get(address)
        if name is None:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, VEC_GP, pc=rip,
                       message="unimplemented MSR 0x%x" % address)
        return name

    def _op_rdmsr(self, inst, rip, info):
        name = self._msr_csr_name(rip)
        self._check_sysreg(inst, rip, info, name, read=True)
        value = self.sys.read_msr(self.regs[1] & MASK32)
        self.set_reg(0, value & MASK32)
        self.set_reg(2, value >> 32)
        return False

    def _op_wrmsr(self, inst, rip, info):
        name = self._msr_csr_name(rip)
        address = self.regs[1] & MASK32
        old = self.sys.read_msr(address)
        new = (self.regs[2] & MASK32) << 32 | self.regs[0] & MASK32
        self._check_sysreg(inst, rip, info, name, write=True, old=old, new=new)
        self.sys.write_msr(address, new)
        return False

    def _op_cpuid(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        leaf = self.regs[0] & MASK32
        if leaf == 0:
            self.set_reg(0, 0x16)
            self.set_reg(3, 0x756E6547)  # "Genu"
            self.set_reg(2, 0x49656E69)  # "ineI"
            self.set_reg(1, 0x6C65746E)  # "ntel"
        elif leaf == 1:
            self.set_reg(0, 0x000906EA)  # family/model/stepping
            self.set_reg(3, 0x1F8BFBFF)  # feature flags (edx)
            self.set_reg(1, 0x7FFAFBBF)  # feature flags (ecx)
            self.set_reg(2, 0x00100800)
        else:
            self.set_reg(0, 0)
            self.set_reg(1, 0)
            self.set_reg(2, 0)
            self.set_reg(3, 0)
        return False

    _CR_NAMES = {0: "cr0", 2: "cr2", 3: "cr3", 4: "cr4"}

    def _op_mov_cr(self, inst, rip, info):
        name = self._CR_NAMES.get(inst.sysreg)
        if name is None:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, VEC_UD, pc=rip,
                       message="no such control register cr%d" % inst.sysreg)
        if inst.to_system:
            old = getattr(self.sys, name)
            new = self.regs[inst.rm]
            self._check_sysreg(inst, rip, info, name, write=True, old=old, new=new)
            setattr(self.sys, name, new & MASK64)
        else:
            self._check_sysreg(inst, rip, info, name, read=True)
            self.set_reg(inst.rm, getattr(self.sys, name))
        return False

    def _op_mov_dr(self, inst, rip, info):
        n = inst.sysreg
        if n in (4, 5):
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, VEC_UD, pc=rip,
                       message="dr%d is reserved" % n)
        name = "dr%d" % n
        if inst.to_system:
            old = self.sys.dr[n]
            new = self.regs[inst.rm]
            self._check_sysreg(inst, rip, info, name, write=True, old=old, new=new)
            self.sys.dr[n] = new & MASK64
        else:
            self._check_sysreg(inst, rip, info, name, read=True)
            self.set_reg(inst.rm, self.sys.dr[n])
        return False

    def _dtr_access(self, inst, rip, info, name: str, write: bool):
        register = getattr(self.sys, name)
        address = (self.regs[inst.base] + inst.disp) & MASK64
        self.machine.check_data_access(address, rip)
        info.mem_address = address
        if write:
            new_base = self.memory.load(address, 8)
            new_limit = self.memory.load(address + 8, 8) & 0xFFFF
            new = DescriptorTableRegister(new_base, new_limit)
            self._check_sysreg(inst, rip, info, name, write=True,
                               old=register.pack(), new=new.pack())
            setattr(self.sys, name, new)
            info.is_load = True
        else:
            self._check_sysreg(inst, rip, info, name, read=True)
            self.memory.store(address, register.base, 8)
            self.memory.store(address + 8, register.limit, 8)
            info.is_store = True

    def _op_lgdt(self, inst, rip, info):
        self._dtr_access(inst, rip, info, "gdtr", write=True)
        return False

    def _op_sgdt(self, inst, rip, info):
        self._dtr_access(inst, rip, info, "gdtr", write=False)
        return False

    def _op_lidt(self, inst, rip, info):
        self._dtr_access(inst, rip, info, "idtr", write=True)
        return False

    def _op_sidt(self, inst, rip, info):
        self._dtr_access(inst, rip, info, "idtr", write=False)
        return False

    def _op_lldt(self, inst, rip, info):
        old = self.sys.ldtr
        new = self.regs[inst.rm] & 0xFFFF
        self._check_sysreg(inst, rip, info, "ldtr", write=True, old=old, new=new)
        self.sys.ldtr = new
        return False

    def _op_ltr(self, inst, rip, info):
        old = self.sys.tr
        new = self.regs[inst.rm] & 0xFFFF
        self._check_sysreg(inst, rip, info, "tr", write=True, old=old, new=new)
        self.sys.tr = new
        return False

    def _op_invlpg(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        return False

    def _op_wbinvd(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        self.machine.hierarchy.flush()
        return False

    def _op_in(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        self.set_reg(0, 0)
        return False

    def _op_out(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        return False

    def _op_cli(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        return False

    def _op_sti(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        return False

    def _op_clts(self, inst, rip, info):
        old = self.sys.cr0
        new = old & ~8 & MASK64  # clear CR0.TS
        self._check_sysreg(inst, rip, info, "cr0", write=True, old=old, new=new)
        self.sys.cr0 = new
        return False

    def _op_hlt(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        self.exit_code = self.regs[0]
        info.halted = True
        return False

    # -- protection keys ---------------------------------------------------
    def _op_rdpkru(self, inst, rip, info):
        self._check_sysreg(inst, rip, info, "pkru", read=True)
        self.set_reg(0, self.sys.pkru)
        return False

    def _op_wrpkru(self, inst, rip, info):
        old = self.sys.pkru
        new = self.regs[0] & MASK32
        self._check_sysreg(inst, rip, info, "pkru", write=True, old=old, new=new)
        self.sys.pkru = new
        return False

    def _op_rdpkrs(self, inst, rip, info):
        self._check_sysreg(inst, rip, info, "pkrs", read=True)
        self.set_reg(0, self.sys.pkrs)
        return False

    def _op_wrpkrs(self, inst, rip, info):
        old = self.sys.pkrs
        new = self.regs[0] & MASK32
        self._check_sysreg(inst, rip, info, "pkrs", write=True, old=old, new=new)
        self.sys.pkrs = new
        return False

    # -- ISA-Grid cache management ------------------------------------------
    def _op_pfch(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        if self.pcu is not None:
            self.pcu.prefetch(self.regs[inst.rm] & 0xFFFF)
        info.extra_cycles = 1
        return False

    def _op_pflh(self, inst, rip, info):
        self._check_plain(inst, rip, info)
        if self.pcu is not None:
            self.pcu.flush(CacheId(self.regs[inst.rm] & 0x7))
        info.extra_cycles = 1
        return False

    # -- gates ---------------------------------------------------------------
    def _execute_gate(self, inst: Instruction, rip: int, info: StepInfo) -> None:
        if self.pcu is None:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, VEC_UD, pc=rip,
                       message="gate instruction without ISA-Grid")
        kind = _GATE_KIND[inst.mnemonic]
        info.is_gate = True
        info.gate_kind = kind
        gate_id = self.regs[inst.rm] if inst.mnemonic != "hcrets" else 0
        target, stall = self.pcu.execute_gate(
            kind, gate_id, rip, return_address=rip + inst.size
        )
        info.pcu_stall += stall
        self.rip = target
