"""A small two-pass x86-64 assembler (Intel syntax subset).

Understands exactly the encodings of :mod:`repro.x86.encoding`:
register-register and imm64 moves, ``[reg+disp]`` memory operands,
ALU/shift/muldiv forms, stack ops, rel32 control flow, the system
instructions, the ISA-Grid extension, and raw ``.byte`` emission (used
by the code-injection attacks).

Example::

    program = assemble('''
        entry:
            mov rax, 42
            hlt
    ''', base=0x400000)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .encoding import Encoder, EncodingError, simple_bytes
from .registers import GPR_NUMBER


class AssemblerError(Exception):
    def __init__(self, message: str, line: Optional[int] = None):
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)


@dataclass
class Program:
    base: int
    data: bytes
    symbols: Dict[str, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise AssemblerError("unknown symbol %r" % name) from None

    def load(self, memory) -> None:
        memory.store_bytes(self.base, self.data)


_MEM = re.compile(r"^\[(\w+)\s*(?:([+-])\s*(\w+))?\]$")
_CR = re.compile(r"^cr([0-8])$")
_DR = re.compile(r"^dr([0-7])$")

_SIMPLE_MNEMONICS = {
    "nop", "ret", "iret", "hlt", "cli", "sti", "int3", "syscall", "sysret",
    "wbinvd", "clts", "rdtsc", "rdmsr", "wrmsr", "rdpmc", "cpuid",
    "rdpkru", "wrpkru", "rdpkrs", "wrpkrs", "hcrets",
}
_ALU_RR = {"add", "sub", "and", "or", "xor", "cmp", "test"}
_SHIFTS = {"shl", "shr", "sar"}
_MULDIV = {"mul", "imul", "div", "idiv"}
_F7_UNARY = {"neg", "not"}
_INCDEC = {"inc", "dec"}
_JCC = {"je", "jne", "jl", "jge", "jb", "jae", "jbe", "ja", "jle", "jg"}
_GRID_REG = {"hccall", "hccalls", "pfch", "pflh"}
_GROUP01 = {"sgdt": 0, "sidt": 1, "lgdt": 2, "lidt": 3, "invlpg": 7}


def _parse_int(token: str, line: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError("bad integer %r" % token, line) from None


def _is_reg(token: str) -> bool:
    return token in GPR_NUMBER


def _parse_mem(token: str, line: int) -> Optional[Tuple[int, int]]:
    """Parse ``[reg]`` / ``[reg+disp]`` / ``[reg-disp]`` -> (base, disp)."""
    match = _MEM.match(token)
    if not match:
        return None
    base = GPR_NUMBER.get(match.group(1))
    if base is None:
        raise AssemblerError("bad base register %r" % match.group(1), line)
    disp = 0
    if match.group(3) is not None:
        disp = _parse_int(match.group(3), line)
        if match.group(2) == "-":
            disp = -disp
    return base, disp


@dataclass
class _Item:
    kind: str                 # "inst", "bytes"
    mnemonic: str = ""
    operands: Tuple[str, ...] = ()
    line: int = 0
    address: int = 0
    size: int = 0
    raw: bytes = b""


class Assembler:
    """Two-pass x86-64 assembler producing a :class:`Program`."""

    def __init__(self, base: int = 0x400000):
        self.base = base

    def assemble(self, source: str) -> Program:
        items, symbols = self._pass1(source)
        data = bytearray()
        for item in items:
            if item.kind == "bytes":
                data += item.raw
                continue
            encoded = self._encode(item, symbols)
            if len(encoded) != item.size:
                raise AssemblerError(
                    "%s: size changed between passes (%d -> %d)"
                    % (item.mnemonic, item.size, len(encoded)),
                    item.line,
                )
            data += encoded
        return Program(self.base, bytes(data), symbols)

    # ------------------------------------------------------------------
    def _pass1(self, source: str) -> Tuple[List[_Item], Dict[str, int]]:
        items: List[_Item] = []
        symbols: Dict[str, int] = {}
        address = self.base
        for number, raw in enumerate(source.splitlines(), start=1):
            line = re.split(r"[#;]", raw, 1)[0].strip()
            if not line:
                continue
            while True:
                match = re.match(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$", line)
                if not match:
                    break
                label, line = match.group(1), match.group(2).strip()
                if label in symbols:
                    raise AssemblerError("duplicate label %r" % label, number)
                symbols[label] = address
            if not line:
                continue
            mnemonic, _, rest = line.partition(" ")
            mnemonic = mnemonic.lower()
            operands = tuple(p.strip() for p in rest.split(",")) if rest.strip() else ()
            if mnemonic == ".byte":
                raw_bytes = bytes(_parse_int(op, number) & 0xFF for op in operands)
                items.append(_Item("bytes", line=number, address=address,
                                   size=len(raw_bytes), raw=raw_bytes))
                address += len(raw_bytes)
                continue
            if mnemonic == ".zero":
                size = _parse_int(operands[0], number)
                items.append(_Item("bytes", line=number, address=address,
                                   size=size, raw=b"\x00" * size))
                address += size
                continue
            if mnemonic == ".align":
                align = _parse_int(operands[0], number)
                pad = -address % align
                items.append(_Item("bytes", line=number, address=address,
                                   size=pad, raw=b"\x90" * pad))
                address += pad
                continue
            if mnemonic.startswith("."):
                raise AssemblerError("unknown directive %r" % mnemonic, number)
            item = _Item("inst", mnemonic=mnemonic, operands=operands,
                         line=number, address=address)
            item.size = len(self._encode(item, None))
            items.append(item)
            address += item.size
        return items, symbols

    # ------------------------------------------------------------------
    def _resolve(self, token: str, symbols: Optional[Dict[str, int]], line: int) -> int:
        if symbols is not None and token in symbols:
            return symbols[token]
        if symbols is None and not re.match(r"^[+-]?(0[xX])?[0-9a-fA-F]+$", token):
            return 0  # pass 1: unknown label, size is fixed anyway
        return _parse_int(token, line)

    def _encode(self, item: _Item, symbols: Optional[Dict[str, int]]) -> bytes:
        m, ops, line, address = item.mnemonic, item.operands, item.line, item.address
        try:
            return self._encode_inner(m, ops, address, symbols, line)
        except EncodingError as error:
            raise AssemblerError(str(error), line) from error

    def _encode_inner(
        self,
        m: str,
        ops: Tuple[str, ...],
        address: int,
        symbols: Optional[Dict[str, int]],
        line: int,
    ) -> bytes:
        if m in _SIMPLE_MNEMONICS:
            return simple_bytes(m)
        if m == "mov":
            return self._encode_mov(ops, symbols, line)
        if m == "lea":
            mem = _parse_mem(ops[1], line)
            if not _is_reg(ops[0]) or mem is None:
                raise AssemblerError("lea needs reg, [mem]", line)
            return Encoder.mem(0x8D, GPR_NUMBER[ops[0]], mem[0], mem[1])
        if m in _ALU_RR:
            if _is_reg(ops[1]):
                # opcode r/m, r: destination in r/m.
                return Encoder.rr(
                    {"add": 0x01, "sub": 0x29, "and": 0x21, "or": 0x09,
                     "xor": 0x31, "cmp": 0x39, "test": 0x85}[m],
                    GPR_NUMBER[ops[1]], GPR_NUMBER[ops[0]],
                )
            if m == "test":
                raise AssemblerError("test takes two registers", line)
            return Encoder.alu_imm(m, GPR_NUMBER[ops[0]],
                                   self._resolve(ops[1], symbols, line))
        if m in _SHIFTS:
            return Encoder.shift_imm(m, GPR_NUMBER[ops[0]], _parse_int(ops[1], line))
        if m in _MULDIV:
            return Encoder.muldiv(m, GPR_NUMBER[ops[0]])
        if m in _F7_UNARY:
            return Encoder.f7_unary(m, GPR_NUMBER[ops[0]])
        if m in _INCDEC:
            return Encoder.incdec(m, GPR_NUMBER[ops[0]])
        if m == "xchg":
            return Encoder.xchg(GPR_NUMBER[ops[0]], GPR_NUMBER[ops[1]])
        if m in ("push", "pop"):
            return Encoder.push_pop(m, GPR_NUMBER[ops[0]])
        if m in ("jmp", "call"):
            target = self._resolve(ops[0], symbols, line)
            opcode = (0xE9,) if m == "jmp" else (0xE8,)
            size = 5
            return Encoder.rel32(opcode, target - (address + size))
        if m in _JCC:
            target = self._resolve(ops[0], symbols, line)
            opcode = {"je": 0x84, "jne": 0x85, "jb": 0x82, "jae": 0x83,
                      "jl": 0x8C, "jge": 0x8D, "jbe": 0x86, "ja": 0x87,
                      "jle": 0x8E, "jg": 0x8F}[m]
            size = 6
            return Encoder.rel32((0x0F, opcode), target - (address + size))
        if m == "int":
            return bytes([0xCD, _parse_int(ops[0], line) & 0xFF])
        if m in ("in", "out"):
            opcode = 0xE4 if m == "in" else 0xE6
            return bytes([opcode, _parse_int(ops[0], line) & 0xFF])
        if m in _GROUP01:
            mem = _parse_mem(ops[0], line)
            if mem is None:
                raise AssemblerError("%s needs a memory operand" % m, line)
            return Encoder.group01(_GROUP01[m], mem[0], mem[1])
        if m in ("lldt", "ltr"):
            digit = 2 if m == "lldt" else 3
            reg = GPR_NUMBER[ops[0]]
            return bytes([0x0F, 0x00, 0xC0 | digit << 3 | reg & 7])
        if m in _GRID_REG:
            return Encoder.grid(m, GPR_NUMBER[ops[0]])
        raise AssemblerError("unknown mnemonic %r" % m, line)

    def _encode_mov(
        self, ops: Tuple[str, ...], symbols: Optional[Dict[str, int]], line: int
    ) -> bytes:
        if len(ops) != 2:
            raise AssemblerError("mov takes two operands", line)
        dst, src = ops
        cr_dst, cr_src = _CR.match(dst), _CR.match(src)
        dr_dst, dr_src = _DR.match(dst), _DR.match(src)
        if cr_dst:
            return Encoder.mov_cr(int(cr_dst.group(1)), GPR_NUMBER[src], to_cr=True)
        if cr_src:
            return Encoder.mov_cr(int(cr_src.group(1)), GPR_NUMBER[dst], to_cr=False)
        if dr_dst:
            return Encoder.mov_dr(int(dr_dst.group(1)), GPR_NUMBER[src], to_dr=True)
        if dr_src:
            return Encoder.mov_dr(int(dr_src.group(1)), GPR_NUMBER[dst], to_dr=False)
        mem_dst = _parse_mem(dst, line)
        mem_src = _parse_mem(src, line)
        if mem_dst is not None:
            if not _is_reg(src):
                raise AssemblerError("mov [mem], reg only", line)
            return Encoder.mem(0x89, GPR_NUMBER[src], mem_dst[0], mem_dst[1])
        if mem_src is not None:
            if not _is_reg(dst):
                raise AssemblerError("mov reg, [mem] only", line)
            return Encoder.mem(0x8B, GPR_NUMBER[dst], mem_src[0], mem_src[1])
        if _is_reg(dst) and _is_reg(src):
            # 0x89 /r: mov r/m, r  (rm = dst, reg = src)
            return Encoder.rr(0x89, GPR_NUMBER[src], GPR_NUMBER[dst])
        if _is_reg(dst):
            return Encoder.mov_imm64(GPR_NUMBER[dst], self._resolve(src, symbols, line))
        raise AssemblerError("bad mov operands (%s, %s)" % (dst, src), line)


def assemble(source: str, base: int = 0x400000) -> Program:
    return Assembler(base).assemble(source)
