"""x86 instruction classes and the CSR map for ISA-Grid.

The x86 prototype ignores instruction prefixes and keys the instruction
bitmap off the opcode (Section 7, "x86 Prototype").  General-purpose
computation shares a handful of always-granted classes; every system
instruction gets its own class so the decomposed kernel can grant, say,
``wrmsr`` without granting ``mov cr``.

The "CSRs" of the x86 instance are the control registers (CR0/CR4 with
bitwise control, Figure 1), each implemented MSR individually, the
descriptor-table registers, the debug registers, the protection-key
registers, the TSC and the PMCs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.isa_extension import CsrDescriptor, IsaGridIsaMap

from . import registers as regs

# ---------------------------------------------------------------------------
# Instruction classes.
# ---------------------------------------------------------------------------
INST_CLASSES: List[str] = [
    "alu",       # add/sub/and/or/xor/cmp/test/shifts/lea
    "mov",       # register/memory moves
    "stack",     # push/pop
    "branch",    # jmp/jcc
    "call",      # call/ret
    "nop",
    "string",    # simple rep-style ops (modelled as plain moves)
    # --- system instructions: one class each ------------------------------
    "syscall",
    "sysret",
    "int",       # software interrupt
    "iret",
    "rdtsc",
    "rdpmc",
    "rdmsr",
    "wrmsr",
    "cpuid",
    "mov_cr",    # mov to/from control registers
    "mov_dr",    # mov to/from debug registers
    "lgdt",
    "sgdt",
    "lidt",
    "sidt",
    "lldt",
    "ltr",
    "invlpg",
    "wbinvd",
    "in",
    "out",
    "cli",
    "sti",
    "clts",
    "hlt",
    "rdpkru",
    "wrpkru",
    "rdpkrs",
    "wrpkrs",
    # --- ISA-Grid extension ----------------------------------------------
    "hccall",
    "hccalls",
    "hcrets",
    "pfch",
    "pflh",
]

#: Classes any ordinary code needs.
BASE_COMPUTE_CLASSES = ("alu", "mov", "stack", "branch", "call", "nop", "string")

GATE_CLASSES = ("hccall", "hccalls", "hcrets")

# ---------------------------------------------------------------------------
# The x86 "CSR" table: index 0 reserved (pfch-all encoding).
# ---------------------------------------------------------------------------
_CSR_TABLE: List[Tuple[str, bool]] = [
    ("reserved", False),
    ("cr0", True),          # bitwise-controlled (Section 7)
    ("cr2", False),
    ("cr3", False),
    ("cr4", True),          # bitwise-controlled
    ("gdtr", False),
    ("idtr", False),
    ("ldtr", False),
    ("tr", False),
    ("dr0", False),
    ("dr1", False),
    ("dr2", False),
    ("dr3", False),
    ("dr6", False),
    ("dr7", False),
    ("pkru", False),
    ("pkrs", False),
    ("tsc", False),
    ("pmc0", False),
    ("pmc1", False),
    ("msr_apic_base", False),
    ("msr_spec_ctrl", False),
    ("msr_pred_cmd", False),
    ("msr_mtrrcap", False),
    ("msr_voltage", False),
    ("msr_mtrr_physbase0", False),
    ("msr_mtrr_physmask0", False),
    ("msr_mtrr_def_type", False),
    ("msr_pat", False),
    ("msr_efer", False),
    ("msr_star", False),
    ("msr_lstar", False),
    ("msr_sfmask", False),
    ("msr_fs_base", False),
    ("msr_gs_base", False),
    ("msr_kernel_gs_base", False),
    ("msr_tsc_aux", False),
    ("domain", False),     # ISA-Grid: current domain id (Table 2)
    ("pdomain", False),    # ISA-Grid: previous domain id
]

CSR_INDEX: Dict[str, int] = {name: i for i, (name, _) in enumerate(_CSR_TABLE)}

#: MSR address -> CSR name (for rdmsr/wrmsr privilege mapping).
MSR_CSR_NAME: Dict[int, str] = {
    regs.MSR_APIC_BASE: "msr_apic_base",
    regs.MSR_SPEC_CTRL: "msr_spec_ctrl",
    regs.MSR_PRED_CMD: "msr_pred_cmd",
    regs.MSR_MTRRCAP: "msr_mtrrcap",
    regs.MSR_VOLTAGE: "msr_voltage",
    regs.MSR_MTRR_PHYSBASE0: "msr_mtrr_physbase0",
    regs.MSR_MTRR_PHYSMASK0: "msr_mtrr_physmask0",
    regs.MSR_MTRR_DEF_TYPE: "msr_mtrr_def_type",
    regs.MSR_PAT: "msr_pat",
    regs.MSR_EFER: "msr_efer",
    regs.MSR_STAR: "msr_star",
    regs.MSR_LSTAR: "msr_lstar",
    regs.MSR_SFMASK: "msr_sfmask",
    regs.MSR_FS_BASE: "msr_fs_base",
    regs.MSR_GS_BASE: "msr_gs_base",
    regs.MSR_KERNEL_GS_BASE: "msr_kernel_gs_base",
    regs.MSR_TSC_AUX: "msr_tsc_aux",
}

#: The ISA-Grid map for the x86 prototype.
X86_ISA_MAP = IsaGridIsaMap(
    "x86_64",
    INST_CLASSES,
    [
        CsrDescriptor(name, index, width=64, bitwise=bitwise)
        for index, (name, bitwise) in enumerate(_CSR_TABLE)
    ],
)

#: Instruction classes only ring 0 may execute (the privilege-level
#: baseline that ISA-Grid complements).  ``wrpkru``/``rdpkru`` are
#: deliberately *not* here — that is exactly the MPK problem of §2.2.
RING0_CLASSES = frozenset(
    {
        "rdmsr", "wrmsr", "mov_cr", "mov_dr", "lgdt", "lidt", "lldt", "ltr",
        "invlpg", "wbinvd", "in", "out", "cli", "sti", "clts", "hlt",
        "iret", "wrpkrs", "rdpkrs", "pfch", "pflh",
    }
)
