"""Variable-length x86-64 instruction encoding and decoding.

A faithful *subset* of the real encoding: REX prefixes, ModRM bytes,
8/32/64-bit immediates, two-byte 0x0F opcodes.  Real opcodes are used
for every instruction that has one (``0F 30`` wrmsr, ``0F 20`` mov from
CR, ``0F 01 EF`` wrpkru, ...).  The ISA-Grid extension lives on unused
0x0F slots::

    0F 0A /r   hccall  r64   (gate id in r/m)
    0F 0C /r   hccalls r64
    0F 0D C0   hcrets
    0F 0E /r   pfch    r64
    0F 0F /r   pflh    r64

``wrpkrs``/``rdpkrs`` get the (fictional but documented) encodings
``0F 01 E9`` / ``0F 01 E8`` next to the real wrpkru/rdpkru pair.

Variable-length encoding is load-bearing for this reproduction: the
*unintended instruction* experiments embed system-instruction bytes in
the immediates of legitimate instructions and jump into the middle of
them, exactly the attack vector Section 2.3 says binary scanning cannot
handle and ISA-Grid blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class EncodingError(Exception):
    """Unknown mnemonic / operand combination or undecodable bytes."""


def _signed(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & sign - 1) - (value & sign)


@dataclass(frozen=True)
class Instruction:
    """One decoded x86 instruction."""

    mnemonic: str
    inst_class: str
    size: int
    reg: int = 0              # ModRM.reg (or opcode-embedded register)
    rm: int = 0               # ModRM.rm (register number when mode 3)
    base: int = -1            # base register for memory operands, -1 if none
    disp: int = 0
    imm: int = 0
    sysreg: int = -1          # CRn/DRn number for mov cr/dr
    vector: int = -1          # interrupt vector for `int`
    to_system: bool = False   # mov *to* CR/DR (write) vs from (read)
    is_mem: bool = False

    @property
    def is_load(self) -> bool:
        return self.is_mem and self.mnemonic in ("mov_load", "lgdt", "lidt")

    @property
    def is_store(self) -> bool:
        return self.is_mem and self.mnemonic in ("mov_store", "sgdt", "sidt")


_CLASS: Dict[str, str] = {
    "nop": "nop",
    "mov_imm": "mov", "mov_rr": "mov", "mov_load": "mov", "mov_store": "mov",
    "lea": "alu",
    "add": "alu", "sub": "alu", "and": "alu", "or": "alu", "xor": "alu",
    "cmp": "alu", "test": "alu",
    "add_imm": "alu", "sub_imm": "alu", "and_imm": "alu", "or_imm": "alu",
    "xor_imm": "alu", "cmp_imm": "alu",
    "shl": "alu", "shr": "alu", "sar": "alu",
    "mul": "alu", "imul": "alu", "div": "alu", "idiv": "alu",
    "inc": "alu", "dec": "alu", "neg": "alu", "not": "alu", "xchg": "alu",
    "push": "stack", "pop": "stack",
    "jmp": "branch", "je": "branch", "jne": "branch", "jl": "branch",
    "jge": "branch", "jb": "branch", "jae": "branch",
    "jbe": "branch", "ja": "branch", "jle": "branch", "jg": "branch",
    "call": "call", "ret": "call",
    "syscall": "syscall", "sysret": "sysret",
    "int": "int", "int3": "int", "iret": "iret",
    "rdtsc": "rdtsc", "rdpmc": "rdpmc", "rdmsr": "rdmsr", "wrmsr": "wrmsr",
    "cpuid": "cpuid", "wbinvd": "wbinvd", "hlt": "hlt",
    "cli": "cli", "sti": "sti", "clts": "clts",
    "in": "in", "out": "out",
    "mov_from_cr": "mov_cr", "mov_to_cr": "mov_cr",
    "mov_from_dr": "mov_dr", "mov_to_dr": "mov_dr",
    "lgdt": "lgdt", "sgdt": "sgdt", "lidt": "lidt", "sidt": "sidt",
    "lldt": "lldt", "ltr": "ltr", "invlpg": "invlpg",
    "rdpkru": "rdpkru", "wrpkru": "wrpkru",
    "rdpkrs": "rdpkrs", "wrpkrs": "wrpkrs",
    "hccall": "hccall", "hccalls": "hccalls", "hcrets": "hcrets",
    "pfch": "pfch", "pflh": "pflh",
}

_ALU_RR = {"add": 0x01, "sub": 0x29, "and": 0x21, "or": 0x09, "xor": 0x31,
           "cmp": 0x39, "test": 0x85}
_ALU_RR_BY_OP = {v: k for k, v in _ALU_RR.items()}
_ALU_IMM_DIGIT = {"add": 0, "or": 1, "and": 4, "sub": 5, "xor": 6, "cmp": 7}
_ALU_IMM_BY_DIGIT = {v: k for k, v in _ALU_IMM_DIGIT.items()}
_SHIFT_DIGIT = {"shl": 4, "shr": 5, "sar": 7}
_SHIFT_BY_DIGIT = {v: k for k, v in _SHIFT_DIGIT.items()}
_MULDIV_DIGIT = {"mul": 4, "imul": 5, "div": 6, "idiv": 7}
_MULDIV_BY_DIGIT = {v: k for k, v in _MULDIV_DIGIT.items()}
_F7_UNARY_DIGIT = {"not": 2, "neg": 3}
_F7_UNARY_BY_DIGIT = {v: k for k, v in _F7_UNARY_DIGIT.items()}
_INCDEC_DIGIT = {"inc": 0, "dec": 1}
_INCDEC_BY_DIGIT = {v: k for k, v in _INCDEC_DIGIT.items()}
_JCC = {"je": 0x84, "jne": 0x85, "jb": 0x82, "jae": 0x83, "jl": 0x8C,
        "jge": 0x8D, "jbe": 0x86, "ja": 0x87, "jle": 0x8E, "jg": 0x8F}
_JCC_BY_OP = {v: k for k, v in _JCC.items()}
_GRID = {"hccall": 0x0A, "hccalls": 0x0C, "hcrets": 0x0D, "pfch": 0x0E, "pflh": 0x0F}
_GRID_BY_OP = {v: k for k, v in _GRID.items()}


def _rex(w: int = 1, r: int = 0, x: int = 0, b: int = 0) -> int:
    return 0x40 | w << 3 | r << 2 | x << 1 | b


def _modrm(mode: int, reg: int, rm: int) -> int:
    return mode << 6 | (reg & 7) << 3 | (rm & 7)


def _i32(value: int) -> bytes:
    return (value & 0xFFFFFFFF).to_bytes(4, "little")


def _i64(value: int) -> bytes:
    return (value & (1 << 64) - 1).to_bytes(8, "little")


class Encoder:
    """Builds instruction byte sequences."""

    @staticmethod
    def rr(opcode: int, reg: int, rm: int) -> bytes:
        return bytes([_rex(r=reg >> 3, b=rm >> 3), opcode, _modrm(3, reg, rm)])

    @staticmethod
    def mem(opcode: int, reg: int, base: int, disp: int) -> bytes:
        """ModRM mode-2 memory operand ``[base + disp32]`` (no SIB)."""
        if base & 7 == 4:
            raise EncodingError("rsp/r12 base needs SIB; unsupported")
        return (
            bytes([_rex(r=reg >> 3, b=base >> 3), opcode, _modrm(2, reg, base)])
            + _i32(disp)
        )

    @staticmethod
    def mov_imm64(reg: int, imm: int) -> bytes:
        return bytes([_rex(b=reg >> 3), 0xB8 | reg & 7]) + _i64(imm)

    @staticmethod
    def alu_imm(mnemonic: str, rm: int, imm: int) -> bytes:
        digit = _ALU_IMM_DIGIT[mnemonic]
        return bytes(
            [_rex(b=rm >> 3), 0x81, _modrm(3, digit, rm)]
        ) + _i32(imm)

    @staticmethod
    def shift_imm(mnemonic: str, rm: int, imm: int) -> bytes:
        digit = _SHIFT_DIGIT[mnemonic]
        return bytes([_rex(b=rm >> 3), 0xC1, _modrm(3, digit, rm), imm & 0x3F])

    @staticmethod
    def muldiv(mnemonic: str, rm: int) -> bytes:
        digit = _MULDIV_DIGIT[mnemonic]
        return bytes([_rex(b=rm >> 3), 0xF7, _modrm(3, digit, rm)])

    @staticmethod
    def f7_unary(mnemonic: str, rm: int) -> bytes:
        digit = _F7_UNARY_DIGIT[mnemonic]
        return bytes([_rex(b=rm >> 3), 0xF7, _modrm(3, digit, rm)])

    @staticmethod
    def incdec(mnemonic: str, rm: int) -> bytes:
        digit = _INCDEC_DIGIT[mnemonic]
        return bytes([_rex(b=rm >> 3), 0xFF, _modrm(3, digit, rm)])

    @staticmethod
    def xchg(reg: int, rm: int) -> bytes:
        return bytes([_rex(r=reg >> 3, b=rm >> 3), 0x87, _modrm(3, reg, rm)])

    @staticmethod
    def push_pop(mnemonic: str, reg: int) -> bytes:
        opcode = (0x50 if mnemonic == "push" else 0x58) | reg & 7
        if reg >= 8:
            return bytes([_rex(w=0, b=1), opcode])
        return bytes([opcode])

    @staticmethod
    def rel32(opcode: Tuple[int, ...], rel: int) -> bytes:
        return bytes(opcode) + _i32(rel)

    @staticmethod
    def mov_cr(crn: int, reg: int, to_cr: bool) -> bytes:
        opcode = 0x22 if to_cr else 0x20
        return bytes([0x0F, opcode, _modrm(3, crn, reg)])

    @staticmethod
    def mov_dr(drn: int, reg: int, to_dr: bool) -> bytes:
        opcode = 0x23 if to_dr else 0x21
        return bytes([0x0F, opcode, _modrm(3, drn, reg)])

    @staticmethod
    def group01(digit: int, base: int, disp: int) -> bytes:
        """0F 01 /digit with a memory operand (lgdt/lidt/sgdt/sidt/invlpg)."""
        if base & 7 == 4:
            raise EncodingError("rsp/r12 base needs SIB; unsupported")
        return (
            bytes([_rex(b=base >> 3), 0x0F, 0x01, _modrm(2, digit, base)])
            + _i32(disp)
        )

    @staticmethod
    def grid(mnemonic: str, reg: int = 0) -> bytes:
        opcode = _GRID[mnemonic]
        if mnemonic == "hcrets":
            return bytes([0x0F, opcode, 0xC0])
        return bytes([_rex(b=reg >> 3), 0x0F, opcode, _modrm(3, 0, reg)])


# Fixed-encoding, no-operand instructions.
_SIMPLE: Dict[str, bytes] = {
    "nop": bytes([0x90]),
    "ret": bytes([0xC3]),
    "iret": bytes([0xCF]),
    "hlt": bytes([0xF4]),
    "cli": bytes([0xFA]),
    "sti": bytes([0xFB]),
    "int3": bytes([0xCC]),
    "syscall": bytes([0x0F, 0x05]),
    "sysret": bytes([0x0F, 0x07]),
    "wbinvd": bytes([0x0F, 0x09]),
    "clts": bytes([0x0F, 0x06]),
    "rdtsc": bytes([0x0F, 0x31]),
    "rdmsr": bytes([0x0F, 0x32]),
    "wrmsr": bytes([0x0F, 0x30]),
    "rdpmc": bytes([0x0F, 0x33]),
    "cpuid": bytes([0x0F, 0xA2]),
    "rdpkru": bytes([0x0F, 0x01, 0xEE]),
    "wrpkru": bytes([0x0F, 0x01, 0xEF]),
    "rdpkrs": bytes([0x0F, 0x01, 0xE8]),
    "wrpkrs": bytes([0x0F, 0x01, 0xE9]),
    "hcrets": bytes([0x0F, 0x0D, 0xC0]),
}
_SIMPLE_BY_BYTES = {v: k for k, v in _SIMPLE.items()}


def simple_bytes(mnemonic: str) -> bytes:
    """The fixed encoding of a no-operand instruction (attack payloads)."""
    return _SIMPLE[mnemonic]


# ---------------------------------------------------------------------------
# Decoder.
# ---------------------------------------------------------------------------
def _mk(mnemonic: str, size: int, **fields) -> Instruction:
    return Instruction(mnemonic, _CLASS[mnemonic], size, **fields)


def decode(code: bytes, offset: int = 0) -> Instruction:
    """Decode one instruction from ``code[offset:]``.

    Raises :class:`EncodingError` on undecodable bytes — the simulated
    #UD path.
    """
    start = offset
    rex = 0
    if offset < len(code) and 0x40 <= code[offset] <= 0x4F:
        rex = code[offset]
        offset += 1
    if offset >= len(code):
        raise EncodingError("truncated instruction")
    op = code[offset]
    offset += 1
    rex_r = rex >> 2 & 1
    rex_b = rex & 1

    def modrm() -> Tuple[int, int, int]:
        if offset >= len(code):
            raise EncodingError("truncated ModRM")
        byte = code[offset]
        return byte >> 6, (byte >> 3 & 7) | rex_r << 3, (byte & 7) | rex_b << 3

    def need(n: int) -> bytes:
        if offset + n > len(code):
            raise EncodingError("truncated immediate")
        return code[offset : offset + n]

    # One-byte opcodes -------------------------------------------------
    if op == 0x90:
        return _mk("nop", offset - start)
    if 0x50 <= op <= 0x57:
        return _mk("push", offset - start, reg=(op & 7) | rex_b << 3)
    if 0x58 <= op <= 0x5F:
        return _mk("pop", offset - start, reg=(op & 7) | rex_b << 3)
    if op == 0xC3:
        return _mk("ret", offset - start)
    if op == 0xCF:
        return _mk("iret", offset - start)
    if op == 0xF4:
        return _mk("hlt", offset - start)
    if op == 0xFA:
        return _mk("cli", offset - start)
    if op == 0xFB:
        return _mk("sti", offset - start)
    if op == 0xCC:
        return _mk("int3", offset - start, vector=3)
    if op == 0xCD:
        imm = need(1)[0]
        return _mk("int", offset + 1 - start, vector=imm)
    if op == 0xE4:
        imm = need(1)[0]
        return _mk("in", offset + 1 - start, imm=imm)
    if op == 0xE6:
        imm = need(1)[0]
        return _mk("out", offset + 1 - start, imm=imm)
    if op == 0xE8 or op == 0xE9:
        rel = _signed(int.from_bytes(need(4), "little"), 32)
        mnemonic = "call" if op == 0xE8 else "jmp"
        return _mk(mnemonic, offset + 4 - start, imm=rel)
    if 0xB8 <= op <= 0xBF:
        imm = int.from_bytes(need(8), "little")
        return _mk("mov_imm", offset + 8 - start, reg=(op & 7) | rex_b << 3, imm=imm)
    if op in (0x01, 0x29, 0x21, 0x09, 0x31, 0x39, 0x85):
        mode, reg, rm = modrm()
        if mode != 3:
            raise EncodingError("ALU r/m memory form unsupported")
        return _mk(_ALU_RR_BY_OP[op], offset + 1 - start, reg=reg, rm=rm)
    if op == 0x81:
        mode, digit, rm = modrm()
        if mode != 3 or (digit & 7) not in _ALU_IMM_BY_DIGIT:
            raise EncodingError("bad 0x81 form")
        offset += 1
        imm = _signed(int.from_bytes(need(4), "little"), 32)
        return _mk(
            _ALU_IMM_BY_DIGIT[digit & 7] + "_imm", offset + 4 - start, rm=rm, imm=imm
        )
    if op == 0xC1:
        mode, digit, rm = modrm()
        if mode != 3 or (digit & 7) not in _SHIFT_BY_DIGIT:
            raise EncodingError("bad 0xC1 form")
        offset += 1
        imm = need(1)[0]
        return _mk(_SHIFT_BY_DIGIT[digit & 7], offset + 1 - start, rm=rm, imm=imm)
    if op == 0xF7:
        mode, digit, rm = modrm()
        if mode != 3:
            raise EncodingError("bad 0xF7 form")
        if (digit & 7) in _MULDIV_BY_DIGIT:
            return _mk(_MULDIV_BY_DIGIT[digit & 7], offset + 1 - start, rm=rm)
        if (digit & 7) in _F7_UNARY_BY_DIGIT:
            return _mk(_F7_UNARY_BY_DIGIT[digit & 7], offset + 1 - start, rm=rm)
        raise EncodingError("bad 0xF7 digit")
    if op == 0xFF:
        mode, digit, rm = modrm()
        if mode != 3 or (digit & 7) not in _INCDEC_BY_DIGIT:
            raise EncodingError("bad 0xFF form")
        return _mk(_INCDEC_BY_DIGIT[digit & 7], offset + 1 - start, rm=rm)
    if op == 0x87:
        mode, reg, rm = modrm()
        if mode != 3:
            raise EncodingError("xchg memory form unsupported")
        return _mk("xchg", offset + 1 - start, reg=reg, rm=rm)
    if op in (0x89, 0x8B, 0x8D):
        mode, reg, rm = modrm()
        offset += 1
        if mode == 3:
            if op == 0x8D:
                raise EncodingError("lea needs a memory operand")
            mnemonic = "mov_rr"
            # 0x89: rm <- reg; 0x8B: reg <- rm.  Normalize to reg=dest.
            if op == 0x89:
                reg, rm = rm, reg
            return _mk(mnemonic, offset - start, reg=reg, rm=rm)
        if mode != 2:
            raise EncodingError("only disp32 memory operands supported")
        disp = _signed(int.from_bytes(need(4), "little"), 32)
        mnemonic = {0x89: "mov_store", 0x8B: "mov_load", 0x8D: "lea"}[op]
        return _mk(
            mnemonic, offset + 4 - start, reg=reg, base=rm, disp=disp, is_mem=op != 0x8D
        )

    # Two-byte opcodes ---------------------------------------------------
    if op == 0x0F:
        if offset >= len(code):
            raise EncodingError("truncated 0x0F opcode")
        op2 = code[offset]
        offset += 1
        simple = _SIMPLE_BY_BYTES.get(bytes([0x0F, op2]))
        if simple is not None:
            return _mk(simple, offset - start)
        if op2 in _JCC_BY_OP:
            rel = _signed(int.from_bytes(need(4), "little"), 32)
            return _mk(_JCC_BY_OP[op2], offset + 4 - start, imm=rel)
        if op2 in (0x20, 0x22):
            mode, crn, rm = modrm()
            if mode != 3:
                raise EncodingError("bad mov-cr ModRM")
            return _mk(
                "mov_to_cr" if op2 == 0x22 else "mov_from_cr",
                offset + 1 - start, sysreg=crn & 7, rm=rm, to_system=op2 == 0x22,
            )
        if op2 in (0x21, 0x23):
            mode, drn, rm = modrm()
            if mode != 3:
                raise EncodingError("bad mov-dr ModRM")
            return _mk(
                "mov_to_dr" if op2 == 0x23 else "mov_from_dr",
                offset + 1 - start, sysreg=drn & 7, rm=rm, to_system=op2 == 0x23,
            )
        if op2 == 0x00:
            mode, digit, rm = modrm()
            if mode != 3 or (digit & 7) not in (2, 3):
                raise EncodingError("bad 0F 00 form")
            return _mk("lldt" if digit & 7 == 2 else "ltr", offset + 1 - start, rm=rm)
        if op2 == 0x01:
            byte = need(1)[0]
            fixed = _SIMPLE_BY_BYTES.get(bytes([0x0F, 0x01, byte]))
            if fixed is not None:
                return _mk(fixed, offset + 1 - start)
            mode, digit, rm = modrm()
            names = {0: "sgdt", 1: "sidt", 2: "lgdt", 3: "lidt", 7: "invlpg"}
            if mode != 2 or (digit & 7) not in names:
                raise EncodingError("bad 0F 01 form")
            offset += 1
            disp = _signed(int.from_bytes(need(4), "little"), 32)
            return _mk(
                names[digit & 7], offset + 4 - start, base=rm, disp=disp, is_mem=True
            )
        if op2 in _GRID_BY_OP:
            mnemonic = _GRID_BY_OP[op2]
            mode, _, rm = modrm()
            if mode != 3:
                raise EncodingError("bad ISA-Grid ModRM")
            return _mk(mnemonic, offset + 1 - start, rm=rm)
        raise EncodingError("unknown 0x0F opcode 0x%02x" % op2)
    raise EncodingError("unknown opcode 0x%02x" % op)
