"""x86-64 system registers: control registers, MSRs, descriptor tables.

These are the ISA resources the paper's attacks abuse (Table 1): the
control registers with their function bits (Figure 1), the model-
specific registers including the voltage/frequency MSR 0x150 and the
BTB-control MSRs 0x48/0x49, the debug registers, the descriptor-table
registers, and the MPK/PKS protection-key registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

MASK64 = (1 << 64) - 1

# ---------------------------------------------------------------------------
# CR0 bits (Figure 1 analogue; the paper's bitwise-controlled register #1).
# ---------------------------------------------------------------------------
CR0_PE = 1 << 0    # protected mode enable
CR0_MP = 1 << 1
CR0_EM = 1 << 2
CR0_TS = 1 << 3    # task switched (lazy FPU) — per-function domain in §6.1
CR0_ET = 1 << 4
CR0_NE = 1 << 5    # numeric error — per-function domain in §6.1
CR0_WP = 1 << 16   # write protect — toggled by the Nested Kernel monitor
CR0_AM = 1 << 18
CR0_NW = 1 << 29
CR0_CD = 1 << 30   # cache disable — Stealthy Page Table attack prerequisite
CR0_PG = 1 << 31   # paging enable

# ---------------------------------------------------------------------------
# CR4 bits (Figure 1; bitwise-controlled register #2).
# ---------------------------------------------------------------------------
CR4_VME = 1 << 0
CR4_PVI = 1 << 1
CR4_TSD = 1 << 2    # rdtsc restricted to ring 0 when set
CR4_DE = 1 << 3
CR4_PSE = 1 << 4
CR4_PAE = 1 << 5
CR4_MCE = 1 << 6
CR4_PGE = 1 << 7
CR4_PCE = 1 << 8    # rdpmc allowed in ring 3 when set
CR4_OSFXSR = 1 << 9
CR4_OSXMMEXCPT = 1 << 10
CR4_UMIP = 1 << 11
CR4_VMXE = 1 << 13
CR4_SMXE = 1 << 14
CR4_FSGSBASE = 1 << 16
CR4_PCIDE = 1 << 17
CR4_OSXSAVE = 1 << 18
CR4_SMEP = 1 << 20
CR4_SMAP = 1 << 21  # the one bit the outer kernel may flip in §6.2
CR4_PKE = 1 << 22   # MPK enable
CR4_PKS = 1 << 24   # PKS enable (Intel SDM bit for supervisor keys)

# ---------------------------------------------------------------------------
# MSR addresses (architectural numbers where they exist).
# ---------------------------------------------------------------------------
MSR_APIC_BASE = 0x1B
MSR_SPEC_CTRL = 0x48      # SgxPectre prerequisite (IBRS/STIBP control)
MSR_PRED_CMD = 0x49       # SgxPectre prerequisite (IBPB)
MSR_MTRRCAP = 0xFE
MSR_VOLTAGE = 0x150       # V0LTpwn / Plundervolt prerequisite
MSR_MTRR_PHYSBASE0 = 0x200
MSR_MTRR_PHYSMASK0 = 0x201
MSR_MTRR_DEF_TYPE = 0x2FF
MSR_PAT = 0x277
MSR_EFER = 0xC0000080     # long-mode/NXE control; Nested Kernel protects it
MSR_STAR = 0xC0000081
MSR_LSTAR = 0xC0000082    # syscall entry point
MSR_SFMASK = 0xC0000084
MSR_FS_BASE = 0xC0000100
MSR_GS_BASE = 0xC0000101
MSR_KERNEL_GS_BASE = 0xC0000102
MSR_TSC_AUX = 0xC0000103

#: All MSRs the simulated core implements, with reset values.
KNOWN_MSRS: Dict[int, int] = {
    MSR_APIC_BASE: 0xFEE00000,
    MSR_SPEC_CTRL: 0,
    MSR_PRED_CMD: 0,
    MSR_MTRRCAP: 0x508,
    MSR_VOLTAGE: 0,
    MSR_MTRR_PHYSBASE0: 0x6,      # write-back
    MSR_MTRR_PHYSMASK0: 0x800,
    MSR_MTRR_DEF_TYPE: 0x6,
    MSR_PAT: 0x0007040600070406,
    MSR_EFER: 0,
    MSR_STAR: 0,
    MSR_LSTAR: 0,
    MSR_SFMASK: 0,
    MSR_FS_BASE: 0,
    MSR_GS_BASE: 0,
    MSR_KERNEL_GS_BASE: 0,
    MSR_TSC_AUX: 0,
}

EFER_SCE = 1 << 0
EFER_LME = 1 << 8
EFER_LMA = 1 << 10
EFER_NXE = 1 << 11


@dataclass
class DescriptorTableRegister:
    """GDTR/IDTR-style base+limit register pair."""

    base: int = 0
    limit: int = 0

    def pack(self) -> int:
        """Pack into one 64-bit value (48-bit base | 16-bit limit)."""
        return (self.base & 0xFFFFFFFFFFFF) << 16 | self.limit & 0xFFFF

    @classmethod
    def unpack(cls, value: int) -> "DescriptorTableRegister":
        return cls(base=value >> 16 & 0xFFFFFFFFFFFF, limit=value & 0xFFFF)


@dataclass
class SystemRegisters:
    """The full system-register file of the simulated x86 core."""

    cr0: int = CR0_PE | CR0_ET | CR0_PG
    cr2: int = 0
    cr3: int = 0
    cr4: int = CR4_PAE | CR4_PGE
    msrs: Dict[int, int] = field(default_factory=lambda: dict(KNOWN_MSRS))
    gdtr: DescriptorTableRegister = field(default_factory=DescriptorTableRegister)
    idtr: DescriptorTableRegister = field(default_factory=DescriptorTableRegister)
    ldtr: int = 0
    tr: int = 0
    dr: Dict[int, int] = field(default_factory=lambda: {i: 0 for i in range(8)})
    pkru: int = 0
    pkrs: int = 0
    tsc: int = 0
    pmc: Dict[int, int] = field(default_factory=lambda: {0: 0, 1: 0, 2: 0, 3: 0})

    def read_msr(self, address: int) -> int:
        if address not in self.msrs:
            raise KeyError("unimplemented MSR 0x%x" % address)
        return self.msrs[address]

    def write_msr(self, address: int, value: int) -> None:
        if address not in self.msrs:
            raise KeyError("unimplemented MSR 0x%x" % address)
        self.msrs[address] = value & MASK64


#: General-purpose register names, in hardware encoding order.
GPR_NAMES = [
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
]

GPR_NUMBER: Dict[str, int] = {name: i for i, name in enumerate(GPR_NAMES)}
