"""x86-64 substrate: the Gem5-O3-like ISA-Grid prototype.

Provides the functional x86 CPU with variable-length instruction
encoding, an Intel-syntax assembler, and :func:`build_x86_system`, which
wires the machine the way the paper's Gem5 prototype is configured
(Table 3): 8-wide O3 pipeline model, 3-level cache hierarchy, trusted
memory, PCU and domain-0 runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import (
    CONFIG_8E,
    DomainManager,
    PcuConfig,
    PrivilegeCheckUnit,
    TrustedMemory,
)
from repro.sim import (
    Machine,
    OutOfOrderPipelineModel,
    PhysicalMemory,
    gem5_o3_hierarchy,
)

from .assembler import Assembler, AssemblerError, Program, assemble
from .cpu import (
    CpuPanic,
    RING0,
    RING3,
    VEC_GP,
    VEC_ISA_GRID,
    VEC_SYSCALL_INT,
    VEC_TRUSTED_MEMORY,
    VEC_UD,
    X86Cpu,
)
from .encoding import EncodingError, Instruction, decode, simple_bytes
from .isa import (
    BASE_COMPUTE_CLASSES,
    CSR_INDEX,
    GATE_CLASSES,
    INST_CLASSES,
    MSR_CSR_NAME,
    RING0_CLASSES,
    X86_ISA_MAP,
)
from . import registers
from .registers import (
    CR0_CD,
    CR0_NE,
    CR0_TS,
    CR0_WP,
    CR4_PCE,
    CR4_PKE,
    CR4_SMAP,
    CR4_SMEP,
    CR4_TSD,
    GPR_NAMES,
    GPR_NUMBER,
    MSR_EFER,
    MSR_LSTAR,
    MSR_PRED_CMD,
    MSR_SPEC_CTRL,
    MSR_VOLTAGE,
    SystemRegisters,
)

# Canonical memory map of the simulated x86 machine.
KERNEL_BASE = 0x0010_0000
USER_BASE = 0x0040_0000
DATA_BASE = 0x0060_0000
IDT_BASE = 0x0068_0000
KERNEL_STACK_TOP = 0x006E_0000
USER_STACK_TOP = 0x006F_0000
TRUSTED_BASE = 0x0100_0000
TRUSTED_SIZE = 1 << 20
MEMORY_SIZE = 1 << 30


@dataclass
class X86System:
    """A fully wired x86 machine (the Gem5-prototype analogue)."""

    machine: Machine
    cpu: X86Cpu
    pcu: Optional[PrivilegeCheckUnit]
    manager: Optional[DomainManager]

    def load(self, program: Program) -> None:
        program.load(self.machine.memory)
        self.cpu.flush_decode_cache()

    def run(self, entry: int, max_steps: int = 2_000_000):
        self.cpu.pc = entry
        return self.machine.run(max_steps)


def build_x86_system(
    config: PcuConfig = CONFIG_8E,
    *,
    with_isagrid: bool = True,
) -> X86System:
    """Build a Gem5-O3-like machine, optionally without ISA-Grid."""
    memory = PhysicalMemory(size=MEMORY_SIZE)
    hierarchy = gem5_o3_hierarchy()
    pipeline = OutOfOrderPipelineModel(hierarchy)
    pcu = None
    manager = None
    if with_isagrid:
        trusted = TrustedMemory(TRUSTED_BASE, TRUSTED_SIZE, backing=memory)
        pcu = PrivilegeCheckUnit(
            X86_ISA_MAP,
            config.with_refill_latency(hierarchy.miss_path_latency),
            trusted,
        )
        manager = DomainManager(pcu)
    machine = Machine(memory, hierarchy, pipeline, pcu)
    # Native (PCU-less) machines honour the escape hatch too, so a
    # ``--no-block-cache`` bench run never takes the block executor on
    # either side of a native-vs-protected pair.
    machine.block_summaries = config.block_summaries
    cpu = X86Cpu(machine)
    return X86System(machine, cpu, pcu, manager)


__all__ = [
    "Assembler",
    "AssemblerError",
    "BASE_COMPUTE_CLASSES",
    "CR0_CD",
    "CR0_NE",
    "CR0_TS",
    "CR0_WP",
    "CR4_PCE",
    "CR4_PKE",
    "CR4_SMAP",
    "CR4_SMEP",
    "CR4_TSD",
    "CSR_INDEX",
    "CpuPanic",
    "DATA_BASE",
    "EncodingError",
    "GATE_CLASSES",
    "GPR_NAMES",
    "GPR_NUMBER",
    "IDT_BASE",
    "INST_CLASSES",
    "Instruction",
    "KERNEL_BASE",
    "KERNEL_STACK_TOP",
    "MEMORY_SIZE",
    "MSR_CSR_NAME",
    "MSR_EFER",
    "MSR_LSTAR",
    "MSR_PRED_CMD",
    "MSR_SPEC_CTRL",
    "MSR_VOLTAGE",
    "Program",
    "RING0",
    "RING0_CLASSES",
    "RING3",
    "SystemRegisters",
    "TRUSTED_BASE",
    "TRUSTED_SIZE",
    "USER_BASE",
    "USER_STACK_TOP",
    "VEC_GP",
    "VEC_ISA_GRID",
    "VEC_SYSCALL_INT",
    "VEC_TRUSTED_MEMORY",
    "VEC_UD",
    "X86Cpu",
    "X86System",
    "X86_ISA_MAP",
    "assemble",
    "build_x86_system",
    "decode",
    "registers",
    "simple_bytes",
]
