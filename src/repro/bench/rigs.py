"""Benchmark rigs: the paper's evaluation workloads as timed units.

A *rig* is one self-contained slice of the evaluation — a Table-4/5
latency experiment or a Fig-5–8 workload sweep — packaged so the bench
runner (and the sharded orchestrator behind ``python -m repro bench``)
can execute it in isolation and report how much simulated work it did:

* ``instructions`` / ``cycles`` — total simulated work across every
  run the rig performs (both sides of each native-vs-protected pair);
* ``detail`` — the experiment's own numbers (per-op latencies,
  normalized times), so a trajectory file doubles as a coarse
  correctness record.

Rigs take one parameter, ``fast_path``: with ``False`` every PCU in
the rig runs with the compiled verdict plan disabled
(:attr:`repro.core.config.PcuConfig.fast_path`), which is how the
``--slow-path`` escape hatch and the fast-vs-slow differential gate are
wired.  A rig must produce identical ``instructions``, ``cycles`` and
``detail`` either way — only wall-clock may differ.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence

from repro.core import CONFIG_8E, PcuConfig


@dataclass(frozen=True)
class BenchRig:
    """One orchestratable benchmark unit."""

    name: str
    description: str
    run: Callable[[bool, bool], Dict[str, object]]
    #: Rough dynamic instruction count, used as the shard weight so the
    #: orchestrator's metrics can report events/sec without running it.
    approx_instructions: int = 1_000_000


def _config(fast_path: bool, block_cache: bool = True) -> PcuConfig:
    if fast_path and block_cache:
        return CONFIG_8E
    return replace(CONFIG_8E, fast_path=fast_path, block_summaries=block_cache)


def _result(instructions: int, cycles: float, detail: Dict[str, object]):
    return {
        "instructions": int(instructions),
        "cycles": float(cycles),
        "detail": detail,
    }


# ----------------------------------------------------------------------
# Gate stress (the §7.1 hit-rate workload — the hot-path acceptance rig).
# ----------------------------------------------------------------------
def _run_gate_stress(fast_path: bool, block_cache: bool = True,
                     iterations: int = 300, max_steps: int = 20_000_000,
                     full_stats: bool = False) -> Dict[str, object]:
    import dataclasses

    from repro.kernel import X86Kernel
    from repro.workloads import GATE_STRESS
    from repro.workloads.generator import x86_user_program

    profile = dataclasses.replace(GATE_STRESS, outer_iterations=iterations)
    kernel = X86Kernel("decomposed", _config(fast_path, block_cache))
    stats = kernel.run(x86_user_program(profile), max_steps=max_steps)
    assert kernel.fault_count == 0
    pcu = kernel.system.pcu
    hit_rates = pcu.stats.hit_rates()
    detail: Dict[str, object] = {
        "hit_rates": {name: round(rate, 6) for name, rate in hit_rates.items()},
        "syscalls": kernel.syscall_count,
    }
    if full_stats:
        # For identity-asserting wrappers (smoke_blocks): the whole
        # counter surface, not just the headline hit rates.
        detail["pcu_stats"] = pcu.stats.as_dict()
        detail["block_stats"] = pcu.block_stats.as_dict()
    return _result(stats.instructions, stats.cycles, detail)


def _run_smoke(fast_path: bool, block_cache: bool = True) -> Dict[str, object]:
    return _run_gate_stress(fast_path, block_cache, iterations=60,
                            max_steps=4_000_000)


def _run_smoke_blocks(fast_path: bool, block_cache: bool = True) -> Dict[str, object]:
    """``smoke`` run twice: block executor on, then off, as one rig.

    The on-vs-off identity assertion (instructions, cycles and the
    whole :class:`~repro.core.stats.PcuStats` dict must match exactly)
    turns the block-summary coherence contract (DESIGN §3.18) into a
    perf-trajectory row: a divergence fails the rig, and a slowdown in
    either executor drags the gated ips down.  ``detail`` carries the
    block cache's own probe counters.  The rig's own ``block_cache``
    flag only affects the *first* run — under ``--no-block-cache``
    both runs take the per-instruction loop and the assertion still
    holds trivially.
    """
    on = _run_gate_stress(fast_path, block_cache, iterations=60,
                          max_steps=4_000_000, full_stats=True)
    off = _run_gate_stress(fast_path, False, iterations=60,
                           max_steps=4_000_000, full_stats=True)
    for key in ("instructions", "cycles"):
        assert on[key] == off[key], (key, on[key], off[key])
    assert on["detail"]["pcu_stats"] == off["detail"]["pcu_stats"]
    block_stats = on["detail"].pop("block_stats")
    off_blocks = off["detail"].pop("block_stats")
    assert off_blocks["insts"] == 0, off_blocks
    on["detail"].pop("pcu_stats")
    off["detail"].pop("pcu_stats")
    assert on["detail"] == off["detail"], (on["detail"], off["detail"])
    return _result(on["instructions"] + off["instructions"],
                   on["cycles"] + off["cycles"], {
        "verified_identical": True,
        "block_stats": block_stats,
        "hit_rates": on["detail"]["hit_rates"],
    })


def _run_smoke_hooked(fast_path: bool, block_cache: bool = True) -> Dict[str, object]:
    """``smoke`` with a no-op per-step hook installed on the machine.

    The machine-level fault campaigns interpose on
    :attr:`repro.sim.machine.Machine.step_hook`; this rig holds that
    injection point to the same ips floor as ``smoke``, so a hook-path
    regression in the hot loop can't hide behind the hook-free branch.
    The simulated work must be identical to ``smoke`` — only wall-clock
    may move.
    """
    import dataclasses

    from repro.kernel import X86Kernel
    from repro.workloads import GATE_STRESS
    from repro.workloads.generator import x86_user_program

    profile = dataclasses.replace(GATE_STRESS, outer_iterations=60)
    kernel = X86Kernel("decomposed", _config(fast_path, block_cache))
    kernel.system.machine.step_hook = lambda info: False
    stats = kernel.run(x86_user_program(profile), max_steps=4_000_000)
    assert kernel.fault_count == 0
    hit_rates = kernel.system.pcu.stats.hit_rates()
    return _result(stats.instructions, stats.cycles, {
        "hit_rates": {name: round(rate, 6) for name, rate in hit_rates.items()},
        "syscalls": kernel.syscall_count,
    })


def _run_smoke_contracts(fast_path: bool, block_cache: bool = True) -> Dict[str, object]:
    """``smoke`` with the universal-contract monitor attached.

    The contract tap (see DESIGN §3.16) must be invisible when armed on
    a healthy run: zero violations, and ``instructions``/``cycles``/
    hit-rates identical to the unmonitored ``smoke`` rig.  Keeping this
    rig in the registry makes that claim a perf-trajectory row, so a
    tap-path slowdown shows up as an ips regression next to ``smoke``.
    """
    import dataclasses

    from repro.contracts import ContractMonitor
    from repro.kernel import X86Kernel
    from repro.workloads import GATE_STRESS
    from repro.workloads.generator import x86_user_program

    profile = dataclasses.replace(GATE_STRESS, outer_iterations=60)
    kernel = X86Kernel("decomposed", _config(fast_path, block_cache))
    monitor = ContractMonitor(seed=0)
    monitor.attach(kernel.system.pcu, kernel.system.manager)
    stats = kernel.run(x86_user_program(profile), max_steps=4_000_000)
    assert kernel.fault_count == 0
    assert monitor.total_violations == 0, monitor.first_unwaived()
    hit_rates = kernel.system.pcu.stats.hit_rates()
    return _result(stats.instructions, stats.cycles, {
        "hit_rates": {name: round(rate, 6) for name, rate in hit_rates.items()},
        "syscalls": kernel.syscall_count,
        "contract_events": monitor.events_seen,
        "contract_counts": monitor.counts(),
    })


# ----------------------------------------------------------------------
# Tenant churn: domain-ID virtualization under eviction pressure.
# ----------------------------------------------------------------------
def _run_churn_stress(fast_path: bool, block_cache: bool = True,
                      n_ops: int = 900,
                      max_slots: int = 24) -> Dict[str, object]:
    """Fault-free churn stream over a deliberately small slot pool.

    ``block_cache`` is accepted for signature uniformity but has no
    effect: the churn world drives ``pcu.check`` directly with no
    Machine run loop, so the block executor never engages.

    Times the virtualization layer where it hurts: constant eviction,
    recycle and rebind traffic interleaved with live gate/check pairs.
    ``detail`` carries the p50/p99 check-stall tail — the
    generation-guard and refill costs the virtualizer adds to the check
    path — plus the lifecycle counters, so a trajectory row doubles as
    a coarse churn-correctness record.  Simulated work (checks, pairs,
    stall cycles) must be fast/slow-path identical; only wall-clock and
    ips may move.
    """
    from repro.conformance.events import N_CSR_SLOTS, N_INST_SLOTS
    from repro.conformance.generator import make_backend
    from repro.faults.churn import ChurnWorld, latency_percentiles
    from repro.workloads import generate_churn_ops

    world = ChurnWorld(make_backend("x86"), max_slots=max_slots,
                       config="stress", fast_path=fast_path)
    trace = generate_churn_ops(0, n_ops, N_INST_SLOTS, N_CSR_SLOTS)
    pairs = 0
    for index, op in enumerate(trace.ops):
        for cached, oracle in world.apply(op, index):
            assert cached == oracle, (index, cached, oracle)
            pairs += 1
    stall_cycles = sum(stall * count for stall, count in world.latency.items())
    stats = world.virtualizer.stats
    return _result(world.checks_run, stall_cycles, {
        "pairs": pairs,
        "latency": latency_percentiles(dict(world.latency)),
        "spawned": stats.spawned,
        "retired": stats.retired,
        "recycles": stats.recycles,
        "evictions": stats.evictions,
        "slot_exhausted": stats.slot_exhausted,
        "backpressured": world.backpressured,
    })


# ----------------------------------------------------------------------
# Figure 5: LMbench microbenchmarks, RISC-V.
# ----------------------------------------------------------------------
def _run_fig5_riscv(fast_path: bool, block_cache: bool = True) -> Dict[str, object]:
    from repro.kernel import RiscvKernel
    from repro.riscv import USER_BASE, assemble
    from repro.workloads import LMBENCH_SUITE
    from repro.workloads.lmbench import riscv_loop_source

    config = _config(fast_path, block_cache)
    instructions = 0
    cycles = 0.0
    detail: Dict[str, object] = {}
    for bench in LMBENCH_SUITE:
        program = assemble(riscv_loop_source(bench), base=USER_BASE)
        per_mode = {}
        for mode in ("native", "decomposed"):
            stats = RiscvKernel(mode, config).run(program, max_steps=3_000_000)
            instructions += stats.instructions
            cycles += stats.cycles
            per_mode[mode] = stats.cycles / bench.iterations
        detail[bench.name] = {
            "native_cycles_per_op": round(per_mode["native"], 2),
            "decomposed_cycles_per_op": round(per_mode["decomposed"], 2),
            "normalized": round(per_mode["decomposed"] / per_mode["native"], 4),
        }
    return _result(instructions, cycles, detail)


# ----------------------------------------------------------------------
# Figures 6/7: application profiles, RISC-V and x86.
# ----------------------------------------------------------------------
def _run_apps(runner, fast_path: bool, block_cache: bool = True) -> Dict[str, object]:
    from repro.workloads import APPLICATIONS

    config = _config(fast_path, block_cache)
    instructions = 0
    cycles = 0.0
    detail: Dict[str, object] = {}
    for profile in APPLICATIONS:
        native = runner(profile, "native", config)
        decomposed = runner(profile, "decomposed", config)
        assert native.valid and decomposed.valid
        instructions += native.instructions + decomposed.instructions
        cycles += native.cycles + decomposed.cycles
        detail[profile.name] = round(decomposed.cycles / native.cycles, 4)
    return _result(instructions, cycles, detail)


def _run_fig6_apps_riscv(fast_path: bool, block_cache: bool = True) -> Dict[str, object]:
    from repro.workloads import run_riscv_app

    return _run_apps(run_riscv_app, fast_path, block_cache)


def _run_fig7_apps_x86(fast_path: bool, block_cache: bool = True) -> Dict[str, object]:
    from repro.workloads import run_x86_app

    return _run_apps(run_x86_app, fast_path, block_cache)


# ----------------------------------------------------------------------
# Figure 8: Nested-Kernel monitor variants, x86.
# ----------------------------------------------------------------------
def _run_fig8_nested(fast_path: bool, block_cache: bool = True) -> Dict[str, object]:
    from repro.workloads import APPLICATIONS, run_x86_app
    from repro.workloads.profiles import scaled

    config = _config(fast_path, block_cache)
    instructions = 0
    cycles = 0.0
    detail: Dict[str, object] = {}
    for base_profile in APPLICATIONS:
        profile = scaled(base_profile, 2)
        runs = {
            "native": run_x86_app(profile, "native", config,
                                  max_steps=20_000_000),
            "nested": run_x86_app(profile, "decomposed", config,
                                  variant="nested", max_steps=20_000_000),
            "nested_log": run_x86_app(profile, "decomposed", config,
                                      variant="nested_log",
                                      max_steps=20_000_000),
        }
        assert all(result.valid for result in runs.values())
        instructions += sum(result.instructions for result in runs.values())
        cycles += sum(result.cycles for result in runs.values())
        native = runs["native"].cycles
        detail[profile.name] = {
            "nested": round(runs["nested"].cycles / native, 4),
            "nested_log": round(runs["nested_log"].cycles / native, 4),
        }
    return _result(instructions, cycles, detail)


# ----------------------------------------------------------------------
# Table 4: domain-switch latencies (both backends).
# ----------------------------------------------------------------------
def _run_table4_switch(fast_path: bool, block_cache: bool = True) -> Dict[str, object]:
    from repro.workloads.micro import measure_riscv_gates, measure_x86_gates

    config = _config(fast_path, block_cache)
    totals: Dict[str, float] = {}
    riscv = measure_riscv_gates(config, iterations=800, totals=totals)
    x86 = measure_x86_gates(config, iterations=800, totals=totals)
    detail = {
        "riscv": {name: round(value, 2) for name, value in riscv.items()},
        "x86": {name: round(value, 2) for name, value in x86.items()},
    }
    return _result(totals.get("instructions", 0), totals.get("cycles", 0.0),
                   detail)


# ----------------------------------------------------------------------
# Table 5: multi-service protection latency, x86 ioctl path.
# ----------------------------------------------------------------------
_TABLE5_ITERATIONS = 300

_TABLE5_LOOP = """
user_entry:
    mov rsp, 0x6f0000
    mov r12, %d
loop:
    mov rax, 12
    mov rdi, %d
    syscall
    sub r12, 1
    jne loop
    mov rax, 0
    mov rdi, 0
    syscall
"""


def _run_table5_services(fast_path: bool, block_cache: bool = True) -> Dict[str, object]:
    from repro.kernel import (
        SERVICE_CPUID,
        SERVICE_MTRR,
        SERVICE_PMC_IRQ,
        SERVICE_PMC_MISS,
        X86Kernel,
    )
    from repro.x86 import USER_BASE, assemble

    services = (
        ("cpuid", SERVICE_CPUID),
        ("mtrr", SERVICE_MTRR),
        ("pmc_irq", SERVICE_PMC_IRQ),
        ("pmc_miss", SERVICE_PMC_MISS),
    )
    config = _config(fast_path, block_cache)
    instructions = 0
    cycles = 0.0
    detail: Dict[str, object] = {}
    for label, service in services:
        source = _TABLE5_LOOP % (_TABLE5_ITERATIONS, service)
        program = assemble(source, base=USER_BASE)
        per_mode = {}
        for mode in ("native", "decomposed"):
            kernel = X86Kernel(mode, config)
            stats = kernel.run(
                program, max_steps=600 * _TABLE5_ITERATIONS + 2000
            )
            assert kernel.fault_count == 0
            instructions += stats.instructions
            cycles += stats.cycles
            per_mode[mode] = stats.cycles / _TABLE5_ITERATIONS
        detail[label] = {
            "native_cycles_per_call": round(per_mode["native"], 1),
            "protected_cycles_per_call": round(per_mode["decomposed"], 1),
            "delta_cycles": round(per_mode["decomposed"] - per_mode["native"], 1),
        }
    return _result(instructions, cycles, detail)


#: Registry of every rig the bench CLI knows, in canonical order.
RIGS: Dict[str, BenchRig] = {
    rig.name: rig
    for rig in (
        BenchRig("smoke", "short gate-stress loop (CI PR gate)",
                 _run_smoke, approx_instructions=200_000),
        BenchRig("smoke_hooked",
                 "smoke with a no-op Machine.step_hook (fault-campaign "
                 "injection point)",
                 _run_smoke_hooked, approx_instructions=200_000),
        BenchRig("smoke_contracts",
                 "smoke with the universal-contract monitor attached "
                 "(tap-path floor; simulated work identical to smoke)",
                 _run_smoke_contracts, approx_instructions=200_000),
        BenchRig("smoke_blocks",
                 "smoke with the block-summary executor on vs off, "
                 "asserting bit-identical work (DESIGN §3.18 gate)",
                 _run_smoke_blocks, approx_instructions=400_000),
        BenchRig("gate_stress", "§7.1 privilege-cache stress workload",
                 _run_gate_stress, approx_instructions=1_000_000),
        BenchRig("churn_stress",
                 "tenant churn over a small slot pool (virtualizer "
                 "eviction/recycle path; p50/p99 check-stall tail)",
                 _run_churn_stress, approx_instructions=10_000),
        BenchRig("fig5_riscv", "Figure 5: LMbench microbenchmarks, RISC-V",
                 _run_fig5_riscv, approx_instructions=2_500_000),
        BenchRig("fig6_apps_riscv", "Figure 6: application profiles, RISC-V",
                 _run_fig6_apps_riscv, approx_instructions=2_500_000),
        BenchRig("fig7_apps_x86", "Figure 7: application profiles, x86",
                 _run_fig7_apps_x86, approx_instructions=2_500_000),
        BenchRig("fig8_nested", "Figure 8: Nested-Kernel monitor variants, x86",
                 _run_fig8_nested, approx_instructions=7_500_000),
        BenchRig("table4_switch", "Table 4: domain-switch latencies",
                 _run_table4_switch, approx_instructions=600_000),
        BenchRig("table5_services", "Table 5: ioctl service latencies, x86",
                 _run_table5_services, approx_instructions=1_500_000),
    )
}

#: What ``python -m repro bench`` runs by default: the full evaluation
#: suite.  ``smoke`` is opt-in (the CI PR gate's 1-rig run).
DEFAULT_RIGS: Sequence[str] = (
    "gate_stress", "fig5_riscv", "fig6_apps_riscv", "fig7_apps_x86",
    "fig8_nested", "table4_switch", "table5_services",
)


def resolve_rigs(names: str = None) -> List[str]:
    """Expand a ``--rigs`` argument into an ordered, validated list."""
    if not names or names == "default":
        return list(DEFAULT_RIGS)
    if names == "all":
        return list(RIGS)
    chosen = [name.strip() for name in names.split(",") if name.strip()]
    unknown = [name for name in chosen if name not in RIGS]
    if unknown:
        raise KeyError("unknown rig(s) %s (choose from %s)"
                       % (", ".join(unknown), ", ".join(RIGS)))
    return chosen


def run_rig(name: str, fast_path: bool = True,
            block_cache: bool = True) -> Dict[str, object]:
    """Execute one rig and wrap it with wall-clock accounting.

    The returned payload is the per-rig record of the trajectory file:
    simulated work (``instructions``/``cycles``), host wall-clock
    (``wall_s``) and the throughput quotient (``ips``) every future PR
    regresses against.
    """
    import time

    rig = RIGS[name]
    started = time.perf_counter()
    out = rig.run(fast_path, block_cache)
    wall = time.perf_counter() - started
    return {
        "rig": name,
        "fast_path": bool(fast_path),
        "block_cache": bool(block_cache),
        "instructions": out["instructions"],
        "cycles": round(out["cycles"], 1),
        "wall_s": round(wall, 3),
        "ips": round(out["instructions"] / wall, 1) if wall > 0 else 0.0,
        "detail": out["detail"],
    }
