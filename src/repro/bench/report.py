"""The bench trajectory file (``BENCH_<stamp>.json``) and regression gate.

One trajectory file captures one full bench invocation: which rigs ran,
how much simulated work each did, and how fast the host chewed through
it.  Committing a before/after pair of these files is how a perf PR
proves its claim, and the CI smoke gate diffs a fresh run against the
committed baseline so throughput regressions fail the PR instead of
rotting silently.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

FORMAT = "bench-trajectory-v1"

#: Default relative regression budget for the CI gate: a rig may lose
#: at most this fraction of its baseline instructions/s.
DEFAULT_REGRESSION_THRESHOLD = 0.20


def build_trajectory(
    payloads: Sequence[Dict[str, object]],
    *,
    label: str = "",
    fast_path: bool = True,
    block_cache: bool = True,
    stamp: str = "",
) -> Dict[str, object]:
    """Assemble per-rig payloads into one trajectory document."""
    return {
        "format": FORMAT,
        "label": label,
        "fast_path": bool(fast_path),
        "block_cache": bool(block_cache),
        "stamp": stamp,
        "rigs": {payload["rig"]: {key: value
                                  for key, value in payload.items()
                                  if key != "rig"}
                 for payload in payloads},
    }


def write_trajectory(trajectory: Dict[str, object], path: str) -> str:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp.%d" % os.getpid()
    with open(tmp_path, "w") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)
    return path


def load_trajectory(path: str) -> Dict[str, object]:
    with open(path) as handle:
        trajectory = json.load(handle)
    if trajectory.get("format") != FORMAT:
        raise ValueError("%s is not a %s file" % (path, FORMAT))
    return trajectory


def compare_trajectories(
    current: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> Tuple[List[str], List[str]]:
    """Diff two trajectories on instructions/s, rig by rig.

    Returns ``(lines, regressions)``: human-readable comparison rows
    for every rig present in both files, and the subset describing
    rigs whose throughput dropped by more than ``threshold``.  Rigs
    missing from either side are reported but never counted as
    regressions (a new rig has no baseline yet).
    """
    lines: List[str] = []
    regressions: List[str] = []
    current_rigs: Dict[str, Dict] = current.get("rigs", {})
    baseline_rigs: Dict[str, Dict] = baseline.get("rigs", {})
    for name, entry in current_rigs.items():
        base = baseline_rigs.get(name)
        if base is None:
            lines.append("%-16s %10.0f ips  (no baseline)"
                         % (name, entry.get("ips", 0.0)))
            continue
        base_ips = float(base.get("ips", 0.0))
        cur_ips = float(entry.get("ips", 0.0))
        ratio = cur_ips / base_ips if base_ips > 0 else float("inf")
        line = ("%-16s %10.0f ips  vs baseline %10.0f ips  (%.2fx)"
                % (name, cur_ips, base_ips, ratio))
        lines.append(line)
        if base_ips > 0 and cur_ips < base_ips * (1.0 - threshold):
            regressions.append(line)
    for name in baseline_rigs:
        if name not in current_rigs:
            lines.append("%-16s (in baseline only; not run)" % name)
    return lines, regressions
