"""Benchmark orchestration (``python -m repro bench``).

The evaluation rigs (Tables 4/5, Figures 5–8, the gate-stress hit-rate
workload) are embarrassingly parallel per rig, so the bench runner
reuses the campaign orchestrator unchanged — shard planning, the
supervised worker pool, checkpointed ``--resume``, run metrics — and
folds the per-rig results into a ``BENCH_<stamp>.json`` trajectory:
instructions/s and wall-clock per rig, the perf baseline every future
PR regresses against.  ``--slow-path`` runs every rig with the PCU's
compiled verdict plan disabled, which is both the escape hatch and the
fast-vs-slow differential surface.
"""

from .report import (
    DEFAULT_REGRESSION_THRESHOLD,
    build_trajectory,
    compare_trajectories,
    load_trajectory,
    write_trajectory,
)
from .rigs import DEFAULT_RIGS, RIGS, BenchRig, resolve_rigs, run_rig

__all__ = [
    "DEFAULT_REGRESSION_THRESHOLD",
    "DEFAULT_RIGS",
    "RIGS",
    "BenchRig",
    "build_trajectory",
    "compare_trajectories",
    "load_trajectory",
    "resolve_rigs",
    "run_rig",
    "write_trajectory",
]
