"""Static audit of a domain configuration.

The paper leaves privilege *policy* to domain-0 software (§5.2, §8):
nothing in the hardware stops an operator from granting two domains the
same critical register, leaving a domain over-privileged, or forgetting
to register a gate destination.  This auditor inspects a
:class:`~repro.core.domain.DomainManager` and reports the hazards a
deployment review would look for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.core.domain import DomainManager
from repro.core.pcu import DOMAIN_0

#: Severity levels for findings.
INFO = "info"
WARNING = "warning"
CRITICAL = "critical"

#: Instruction classes any component may reasonably hold.
BENIGN_CLASSES = frozenset(
    {
        "alu", "mul", "mov", "load", "store", "stack", "branch", "jump",
        "call", "nop", "fence", "string", "ecall", "ebreak", "int",
        "halt", "hlt",
    }
)


@dataclass(frozen=True)
class Finding:
    """One audit finding."""

    severity: str
    code: str
    subject: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return "[%s] %s %s: %s" % (self.severity, self.code, self.subject, self.detail)


@dataclass
class AuditReport:
    """All findings for one configuration."""

    findings: List[Finding] = field(default_factory=list)

    def add(self, severity: str, code: str, subject: str, detail: str) -> None:
        self.findings.append(Finding(severity, code, subject, detail))

    def by_severity(self, severity: str) -> List[Finding]:
        return [f for f in self.findings if f.severity == severity]

    @property
    def critical(self) -> List[Finding]:
        return self.by_severity(CRITICAL)

    @property
    def warnings(self) -> List[Finding]:
        return self.by_severity(WARNING)

    @property
    def clean(self) -> bool:
        return not self.critical

    def render(self) -> str:
        if not self.findings:
            return "audit: no findings"
        return "\n".join(str(f) for f in self.findings)


def audit(manager: DomainManager) -> AuditReport:
    """Audit every domain and gate registered with ``manager``."""
    report = AuditReport()
    _audit_write_overlaps(manager, report)
    _audit_overbroad_domains(manager, report)
    _audit_idle_domains(manager, report)
    _audit_gates(manager, report)
    _audit_full_masks(manager, report)
    return report


def _audit_write_overlaps(manager: DomainManager, report: AuditReport) -> None:
    """Two domains writing the same CSR defeats least privilege.

    Bit-aware: for bitwise-controlled CSRs, writers whose grant masks
    are pairwise disjoint partition the register cleanly (e.g. one
    domain holding CR0.TS/NE and another CR0.WP) and only rate an INFO.
    """
    writers: Dict[str, List] = {}
    for domain_id, descriptor in manager.domains.items():
        if domain_id == DOMAIN_0:
            continue
        for csr in descriptor.writable_csrs:
            full = (1 << 64) - 1
            mask = descriptor.bit_grants.get(csr, full)
            writers.setdefault(csr, []).append((descriptor.name, mask))
    for csr, entries in sorted(writers.items()):
        if len(entries) <= 1:
            continue
        names = sorted(name for name, _ in entries)
        union = 0
        disjoint = True
        for _, mask in entries:
            if union & mask:
                disjoint = False
                break
            union |= mask
        index = manager.isa_map.csr_index(csr)
        bitwise = manager.isa_map.mask_slot(index) is not None
        if bitwise and disjoint:
            report.add(
                INFO, "I-BITPARTITION", csr,
                "bit-partitioned between %s (disjoint masks)" % ", ".join(names),
            )
        else:
            report.add(
                WARNING, "W-OVERLAP", csr,
                "written by multiple domains: %s" % ", ".join(names),
            )


def _audit_overbroad_domains(manager: DomainManager, report: AuditReport) -> None:
    """A domain holding every instruction class is domain-0 in disguise."""
    n_classes = manager.isa_map.n_inst_classes
    for domain_id, descriptor in manager.domains.items():
        if domain_id == DOMAIN_0:
            continue
        if len(descriptor.instructions) == n_classes:
            report.add(
                CRITICAL, "C-ALLCLASSES", descriptor.name,
                "holds every instruction class — effectively unrestricted",
            )
        privileged = set(descriptor.instructions) - BENIGN_CLASSES
        if len(privileged) > 8:
            report.add(
                WARNING, "W-BROAD", descriptor.name,
                "holds %d privileged instruction classes: %s"
                % (len(privileged), ", ".join(sorted(privileged))),
            )


def _audit_idle_domains(manager: DomainManager, report: AuditReport) -> None:
    """A domain no gate can reach is dead configuration."""
    reachable: Set[int] = {DOMAIN_0}
    for entry in manager.gates.values():
        reachable.add(entry.destination_domain)
    for domain_id, descriptor in manager.domains.items():
        if domain_id not in reachable:
            report.add(
                INFO, "I-UNREACHABLE", descriptor.name,
                "no registered gate targets this domain",
            )


def _audit_gates(manager: DomainManager, report: AuditReport) -> None:
    """Gate hygiene: duplicate call sites, gates into domain-0."""
    sites: Dict[int, List[int]] = {}
    for gate_id, entry in manager.gates.items():
        sites.setdefault(entry.gate_address, []).append(gate_id)
        if entry.destination_domain == DOMAIN_0:
            report.add(
                WARNING, "W-D0GATE", "gate %d" % gate_id,
                "targets domain-0 at 0x%x — its destination code is "
                "fully privileged; keep it minimal" % entry.destination_address,
            )
    for address, gate_ids in sorted(sites.items()):
        if len(gate_ids) > 1:
            report.add(
                CRITICAL, "C-DUPSITE", "0x%x" % address,
                "gates %s share one call site; only the id register "
                "distinguishes them" % gate_ids,
            )


def _audit_full_masks(manager: DomainManager, report: AuditReport) -> None:
    """A bitwise CSR granted with an all-ones mask wastes the mechanism."""
    for domain_id, descriptor in manager.domains.items():
        if domain_id == DOMAIN_0:
            continue
        for csr, mask in sorted(descriptor.bit_grants.items()):
            index = manager.isa_map.csr_index(csr)
            width = manager.isa_map.csr_descriptor(index).width
            if mask == (1 << width) - 1:
                report.add(
                    INFO, "I-FULLMASK", "%s/%s" % (descriptor.name, csr),
                    "bitwise CSR granted with an all-ones mask; consider "
                    "a bit-level grant",
                )
