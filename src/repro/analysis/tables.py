"""Fixed-width text tables for experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return "%.2f" % value
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a padded, pipe-separated text table."""
    string_rows: List[List[str]] = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    out = [line(list(headers)), separator]
    out += [line(row) for row in string_rows]
    return "\n".join(out)


def format_percent(fraction: float, *, signed: bool = True) -> str:
    """0.0123 -> '+1.23%'."""
    pct = fraction * 100
    if signed:
        return "%+.2f%%" % pct
    return "%.2f%%" % pct


def format_normalized(ratio: float) -> str:
    """1.0123 -> '1.012 (+1.23%)'."""
    return "%.4f (%s)" % (ratio, format_percent(ratio - 1.0))
