"""Result formatting, auditing, and experiment reports."""

from .audit import (
    AuditReport,
    CRITICAL,
    Finding,
    INFO,
    WARNING,
    audit,
)

from .normalize import (
    NormalizedResult,
    averaged,
    geometric_mean,
    mean,
    summarize,
)
from .report import Experiment, ExperimentRow, print_experiment
from .tables import format_normalized, format_percent, render_table

__all__ = [
    "AuditReport",
    "CRITICAL",
    "Experiment",
    "Finding",
    "INFO",
    "WARNING",
    "audit",
    "ExperimentRow",
    "NormalizedResult",
    "averaged",
    "format_normalized",
    "format_percent",
    "geometric_mean",
    "mean",
    "print_experiment",
    "render_table",
    "summarize",
]
