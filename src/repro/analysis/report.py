"""Experiment report records: paper-expected vs measured.

The benchmark harness prints one :class:`Experiment` per paper table or
figure; EXPERIMENTS.md is the curated collection of these reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .tables import render_table


@dataclass
class ExperimentRow:
    """One compared quantity within an experiment."""

    label: str
    paper: object            # what the paper reports
    measured: object         # what this reproduction measures
    unit: str = ""
    note: str = ""


@dataclass
class Experiment:
    """One paper artifact (table or figure) reproduction."""

    artifact: str            # e.g. "Table 4" or "Figure 5"
    title: str
    rows: List[ExperimentRow] = field(default_factory=list)
    shape_criteria: List[str] = field(default_factory=list)

    def add(self, label: str, paper: object, measured: object, unit: str = "", note: str = "") -> None:
        self.rows.append(ExperimentRow(label, paper, measured, unit, note))

    def render(self) -> str:
        header = "%s — %s" % (self.artifact, self.title)
        table = render_table(
            ("metric", "paper", "measured", "unit", "note"),
            [(r.label, r.paper, r.measured, r.unit, r.note) for r in self.rows],
        )
        parts = [header, "=" * len(header), table]
        if self.shape_criteria:
            parts.append("shape criteria:")
            parts.extend("  * %s" % c for c in self.shape_criteria)
        return "\n".join(parts)


def print_experiment(experiment: Experiment) -> None:
    print()
    print(experiment.render())
    print()
