"""Normalization and repeat-averaging helpers for the evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean needs positive values")
        product *= value
    return product ** (1.0 / len(values))


@dataclass
class NormalizedResult:
    """One normalized-execution-time bar of a paper figure."""

    label: str
    baseline_cycles: float
    protected_cycles: float

    @property
    def normalized(self) -> float:
        return self.protected_cycles / self.baseline_cycles

    @property
    def overhead(self) -> float:
        return self.normalized - 1.0


def averaged(run: Callable[[], float], repeats: int = 1) -> float:
    """Average repeated measurements (the paper runs benchmarks multiple
    times; our simulation is deterministic, so one repeat is exact, but
    the hook exists for stochastic workloads)."""
    return mean([run() for _ in range(max(1, repeats))])


def summarize(results: Sequence[NormalizedResult]) -> Dict[str, float]:
    """Aggregate statistics over a set of normalized results."""
    ratios = [r.normalized for r in results]
    return {
        "mean_normalized": mean(ratios),
        "geomean_normalized": geometric_mean(ratios),
        "max_overhead": max(r.overhead for r in results),
        "min_overhead": min(r.overhead for r in results),
    }
