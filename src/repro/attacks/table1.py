"""The eight ISA-abuse-based attack families of Table 1.

Each spec encodes: the ISA-resource prerequisite the paper lists, a
payload that abuses it, the *unrelated* kernel module the attacker is
assumed to have compromised, and an effect predicate.  The two ARM
attacks (NAILGUN, Super Root) are modelled on the x86 prototype with
the equivalent resource class (performance counters, debug-control
registers), preserving the prerequisite structure.

Expected result (the Table 1 "Can ISA-Grid mitigate" column): every
attack succeeds on the native kernel and is mitigated on the
ISA-Grid-decomposed kernel.
"""

from __future__ import annotations

from typing import List

from repro.x86.registers import CR0_CD

from .base import MARKER_ADDRESS, MARKER_VALUE, AttackSpec, marker_written

CONTROLLED_CHANNEL = AttackSpec(
    name="controlled-channel",
    arch="x86",
    prerequisite="IDTR",
    consequence="Stealing data from different types of TEEs",
    compromised_module="power",
    payload="""
    mov rbx, %d
    mov rcx, 0x555000
    mov [rbx+0], rcx
    mov rcx, 4095
    mov [rbx+8], rcx
    lidt [rbx+0]
    ret
""" % (MARKER_ADDRESS + 0x100),
    effect=lambda kernel: kernel.cpu.sys.idtr.base == 0x555000,
    table1_row="Controlled-Channel Attacks [77]",
)

FORESHADOW = AttackSpec(
    name="foreshadow",
    arch="x86",
    prerequisite="wbinvd instruction, DR0-7",
    consequence="Extracting enclave secrets",
    compromised_module="mtrr",
    payload="""
    wbinvd
    mov rbx, 0x1337
    mov dr0, rbx
    ret
""",
    effect=lambda kernel: kernel.cpu.sys.dr[0] == 0x1337,
    table1_row="FORESHADOW Attacks [63]",
)

NAILGUN = AttackSpec(
    name="nailgun",
    arch="x86",
    prerequisite="PMU registers",
    consequence="Stealing sensitive data",
    compromised_module="ldt",
    payload="""
    mov rcx, 0
    rdpmc
    mov rbx, %d
    mov rcx, %d
    mov [rbx+0], rcx
    ret
""" % (MARKER_ADDRESS, MARKER_VALUE),
    effect=marker_written,
    table1_row="NAILGUN Attacks [51]",
)

STEALTHY_PAGE_TABLE = AttackSpec(
    name="stealthy-page-table",
    arch="x86",
    prerequisite="CR0.CD",
    consequence="Stealing data from Intel SGX enclave",
    compromised_module="cpuid",
    payload="""
    mov rbx, cr0
    or rbx, %d
    mov cr0, rbx
    ret
""" % CR0_CD,
    effect=lambda kernel: bool(kernel.cpu.sys.cr0 & CR0_CD),
    table1_row="Stealthy Page Table-Based Attacks [64]",
)

SUPER_ROOT = AttackSpec(
    name="super-root",
    arch="x86",
    prerequisite="DBGBCR, HDCR, HVC (modelled: DR7 debug control)",
    consequence="Obtaining the kernel or the hypervisor privilege",
    compromised_module="fpu",
    payload="""
    mov rbx, 0x401
    mov dr7, rbx
    ret
""",
    effect=lambda kernel: kernel.cpu.sys.dr[7] == 0x401,
    table1_row="Super Root Attacks [79]",
)

SGXPECTRE = AttackSpec(
    name="sgxpectre",
    arch="x86",
    prerequisite="MSR 0x48, MSR 0x49",
    consequence="Stealing attestation keys of Intel SGX",
    compromised_module="debug",
    payload="""
    mov rcx, 0x48
    mov rax, 0
    mov rdx, 0
    wrmsr
    mov rcx, 0x49
    mov rax, 1
    mov rdx, 0
    wrmsr
    ret
""",
    # Boot hardens MSR 0x48 (IBRS = 1); the attack strips it.
    effect=lambda kernel: kernel.cpu.sys.msrs[0x48] == 0,
    table1_row="SgxPectre Attacks [16]",
)

TRESOR_HUNT = AttackSpec(
    name="tresor-hunt",
    arch="x86",
    prerequisite="DR0-7",
    consequence="Stealing cryptographic keys",
    compromised_module="power",
    payload="""
    mov rbx, 0xfeed
    mov dr0, rbx
    mov rbx, dr0
    mov rcx, %d
    mov [rcx+0], rbx
    ret
""" % MARKER_ADDRESS,
    effect=lambda kernel: kernel.cpu.sys.dr[0] == 0xFEED,
    table1_row="TRESOR-HUNT Attacks [15]",
)

VOLTAGE = AttackSpec(
    name="voltage",
    arch="x86",
    prerequisite="MSR 0x150",
    consequence="Injecting bit flips / stealing secrets from SGX enclaves",
    compromised_module="debug",
    payload="""
    mov rcx, 0x150
    mov rax, 0x666
    mov rdx, 0
    wrmsr
    ret
""",
    effect=lambda kernel: kernel.cpu.sys.msrs[0x150] == 0x666,
    table1_row="Voltage-based Attacks [36, 48, 54]",
)

#: All Table 1 rows, in paper order.
TABLE1_ATTACKS: List[AttackSpec] = [
    CONTROLLED_CHANNEL,
    FORESHADOW,
    NAILGUN,
    STEALTHY_PAGE_TABLE,
    SUPER_ROOT,
    SGXPECTRE,
    TRESOR_HUNT,
    VOLTAGE,
]
