"""Unintended-instruction attack campaigns: binary scanning vs the PCU.

Section 2.3's core claim is that software fences built on binary
scanning (ERIM, Nested Kernel) are structurally incomplete on a
variable-length ISA: forbidden system instructions hide inside the
immediates and displacements of legitimate instructions, and a
jump-into-the-middle attacker executes them without the scanner ever
having seen an aligned occurrence.  ISA-Grid closes the hole at issue
time — the PCU classifies whatever the front end actually decodes, so
the hidden gadget faults in any domain that was never granted its
class, no matter how it was reached.

This module turns that argument into a measured campaign.  For each
seed it generates gadget-bearing x86 byte streams at scale:

* **carrier instructions** — ``mov r64, imm64`` (8 payload bytes),
  ``alu r/m64, imm32`` and ``mov r64, [base + disp32]`` (4 payload
  bytes each) — whose immediate/displacement fields embed
* **fixed-encoding gadgets** the scanner's forbidden list names
  (``wrmsr``, ``wrpkru``, ``wrpkrs``, ``hlt``, ``cli``), and
* **operand-bearing gadgets** it structurally cannot name (``mov cr``,
  ``mov dr``, ``ltr``, ``out``, ``lgdt``/``lidt``/``invlpg``): their
  encodings carry attacker-chosen ModRM/operand bytes, so no fixed
  pattern covers them without unbounded false positives.

Each stream is handed to both defenses.  The
:func:`~repro.baselines.binary_scan.scan_program` baseline greps for
its forbidden list; a gadget counts as *detected* only when the
scanner flags the gadget's own offset.  The PCU side decodes the
stream at every gadget offset — the attacker's jump target — and
issues the check from a restricted domain granted only the base
compute classes; the gadget is *blocked* when the check faults.  The
legitimate linear stream is also replayed through the PCU to show the
zero-false-positive half of the claim, and the ERIM-style NOP rewrite
is run to count the carrier instructions it corrupts.

Every campaign world runs under the universal contract monitor, and
each campaign seals one granted class (``string``) in the restricted
domain, probing that the seal — not just the missing grant — denies
execution; any unwaived contract violation fails the campaign.
"""

from __future__ import annotations

import json
import os
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.binary_scan import (
    DEFAULT_FORBIDDEN,
    linear_disassemble,
    rewrite_hidden_bytes,
    scan_program,
)
from repro.core import (
    CONFIG_8E,
    AccessInfo,
    DomainManager,
    GateKind,
    PrivilegeCheckUnit,
    TrustedMemory,
)
from repro.core.errors import PrivilegeFault
from repro.x86.encoding import Encoder, decode, simple_bytes
from repro.x86.isa import BASE_COMPUTE_CLASSES, X86_ISA_MAP

#: Campaign geometry defaults (per seed).
DEFAULT_STREAMS = 24
DEFAULT_STREAM_LEN = 48

#: Trusted-memory window, mirroring the conformance worlds.
_TMEM_BASE = 0x100000
_TMEM_SIZE = 1 << 20

#: Gate plumbing for entering the restricted domain the proper way.
_GATE_ADDRESS = 0x400000
_DEST_ADDRESS = 0x402000

#: The granted class the campaign seals, then probes.
_SEALED_CLASS = "string"

#: Byte alphabet for immediate padding and filler immediates: excludes
#: 0x0F / 0xF4 / 0xFA so no *accidental* forbidden occurrence muddies
#: the per-gadget accounting (deliberate gadgets are the only hidden
#: occurrences, which keeps the rewrite-corruption counts attributable).
_SAFE_LO, _SAFE_HI = 0x10, 0x2F


def _safe_bytes(rng: random.Random, n: int) -> bytes:
    return bytes(rng.randrange(_SAFE_LO, _SAFE_HI + 1) for _ in range(n))


# ---------------------------------------------------------------------------
# Gadget catalog.
# ---------------------------------------------------------------------------
#: Fixed-encoding gadgets — every one is on the scanner's default
#: forbidden list, so byte-grepping finds them even hidden.
FIXED_GADGETS: Tuple[str, ...] = tuple(
    name for name in DEFAULT_FORBIDDEN if isinstance(name, str)
)

#: Operand-bearing gadget kinds — privileged encodings that carry
#: attacker-chosen ModRM/operand bytes, hence no fixed scan pattern.
OPERAND_GADGETS: Tuple[str, ...] = (
    "mov_cr", "mov_dr", "ltr", "out", "lgdt", "lidt", "invlpg",
)


def _draw_gadget(rng: random.Random) -> Tuple[str, bytes]:
    """One (kind, encoding) gadget; roughly half scanner-visible."""
    if rng.random() < 0.5:
        kind = rng.choice(FIXED_GADGETS)
        return kind, simple_bytes(kind)
    kind = rng.choice(OPERAND_GADGETS)
    if kind == "mov_cr":
        # CR numbers kept in {0,2,3,4} so the ModRM byte never collides
        # with a single-byte forbidden encoding.
        return kind, Encoder.mov_cr(rng.choice((0, 2, 3, 4)),
                                    rng.randrange(8), True)
    if kind == "mov_dr":
        return kind, Encoder.mov_dr(rng.randrange(4), rng.randrange(8), True)
    if kind == "ltr":
        return kind, bytes([0x0F, 0x00, 0xD8 | rng.randrange(8)])
    if kind == "out":
        return kind, bytes([0xE6, rng.randrange(_SAFE_LO, _SAFE_HI + 1)])
    digit = {"lgdt": 2, "lidt": 3, "invlpg": 7}[kind]
    base = rng.choice((0, 1, 2, 3, 5, 6, 7))
    disp = int.from_bytes(_safe_bytes(rng, 4), "little")
    return kind, Encoder.group01(digit, base, disp)


# ---------------------------------------------------------------------------
# Stream generation.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PlantedGadget:
    """One gadget embedded in one stream, and how each defense fared."""

    kind: str
    stream: int
    offset: int
    scanner_detected: bool = False
    pcu_blocked: bool = False
    fault: str = ""


def _filler(rng: random.Random) -> bytes:
    """One legitimate compute instruction; registers are kept low so no
    ModRM byte aliases a forbidden single-byte encoding."""
    roll = rng.randrange(6)
    if roll == 0:
        return simple_bytes("nop")
    if roll == 1:
        return Encoder.push_pop(rng.choice(("push", "pop")), rng.randrange(4))
    if roll == 2:
        return Encoder.rr(0x89, rng.randrange(4), rng.randrange(4))
    if roll == 3:
        return Encoder.rr(rng.choice((0x01, 0x29, 0x31, 0x39)),
                          rng.randrange(4), rng.randrange(4))
    if roll == 4:
        return Encoder.shift_imm(rng.choice(("shl", "shr")),
                                 rng.randrange(4), rng.randrange(1, 32))
    return Encoder.mov_imm64(
        rng.randrange(4), int.from_bytes(_safe_bytes(rng, 8), "little"))


def _carrier(rng: random.Random, gadget: bytes) -> Tuple[bytes, int]:
    """Wrap ``gadget`` in a legal carrier; returns (encoding, payload
    offset of the gadget within it)."""
    forms = ["imm64"]
    if len(gadget) <= 4:
        forms += ["imm32", "disp32"]
    form = rng.choice(forms)
    if form == "imm64":
        payload = gadget + _safe_bytes(rng, 8 - len(gadget))
        return Encoder.mov_imm64(
            rng.randrange(8), int.from_bytes(payload, "little")), 2
    payload = gadget + _safe_bytes(rng, 4 - len(gadget))
    value = int.from_bytes(payload, "little")
    if form == "imm32":
        # Digits restricted to add/or/and so the ModRM byte stays clear
        # of the 0xF4/0xFA single-byte encodings.
        return Encoder.alu_imm(rng.choice(("add", "or", "and")),
                               rng.randrange(8), value), 3
    base = rng.choice((0, 1, 2, 3, 5, 6, 7))
    return Encoder.mem(0x8B, rng.randrange(8), base, value), 3


def build_stream(
    rng: random.Random, stream_index: int, n_instructions: int
) -> Tuple[bytes, List[PlantedGadget]]:
    """One gadget-bearing byte stream plus its planted-gadget ledger."""
    chunks: List[bytes] = []
    gadgets: List[PlantedGadget] = []
    offset = 0
    for _ in range(n_instructions):
        if rng.random() < 0.25:
            kind, gadget = _draw_gadget(rng)
            encoding, payload_at = _carrier(rng, gadget)
            gadgets.append(PlantedGadget(kind=kind, stream=stream_index,
                                         offset=offset + payload_at))
            chunks.append(encoding)
        else:
            chunks.append(_filler(rng))
        offset += len(chunks[-1])
    return b"".join(chunks), gadgets


# ---------------------------------------------------------------------------
# The campaign.
# ---------------------------------------------------------------------------
@dataclass
class AttackCampaignResult:
    """Scanner-vs-PCU outcome of one seeded campaign."""

    seed: int
    n_streams: int
    stream_len: int
    gadgets: List[PlantedGadget] = field(default_factory=list)
    legit_checks: int = 0
    legit_faults: int = 0
    sealed_probes: int = 0
    sealed_blocked: int = 0
    rewrite_corrupted: int = 0
    rewrite_unsafe_streams: int = 0
    contract_counts: Dict[str, int] = field(default_factory=dict)
    unwaived_contract_violations: int = 0

    def per_kind(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for g in self.gadgets:
            row = out.setdefault(g.kind, Counter())
            row["generated"] += 1
            row["scanner_detected"] += g.scanner_detected
            row["pcu_blocked"] += g.pcu_blocked
            row["scanner_missed_pcu_blocked"] += (
                g.pcu_blocked and not g.scanner_detected)
        return {kind: dict(row) for kind, row in sorted(out.items())}

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "n_streams": self.n_streams,
            "stream_len": self.stream_len,
            "gadgets": len(self.gadgets),
            "per_kind": self.per_kind(),
            "legit_checks": self.legit_checks,
            "legit_faults": self.legit_faults,
            "sealed_probes": self.sealed_probes,
            "sealed_blocked": self.sealed_blocked,
            "rewrite_corrupted": self.rewrite_corrupted,
            "rewrite_unsafe_streams": self.rewrite_unsafe_streams,
            "contract_counts": self.contract_counts,
            "unwaived_contract_violations": self.unwaived_contract_violations,
        }


def _attack_world() -> Tuple[PrivilegeCheckUnit, DomainManager, int]:
    """A bare x86 world with a restricted, partially sealed domain.

    The core is moved into the restricted domain through a registered
    gate (never by poking the domain register), so the contract
    monitor's gate-only-switches contract holds over the whole run.
    """
    memory = TrustedMemory(base=_TMEM_BASE, size=_TMEM_SIZE)
    pcu = PrivilegeCheckUnit(X86_ISA_MAP, CONFIG_8E, memory)
    manager = DomainManager(pcu)
    manager.allocate_trusted_stack(frames=4)
    descriptor = manager.create_domain("attack-target")
    manager.allow_instructions(descriptor.domain_id, BASE_COMPUTE_CLASSES)
    manager.seal_privileges(descriptor.domain_id,
                            instructions=[_SEALED_CLASS])
    gate = manager.register_gate(_GATE_ADDRESS, _DEST_ADDRESS,
                                 descriptor.domain_id)
    pcu.execute_gate(GateKind.HCCALL, gate, pc=_GATE_ADDRESS)
    return pcu, manager, descriptor.domain_id


def _check_class(pcu: PrivilegeCheckUnit, class_name: str,
                 address: int) -> Optional[str]:
    """Issue one instruction-class check; the fault class name or None."""
    access = AccessInfo(inst_class=X86_ISA_MAP.inst_class(class_name),
                        address=address)
    try:
        pcu.check(access)
        return None
    except PrivilegeFault as fault:
        return type(fault).__name__


def run_unintended_campaign(
    seed: int,
    n_streams: int = DEFAULT_STREAMS,
    stream_len: int = DEFAULT_STREAM_LEN,
    *,
    contracts: bool = True,
) -> AttackCampaignResult:
    """Run one seeded scanner-vs-PCU campaign."""
    pcu, manager, _domain = _attack_world()
    monitor = None
    if contracts:
        from repro.contracts import ContractMonitor

        monitor = ContractMonitor()
        monitor.attach(pcu, manager)

    result = AttackCampaignResult(seed=seed, n_streams=n_streams,
                                  stream_len=stream_len)
    for stream_index in range(n_streams):
        rng = random.Random((seed << 20) ^ stream_index)
        stream, planted = build_stream(rng, stream_index, stream_len)

        # Baseline: grep the stream for the published forbidden list.
        reports = scan_program(stream)
        flagged = {offset for report in reports.values()
                   for offset in report.unintended_offsets}
        rewrite = rewrite_hidden_bytes(stream)
        result.rewrite_corrupted += len(rewrite.corrupted_instructions)
        result.rewrite_unsafe_streams += not rewrite.safe

        # PCU: replay the legitimate linear stream (must all pass) ...
        for offset, _mnemonic, _size in linear_disassemble(stream):
            inst = decode(stream, offset)
            fault = _check_class(pcu, inst.inst_class, offset)
            result.legit_checks += 1
            result.legit_faults += fault is not None

        # ... then decode at each gadget offset, the attacker's actual
        # jump target, and check the class the PCU would really see.
        for g in planted:
            inst = decode(stream, g.offset)
            fault = _check_class(pcu, inst.inst_class, g.offset)
            result.gadgets.append(PlantedGadget(
                kind=g.kind, stream=g.stream, offset=g.offset,
                scanner_detected=g.offset in flagged,
                pcu_blocked=fault is not None,
                fault=fault or "",
            ))

        # The sealed-but-granted class must stay dead too.
        result.sealed_probes += 1
        result.sealed_blocked += (
            _check_class(pcu, _SEALED_CLASS, 0) is not None)

    if monitor is not None:
        result.contract_counts = dict(monitor.counts())
        result.unwaived_contract_violations = monitor.unwaived_violations
    return result


def run_unintended_campaigns(
    seeds: Sequence[int],
    n_streams: int = DEFAULT_STREAMS,
    stream_len: int = DEFAULT_STREAM_LEN,
    *,
    jobs: int = 1,
    contracts: bool = True,
) -> List[AttackCampaignResult]:
    """Run one campaign per seed, optionally on a process pool.

    Each seed is self-contained and results are ordered by the ``seeds``
    argument, so the merged report is byte-identical for any ``jobs``.
    """
    seeds = list(seeds)
    if jobs > 1 and len(seeds) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(seeds))) as pool:
            futures = [
                pool.submit(run_unintended_campaign, seed, n_streams,
                            stream_len, contracts=contracts)
                for seed in seeds
            ]
            return [future.result() for future in futures]
    return [
        run_unintended_campaign(seed, n_streams, stream_len,
                                contracts=contracts)
        for seed in seeds
    ]


def write_attack_report(
    results: Sequence[AttackCampaignResult], path: str
) -> Dict[str, object]:
    """Aggregate campaign results into one JSON report."""
    per_kind: Dict[str, Counter] = {}
    totals: Counter = Counter()
    contract_totals: Counter = Counter()
    for result in results:
        for kind, row in result.per_kind().items():
            per_kind.setdefault(kind, Counter()).update(row)
        totals.update(
            generated=len(result.gadgets),
            scanner_detected=sum(g.scanner_detected for g in result.gadgets),
            pcu_blocked=sum(g.pcu_blocked for g in result.gadgets),
            scanner_missed_pcu_blocked=sum(
                g.pcu_blocked and not g.scanner_detected
                for g in result.gadgets),
            legit_checks=result.legit_checks,
            legit_faults=result.legit_faults,
            sealed_probes=result.sealed_probes,
            sealed_blocked=result.sealed_blocked,
            rewrite_corrupted=result.rewrite_corrupted,
            rewrite_unsafe_streams=result.rewrite_unsafe_streams,
        )
        contract_totals.update(result.contract_counts)
    generated = totals.get("generated", 0) or 1
    payload = {
        "format": "isagrid-attack-campaign-v1",
        "backend": "x86",
        "forbidden": [entry if isinstance(entry, str) else entry.hex()
                      for entry in DEFAULT_FORBIDDEN],
        "totals": dict(totals),
        "scanner_miss_rate": round(
            1.0 - totals.get("scanner_detected", 0) / generated, 4),
        "pcu_block_rate": round(totals.get("pcu_blocked", 0) / generated, 4),
        "baseline_missed_pcu_blocked": totals.get(
            "scanner_missed_pcu_blocked", 0),
        "per_kind": {kind: dict(row) for kind, row in sorted(per_kind.items())},
        "contract_counts": dict(sorted(contract_totals.items())),
        "unwaived_contract_violations": sum(
            r.unwaived_contract_violations for r in results),
        "campaigns": [result.to_dict() for result in results],
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    return payload
