"""ISA-abuse attacks against the RISC-V prototype.

Table 1 lists x86/ARM attacks; these are their RISC-V analogues on the
decomposed RISC-V MiniKernel, covering the same resource classes:
page-table base (SATP ≈ CR3), trap vector (STVEC ≈ IDTR), interrupt
enables, and a bit-level violation of the basic domain's ``sstatus``
mask — the last one exercises the bit-mask check specifically.
"""

from __future__ import annotations

from typing import List

from repro.riscv import CSR_ADDRESS, SSTATUS_SUM

from .base import MARKER_ADDRESS, MARKER_VALUE, AttackSpec, marker_written

SATP_HIJACK = AttackSpec(
    name="satp-hijack",
    arch="riscv",
    prerequisite="SATP",
    consequence="Malicious mappings break page-table isolation",
    compromised_module="irq",
    payload="""
    li t5, 0xbad
    csrw satp, t5
    ret
""",
    effect=lambda kernel: kernel.cpu.csrs[CSR_ADDRESS["satp"]] == 0xBAD,
)

STVEC_HIJACK = AttackSpec(
    name="stvec-hijack",
    arch="riscv",
    prerequisite="STVEC",
    consequence="Redirecting the trap vector (controlled-channel analogue)",
    compromised_module="vm",
    # Probe-and-restore: write a hijack value, read it back into the
    # marker, then restore — so the machine stays bootable natively and
    # the effect is still observable.
    payload="""
    csrr t4, stvec
    li t5, 0x555000
    csrw stvec, t5
    csrr t6, stvec
    csrw stvec, t4
    la t4, %d
    sd t6, 0(t4)
    ret
""" % MARKER_ADDRESS,
    effect=lambda kernel: kernel.memory.load(MARKER_ADDRESS, 8) == 0x555000,
)

SIE_ABUSE = AttackSpec(
    name="sie-abuse",
    arch="riscv",
    prerequisite="SIE",
    consequence="Masking interrupts to hide malicious activity",
    compromised_module="ctx",
    payload="""
    li t5, 0x222
    csrw sie, t5
    ret
""",
    effect=lambda kernel: kernel.cpu.csrs[CSR_ADDRESS["sie"]] == 0x222,
)

SSTATUS_SUM_FLIP = AttackSpec(
    name="sstatus-sum-flip",
    arch="riscv",
    prerequisite="sstatus.SUM (bit 18)",
    consequence="Supervisor access to user memory (SMAP-disable analogue)",
    # The ctx module may write sstatus, but only the FS bits — flipping
    # SUM violates its bit mask (the bit-level check of Section 4.1).
    compromised_module="ctx",
    payload="""
    li t5, %d
    csrrs x0, sstatus, t5
    ret
""" % SSTATUS_SUM,
    effect=lambda kernel: bool(
        kernel.cpu.csrs[CSR_ADDRESS["sstatus"]] & SSTATUS_SUM
    ),
)

SCOUNTEREN_CONTROL = AttackSpec(
    name="scounteren-positive-control",
    arch="riscv",
    prerequisite="scounteren (held by the compromised module)",
    consequence="Positive control: the module's own privilege still works",
    compromised_module="misc",
    payload="""
    li t5, 5
    csrw scounteren, t5
    la t6, %d
    li t5, %d
    sd t5, 0(t6)
    ret
""" % (MARKER_ADDRESS, MARKER_VALUE),
    effect=marker_written,
)

#: Attacks expected to be blocked by the decomposed kernel.
RISCV_ATTACKS: List[AttackSpec] = [
    SATP_HIJACK,
    STVEC_HIJACK,
    SIE_ABUSE,
    SSTATUS_SUM_FLIP,
]

#: Sanity check: a module exercising its *granted* privilege succeeds
#: even under ISA-Grid (least privilege, not lock-everything).
POSITIVE_CONTROLS: List[AttackSpec] = [SCOUNTEREN_CONTROL]
