"""Attack harness: run ISA-abuse payloads against the MiniKernels.

The attacker model is the paper's (Section 6.1): a user exploits a
control-flow-hijack vulnerability in some kernel module and executes a
chosen payload *inside that module's ISA domain* (ring 0 / S mode).
Each :class:`AttackSpec` names the compromised module — always one that
does **not** hold the attack's prerequisite privilege — the payload, and
an effect predicate evaluated against machine state after the run.

An attack *succeeds* when its effect is observed; ISA-Grid *mitigates*
it when, on the decomposed kernel, the payload faults and the effect is
absent while the system keeps running.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.kernel.riscv_kernel import RiscvKernel
from repro.kernel.riscv_kernel import VULN_MODULES as RISCV_VULN_MODULES
from repro.kernel.x86_kernel import VULN_MODULES as X86_VULN_MODULES
from repro.kernel.x86_kernel import X86Kernel
from repro.riscv import USER_BASE as RISCV_USER_BASE
from repro.riscv import assemble as riscv_assemble
from repro.x86 import USER_BASE as X86_USER_BASE
from repro.x86 import assemble as x86_assemble

#: User-memory word the payloads use to prove they ran to completion.
MARKER_ADDRESS = 0x0063_0000
MARKER_VALUE = 0x600DC0DE


@dataclass(frozen=True)
class AttackSpec:
    """One ISA-abuse-based attack (a Table 1 row or a gate attack)."""

    name: str
    arch: str                     # "x86" or "riscv"
    prerequisite: str             # the ISA resource the attack abuses
    consequence: str              # what the paper says the attack achieves
    compromised_module: str       # module the attacker hijacks
    payload: str                  # assembly starting at `attack_code`, ending in ret
    effect: Callable[[object], bool]  # did the abuse take effect?
    table1_row: str = ""          # citation key in Table 1


@dataclass
class AttackOutcome:
    """Result of running one attack against one kernel mode."""

    spec: AttackSpec
    mode: str
    succeeded: bool
    faults: int
    completed: bool               # the machine ran to an orderly exit

    @property
    def mitigated(self) -> bool:
        """Blocked: the effect is absent and the abuse faulted."""
        return not self.succeeded and self.faults > 0


def _x86_program(spec: AttackSpec):
    source = (
        "user_entry:\n"
        "    mov rsp, 0x6f0000\n"
        "    mov rax, 16\n"
        "    mov rdi, attack_code\n"
        "    mov rsi, %d\n"
        "    syscall\n"
        "aborted:\n"
        "    mov rax, 0\n"
        "    mov rdi, 0\n"
        "    syscall\n"
        "attack_code:\n"
        "%s\n" % (X86_VULN_MODULES[spec.compromised_module], spec.payload)
    )
    return x86_assemble(source, base=X86_USER_BASE)


def _riscv_program(spec: AttackSpec):
    source = (
        "user_entry:\n"
        "    li a7, 16\n"
        "    la a0, attack_code\n"
        "    li a1, %d\n"
        "    ecall\n"
        "    li a7, 0\n"
        "    li a0, 0\n"
        "    ecall\n"
        "attack_code:\n"
        "%s\n" % (RISCV_VULN_MODULES[spec.compromised_module], spec.payload)
    )
    return riscv_assemble(source, base=RISCV_USER_BASE)


def run_attack(spec: AttackSpec, mode: str, max_steps: int = 400_000) -> AttackOutcome:
    """Run one attack against a freshly booted kernel in ``mode``."""
    if spec.arch == "x86":
        kernel = X86Kernel(mode)
        program = _x86_program(spec)
        kernel.load_user(program)
        kernel.set_abort_continuation(program.symbol("aborted"))
        stats = kernel.run(max_steps=max_steps)
    else:
        kernel = RiscvKernel(mode)
        program = _riscv_program(spec)
        stats = kernel.run(program, max_steps=max_steps)
    return AttackOutcome(
        spec=spec,
        mode=mode,
        succeeded=bool(spec.effect(kernel)),
        faults=kernel.fault_count,
        completed=stats.halted,
    )


def evaluate_attack(spec: AttackSpec) -> "tuple[AttackOutcome, AttackOutcome]":
    """(native outcome, decomposed outcome) for one attack."""
    return run_attack(spec, "native"), run_attack(spec, "decomposed")


def marker_written(kernel) -> bool:
    """Shared effect helper: did the payload write its proof marker?"""
    return kernel.memory.load(MARKER_ADDRESS, 8) == MARKER_VALUE
