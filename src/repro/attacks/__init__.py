"""ISA-abuse-based attacks (Table 1), gate-forgery attacks, and the
unintended-instruction campaigns (scanner baseline vs the PCU)."""

from .base import (
    MARKER_ADDRESS,
    MARKER_VALUE,
    AttackOutcome,
    AttackSpec,
    evaluate_attack,
    marker_written,
    run_attack,
)
from .gate_forgery import (
    GATE_ATTACKS,
    HIDDEN_WRMSR_X86,
    INJECTED_GATE_RISCV,
    INJECTED_GATE_X86,
    MISALIGNED_GATE_X86,
)
from .riscv_attacks import (
    POSITIVE_CONTROLS,
    RISCV_ATTACKS,
    SATP_HIJACK,
    SCOUNTEREN_CONTROL,
    SIE_ABUSE,
    SSTATUS_SUM_FLIP,
    STVEC_HIJACK,
)
from .unintended import (
    AttackCampaignResult,
    PlantedGadget,
    build_stream,
    run_unintended_campaign,
    run_unintended_campaigns,
    write_attack_report,
)
from .table1 import (
    CONTROLLED_CHANNEL,
    FORESHADOW,
    NAILGUN,
    SGXPECTRE,
    STEALTHY_PAGE_TABLE,
    SUPER_ROOT,
    TABLE1_ATTACKS,
    TRESOR_HUNT,
    VOLTAGE,
)

__all__ = [
    "AttackCampaignResult",
    "AttackOutcome",
    "AttackSpec",
    "CONTROLLED_CHANNEL",
    "FORESHADOW",
    "GATE_ATTACKS",
    "HIDDEN_WRMSR_X86",
    "INJECTED_GATE_RISCV",
    "INJECTED_GATE_X86",
    "MARKER_ADDRESS",
    "MARKER_VALUE",
    "MISALIGNED_GATE_X86",
    "NAILGUN",
    "POSITIVE_CONTROLS",
    "RISCV_ATTACKS",
    "SATP_HIJACK",
    "SCOUNTEREN_CONTROL",
    "SGXPECTRE",
    "SIE_ABUSE",
    "SSTATUS_SUM_FLIP",
    "STEALTHY_PAGE_TABLE",
    "STVEC_HIJACK",
    "SUPER_ROOT",
    "TABLE1_ATTACKS",
    "PlantedGadget",
    "TRESOR_HUNT",
    "VOLTAGE",
    "build_stream",
    "evaluate_attack",
    "marker_written",
    "run_attack",
    "run_unintended_campaign",
    "run_unintended_campaigns",
    "write_attack_report",
]
