"""Gate-forgery and unintended-instruction attacks (Sections 4.2, 8).

These exercise the unforgeable-gate properties and the dynamic threat
that defeats static binary scanning:

* **Injected gate** — a genuine ``hccall`` instruction placed at an
  unregistered address.  Property (i)/(iv): the PCU compares the
  runtime address against the SGT entry and faults.
* **Misaligned gate** — the ``hccall`` byte sequence hiding inside the
  immediate of a legitimate ``mov``; jumping into the middle of the
  instruction (a ROP-style gadget) decodes it for real.  Same address
  check stops it.
* **Hidden wrmsr** — the classic unintended instruction: ``0F 30``
  buried in an immediate.  Static scanners that walk aligned
  instructions never see it; Nested Kernel's manual gadget elimination
  must find it by hand.  ISA-Grid blocks it at execution time because
  the *decoded* instruction still passes through the PCU.

The x86 payloads use raw ``.byte`` emission to construct the overlapped
encodings exactly as an attacker would.
"""

from __future__ import annotations

from typing import List

from repro.riscv import encode as riscv_encode

from .base import AttackSpec

# hccall r10 encodes as 49 0F 0A C2 (REX.B, 0F 0A, ModRM mode-3 rm=r10).
_HCCALL_R10 = (0x49, 0x0F, 0x0A, 0xC2)

INJECTED_GATE_X86 = AttackSpec(
    name="injected-gate",
    arch="x86",
    prerequisite="a gate instruction at an attacker-chosen address",
    consequence="Switching to an arbitrary ISA domain",
    compromised_module="cpuid",
    payload="""
    mov r10, 0
    hccall r10
    ret
""",
    effect=lambda kernel: False,  # success would be a silent domain switch
)

MISALIGNED_GATE_X86 = AttackSpec(
    name="misaligned-gate",
    arch="x86",
    prerequisite="gate bytes inside another instruction's immediate",
    consequence="ROP-constructed domain switch",
    compromised_module="cpuid",
    payload="""
    mov r10, 0
    jmp hidden_gate
carrier:
    .byte 0x48, 0xBB
hidden_gate:
    .byte %d, %d, %d, %d
    ret
""" % _HCCALL_R10,
    effect=lambda kernel: False,
)

HIDDEN_WRMSR_X86 = AttackSpec(
    name="hidden-wrmsr",
    arch="x86",
    prerequisite="wrmsr bytes (0F 30) inside an immediate",
    consequence="Writing MSR 0x150 through an unintended instruction",
    compromised_module="cpuid",
    payload="""
    mov rcx, 0x150
    mov rax, 0x666
    mov rdx, 0
    jmp hidden_wrmsr
carrier:
    .byte 0x48, 0xBB
hidden_wrmsr:
    .byte 0x0F, 0x30
    ret
""",
    effect=lambda kernel: kernel.cpu.sys.msrs[0x150] == 0x666,
)


def _riscv_injected_gate_payload() -> str:
    # A genuine hccall word (gate id in t5 = x30), injected verbatim.
    word = riscv_encode("hccall", rs1=30)
    return """
    li t5, 0
    .word %d
    ret
""" % word


INJECTED_GATE_RISCV = AttackSpec(
    name="injected-gate-riscv",
    arch="riscv",
    prerequisite="a gate instruction at an attacker-chosen address",
    consequence="Switching to an arbitrary ISA domain",
    compromised_module="misc",
    payload=_riscv_injected_gate_payload(),
    effect=lambda kernel: False,
)

#: Gate/unintended-instruction attacks.  Only ``hidden-wrmsr`` has a
#: meaningful native comparison (natively it *succeeds*, proving the
#: unintended instruction is live code); the pure gate forgeries target
#: ISA-Grid hardware and are evaluated on the decomposed kernel only.
GATE_ATTACKS: List[AttackSpec] = [
    INJECTED_GATE_X86,
    MISALIGNED_GATE_X86,
    HIDDEN_WRMSR_X86,
    INJECTED_GATE_RISCV,
]
