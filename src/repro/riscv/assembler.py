"""A small two-pass RV64 assembler.

Supports the subset of GNU-style syntax that the MiniKernel generators
emit: labels, the instructions of :mod:`repro.riscv.encoding`, the usual
pseudo-instructions (``li``, ``la``, ``mv``, ``j``, ``ret``, ``call``,
``csrr``, ``csrw``, ``beqz``, ``bnez``, ``nop``), CSR operands by name,
and the ``.word`` / ``.zero`` / ``.align`` directives.

Example::

    program = assemble('''
        entry:
            li   a0, 41
            addi a0, a0, 1
            halt
    ''', base=0x100000)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .encoding import EncodingError, encode, sign_extend
from .isa import CSR_ADDRESS, REGISTER_NUMBER


class AssemblerError(Exception):
    """Syntax error, unknown symbol, or out-of-range operand."""

    def __init__(self, message: str, line: Optional[int] = None):
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)


@dataclass
class Program:
    """Assembled machine code plus its symbol table."""

    base: int
    data: bytes
    symbols: Dict[str, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise AssemblerError("unknown symbol %r" % name) from None

    def load(self, memory) -> None:
        """Copy the program into a :class:`PhysicalMemory`."""
        memory.store_bytes(self.base, self.data)


_MEM_OPERAND = re.compile(r"^(-?\w+)\((\w+)\)$")

_LOADS = {"lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"}
_STORES = {"sb", "sh", "sw", "sd"}
_BRANCHES = {"beq", "bne", "blt", "bge", "bltu", "bgeu"}
_R_TYPE = {
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
    "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
    "addw", "subw", "sllw", "srlw", "sraw",
    "mulw", "divw", "divuw", "remw", "remuw",
}
_I_TYPE = {
    "addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai",
    "addiw", "slliw", "srliw", "sraiw",
}
_CSR_OPS = {"csrrw", "csrrs", "csrrc"}
_CSR_IMM_OPS = {"csrrwi", "csrrsi", "csrrci"}
_NO_OPERAND = {"ecall", "ebreak", "sret", "mret", "wfi", "fence", "fence.i",
               "hcrets", "halt", "nop", "ret"}
_GATE_REG = {"hccall", "hccalls", "pfch", "pflh"}


def _parse_register(token: str, line: int) -> int:
    try:
        return REGISTER_NUMBER[token]
    except KeyError:
        raise AssemblerError("unknown register %r" % token, line) from None


def _parse_int(token: str, line: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError("bad integer %r" % token, line) from None


def _parse_csr(token: str, line: int) -> int:
    if token in CSR_ADDRESS:
        return CSR_ADDRESS[token]
    return _parse_int(token, line)


@dataclass
class _Item:
    """One pass-1 item: an instruction-to-encode or raw data."""

    kind: str            # "inst", "word", "zero"
    mnemonic: str = ""
    operands: Tuple[str, ...] = ()
    line: int = 0
    address: int = 0
    size: int = 4
    value: int = 0       # for .word / .zero


def _li_sequence(rd: int, value: int, line: int) -> List[Tuple[str, dict]]:
    """Expand ``li`` into lui/addi/slli chunks; supports any 64-bit value."""
    value = sign_extend(value & (1 << 64) - 1, 64)
    if -2048 <= value < 2048:
        return [("addi", {"rd": rd, "rs1": 0, "imm": value})]
    # lui+addi only reaches values whose rounded-up upper 20 bits still fit
    # in 32 bits signed: on RV64, lui 0x80000 sign-extends negative, so
    # [0x7FFFF800, 0x80000000) must take the wide path below.
    if -(1 << 31) <= value < (1 << 31) - 0x800:
        upper = (value + 0x800) & 0xFFFFFFFF
        upper &= 0xFFFFF000
        out = [("lui", {"rd": rd, "imm": upper})]
        low = value - sign_extend(upper, 32)
        if low:
            out.append(("addi", {"rd": rd, "rs1": rd, "imm": low}))
        return out
    # Wide constant: build the high 32 bits, then shift in the low 32
    # bits 11 bits at a time (ori immediates must stay non-negative).
    high = value >> 32 & 0xFFFFFFFF
    low = value & 0xFFFFFFFF
    out = _li_sequence(rd, sign_extend(high, 32), line)
    for shift, bits in ((21, 11), (10, 11), (0, 10)):
        chunk = low >> shift & ((1 << bits) - 1)
        out.append(("slli", {"rd": rd, "rs1": rd, "imm": bits}))
        if chunk:
            out.append(("ori", {"rd": rd, "rs1": rd, "imm": chunk}))
    return out


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, base: int = 0x10000):
        self.base = base

    # ------------------------------------------------------------------
    def assemble(self, source: str) -> Program:
        items, symbols = self._pass1(source)
        data = self._pass2(items, symbols)
        return Program(self.base, bytes(data), symbols)

    # ------------------------------------------------------------------
    def _pass1(self, source: str) -> Tuple[List[_Item], Dict[str, int]]:
        items: List[_Item] = []
        symbols: Dict[str, int] = {}
        address = self.base
        for number, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            while True:
                match = re.match(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$", line)
                if not match:
                    break
                label, line = match.group(1), match.group(2).strip()
                if label in symbols:
                    raise AssemblerError("duplicate label %r" % label, number)
                symbols[label] = address
            if not line:
                continue
            mnemonic, _, rest = line.partition(" ")
            mnemonic = mnemonic.lower()
            operands = tuple(p.strip() for p in rest.split(",")) if rest.strip() else ()
            if mnemonic == ".align":
                align = _parse_int(operands[0], number)
                pad = -address % align
                if pad:
                    items.append(_Item("zero", line=number, address=address, size=pad))
                    address += pad
                continue
            if mnemonic == ".word":
                for op in operands:
                    items.append(
                        _Item("word", line=number, address=address, size=4,
                              value=_parse_int(op, number))
                    )
                    address += 4
                continue
            if mnemonic == ".zero":
                size = _parse_int(operands[0], number)
                items.append(_Item("zero", line=number, address=address, size=size))
                address += size
                continue
            if mnemonic.startswith("."):
                raise AssemblerError("unknown directive %r" % mnemonic, number)
            size = self._instruction_size(mnemonic, operands, number)
            items.append(
                _Item("inst", mnemonic=mnemonic, operands=operands,
                      line=number, address=address, size=size)
            )
            address += size
        return items, symbols

    def _instruction_size(self, mnemonic: str, operands: Tuple[str, ...], line: int) -> int:
        if mnemonic == "li":
            rd = _parse_register(operands[0], line)
            value = _parse_int(operands[1], line)
            return 4 * len(_li_sequence(rd, value, line))
        if mnemonic == "la":
            return 8  # always lui+addi so label addresses stay stable
        return 4

    # ------------------------------------------------------------------
    def _pass2(self, items: List[_Item], symbols: Dict[str, int]) -> bytearray:
        data = bytearray()
        for item in items:
            if item.kind == "zero":
                data += b"\x00" * item.size
                continue
            if item.kind == "word":
                data += (item.value & 0xFFFFFFFF).to_bytes(4, "little")
                continue
            for word in self._encode_item(item, symbols):
                data += word.to_bytes(4, "little")
        return data

    def _resolve(self, token: str, symbols: Dict[str, int], line: int) -> int:
        if token in symbols:
            return symbols[token]
        return _parse_int(token, line)

    def _encode_item(self, item: _Item, symbols: Dict[str, int]) -> List[int]:
        m, ops, line = item.mnemonic, item.operands, item.line
        try:
            return self._encode(m, ops, item.address, symbols, line)
        except EncodingError as error:
            raise AssemblerError(str(error), line) from error

    def _encode(
        self,
        m: str,
        ops: Tuple[str, ...],
        address: int,
        symbols: Dict[str, int],
        line: int,
    ) -> List[int]:
        if m == "li":
            rd = _parse_register(ops[0], line)
            return [
                encode(name, **fields)
                for name, fields in _li_sequence(rd, _parse_int(ops[1], line), line)
            ]
        if m == "la":
            rd = _parse_register(ops[0], line)
            target = self._resolve(ops[1], symbols, line)
            upper = (target + 0x800) & 0xFFFFF000
            low = target - sign_extend(upper, 32)
            return [encode("lui", rd=rd, imm=upper), encode("addi", rd=rd, rs1=rd, imm=low)]
        if m == "nop":
            return [encode("addi", rd=0, rs1=0, imm=0)]
        if m == "mv":
            return [encode("addi", rd=_parse_register(ops[0], line),
                           rs1=_parse_register(ops[1], line), imm=0)]
        if m == "not":
            return [encode("xori", rd=_parse_register(ops[0], line),
                           rs1=_parse_register(ops[1], line), imm=-1)]
        if m == "j":
            target = self._resolve(ops[0], symbols, line)
            return [encode("jal", rd=0, imm=target - address)]
        if m == "call":
            target = self._resolve(ops[0], symbols, line)
            return [encode("jal", rd=1, imm=target - address)]
        if m == "jal":
            if len(ops) == 1:
                target = self._resolve(ops[0], symbols, line)
                return [encode("jal", rd=1, imm=target - address)]
            target = self._resolve(ops[1], symbols, line)
            return [encode("jal", rd=_parse_register(ops[0], line), imm=target - address)]
        if m == "jr":
            return [encode("jalr", rd=0, rs1=_parse_register(ops[0], line), imm=0)]
        if m == "jalr":
            if len(ops) == 1:
                return [encode("jalr", rd=1, rs1=_parse_register(ops[0], line), imm=0)]
            return [encode("jalr", rd=_parse_register(ops[0], line),
                           rs1=_parse_register(ops[1], line),
                           imm=_parse_int(ops[2], line) if len(ops) > 2 else 0)]
        if m == "ret":
            return [encode("jalr", rd=0, rs1=1, imm=0)]
        if m in ("beqz", "bnez"):
            rs1 = _parse_register(ops[0], line)
            target = self._resolve(ops[1], symbols, line)
            base = "beq" if m == "beqz" else "bne"
            return [encode(base, rs1=rs1, rs2=0, imm=target - address)]
        if m in _BRANCHES:
            target = self._resolve(ops[2], symbols, line)
            return [encode(m, rs1=_parse_register(ops[0], line),
                           rs2=_parse_register(ops[1], line), imm=target - address)]
        if m in _LOADS:
            rd = _parse_register(ops[0], line)
            match = _MEM_OPERAND.match(ops[1])
            if not match:
                raise AssemblerError("bad memory operand %r" % ops[1], line)
            return [encode(m, rd=rd, rs1=_parse_register(match.group(2), line),
                           imm=_parse_int(match.group(1), line))]
        if m in _STORES:
            rs2 = _parse_register(ops[0], line)
            match = _MEM_OPERAND.match(ops[1])
            if not match:
                raise AssemblerError("bad memory operand %r" % ops[1], line)
            return [encode(m, rs2=rs2, rs1=_parse_register(match.group(2), line),
                           imm=_parse_int(match.group(1), line))]
        if m in _R_TYPE:
            return [encode(m, rd=_parse_register(ops[0], line),
                           rs1=_parse_register(ops[1], line),
                           rs2=_parse_register(ops[2], line))]
        if m in _I_TYPE:
            return [encode(m, rd=_parse_register(ops[0], line),
                           rs1=_parse_register(ops[1], line),
                           imm=_parse_int(ops[2], line))]
        if m == "csrr":
            return [encode("csrrs", rd=_parse_register(ops[0], line), rs1=0,
                           csr=_parse_csr(ops[1], line))]
        if m == "csrw":
            return [encode("csrrw", rd=0, rs1=_parse_register(ops[1], line),
                           csr=_parse_csr(ops[0], line))]
        if m in _CSR_OPS:
            return [encode(m, rd=_parse_register(ops[0], line),
                           csr=_parse_csr(ops[1], line),
                           rs1=_parse_register(ops[2], line))]
        if m in _CSR_IMM_OPS:
            return [encode(m, rd=_parse_register(ops[0], line),
                           csr=_parse_csr(ops[1], line),
                           rs1=_parse_int(ops[2], line) & 0x1F)]
        if m in _GATE_REG:
            return [encode(m, rs1=_parse_register(ops[0], line))]
        if m in _NO_OPERAND:
            if m == "ret":
                return [encode("jalr", rd=0, rs1=1, imm=0)]
            return [encode(m)]
        if m == "sfence.vma":
            rs1 = _parse_register(ops[0], line) if ops else 0
            rs2 = _parse_register(ops[1], line) if len(ops) > 1 else 0
            return [encode("sfence.vma", rs1=rs1, rs2=rs2)]
        raise AssemblerError("unknown mnemonic %r" % m, line)


def assemble(source: str, base: int = 0x10000) -> Program:
    """Assemble ``source`` at ``base``; convenience wrapper."""
    return Assembler(base).assemble(source)
