"""Sv39 virtual memory for the RISC-V core.

The paper's flagship abused register is the page-table base (SATP /
CR3): "Once such a register is abused, attackers can construct
malicious mappings and break the page table isolation" (§2.2).  This
module makes that concrete: with ``satp.MODE = 8`` the core translates
through real Sv39 page tables, so a hijacked SATP observably redirects
every access.

Behaviour follows the privileged spec's subset we need:

* 3-level walk, 9 bits per level, 4 KiB pages plus 2 MiB / 1 GiB
  superpages (leaf at a higher level);
* PTE bits V/R/W/X/U/A/D; R=0,W=1 reserved → fault;
* permission checks per access type and privilege mode, honouring
  ``sstatus.SUM`` for S-mode access to U pages;
* A/D updates trap-style: a missing A (or D on store) faults, the way
  hardware configured for software A/D management behaves;
* a small TLB keyed by (ASID, VPN) flushed by ``sfence.vma`` and
  timed: a miss costs the walk's memory accesses.

M-mode and ``satp.MODE = 0`` (Bare) bypass translation, so the existing
kernels and workloads run unchanged until someone turns paging on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.sim.trap import Trap, TrapKind

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
LEVELS = 3
PTE_SIZE = 8

# satp fields (RV64).
SATP_MODE_SHIFT = 60
SATP_MODE_BARE = 0
SATP_MODE_SV39 = 8
SATP_ASID_SHIFT = 44
SATP_ASID_MASK = 0xFFFF
SATP_PPN_MASK = (1 << 44) - 1

# PTE bits.
PTE_V = 1 << 0
PTE_R = 1 << 1
PTE_W = 1 << 2
PTE_X = 1 << 3
PTE_U = 1 << 4
PTE_G = 1 << 5
PTE_A = 1 << 6
PTE_D = 1 << 7

# scause page-fault codes.
CAUSE_FETCH_PAGE_FAULT = 12
CAUSE_LOAD_PAGE_FAULT = 13
CAUSE_STORE_PAGE_FAULT = 15

ACCESS_FETCH = "fetch"
ACCESS_LOAD = "load"
ACCESS_STORE = "store"

_FAULT_CAUSE = {
    ACCESS_FETCH: CAUSE_FETCH_PAGE_FAULT,
    ACCESS_LOAD: CAUSE_LOAD_PAGE_FAULT,
    ACCESS_STORE: CAUSE_STORE_PAGE_FAULT,
}


def make_satp(root_ppn: int, asid: int = 0, mode: int = SATP_MODE_SV39) -> int:
    """Compose a SATP value from a root page number."""
    return (
        (mode & 0xF) << SATP_MODE_SHIFT
        | (asid & SATP_ASID_MASK) << SATP_ASID_SHIFT
        | root_ppn & SATP_PPN_MASK
    )


def make_pte(paddr: int, flags: int) -> int:
    """Compose a leaf/pointer PTE for a physical address."""
    return (paddr >> PAGE_SHIFT) << 10 | flags


@dataclass
class TlbEntry:
    """One cached translation (always normalized to 4 KiB granularity)."""

    paddr_base: int
    flags: int
    level: int


class PageFault(Trap):
    """Sv39 translation failure, vectored like any other trap."""

    def __init__(self, access: str, vaddr: int):
        super().__init__(
            TrapKind.PAGE_FAULT,
            _FAULT_CAUSE[access],
            value=vaddr,
            message="%s page fault at 0x%x" % (access, vaddr),
        )
        self.access = access
        self.vaddr = vaddr


class Sv39Mmu:
    """Translation engine + TLB for one hart."""

    def __init__(self, memory, hierarchy=None, tlb_entries: int = 64):
        self.memory = memory
        self.hierarchy = hierarchy
        self.tlb_entries = tlb_entries
        self._tlb: Dict[Tuple[int, int], TlbEntry] = {}
        self.walks = 0
        self.tlb_hits = 0
        self.tlb_misses = 0

    # ------------------------------------------------------------------
    def flush_tlb(self) -> None:
        """``sfence.vma`` (full flush in this model)."""
        self._tlb.clear()

    @staticmethod
    def _vpn(vaddr: int, level: int) -> int:
        return vaddr >> (PAGE_SHIFT + 9 * level) & 0x1FF

    @staticmethod
    def _canonical(vaddr: int) -> bool:
        """Sv39 requires bits 63..39 to equal bit 38."""
        top = vaddr >> 38
        return top == 0 or top == (1 << 26) - 1

    def translate(
        self,
        vaddr: int,
        access: str,
        *,
        satp: int,
        priv_mode: int,
        sum_bit: bool = False,
    ) -> Tuple[int, int]:
        """Translate ``vaddr``; returns ``(paddr, extra_cycles)``.

        Raises :class:`PageFault` on any translation failure.  Bare mode
        (or M-mode) is the identity with zero cost.
        """
        mode = satp >> SATP_MODE_SHIFT & 0xF
        if mode == SATP_MODE_BARE or priv_mode >= 3:
            return vaddr, 0
        if mode != SATP_MODE_SV39:
            raise PageFault(access, vaddr)
        if not self._canonical(vaddr):
            raise PageFault(access, vaddr)

        asid = satp >> SATP_ASID_SHIFT & SATP_ASID_MASK
        page = vaddr >> PAGE_SHIFT
        entry = self._tlb.get((asid, page))
        if entry is not None:
            self.tlb_hits += 1
            self._check_permissions(entry.flags, access, priv_mode, sum_bit, vaddr)
            return entry.paddr_base | vaddr & PAGE_SIZE - 1, 0

        self.tlb_misses += 1
        paddr_base, flags, level, cycles = self._walk(vaddr, satp, access)
        self._check_permissions(flags, access, priv_mode, sum_bit, vaddr)
        if len(self._tlb) >= self.tlb_entries:
            self._tlb.pop(next(iter(self._tlb)))
        self._tlb[(asid, page)] = TlbEntry(paddr_base, flags, level)
        return paddr_base | vaddr & PAGE_SIZE - 1, cycles

    # ------------------------------------------------------------------
    def _walk(self, vaddr: int, satp: int, access: str) -> Tuple[int, int, int, int]:
        """Page-table walk; returns (page base, flags, level, cycles)."""
        self.walks += 1
        table = (satp & SATP_PPN_MASK) << PAGE_SHIFT
        cycles = 0
        for level in range(LEVELS - 1, -1, -1):
            pte_address = table + self._vpn(vaddr, level) * PTE_SIZE
            if self.hierarchy is not None:
                cycles += self.hierarchy.access_data(pte_address)
            pte = self.memory.load(pte_address, 8)
            if not pte & PTE_V or (not pte & PTE_R and pte & PTE_W):
                raise PageFault(access, vaddr)
            if pte & (PTE_R | PTE_X):
                # Leaf.  Superpage PPN alignment must hold.
                ppn = pte >> 10
                if level and ppn & (1 << 9 * level) - 1:
                    raise PageFault(access, vaddr)
                # Software A/D management: missing A (or D on store)
                # faults so the OS can set the bits.
                if not pte & PTE_A or (access == ACCESS_STORE and not pte & PTE_D):
                    raise PageFault(access, vaddr)
                base = (ppn << PAGE_SHIFT) | (
                    vaddr & ((1 << PAGE_SHIFT + 9 * level) - 1) & ~(PAGE_SIZE - 1)
                )
                return base, pte & 0xFF, level, cycles
            table = (pte >> 10) << PAGE_SHIFT
        raise PageFault(access, vaddr)

    @staticmethod
    def _check_permissions(
        flags: int, access: str, priv_mode: int, sum_bit: bool, vaddr: int
    ) -> None:
        if access == ACCESS_FETCH and not flags & PTE_X:
            raise PageFault(access, vaddr)
        if access == ACCESS_LOAD and not flags & PTE_R:
            raise PageFault(access, vaddr)
        if access == ACCESS_STORE and not flags & PTE_W:
            raise PageFault(access, vaddr)
        if priv_mode == 0 and not flags & PTE_U:
            raise PageFault(access, vaddr)
        if priv_mode == 1 and flags & PTE_U:
            # S-mode touching U pages: data needs SUM; fetch never allowed.
            if access == ACCESS_FETCH or not sum_bit:
                raise PageFault(access, vaddr)


class PageTableBuilder:
    """Build Sv39 page tables in physical memory (kernel-side helper)."""

    def __init__(self, memory, allocator_base: int):
        self.memory = memory
        self._next = allocator_base
        self.root = self._alloc_table()

    def _alloc_table(self) -> int:
        table = self._next
        self._next += PAGE_SIZE
        for offset in range(0, PAGE_SIZE, PTE_SIZE):
            self.memory.store(table + offset, 0, 8)
        return table

    @property
    def root_ppn(self) -> int:
        return self.root >> PAGE_SHIFT

    def satp(self, asid: int = 0) -> int:
        return make_satp(self.root_ppn, asid)

    def map_page(self, vaddr: int, paddr: int, flags: int) -> None:
        """Install one 4 KiB mapping (A/D pre-set, V implied)."""
        table = self.root
        for level in range(LEVELS - 1, 0, -1):
            index = Sv39Mmu._vpn(vaddr, level)
            pte_address = table + index * PTE_SIZE
            pte = self.memory.load(pte_address, 8)
            if pte & PTE_V:
                table = (pte >> 10) << PAGE_SHIFT
            else:
                new_table = self._alloc_table()
                self.memory.store(
                    pte_address, make_pte(new_table, PTE_V), 8
                )
                table = new_table
        index = Sv39Mmu._vpn(vaddr, 0)
        self.memory.store(
            table + index * PTE_SIZE,
            make_pte(paddr, flags | PTE_V | PTE_A | PTE_D),
            8,
        )

    def map_range(self, vaddr: int, paddr: int, size: int, flags: int) -> None:
        for offset in range(0, size, PAGE_SIZE):
            self.map_page(vaddr + offset, paddr + offset, flags)

    def identity_map(self, base: int, size: int, flags: int) -> None:
        self.map_range(base, base, size, flags)
