"""RISC-V substrate: the Rocket-like ISA-Grid prototype.

Provides the RV64 functional CPU, a real-encoding assembler, and
:func:`build_riscv_system`, which wires a complete simulated machine the
way the paper's FPGA prototype is wired: in-order 5-stage pipeline
model, Rocket-like memory hierarchy, trusted memory, PCU and domain-0
runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import (
    CONFIG_8E,
    DomainManager,
    PcuConfig,
    PrivilegeCheckUnit,
    TrustedMemory,
)
from repro.sim import (
    InOrderPipelineModel,
    Machine,
    PhysicalMemory,
    rocket_hierarchy,
)

from .assembler import Assembler, AssemblerError, Program, assemble
from .cpu import (
    CAUSE_ECALL_S,
    CAUSE_ECALL_U,
    CAUSE_ILLEGAL_INSTRUCTION,
    CAUSE_ISA_GRID_FAULT,
    CAUSE_TRUSTED_MEMORY,
    CpuPanic,
    PRIV_M,
    PRIV_S,
    PRIV_U,
    RiscvCpu,
)
from .encoding import EncodingError, Instruction, decode, encode
from .mmu import (
    PageFault,
    PageTableBuilder,
    Sv39Mmu,
    make_pte,
    make_satp,
)
from .isa import (
    ABI_REGISTERS,
    BASE_COMPUTE_CLASSES,
    CSR_ADDRESS,
    CSR_INDEX_BY_ADDRESS,
    GATE_CLASSES,
    INST_CLASSES,
    REGISTER_NUMBER,
    RISCV_ISA_MAP,
    SSTATUS_SIE,
    SSTATUS_SPIE,
    SSTATUS_SPP,
    SSTATUS_SUM,
)

# Canonical memory map of the simulated RISC-V machine.
KERNEL_BASE = 0x0010_0000
USER_BASE = 0x0040_0000
DATA_BASE = 0x0060_0000
KERNEL_STACK_TOP = 0x006E_0000
USER_STACK_TOP = 0x006F_0000
TRUSTED_BASE = 0x0100_0000
TRUSTED_SIZE = 1 << 20
MEMORY_SIZE = 1 << 30  # the FPGA board's 1 GB DDR3


@dataclass
class RiscvSystem:
    """A fully wired RISC-V machine (the FPGA-prototype analogue)."""

    machine: Machine
    cpu: RiscvCpu
    pcu: Optional[PrivilegeCheckUnit]
    manager: Optional[DomainManager]

    def load(self, program: Program) -> None:
        program.load(self.machine.memory)
        self.cpu.flush_decode_cache()

    def run(self, entry: int, max_steps: int = 2_000_000):
        self.cpu.pc = entry
        return self.machine.run(max_steps)


def build_riscv_system(
    config: PcuConfig = CONFIG_8E,
    *,
    with_isagrid: bool = True,
) -> RiscvSystem:
    """Build a Rocket-like machine, optionally without ISA-Grid (baseline)."""
    memory = PhysicalMemory(size=MEMORY_SIZE)
    hierarchy = rocket_hierarchy()
    pipeline = InOrderPipelineModel(hierarchy)
    pcu = None
    manager = None
    if with_isagrid:
        trusted = TrustedMemory(TRUSTED_BASE, TRUSTED_SIZE, backing=memory)
        pcu = PrivilegeCheckUnit(
            RISCV_ISA_MAP,
            config.with_refill_latency(hierarchy.miss_path_latency),
            trusted,
        )
        manager = DomainManager(pcu)
    machine = Machine(memory, hierarchy, pipeline, pcu)
    # Native (PCU-less) machines honour the escape hatch too, so a
    # ``--no-block-cache`` bench run never takes the block executor on
    # either side of a native-vs-protected pair.
    machine.block_summaries = config.block_summaries
    cpu = RiscvCpu(machine)
    return RiscvSystem(machine, cpu, pcu, manager)


__all__ = [
    "ABI_REGISTERS",
    "Assembler",
    "AssemblerError",
    "BASE_COMPUTE_CLASSES",
    "CAUSE_ECALL_S",
    "CAUSE_ECALL_U",
    "CAUSE_ILLEGAL_INSTRUCTION",
    "CAUSE_ISA_GRID_FAULT",
    "CAUSE_TRUSTED_MEMORY",
    "CSR_ADDRESS",
    "CSR_INDEX_BY_ADDRESS",
    "CpuPanic",
    "DATA_BASE",
    "EncodingError",
    "GATE_CLASSES",
    "INST_CLASSES",
    "Instruction",
    "KERNEL_BASE",
    "KERNEL_STACK_TOP",
    "MEMORY_SIZE",
    "PRIV_M",
    "PRIV_S",
    "PRIV_U",
    "PageFault",
    "PageTableBuilder",
    "Program",
    "REGISTER_NUMBER",
    "RISCV_ISA_MAP",
    "RiscvCpu",
    "RiscvSystem",
    "Sv39Mmu",
    "SSTATUS_SIE",
    "SSTATUS_SPIE",
    "SSTATUS_SPP",
    "SSTATUS_SUM",
    "TRUSTED_BASE",
    "TRUSTED_SIZE",
    "USER_BASE",
    "USER_STACK_TOP",
    "assemble",
    "build_riscv_system",
    "decode",
    "encode",
    "make_pte",
    "make_satp",
]
