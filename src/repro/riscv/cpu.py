"""Functional RV64 CPU model with an integrated Privilege Check Unit.

The core models U/S privilege modes (plus an M mode for completeness),
the supervisor trap machinery (``stvec``/``sepc``/``scause``/``stval``/
``sstatus``), and the full instruction subset of
:mod:`repro.riscv.encoding`.  Every issued instruction is checked by the
CPU privilege level *and* by the attached PCU, exactly as Section 4.1
prescribes; either rejection vectors to the supervisor trap handler.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.errors import PrivilegeFault, TrustedMemoryFault
from repro.core.isa_extension import AccessInfo, CacheId, GateKind
from repro.core.pcu import PrivilegeCheckUnit
from repro.sim.machine import Machine
from repro.sim.pipeline import StepInfo
from repro.sim.trap import Trap, TrapKind

from .encoding import (
    EncodingError,
    Instruction,
    decode,
    is_unsigned_load,
    load_width,
    sign_extend,
)
from .isa import (
    CSR_ADDRESS,
    CSR_INDEX_BY_ADDRESS,
    CSR_MIN_PRIV,
    GATE_CLASSES,
    READ_ONLY_CSRS,
    RISCV_ISA_MAP,
    SSTATUS_SIE,
    SSTATUS_SPIE,
    SSTATUS_SPP,
    SSTATUS_SUM,
)

MASK64 = (1 << 64) - 1

PRIV_U = 0
PRIV_S = 1
PRIV_M = 3

# scause values (RISC-V privileged spec + two custom causes for ISA-Grid).
CAUSE_ILLEGAL_INSTRUCTION = 2
CAUSE_BREAKPOINT = 3
CAUSE_ECALL_U = 8
CAUSE_ECALL_S = 9
CAUSE_ISA_GRID_FAULT = 24      # custom: PCU privilege rejection
CAUSE_TRUSTED_MEMORY = 25      # custom: trusted-memory access violation

_CAUSE_BY_KIND = {
    TrapKind.ILLEGAL_INSTRUCTION: CAUSE_ILLEGAL_INSTRUCTION,
    TrapKind.BREAKPOINT: CAUSE_BREAKPOINT,
    TrapKind.ISA_GRID_FAULT: CAUSE_ISA_GRID_FAULT,
    TrapKind.TRUSTED_MEMORY_FAULT: CAUSE_TRUSTED_MEMORY,
}

_GATE_KIND = {
    "hccall": GateKind.HCCALL,
    "hccalls": GateKind.HCCALLS,
    "hcrets": GateKind.HCRETS,
}


class CpuPanic(Exception):
    """A trap occurred with no handler installed (stvec == 0)."""


def to_signed(value: int) -> int:
    return sign_extend(value & MASK64, 64)


def _div_trunc(a: int, b: int) -> int:
    """RISC-V signed division: truncate toward zero, div-by-zero = -1."""
    if b == 0:
        return -1
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


class RiscvCpu:
    """A single RV64 hart attached to a :class:`Machine`."""

    def __init__(self, machine: Machine, pcu: Optional[PrivilegeCheckUnit] = None):
        self.machine = machine
        self.memory = machine.memory
        self.pcu = pcu if pcu is not None else machine.pcu
        self.isa_map = RISCV_ISA_MAP
        self.regs = [0] * 32
        self.pc = 0
        self.mode = PRIV_S  # boot in supervisor mode (kernel boot code)
        self.csrs: Dict[int, int] = {addr: 0 for addr in CSR_INDEX_BY_ADDRESS}
        self.exit_code: Optional[int] = None
        self.trap_count = 0
        self.last_trap: Optional[Trap] = None
        self._class_index = {
            name: self.isa_map.inst_class(name)
            for name in self.isa_map.inst_class_names
        }
        self._decode_cache: Dict[int, Instruction] = {}
        # Optional Sv39 translation: identity (Bare) until software
        # writes a Sv39-mode SATP.  The decode cache is keyed by
        # *physical* address, so address-space switches stay coherent.
        from .mmu import ACCESS_FETCH, ACCESS_LOAD, ACCESS_STORE, Sv39Mmu

        self.mmu = Sv39Mmu(machine.memory, machine.hierarchy)
        self._ACCESS_FETCH = ACCESS_FETCH
        self._ACCESS_LOAD = ACCESS_LOAD
        self._ACCESS_STORE = ACCESS_STORE
        machine.attach_cpu(self)

    # ------------------------------------------------------------------
    # Address translation.
    # ------------------------------------------------------------------
    def _translate(self, vaddr: int, access: str, info: StepInfo) -> int:
        satp = self.csrs[CSR_ADDRESS["satp"]]
        if satp == 0:  # Bare mode fast path
            return vaddr
        paddr, cycles = self.mmu.translate(
            vaddr,
            access,
            satp=satp,
            priv_mode=self.mode,
            sum_bit=bool(self.csrs[CSR_ADDRESS["sstatus"]] & SSTATUS_SUM),
        )
        info.extra_cycles += cycles
        return paddr

    def flush_decode_cache(self) -> None:
        """Call after writing instruction memory (icache coherence)."""
        self._decode_cache.clear()

    # ------------------------------------------------------------------
    # Register helpers.
    # ------------------------------------------------------------------
    def reg(self, index: int) -> int:
        return self.regs[index]

    def set_reg(self, index: int, value: int) -> None:
        if index:
            self.regs[index] = value & MASK64

    # ------------------------------------------------------------------
    # CSR access (architectural; privilege checks are in the executor).
    # ------------------------------------------------------------------
    def read_csr(self, address: int) -> int:
        if address == CSR_ADDRESS["domain"]:
            return self.pcu.current_domain if self.pcu else 0
        if address == CSR_ADDRESS["pdomain"]:
            return self.pcu.previous_domain if self.pcu else 0
        if address == CSR_ADDRESS["hcsp"]:
            return self.pcu.registers.hcsp if self.pcu else 0
        if address == CSR_ADDRESS["hcsb"]:
            return self.pcu.registers.hcsb if self.pcu else 0
        if address == CSR_ADDRESS["hcsl"]:
            return self.pcu.registers.hcsl if self.pcu else 0
        if address == CSR_ADDRESS["cycle"]:
            return int(self.machine.stats.cycles)
        if address == CSR_ADDRESS["instret"]:
            return self.machine.stats.instructions
        if address == CSR_ADDRESS["time"]:
            return int(self.machine.stats.cycles) // 10
        return self.csrs[address]

    def write_csr(self, address: int, value: int) -> None:
        # The trusted-stack pointer registers live in the PCU (Table 2);
        # the PCU's HPT check has already gated who may write them
        # (domain-0 by default).
        if self.pcu is not None:
            if address == CSR_ADDRESS["hcsp"]:
                self.pcu.registers.hcsp = value & MASK64
                return
            if address == CSR_ADDRESS["hcsb"]:
                self.pcu.registers.hcsb = value & MASK64
                return
            if address == CSR_ADDRESS["hcsl"]:
                self.pcu.registers.hcsl = value & MASK64
                return
        self.csrs[address] = value & MASK64

    # ------------------------------------------------------------------
    # Trap machinery.
    # ------------------------------------------------------------------
    def _vector_trap(self, trap: Trap, info: StepInfo) -> None:
        """Hardware trap entry into supervisor mode."""
        self.trap_count += 1
        self.last_trap = trap
        handler = self.csrs[CSR_ADDRESS["stvec"]]
        if not handler:
            raise CpuPanic(
                "trap %s at pc=0x%x with no stvec handler" % (trap, trap.pc)
            )
        self.csrs[CSR_ADDRESS["sepc"]] = trap.pc
        self.csrs[CSR_ADDRESS["scause"]] = trap.cause
        self.csrs[CSR_ADDRESS["stval"]] = trap.value & MASK64
        status = self.csrs[CSR_ADDRESS["sstatus"]]
        # Side-effect CSR updates: not PCU-checked (Section 4.1).
        if self.mode == PRIV_S:
            status |= SSTATUS_SPP
        else:
            status &= ~SSTATUS_SPP & MASK64
        if status & SSTATUS_SIE:
            status |= SSTATUS_SPIE
        else:
            status &= ~SSTATUS_SPIE & MASK64
        status &= ~SSTATUS_SIE & MASK64
        self.csrs[CSR_ADDRESS["sstatus"]] = status
        self.mode = PRIV_S
        self.pc = handler
        info.trapped = True

    def _sret(self, info: StepInfo) -> None:
        if self.mode < PRIV_S:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION, pc=self.pc)
        status = self.csrs[CSR_ADDRESS["sstatus"]]
        self.mode = PRIV_S if status & SSTATUS_SPP else PRIV_U
        if status & SSTATUS_SPIE:
            status |= SSTATUS_SIE
        else:
            status &= ~SSTATUS_SIE & MASK64
        status &= ~SSTATUS_SPP & MASK64
        self.csrs[CSR_ADDRESS["sstatus"]] = status
        self.pc = self.csrs[CSR_ADDRESS["sepc"]]
        info.trap_return = True

    # ------------------------------------------------------------------
    # The fetch-decode-execute step.
    # ------------------------------------------------------------------
    def step(self) -> StepInfo:
        pc = self.pc
        info = StepInfo(pc=pc, size=4)
        try:
            fetch_pa = self._translate(pc, self._ACCESS_FETCH, info)
            inst = self._decode_cache.get(fetch_pa)
            if inst is None:
                try:
                    word = self.memory.load(fetch_pa, 4)
                    inst = decode(word)
                except EncodingError as error:
                    raise Trap(
                        TrapKind.ILLEGAL_INSTRUCTION,
                        CAUSE_ILLEGAL_INSTRUCTION,
                        value=self.memory.load(fetch_pa, 4),
                        pc=pc,
                        message=str(error),
                    )
                self._decode_cache[fetch_pa] = inst
            self._execute(inst, pc, info)
        except Trap as trap:
            if not trap.pc:
                trap.pc = pc  # page faults raised mid-translation
            self._vector_trap(trap, info)
        except PrivilegeFault as fault:
            kind = (
                TrapKind.TRUSTED_MEMORY_FAULT
                if isinstance(fault, TrustedMemoryFault)
                else TrapKind.ISA_GRID_FAULT
            )
            self._vector_trap(
                Trap(
                    kind,
                    _CAUSE_BY_KIND[kind],
                    pc=pc,
                    message=str(fault),
                    fault=fault,
                ),
                info,
            )
        return info

    # ------------------------------------------------------------------
    def _check_pcu(self, inst: Instruction, pc: int, info: StepInfo, access: AccessInfo) -> None:
        if self.pcu is not None:
            info.pcu_stall += self.pcu.check(access)

    def _plain_access(self, inst: Instruction, pc: int) -> AccessInfo:
        return AccessInfo(inst_class=self._class_index[inst.inst_class], address=pc)

    def _execute(self, inst: Instruction, pc: int, info: StepInfo) -> None:
        m = inst.mnemonic
        cls = inst.inst_class

        if cls in GATE_CLASSES:
            self._execute_gate(inst, pc, info)
            return
        if cls == "csr":
            self._execute_csr(inst, pc, info)
            return

        # Hybrid check: CPU privilege level first, then the PCU.
        if m in ("sret", "mret", "wfi") and self.mode < PRIV_S:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION, pc=pc)
        if m == "sfence.vma" and self.mode < PRIV_S:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION, pc=pc)
        self._check_pcu(inst, pc, info, self._plain_access(inst, pc))

        next_pc = pc + 4
        r = self.regs

        if cls == "alu" or cls == "mul":
            self._execute_alu(inst, pc)
        elif cls == "load":
            address = (r[inst.rs1] + inst.imm) & MASK64
            physical = self._translate(address, self._ACCESS_LOAD, info)
            self.machine.check_data_access(physical, pc)
            width = load_width(m)
            value = self.memory.load(physical, width)
            if not is_unsigned_load(m):
                value = sign_extend(value, 8 * width) & MASK64
            self.set_reg(inst.rd, value)
            info.is_load = True
            info.mem_address = physical
        elif cls == "store":
            address = (r[inst.rs1] + inst.imm) & MASK64
            physical = self._translate(address, self._ACCESS_STORE, info)
            self.machine.check_data_access(physical, pc)
            self.memory.store(physical, r[inst.rs2], load_width(m))
            info.is_store = True
            info.mem_address = physical
        elif cls == "branch":
            info.is_branch = True
            taken = self._branch_taken(m, r[inst.rs1], r[inst.rs2])
            info.branch_taken = taken
            if taken:
                next_pc = (pc + inst.imm) & MASK64
        elif m == "jal":
            self.set_reg(inst.rd, pc + 4)
            next_pc = (pc + inst.imm) & MASK64
        elif m == "jalr":
            target = (r[inst.rs1] + inst.imm) & MASK64 & ~1
            self.set_reg(inst.rd, pc + 4)
            next_pc = target
        elif cls == "fence":
            pass
        elif m == "ecall":
            raise Trap(
                TrapKind.SYSCALL,
                CAUSE_ECALL_S if self.mode == PRIV_S else CAUSE_ECALL_U,
                pc=pc,
            )
        elif m == "ebreak":
            raise Trap(TrapKind.BREAKPOINT, CAUSE_BREAKPOINT, pc=pc)
        elif m == "sret":
            self._sret(info)
            return
        elif m == "mret":
            # Minimal M-mode support: treated like sret from M.
            self._sret(info)
            return
        elif m == "wfi":
            pass
        elif m == "sfence.vma":
            self.mmu.flush_tlb()
            info.extra_cycles = 8  # TLB maintenance cost
        elif m == "pfch":
            if self.pcu is not None:
                self.pcu.prefetch(r[inst.rs1] & 0xFFFF)
            info.extra_cycles = 1
        elif m == "pflh":
            if self.pcu is not None:
                self.pcu.flush(CacheId(r[inst.rs1] & 0x7))
            info.extra_cycles = 1
        elif m == "halt":
            self.exit_code = r[10]
            info.halted = True
        else:  # pragma: no cover - decoder and executor must stay in sync
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION, pc=pc)

        self.pc = next_pc

    def _branch_taken(self, m: str, a: int, b: int) -> bool:
        if m == "beq":
            return a == b
        if m == "bne":
            return a != b
        if m == "blt":
            return to_signed(a) < to_signed(b)
        if m == "bge":
            return to_signed(a) >= to_signed(b)
        if m == "bltu":
            return a < b
        return a >= b  # bgeu

    def _execute_alu(self, inst: Instruction, pc: int) -> None:
        m = inst.mnemonic
        r = self.regs
        a = r[inst.rs1]
        if m == "lui":
            result = inst.imm
        elif m == "auipc":
            result = pc + inst.imm
        elif m == "addi":
            result = a + inst.imm
        elif m == "slti":
            result = int(to_signed(a) < inst.imm)
        elif m == "sltiu":
            result = int(a < inst.imm & MASK64)
        elif m == "xori":
            result = a ^ inst.imm & MASK64
        elif m == "ori":
            result = a | inst.imm & MASK64
        elif m == "andi":
            result = a & inst.imm & MASK64
        elif m == "slli":
            result = a << inst.imm
        elif m == "srli":
            result = a >> inst.imm
        elif m == "srai":
            result = to_signed(a) >> inst.imm
        elif m == "addiw":
            result = sign_extend((a + inst.imm) & 0xFFFFFFFF, 32)
        elif m == "slliw":
            result = sign_extend((a << inst.imm) & 0xFFFFFFFF, 32)
        elif m == "srliw":
            result = sign_extend((a & 0xFFFFFFFF) >> inst.imm, 32)
        elif m == "sraiw":
            result = sign_extend(a & 0xFFFFFFFF, 32) >> inst.imm
        else:
            b = r[inst.rs2]
            if m == "add":
                result = a + b
            elif m == "sub":
                result = a - b
            elif m == "sll":
                result = a << (b & 63)
            elif m == "slt":
                result = int(to_signed(a) < to_signed(b))
            elif m == "sltu":
                result = int(a < b)
            elif m == "xor":
                result = a ^ b
            elif m == "srl":
                result = a >> (b & 63)
            elif m == "sra":
                result = to_signed(a) >> (b & 63)
            elif m == "or":
                result = a | b
            elif m == "and":
                result = a & b
            elif m == "mul":
                result = to_signed(a) * to_signed(b)
            elif m == "mulh":
                result = (to_signed(a) * to_signed(b)) >> 64
            elif m == "mulhu":
                result = (a * b) >> 64
            elif m == "mulhsu":
                result = (to_signed(a) * b) >> 64
            elif m == "div":
                result = _div_trunc(to_signed(a), to_signed(b))
            elif m == "divu":
                result = MASK64 if b == 0 else a // b
            elif m == "rem":
                sa, sb = to_signed(a), to_signed(b)
                result = sa if sb == 0 else sa - _div_trunc(sa, sb) * sb
            elif m == "remu":
                result = a if b == 0 else a % b
            elif m == "addw":
                result = sign_extend((a + b) & 0xFFFFFFFF, 32)
            elif m == "subw":
                result = sign_extend((a - b) & 0xFFFFFFFF, 32)
            elif m == "sllw":
                result = sign_extend((a << (b & 31)) & 0xFFFFFFFF, 32)
            elif m == "srlw":
                result = sign_extend((a & 0xFFFFFFFF) >> (b & 31), 32)
            elif m == "sraw":
                result = sign_extend(a & 0xFFFFFFFF, 32) >> (b & 31)
            elif m == "mulw":
                result = sign_extend((a * b) & 0xFFFFFFFF, 32)
            elif m == "divw":
                aw = sign_extend(a & 0xFFFFFFFF, 32)
                bw = sign_extend(b & 0xFFFFFFFF, 32)
                result = sign_extend(_div_trunc(aw, bw) & 0xFFFFFFFF, 32)
            elif m == "divuw":
                aw, bw = a & 0xFFFFFFFF, b & 0xFFFFFFFF
                result = -1 if bw == 0 else sign_extend(aw // bw, 32)
            elif m == "remw":
                aw = sign_extend(a & 0xFFFFFFFF, 32)
                bw = sign_extend(b & 0xFFFFFFFF, 32)
                rem = aw if bw == 0 else aw - _div_trunc(aw, bw) * bw
                result = sign_extend(rem & 0xFFFFFFFF, 32)
            elif m == "remuw":
                aw, bw = a & 0xFFFFFFFF, b & 0xFFFFFFFF
                result = sign_extend(aw if bw == 0 else aw % bw, 32)
            else:  # pragma: no cover
                raise Trap(TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION, pc=pc)
        self.set_reg(inst.rd, result & MASK64)

    # ------------------------------------------------------------------
    def _execute_csr(self, inst: Instruction, pc: int, info: StepInfo) -> None:
        m = inst.mnemonic
        address = inst.csr
        info.is_csr = True

        # CPU privilege-level check (the classic mechanism).
        min_priv = CSR_MIN_PRIV.get(address)
        if min_priv is None:
            raise Trap(
                TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION,
                value=address, pc=pc, message="unimplemented CSR 0x%x" % address,
            )
        if self.mode < min_priv:
            raise Trap(
                TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION,
                value=address, pc=pc, message="CSR 0x%x needs privilege" % address,
            )

        immediate = m.endswith("i")
        operand = inst.rs1 if immediate else self.regs[inst.rs1]
        does_read = not (m in ("csrrw", "csrrwi") and inst.rd == 0)
        does_write = m in ("csrrw", "csrrwi") or (
            m in ("csrrs", "csrrc", "csrrsi", "csrrci") and
            (inst.rs1 != 0 if not immediate else operand != 0)
        )

        if does_write and address in READ_ONLY_CSRS:
            raise Trap(
                TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION,
                value=address, pc=pc, message="CSR 0x%x is read-only" % address,
            )

        old = self.read_csr(address)
        if m in ("csrrw", "csrrwi"):
            new = operand & MASK64
        elif m in ("csrrs", "csrrsi"):
            new = old | operand
        else:
            new = old & ~operand & MASK64

        # ISA-Grid check: explicit CSR access (Section 4.1).
        if self.pcu is not None:
            csr_index = CSR_INDEX_BY_ADDRESS[address]
            info.pcu_stall += self.pcu.check(
                AccessInfo(
                    inst_class=self._class_index["csr"],
                    address=pc,
                    csr=csr_index,
                    csr_read=does_read,
                    csr_write=does_write,
                    write_value=new if does_write else None,
                    old_value=old if does_write else None,
                )
            )

        if does_read:
            self.set_reg(inst.rd, old)
        if does_write:
            self.write_csr(address, new)
        self.pc = pc + 4

    # ------------------------------------------------------------------
    def _execute_gate(self, inst: Instruction, pc: int, info: StepInfo) -> None:
        """Gate instructions route to the PCU's switching engine."""
        if self.pcu is None:
            raise Trap(
                TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION,
                pc=pc, message="gate instruction without ISA-Grid",
            )
        kind = _GATE_KIND[inst.mnemonic]
        info.is_gate = True
        info.gate_kind = kind
        gate_id = self.regs[inst.rs1]
        target, stall = self.pcu.execute_gate(
            kind, gate_id, pc, return_address=pc + 4
        )
        info.pcu_stall += stall
        self.pc = target
