"""Functional RV64 CPU model with an integrated Privilege Check Unit.

The core models U/S privilege modes (plus an M mode for completeness),
the supervisor trap machinery (``stvec``/``sepc``/``scause``/``stval``/
``sstatus``), and the full instruction subset of
:mod:`repro.riscv.encoding`.  Every issued instruction is checked by the
CPU privilege level *and* by the attached PCU, exactly as Section 4.1
prescribes; either rejection vectors to the supervisor trap handler.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.errors import PrivilegeFault, TrustedMemoryFault
from repro.core.isa_extension import AccessInfo, CacheId, GateKind
from repro.core.pcu import BLOCK_REFUSED, BLOCK_SILENT, PrivilegeCheckUnit
from repro.sim.blocks import (
    MAX_BLOCK_LEN,
    MIN_BLOCK_LEN,
    NO_BLOCK,
    BlockSummary,
    CompiledBlock,
    summarize_classes,
)
from repro.sim.machine import Machine
from repro.sim.pipeline import InOrderPipelineModel, StepInfo
from repro.sim.trap import Trap, TrapKind

from .encoding import (
    EncodingError,
    Instruction,
    decode,
    is_unsigned_load,
    load_width,
    sign_extend,
)
from .isa import (
    CSR_ADDRESS,
    CSR_INDEX_BY_ADDRESS,
    CSR_MIN_PRIV,
    GATE_CLASSES,
    READ_ONLY_CSRS,
    RISCV_ISA_MAP,
    SSTATUS_SIE,
    SSTATUS_SPIE,
    SSTATUS_SPP,
    SSTATUS_SUM,
)

MASK64 = (1 << 64) - 1

PRIV_U = 0
PRIV_S = 1
PRIV_M = 3

# scause values (RISC-V privileged spec + two custom causes for ISA-Grid).
CAUSE_ILLEGAL_INSTRUCTION = 2
CAUSE_BREAKPOINT = 3
CAUSE_ECALL_U = 8
CAUSE_ECALL_S = 9
CAUSE_ISA_GRID_FAULT = 24      # custom: PCU privilege rejection
CAUSE_TRUSTED_MEMORY = 25      # custom: trusted-memory access violation

_CAUSE_BY_KIND = {
    TrapKind.ILLEGAL_INSTRUCTION: CAUSE_ILLEGAL_INSTRUCTION,
    TrapKind.BREAKPOINT: CAUSE_BREAKPOINT,
    TrapKind.ISA_GRID_FAULT: CAUSE_ISA_GRID_FAULT,
    TrapKind.TRUSTED_MEMORY_FAULT: CAUSE_TRUSTED_MEMORY,
}

_GATE_KIND = {
    "hccall": GateKind.HCCALL,
    "hccalls": GateKind.HCCALLS,
    "hcrets": GateKind.HCRETS,
}


class CpuPanic(Exception):
    """A trap occurred with no handler installed (stvec == 0)."""


def to_signed(value: int) -> int:
    return sign_extend(value & MASK64, 64)


def _div_trunc(a: int, b: int) -> int:
    """RISC-V signed division: truncate toward zero, div-by-zero = -1."""
    if b == 0:
        return -1
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _remw(r, inst, pc):
    aw = sign_extend(r[inst.rs1] & 0xFFFFFFFF, 32)
    bw = sign_extend(r[inst.rs2] & 0xFFFFFFFF, 32)
    rem = aw if bw == 0 else aw - _div_trunc(aw, bw) * bw
    return sign_extend(rem & 0xFFFFFFFF, 32)


def _rem(r, inst, pc):
    sa, sb = to_signed(r[inst.rs1]), to_signed(r[inst.rs2])
    return sa if sb == 0 else sa - _div_trunc(sa, sb) * sb


def _divw(r, inst, pc):
    aw = sign_extend(r[inst.rs1] & 0xFFFFFFFF, 32)
    bw = sign_extend(r[inst.rs2] & 0xFFFFFFFF, 32)
    return sign_extend(_div_trunc(aw, bw) & 0xFFFFFFFF, 32)


def _divuw(r, inst, pc):
    aw, bw = r[inst.rs1] & 0xFFFFFFFF, r[inst.rs2] & 0xFFFFFFFF
    return -1 if bw == 0 else sign_extend(aw // bw, 32)


def _remuw(r, inst, pc):
    aw, bw = r[inst.rs1] & 0xFFFFFFFF, r[inst.rs2] & 0xFFFFFFFF
    return sign_extend(aw if bw == 0 else aw % bw, 32)


# Per-mnemonic ALU evaluators, resolved once at decode time; each takes
# (regs, inst, pc) and returns the (unmasked) rd value.  The expressions
# are the same ones the old mnemonic if-chain computed.
_ALU_OPS = {
    "lui": lambda r, inst, pc: inst.imm,
    "auipc": lambda r, inst, pc: pc + inst.imm,
    "addi": lambda r, inst, pc: r[inst.rs1] + inst.imm,
    "slti": lambda r, inst, pc: int(to_signed(r[inst.rs1]) < inst.imm),
    "sltiu": lambda r, inst, pc: int(r[inst.rs1] < inst.imm & MASK64),
    "xori": lambda r, inst, pc: r[inst.rs1] ^ inst.imm & MASK64,
    "ori": lambda r, inst, pc: r[inst.rs1] | inst.imm & MASK64,
    "andi": lambda r, inst, pc: r[inst.rs1] & inst.imm & MASK64,
    "slli": lambda r, inst, pc: r[inst.rs1] << inst.imm,
    "srli": lambda r, inst, pc: r[inst.rs1] >> inst.imm,
    "srai": lambda r, inst, pc: to_signed(r[inst.rs1]) >> inst.imm,
    "addiw": lambda r, inst, pc: sign_extend((r[inst.rs1] + inst.imm) & 0xFFFFFFFF, 32),
    "slliw": lambda r, inst, pc: sign_extend((r[inst.rs1] << inst.imm) & 0xFFFFFFFF, 32),
    "srliw": lambda r, inst, pc: sign_extend((r[inst.rs1] & 0xFFFFFFFF) >> inst.imm, 32),
    "sraiw": lambda r, inst, pc: sign_extend(r[inst.rs1] & 0xFFFFFFFF, 32) >> inst.imm,
    "add": lambda r, inst, pc: r[inst.rs1] + r[inst.rs2],
    "sub": lambda r, inst, pc: r[inst.rs1] - r[inst.rs2],
    "sll": lambda r, inst, pc: r[inst.rs1] << (r[inst.rs2] & 63),
    "slt": lambda r, inst, pc: int(to_signed(r[inst.rs1]) < to_signed(r[inst.rs2])),
    "sltu": lambda r, inst, pc: int(r[inst.rs1] < r[inst.rs2]),
    "xor": lambda r, inst, pc: r[inst.rs1] ^ r[inst.rs2],
    "srl": lambda r, inst, pc: r[inst.rs1] >> (r[inst.rs2] & 63),
    "sra": lambda r, inst, pc: to_signed(r[inst.rs1]) >> (r[inst.rs2] & 63),
    "or": lambda r, inst, pc: r[inst.rs1] | r[inst.rs2],
    "and": lambda r, inst, pc: r[inst.rs1] & r[inst.rs2],
    "mul": lambda r, inst, pc: to_signed(r[inst.rs1]) * to_signed(r[inst.rs2]),
    "mulh": lambda r, inst, pc: (to_signed(r[inst.rs1]) * to_signed(r[inst.rs2])) >> 64,
    "mulhu": lambda r, inst, pc: (r[inst.rs1] * r[inst.rs2]) >> 64,
    "mulhsu": lambda r, inst, pc: (to_signed(r[inst.rs1]) * r[inst.rs2]) >> 64,
    "div": lambda r, inst, pc: _div_trunc(to_signed(r[inst.rs1]), to_signed(r[inst.rs2])),
    "divu": lambda r, inst, pc: MASK64 if r[inst.rs2] == 0 else r[inst.rs1] // r[inst.rs2],
    "rem": _rem,
    "remu": lambda r, inst, pc: r[inst.rs1] if r[inst.rs2] == 0 else r[inst.rs1] % r[inst.rs2],
    "addw": lambda r, inst, pc: sign_extend((r[inst.rs1] + r[inst.rs2]) & 0xFFFFFFFF, 32),
    "subw": lambda r, inst, pc: sign_extend((r[inst.rs1] - r[inst.rs2]) & 0xFFFFFFFF, 32),
    "sllw": lambda r, inst, pc: sign_extend((r[inst.rs1] << (r[inst.rs2] & 31)) & 0xFFFFFFFF, 32),
    "srlw": lambda r, inst, pc: sign_extend((r[inst.rs1] & 0xFFFFFFFF) >> (r[inst.rs2] & 31), 32),
    "sraw": lambda r, inst, pc: sign_extend(r[inst.rs1] & 0xFFFFFFFF, 32) >> (r[inst.rs2] & 31),
    "mulw": lambda r, inst, pc: sign_extend((r[inst.rs1] * r[inst.rs2]) & 0xFFFFFFFF, 32),
    "divw": _divw,
    "divuw": _divuw,
    "remw": _remw,
    "remuw": _remuw,
}

# Fully specialized ALU factories for the mnemonics that dominate the
# microbenchmarks: called once at decode with the Instruction, they
# return a closure over the *integer* operand fields, so the per-step
# call reads no ``inst`` attributes at all.  Each body is the matching
# ``_ALU_OPS`` expression with the ``& MASK64`` kept exactly where the
# result can leave [0, MASK64] (operands themselves are always stored
# masked).  ``auipc`` stays on the generic path — it needs the runtime
# pc, which translated aliases make per-step, not per-entry.
def _spec_lui(inst):
    rd, value = inst.rd, inst.imm & MASK64

    def op(r):
        r[rd] = value

    return op


def _spec_addi(inst):
    rd, rs1, imm = inst.rd, inst.rs1, inst.imm

    def op(r):
        r[rd] = (r[rs1] + imm) & MASK64

    return op


def _spec_slti(inst):
    rd, rs1, imm = inst.rd, inst.rs1, inst.imm

    def op(r):
        r[rd] = int(to_signed(r[rs1]) < imm)

    return op


def _spec_sltiu(inst):
    rd, rs1, value = inst.rd, inst.rs1, inst.imm & MASK64

    def op(r):
        r[rd] = int(r[rs1] < value)

    return op


def _spec_xori(inst):
    rd, rs1, value = inst.rd, inst.rs1, inst.imm & MASK64

    def op(r):
        r[rd] = r[rs1] ^ value

    return op


def _spec_ori(inst):
    rd, rs1, value = inst.rd, inst.rs1, inst.imm & MASK64

    def op(r):
        r[rd] = r[rs1] | value

    return op


def _spec_andi(inst):
    rd, rs1, value = inst.rd, inst.rs1, inst.imm & MASK64

    def op(r):
        r[rd] = r[rs1] & value

    return op


def _spec_slli(inst):
    rd, rs1, shamt = inst.rd, inst.rs1, inst.imm

    def op(r):
        r[rd] = (r[rs1] << shamt) & MASK64

    return op


def _spec_srli(inst):
    rd, rs1, shamt = inst.rd, inst.rs1, inst.imm

    def op(r):
        r[rd] = r[rs1] >> shamt

    return op


def _spec_srai(inst):
    rd, rs1, shamt = inst.rd, inst.rs1, inst.imm

    def op(r):
        r[rd] = (to_signed(r[rs1]) >> shamt) & MASK64

    return op


def _spec_addiw(inst):
    rd, rs1, imm = inst.rd, inst.rs1, inst.imm

    def op(r):
        r[rd] = sign_extend((r[rs1] + imm) & 0xFFFFFFFF, 32) & MASK64

    return op


def _spec_add(inst):
    rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2

    def op(r):
        r[rd] = (r[rs1] + r[rs2]) & MASK64

    return op


def _spec_sub(inst):
    rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2

    def op(r):
        r[rd] = (r[rs1] - r[rs2]) & MASK64

    return op


def _spec_sll(inst):
    rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2

    def op(r):
        r[rd] = (r[rs1] << (r[rs2] & 63)) & MASK64

    return op


def _spec_slt(inst):
    rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2

    def op(r):
        r[rd] = int(to_signed(r[rs1]) < to_signed(r[rs2]))

    return op


def _spec_sltu(inst):
    rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2

    def op(r):
        r[rd] = int(r[rs1] < r[rs2])

    return op


def _spec_xor(inst):
    rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2

    def op(r):
        r[rd] = r[rs1] ^ r[rs2]

    return op


def _spec_srl(inst):
    rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2

    def op(r):
        r[rd] = r[rs1] >> (r[rs2] & 63)

    return op


def _spec_sra(inst):
    rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2

    def op(r):
        r[rd] = (to_signed(r[rs1]) >> (r[rs2] & 63)) & MASK64

    return op


def _spec_or(inst):
    rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2

    def op(r):
        r[rd] = r[rs1] | r[rs2]

    return op


def _spec_and(inst):
    rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2

    def op(r):
        r[rd] = r[rs1] & r[rs2]

    return op


def _spec_mul(inst):
    rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2

    def op(r):
        r[rd] = (to_signed(r[rs1]) * to_signed(r[rs2])) & MASK64

    return op


def _spec_addw(inst):
    rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2

    def op(r):
        r[rd] = sign_extend((r[rs1] + r[rs2]) & 0xFFFFFFFF, 32) & MASK64

    return op


def _spec_subw(inst):
    rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2

    def op(r):
        r[rd] = sign_extend((r[rs1] - r[rs2]) & 0xFFFFFFFF, 32) & MASK64

    return op


_ALU_SPEC = {
    "lui": _spec_lui,
    "addi": _spec_addi,
    "slti": _spec_slti,
    "sltiu": _spec_sltiu,
    "xori": _spec_xori,
    "ori": _spec_ori,
    "andi": _spec_andi,
    "slli": _spec_slli,
    "srli": _spec_srli,
    "srai": _spec_srai,
    "addiw": _spec_addiw,
    "add": _spec_add,
    "sub": _spec_sub,
    "sll": _spec_sll,
    "slt": _spec_slt,
    "sltu": _spec_sltu,
    "xor": _spec_xor,
    "srl": _spec_srl,
    "sra": _spec_sra,
    "or": _spec_or,
    "and": _spec_and,
    "mul": _spec_mul,
    "addw": _spec_addw,
    "subw": _spec_subw,
}


# Per-mnemonic branch comparators, resolved once at decode time.
_BRANCH_TAKEN = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: to_signed(a) < to_signed(b),
    "bge": lambda a, b: to_signed(a) >= to_signed(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}


class RiscvCpu:
    """A single RV64 hart attached to a :class:`Machine`."""

    def __init__(self, machine: Machine, pcu: Optional[PrivilegeCheckUnit] = None):
        self.machine = machine
        self.memory = machine.memory
        self.pcu = pcu if pcu is not None else machine.pcu
        self.isa_map = RISCV_ISA_MAP
        self.regs = [0] * 32
        self.pc = 0
        self.mode = PRIV_S  # boot in supervisor mode (kernel boot code)
        self.csrs: Dict[int, int] = {addr: 0 for addr in CSR_INDEX_BY_ADDRESS}
        self.exit_code: Optional[int] = None
        self.trap_count = 0
        self.last_trap: Optional[Trap] = None
        self._class_index = {
            name: self.isa_map.inst_class(name)
            for name in self.isa_map.inst_class_names
        }
        self._csr_class = self._class_index["csr"]
        self._satp_address = CSR_ADDRESS["satp"]
        self._sstatus_address = CSR_ADDRESS["sstatus"]
        # Bound-method handles for the load/store hot path (the memory
        # object and the machine wrapper are fixed for the CPU's life;
        # check_data_access itself still reads machine.pcu live).
        self._mem_load = self.memory.load
        self._mem_store = self.memory.store
        self._check_data = machine.check_data_access
        # pa -> (inst, bound handler, prebuilt AccessInfo | None, extra).
        # ``access`` is the plain PCU check the step loop performs before
        # dispatch; handlers with ``None`` (gates, CSR ops, mode-checked
        # specials) run their own checks in the architecturally required
        # order.  ``extra`` holds per-handler precomputed operands.
        self._decode_cache: Dict[int, tuple] = {}
        # pc -> CompiledBlock | NO_BLOCK (DESIGN §3.18): superblocks
        # over the decode entries, each carrying a privilege summary so
        # a warm block costs one PCU probe.  Blocks are only formed and
        # entered in Bare mode (satp == 0, where pa == pc) and are
        # invalidated with the decode cache; privilege edits need no
        # explicit invalidation because the summary is re-proved
        # against the *live* bypass register on every entry.
        self._block_cache: Dict[int, object] = {}
        # Block formation bakes the Rocket timing model into the member
        # closures, so any other pipeline falls back to the
        # per-instruction loop.
        self.blocks_supported = type(machine.pipeline) is InOrderPipelineModel
        # Optional Sv39 translation: identity (Bare) until software
        # writes a Sv39-mode SATP.  The decode cache is keyed by
        # *physical* address, so address-space switches stay coherent.
        from .mmu import ACCESS_FETCH, ACCESS_LOAD, ACCESS_STORE, Sv39Mmu

        self.mmu = Sv39Mmu(machine.memory, machine.hierarchy)
        self._ACCESS_FETCH = ACCESS_FETCH
        self._ACCESS_LOAD = ACCESS_LOAD
        self._ACCESS_STORE = ACCESS_STORE
        machine.attach_cpu(self)

    # ------------------------------------------------------------------
    # Address translation.
    # ------------------------------------------------------------------
    def _translate(
        self, vaddr: int, access: str, info: StepInfo, satp: int = -1
    ) -> int:
        if satp < 0:
            satp = self.csrs[self._satp_address]
        if satp == 0:  # Bare mode fast path
            return vaddr
        paddr, cycles = self.mmu.translate(
            vaddr,
            access,
            satp=satp,
            priv_mode=self.mode,
            sum_bit=bool(self.csrs[self._sstatus_address] & SSTATUS_SUM),
        )
        if cycles:
            info.extra_cycles += cycles
        return paddr

    def flush_decode_cache(self) -> None:
        """Call after writing instruction memory (icache coherence)."""
        self._decode_cache.clear()
        if self._block_cache:
            self._block_cache.clear()
            if self.pcu is not None:
                self.pcu.block_stats.invalidations += 1

    # ------------------------------------------------------------------
    # Register helpers.
    # ------------------------------------------------------------------
    def reg(self, index: int) -> int:
        return self.regs[index]

    def set_reg(self, index: int, value: int) -> None:
        if index:
            self.regs[index] = value & MASK64

    # ------------------------------------------------------------------
    # CSR access (architectural; privilege checks are in the executor).
    # ------------------------------------------------------------------
    def read_csr(self, address: int) -> int:
        if address == CSR_ADDRESS["domain"]:
            return self.pcu.current_domain if self.pcu else 0
        if address == CSR_ADDRESS["pdomain"]:
            return self.pcu.previous_domain if self.pcu else 0
        if address == CSR_ADDRESS["hcsp"]:
            return self.pcu.registers.hcsp if self.pcu else 0
        if address == CSR_ADDRESS["hcsb"]:
            return self.pcu.registers.hcsb if self.pcu else 0
        if address == CSR_ADDRESS["hcsl"]:
            return self.pcu.registers.hcsl if self.pcu else 0
        if address == CSR_ADDRESS["cycle"]:
            return int(self.machine.stats.cycles)
        if address == CSR_ADDRESS["instret"]:
            return self.machine.stats.instructions
        if address == CSR_ADDRESS["time"]:
            return int(self.machine.stats.cycles) // 10
        return self.csrs[address]

    def write_csr(self, address: int, value: int) -> None:
        # The trusted-stack pointer registers live in the PCU (Table 2);
        # the PCU's HPT check has already gated who may write them
        # (domain-0 by default).
        if self.pcu is not None:
            if address == CSR_ADDRESS["hcsp"]:
                self.pcu.registers.hcsp = value & MASK64
                return
            if address == CSR_ADDRESS["hcsb"]:
                self.pcu.registers.hcsb = value & MASK64
                return
            if address == CSR_ADDRESS["hcsl"]:
                self.pcu.registers.hcsl = value & MASK64
                return
        self.csrs[address] = value & MASK64

    # ------------------------------------------------------------------
    # Trap machinery.
    # ------------------------------------------------------------------
    def _vector_trap(self, trap: Trap, info: StepInfo) -> None:
        """Hardware trap entry into supervisor mode."""
        self.trap_count += 1
        self.last_trap = trap
        handler = self.csrs[CSR_ADDRESS["stvec"]]
        if not handler:
            raise CpuPanic(
                "trap %s at pc=0x%x with no stvec handler" % (trap, trap.pc)
            )
        self.csrs[CSR_ADDRESS["sepc"]] = trap.pc
        self.csrs[CSR_ADDRESS["scause"]] = trap.cause
        self.csrs[CSR_ADDRESS["stval"]] = trap.value & MASK64
        status = self.csrs[CSR_ADDRESS["sstatus"]]
        # Side-effect CSR updates: not PCU-checked (Section 4.1).
        if self.mode == PRIV_S:
            status |= SSTATUS_SPP
        else:
            status &= ~SSTATUS_SPP & MASK64
        if status & SSTATUS_SIE:
            status |= SSTATUS_SPIE
        else:
            status &= ~SSTATUS_SPIE & MASK64
        status &= ~SSTATUS_SIE & MASK64
        self.csrs[CSR_ADDRESS["sstatus"]] = status
        self.mode = PRIV_S
        self.pc = handler
        info.trapped = True

    def _sret(self, info: StepInfo) -> None:
        if self.mode < PRIV_S:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION, pc=self.pc)
        status = self.csrs[CSR_ADDRESS["sstatus"]]
        self.mode = PRIV_S if status & SSTATUS_SPP else PRIV_U
        if status & SSTATUS_SPIE:
            status |= SSTATUS_SIE
        else:
            status &= ~SSTATUS_SIE & MASK64
        status &= ~SSTATUS_SPP & MASK64
        self.csrs[CSR_ADDRESS["sstatus"]] = status
        self.pc = self.csrs[CSR_ADDRESS["sepc"]]
        info.trap_return = True

    # ------------------------------------------------------------------
    # The fetch-decode-execute step.
    # ------------------------------------------------------------------
    def step(self) -> StepInfo:
        pc = self.pc
        info = StepInfo(pc)
        try:
            satp = self.csrs[self._satp_address]
            if satp:
                fetch_pa = self._translate(pc, self._ACCESS_FETCH, info, satp)
            else:  # Bare mode fast path, inlined
                fetch_pa = pc
            entry = self._decode_cache.get(fetch_pa)
            if entry is None:
                entry = self._decode_entry(fetch_pa, pc)
                self._decode_cache[fetch_pa] = entry
            inst, handler, access, extra = entry
            if access is not None:
                pcu = self.pcu
                if pcu is not None:
                    if access.address != pc:
                        # Translated aliases: same line, different VA.
                        access = AccessInfo(
                            inst_class=access.inst_class, address=pc
                        )
                    stall = pcu.check(access)
                    if stall:
                        info.pcu_stall += stall
            handler(inst, pc, info, extra)
        except (Trap, PrivilegeFault) as error:
            self._dispatch_fault(error, pc, info)
        return info

    def _dispatch_fault(self, error, pc: int, info: StepInfo) -> None:
        """Vector a Trap or PrivilegeFault exactly as ``step()`` does.

        Shared by the per-instruction loop and the block executor so a
        mid-block fault takes the identical supervisor-trap path.
        """
        if isinstance(error, Trap):
            if not error.pc:
                error.pc = pc  # page faults raised mid-translation
            self._vector_trap(error, info)
        else:
            kind = (
                TrapKind.TRUSTED_MEMORY_FAULT
                if isinstance(error, TrustedMemoryFault)
                else TrapKind.ISA_GRID_FAULT
            )
            self._vector_trap(
                Trap(
                    kind,
                    _CAUSE_BY_KIND[kind],
                    pc=pc,
                    message=str(error),
                    fault=error,
                ),
                info,
            )

    # ------------------------------------------------------------------
    # Block-summary execution (DESIGN §3.18).
    # ------------------------------------------------------------------
    def _block_op_pure(self, handler, inst, pc: int, extra):
        """Fused member closure: no memory access, no branch predictor."""
        p = self.machine.pipeline
        info = StepInfo(pc)

        def op(h=handler, inst=inst, pc=pc, info=info, extra=extra,
               ai=p._access_instruction):
            h(inst, pc, info, extra)
            f = ai(pc)
            if f > 1:
                return 1.0 + (f - 1)
            return 1.0

        return op

    def _block_op_mem(self, handler, inst, pc: int, extra, is_store: bool):
        """Fused member closure for loads and stores."""
        p = self.machine.pipeline
        info = StepInfo(pc)

        def op(h=handler, inst=inst, pc=pc, info=info, extra=extra,
               ai=p._access_instruction, ad=p._access_data,
               is_store=is_store):
            h(inst, pc, info, extra)
            f = ai(pc)
            c = 1.0 + (f - 1) if f > 1 else 1.0
            d = ad(info.mem_address, is_store)
            if d > 1:
                c += d - 1
            return c

        return op

    def _block_op_branch(self, handler, inst, pc: int, extra):
        """Fused member closure for conditional branches."""
        p = self.machine.pipeline
        info = StepInfo(pc)

        def op(h=handler, inst=inst, pc=pc, info=info, extra=extra,
               ai=p._access_instruction, stats=p.branch_stats,
               pu=p._predictor_update, mp=p._mispredict_penalty):
            h(inst, pc, info, extra)
            f = ai(pc)
            c = 1.0 + (f - 1) if f > 1 else 1.0
            stats.predictions += 1
            if pu(pc, info.branch_taken):
                stats.mispredictions += 1
                c += mp
            return c

        return op

    def _form_block(self, start: int):
        """Compile a superblock at ``start``, or ``NO_BLOCK``.

        Only called in Bare mode (satp == 0), where pc == pa and the
        per-pc decode cache is directly addressable.  Members are
        straight-line instructions whose only PCU interaction is the
        plain instruction-class check; the first control transfer
        (branch/jal/jalr) ends the block as its final member.  Gates,
        CSR access, sret/wfi/sfence, ecall/ebreak, pfch/pflh and halt
        refuse membership, so a block can never contain a domain
        switch, privilege edit or satp write.
        """
        decode_cache = self._decode_cache
        ops = []
        pcs = []
        classes = []
        touches_memory = False
        ended = False
        pc = start
        while len(ops) < MAX_BLOCK_LEN:
            entry = decode_cache.get(pc)
            if entry is None:
                try:
                    entry = self._decode_entry(pc, pc)
                except Trap:
                    # Undecodable tail: executing it live must raise
                    # the same trap via the reference path, so end the
                    # block here and don't cache the decode failure.
                    break
                decode_cache[pc] = entry
            inst, handler, access, extra = entry
            if access is None:
                break
            cls = inst.inst_class
            mnemonic = inst.mnemonic
            if cls == "alu" or cls == "mul" or cls == "fence":
                op = self._block_op_pure(handler, inst, pc, extra)
            elif cls == "load":
                op = self._block_op_mem(handler, inst, pc, extra, False)
                touches_memory = True
            elif cls == "store":
                op = self._block_op_mem(handler, inst, pc, extra, True)
                touches_memory = True
            elif cls == "branch":
                op = self._block_op_branch(handler, inst, pc, extra)
                ended = True
            elif mnemonic == "jal" or mnemonic == "jalr":
                op = self._block_op_pure(handler, inst, pc, extra)
                ended = True
            else:
                # ecall/ebreak/pfch/pflh/halt: never block members.
                break
            ops.append(op)
            pcs.append(pc)
            classes.append(access.inst_class)
            pc += 4
            if ended:
                break
        if len(ops) < MIN_BLOCK_LEN:
            return NO_BLOCK
        summary = BlockSummary(summarize_classes(classes), (), touches_memory)
        # Every RISC-V handler writes self.pc itself, so sets_pc=True:
        # the executor never needs the end_pc store.
        return CompiledBlock(summary, ops, pcs, [4] * len(ops), pc, True)

    def run_blocks(self, max_steps: int, mstats, instruction_cycles) -> None:
        """Hot loop: execute warm blocks under one PCU probe each.

        Called by :meth:`Machine.run` instead of its per-instruction
        loop when block summaries are enabled.  Any cold/ineligible pc,
        refused probe, or translated fetch (satp != 0) falls back to
        the reference ``step()`` for exactly one instruction, so
        semantics, cycles and statistics are bit-identical to the
        per-instruction loop by construction.
        """
        blocks = self._block_cache
        pcu = self.pcu
        csrs = self.csrs
        satp_address = self._satp_address
        step = self.step
        probe = None if pcu is None else pcu.check_block_summary
        account = None if pcu is None else pcu.account_block
        insts = mstats.instructions
        cyc = mstats.cycles
        traps = 0
        remaining = max_steps
        try:
            while remaining > 0:
                mode = BLOCK_REFUSED
                if not csrs[satp_address]:
                    pc = self.pc
                    block = blocks.get(pc)
                    if block is None:
                        block = self._form_block(pc)
                        blocks[pc] = block
                    if block is not NO_BLOCK and block.n <= remaining:
                        mode = (
                            BLOCK_SILENT if probe is None
                            else probe(block.summary)
                        )
                if mode == BLOCK_REFUSED:
                    # Reference path for one instruction.  Flush the
                    # stats mirrors first: the cycle/instret CSRs and
                    # trap handlers observe them live.
                    mstats.instructions = insts
                    mstats.cycles = cyc
                    info = step()
                    insts += 1
                    cyc += instruction_cycles(info)
                    remaining -= 1
                    if info.trapped:
                        traps += 1
                    if info.halted:
                        mstats.halted = True
                        return
                    continue
                ops = block.ops
                n = block.n
                i = 0
                try:
                    while i < n:
                        cyc += ops[i]()
                        i += 1
                except (Trap, PrivilegeFault) as error:
                    # Mid-block fault: members [0, i) retired normally;
                    # the faulting member vectors exactly like step().
                    insts += i
                    info = StepInfo(block.pcs[i])
                    self._dispatch_fault(error, block.pcs[i], info)
                    insts += 1
                    cyc += instruction_cycles(info)
                    traps += 1
                    remaining -= i + 1
                    if account is not None:
                        # The faulting member's check preceded its
                        # handler on the reference path, so it counts.
                        account(mode, i + 1)
                    continue
                except BaseException:
                    # e.g. MemoryAccessError escaping the run, as on
                    # the per-instruction path; attribute the retired
                    # members before unwinding.  The faulting member's
                    # check preceded its memory access there, so it
                    # counts here too.
                    insts += i
                    if account is not None:
                        account(mode, i + 1)
                    raise
                insts += n
                remaining -= n
                if account is not None:
                    account(mode, n)
        finally:
            mstats.instructions = insts
            mstats.cycles = cyc
            mstats.traps += traps

    # ------------------------------------------------------------------
    # Decode-and-dispatch cache.  One decode resolves the handler, the
    # prebuilt plain-check AccessInfo and any static operands, so the
    # steady-state step never re-examines mnemonics or classes.
    # ------------------------------------------------------------------
    def _decode_entry(self, fetch_pa: int, pc: int) -> tuple:
        try:
            word = self.memory.load(fetch_pa, 4)
            inst = decode(word)
        except EncodingError as error:
            raise Trap(
                TrapKind.ILLEGAL_INSTRUCTION,
                CAUSE_ILLEGAL_INSTRUCTION,
                value=self.memory.load(fetch_pa, 4),
                pc=pc,
                message=str(error),
            )
        m = inst.mnemonic
        cls = inst.inst_class
        if cls in GATE_CLASSES:
            return inst, self._op_gate, None, _GATE_KIND[m]
        if cls == "csr":
            address = inst.csr
            min_priv = CSR_MIN_PRIV.get(address)
            extra = (
                address,
                CSR_INDEX_BY_ADDRESS[address] if min_priv is not None else None,
                min_priv,
                m.endswith("i"),
                m[:5],  # csrrw / csrrs / csrrc
                address in READ_ONLY_CSRS,
            )
            return inst, self._op_csr, None, extra
        # Mode-checked specials run their own hybrid check sequence.
        if m in ("sret", "mret"):
            return inst, self._op_sret, None, None
        if m == "wfi":
            return inst, self._op_wfi, None, None
        if m == "sfence.vma":
            return inst, self._op_sfence, None, None
        access = AccessInfo(inst_class=self._class_index[cls], address=pc)
        if cls == "alu" or cls == "mul":
            op = _ALU_OPS.get(m)
            if op is None:  # pragma: no cover - decoder/executor sync
                return inst, self._op_illegal, access, None
            if inst.rd == 0:
                # rd == x0 discards the result, and no ALU op has side
                # effects or can fault, so the evaluation is elided.
                return inst, self._op_alu_x0, access, None
            spec = _ALU_SPEC.get(m)
            if spec is not None:
                return inst, self._op_alu_spec, access, spec(inst)
            return inst, self._op_alu, access, op
        if cls == "load":
            return inst, self._op_load, access, (
                load_width(m), is_unsigned_load(m)
            )
        if cls == "store":
            return inst, self._op_store, access, load_width(m)
        if cls == "branch":
            return inst, self._op_branch, access, _BRANCH_TAKEN.get(
                m, _BRANCH_TAKEN["bgeu"]
            )
        if cls == "fence":
            return inst, self._op_fence, access, None
        handler = self._SPECIAL_OPS.get(m)
        if handler is None:  # pragma: no cover - decoder/executor sync
            return inst, self._op_illegal, access, None
        return inst, handler.__get__(self), access, None

    def _check_plain(self, inst: Instruction, pc: int, info: StepInfo) -> None:
        if self.pcu is not None:
            info.pcu_stall += self.pcu.check(
                AccessInfo(
                    inst_class=self._class_index[inst.inst_class], address=pc
                )
            )

    # -- handlers (the plain PCU check already ran when access was set) --
    def _op_alu(self, inst: Instruction, pc: int, info: StepInfo, op) -> None:
        rd = inst.rd
        if rd:
            self.regs[rd] = op(self.regs, inst, pc) & MASK64
        self.pc = pc + 4

    def _op_alu_spec(self, inst: Instruction, pc: int, info: StepInfo, op) -> None:
        op(self.regs)
        self.pc = pc + 4

    def _op_alu_x0(self, inst: Instruction, pc: int, info: StepInfo, extra) -> None:
        self.pc = pc + 4

    def _op_load(self, inst: Instruction, pc: int, info: StepInfo, extra) -> None:
        address = (self.regs[inst.rs1] + inst.imm) & MASK64
        satp = self.csrs[self._satp_address]
        if satp:
            physical = self._translate(address, self._ACCESS_LOAD, info, satp)
        else:  # Bare mode fast path, inlined
            physical = address
        self._check_data(physical, pc)
        width, unsigned = extra
        value = self._mem_load(physical, width)
        if not unsigned:
            value = sign_extend(value, 8 * width) & MASK64
        rd = inst.rd
        if rd:
            self.regs[rd] = value
        info.is_load = True
        info.mem_address = physical
        self.pc = pc + 4

    def _op_store(self, inst: Instruction, pc: int, info: StepInfo, width) -> None:
        address = (self.regs[inst.rs1] + inst.imm) & MASK64
        satp = self.csrs[self._satp_address]
        if satp:
            physical = self._translate(address, self._ACCESS_STORE, info, satp)
        else:  # Bare mode fast path, inlined
            physical = address
        self._check_data(physical, pc)
        self._mem_store(physical, self.regs[inst.rs2], width)
        info.is_store = True
        info.mem_address = physical
        self.pc = pc + 4

    def _op_branch(self, inst: Instruction, pc: int, info: StepInfo, taken_fn) -> None:
        info.is_branch = True
        r = self.regs
        taken = taken_fn(r[inst.rs1], r[inst.rs2])
        info.branch_taken = taken
        self.pc = (pc + inst.imm) & MASK64 if taken else pc + 4

    def _op_jal(self, inst: Instruction, pc: int, info: StepInfo, extra) -> None:
        self.set_reg(inst.rd, pc + 4)
        self.pc = (pc + inst.imm) & MASK64

    def _op_jalr(self, inst: Instruction, pc: int, info: StepInfo, extra) -> None:
        target = (self.regs[inst.rs1] + inst.imm) & MASK64 & ~1
        self.set_reg(inst.rd, pc + 4)
        self.pc = target

    def _op_fence(self, inst: Instruction, pc: int, info: StepInfo, extra) -> None:
        self.pc = pc + 4

    def _op_ecall(self, inst: Instruction, pc: int, info: StepInfo, extra) -> None:
        raise Trap(
            TrapKind.SYSCALL,
            CAUSE_ECALL_S if self.mode == PRIV_S else CAUSE_ECALL_U,
            pc=pc,
        )

    def _op_ebreak(self, inst: Instruction, pc: int, info: StepInfo, extra) -> None:
        raise Trap(TrapKind.BREAKPOINT, CAUSE_BREAKPOINT, pc=pc)

    def _op_sret(self, inst: Instruction, pc: int, info: StepInfo, extra) -> None:
        # Hybrid check: CPU privilege level first, then the PCU.
        # (mret gets minimal M-mode support: treated like sret from M.)
        if self.mode < PRIV_S:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION, pc=pc)
        self._check_plain(inst, pc, info)
        self._sret(info)

    def _op_wfi(self, inst: Instruction, pc: int, info: StepInfo, extra) -> None:
        if self.mode < PRIV_S:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION, pc=pc)
        self._check_plain(inst, pc, info)
        self.pc = pc + 4

    def _op_sfence(self, inst: Instruction, pc: int, info: StepInfo, extra) -> None:
        if self.mode < PRIV_S:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION, pc=pc)
        self._check_plain(inst, pc, info)
        self.mmu.flush_tlb()
        info.extra_cycles = 8  # TLB maintenance cost
        self.pc = pc + 4

    def _op_pfch(self, inst: Instruction, pc: int, info: StepInfo, extra) -> None:
        if self.pcu is not None:
            self.pcu.prefetch(self.regs[inst.rs1] & 0xFFFF)
        info.extra_cycles = 1
        self.pc = pc + 4

    def _op_pflh(self, inst: Instruction, pc: int, info: StepInfo, extra) -> None:
        if self.pcu is not None:
            self.pcu.flush(CacheId(self.regs[inst.rs1] & 0x7))
        info.extra_cycles = 1
        self.pc = pc + 4

    def _op_halt(self, inst: Instruction, pc: int, info: StepInfo, extra) -> None:
        self.exit_code = self.regs[10]
        info.halted = True
        self.pc = pc + 4

    def _op_illegal(self, inst: Instruction, pc: int, info: StepInfo, extra) -> None:  # pragma: no cover
        raise Trap(TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION, pc=pc)

    _SPECIAL_OPS = {
        "jal": _op_jal,
        "jalr": _op_jalr,
        "ecall": _op_ecall,
        "ebreak": _op_ebreak,
        "pfch": _op_pfch,
        "pflh": _op_pflh,
        "halt": _op_halt,
    }

    # ------------------------------------------------------------------
    def _op_csr(self, inst: Instruction, pc: int, info: StepInfo, extra) -> None:
        address, csr_index, min_priv, immediate, kind, read_only = extra
        info.is_csr = True

        # CPU privilege-level check (the classic mechanism).
        if min_priv is None:
            raise Trap(
                TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION,
                value=address, pc=pc, message="unimplemented CSR 0x%x" % address,
            )
        if self.mode < min_priv:
            raise Trap(
                TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION,
                value=address, pc=pc, message="CSR 0x%x needs privilege" % address,
            )

        operand = inst.rs1 if immediate else self.regs[inst.rs1]
        if kind == "csrrw":
            does_read = inst.rd != 0
            does_write = True
        else:
            does_read = True
            does_write = operand != 0 if immediate else inst.rs1 != 0

        if does_write and read_only:
            raise Trap(
                TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION,
                value=address, pc=pc, message="CSR 0x%x is read-only" % address,
            )

        old = self.read_csr(address)
        if kind == "csrrw":
            new = operand & MASK64
        elif kind == "csrrs":
            new = old | operand
        else:
            new = old & ~operand & MASK64

        # ISA-Grid check: explicit CSR access (Section 4.1).
        if self.pcu is not None:
            info.pcu_stall += self.pcu.check(
                AccessInfo(
                    inst_class=self._csr_class,
                    address=pc,
                    csr=csr_index,
                    csr_read=does_read,
                    csr_write=does_write,
                    write_value=new if does_write else None,
                    old_value=old if does_write else None,
                )
            )

        if does_read:
            self.set_reg(inst.rd, old)
        if does_write:
            self.write_csr(address, new)
        self.pc = pc + 4

    # ------------------------------------------------------------------
    def _op_gate(self, inst: Instruction, pc: int, info: StepInfo, kind) -> None:
        """Gate instructions route to the PCU's switching engine."""
        if self.pcu is None:
            raise Trap(
                TrapKind.ILLEGAL_INSTRUCTION, CAUSE_ILLEGAL_INSTRUCTION,
                pc=pc, message="gate instruction without ISA-Grid",
            )
        info.is_gate = True
        info.gate_kind = kind
        gate_id = self.regs[inst.rs1]
        target, stall = self.pcu.execute_gate(
            kind, gate_id, pc, return_address=pc + 4
        )
        info.pcu_stall += stall
        self.pc = target
