"""RV64 instruction encoding and decoding.

Real 32-bit RV64I/M/Zicsr encodings plus the ISA-Grid extension on the
*custom-0* opcode (0x0B), the standard slot for vendor extensions:

========  ======  =====================================
funct3    mnem.   operands
========  ======  =====================================
0         hccall  rs1 = gate id
1         hccalls rs1 = gate id
2         hcrets  —
3         pfch    rs1 = CSR index (0 = all)
4         pflh    rs1 = cache id (0 = all)
7         halt    simulation stop, a0 = exit code
========  ======  =====================================

Using genuine encodings matters: the gate-forgery experiments rely on
gate words appearing (or being injected) in instruction memory and on
the PCU rejecting them by address.
"""

from __future__ import annotations

from dataclasses import dataclass

OPCODE_LUI = 0x37
OPCODE_AUIPC = 0x17
OPCODE_JAL = 0x6F
OPCODE_JALR = 0x67
OPCODE_BRANCH = 0x63
OPCODE_LOAD = 0x03
OPCODE_STORE = 0x23
OPCODE_OP_IMM = 0x13
OPCODE_OP = 0x33
OPCODE_OP_IMM_32 = 0x1B
OPCODE_OP_32 = 0x3B
OPCODE_MISC_MEM = 0x0F
OPCODE_SYSTEM = 0x73
OPCODE_CUSTOM0 = 0x0B

MASK64 = (1 << 64) - 1


class EncodingError(Exception):
    """Unknown mnemonic, out-of-range field, or undecodable word."""


def sign_extend(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & sign - 1) - (value & sign)


@dataclass(frozen=True)
class Instruction:
    """One decoded RV64 instruction."""

    mnemonic: str
    inst_class: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    csr: int = -1  # architectural CSR address for Zicsr ops
    word: int = 0

    @property
    def size(self) -> int:
        return 4


# (funct3, funct7) tables --------------------------------------------------
_OP_IMM = {
    "addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7,
}
_OP_IMM_SHIFT = {"slli": (1, 0x00), "srli": (5, 0x00), "srai": (5, 0x10)}
_OP = {
    "add": (0, 0x00), "sub": (0, 0x20), "sll": (1, 0x00), "slt": (2, 0x00),
    "sltu": (3, 0x00), "xor": (4, 0x00), "srl": (5, 0x00), "sra": (5, 0x20),
    "or": (6, 0x00), "and": (7, 0x00),
    "mul": (0, 0x01), "mulh": (1, 0x01), "mulhsu": (2, 0x01), "mulhu": (3, 0x01),
    "div": (4, 0x01), "divu": (5, 0x01),
    "rem": (6, 0x01), "remu": (7, 0x01),
}
# RV64 word (32-bit) operations: OP-32 / OP-IMM-32 opcodes.
_OP_32 = {
    "addw": (0, 0x00), "subw": (0, 0x20), "sllw": (1, 0x00),
    "srlw": (5, 0x00), "sraw": (5, 0x20),
    "mulw": (0, 0x01), "divw": (4, 0x01), "divuw": (5, 0x01),
    "remw": (6, 0x01), "remuw": (7, 0x01),
}
_OP_IMM_32_SHIFT = {"slliw": (1, 0x00), "srliw": (5, 0x00), "sraiw": (5, 0x20)}
_LOAD = {"lb": 0, "lh": 1, "lw": 2, "ld": 3, "lbu": 4, "lhu": 5, "lwu": 6}
_STORE = {"sb": 0, "sh": 1, "sw": 2, "sd": 3}
_BRANCH = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}
_CSR = {"csrrw": 1, "csrrs": 2, "csrrc": 3, "csrrwi": 5, "csrrsi": 6, "csrrci": 7}
_CUSTOM = {"hccall": 0, "hccalls": 1, "hcrets": 2, "pfch": 3, "pflh": 4, "halt": 7}

_LOAD_WIDTH = {"lb": 1, "lh": 2, "lw": 4, "ld": 8, "lbu": 1, "lhu": 2, "lwu": 4}
_STORE_WIDTH = {"sb": 1, "sh": 2, "sw": 4, "sd": 8}

_MUL_MNEMONICS = {
    "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
    "mulw", "divw", "divuw", "remw", "remuw",
}

_CLASS_BY_MNEMONIC = {}
_CLASS_BY_MNEMONIC.update({m: "alu" for m in _OP_IMM})
_CLASS_BY_MNEMONIC.update({m: "alu" for m in _OP_IMM_SHIFT})
_CLASS_BY_MNEMONIC.update({m: "alu" for m in _OP_IMM_32_SHIFT})
_CLASS_BY_MNEMONIC["addiw"] = "alu"
_CLASS_BY_MNEMONIC.update(
    {m: ("mul" if m in _MUL_MNEMONICS else "alu") for m in _OP}
)
_CLASS_BY_MNEMONIC.update(
    {m: ("mul" if m in _MUL_MNEMONICS else "alu") for m in _OP_32}
)
_CLASS_BY_MNEMONIC.update({m: "load" for m in _LOAD})
_CLASS_BY_MNEMONIC.update({m: "store" for m in _STORE})
_CLASS_BY_MNEMONIC.update({m: "branch" for m in _BRANCH})
_CLASS_BY_MNEMONIC.update({m: "csr" for m in _CSR})
_CLASS_BY_MNEMONIC.update({m: m for m in _CUSTOM})
_CLASS_BY_MNEMONIC.update(
    {
        "lui": "alu", "auipc": "alu", "jal": "jump", "jalr": "jump",
        "fence": "fence", "fence.i": "fence", "ecall": "ecall",
        "ebreak": "ebreak", "sret": "sret", "mret": "mret", "wfi": "wfi",
        "sfence.vma": "sfence_vma",
    }
)


def instruction_class(mnemonic: str) -> str:
    try:
        return _CLASS_BY_MNEMONIC[mnemonic]
    except KeyError:
        raise EncodingError("unknown mnemonic %r" % mnemonic) from None


def load_width(mnemonic: str) -> int:
    return _LOAD_WIDTH.get(mnemonic) or _STORE_WIDTH[mnemonic]


def is_unsigned_load(mnemonic: str) -> bool:
    return mnemonic in ("lbu", "lhu", "lwu")


# ---------------------------------------------------------------------------
# Field packers.
# ---------------------------------------------------------------------------
def _check_reg(value: int, name: str) -> int:
    if not 0 <= value < 32:
        raise EncodingError("%s register x%d out of range" % (name, value))
    return value


def _r_type(opcode: int, rd: int, f3: int, rs1: int, rs2: int, f7: int) -> int:
    return (
        f7 << 25 | _check_reg(rs2, "rs2") << 20 | _check_reg(rs1, "rs1") << 15
        | f3 << 12 | _check_reg(rd, "rd") << 7 | opcode
    )


def _i_type(opcode: int, rd: int, f3: int, rs1: int, imm: int) -> int:
    if not -2048 <= imm < 2048 and not 0 <= imm < 4096:
        raise EncodingError("I-immediate %d out of range" % imm)
    return (
        (imm & 0xFFF) << 20 | _check_reg(rs1, "rs1") << 15 | f3 << 12
        | _check_reg(rd, "rd") << 7 | opcode
    )


def _s_type(opcode: int, f3: int, rs1: int, rs2: int, imm: int) -> int:
    if not -2048 <= imm < 2048:
        raise EncodingError("S-immediate %d out of range" % imm)
    imm &= 0xFFF
    return (
        (imm >> 5) << 25 | _check_reg(rs2, "rs2") << 20
        | _check_reg(rs1, "rs1") << 15 | f3 << 12 | (imm & 0x1F) << 7 | opcode
    )


def _b_type(opcode: int, f3: int, rs1: int, rs2: int, imm: int) -> int:
    if imm % 2 or not -4096 <= imm < 4096:
        raise EncodingError("B-immediate %d out of range" % imm)
    imm &= 0x1FFF
    return (
        (imm >> 12 & 1) << 31 | (imm >> 5 & 0x3F) << 25
        | _check_reg(rs2, "rs2") << 20 | _check_reg(rs1, "rs1") << 15
        | f3 << 12 | (imm >> 1 & 0xF) << 8 | (imm >> 11 & 1) << 7 | opcode
    )


def _u_type(opcode: int, rd: int, imm: int) -> int:
    if imm % (1 << 12):
        raise EncodingError("U-immediate must be 4 KB aligned")
    return (imm & 0xFFFFF000) | _check_reg(rd, "rd") << 7 | opcode


def _j_type(opcode: int, rd: int, imm: int) -> int:
    if imm % 2 or not -(1 << 20) <= imm < 1 << 20:
        raise EncodingError("J-immediate %d out of range" % imm)
    imm &= 0x1FFFFF
    return (
        (imm >> 20 & 1) << 31 | (imm >> 1 & 0x3FF) << 21 | (imm >> 11 & 1) << 20
        | (imm >> 12 & 0xFF) << 12 | _check_reg(rd, "rd") << 7 | opcode
    )


# ---------------------------------------------------------------------------
# Public encoder.
# ---------------------------------------------------------------------------
def encode(mnemonic: str, rd: int = 0, rs1: int = 0, rs2: int = 0, imm: int = 0, csr: int = 0) -> int:
    """Encode one instruction to its 32-bit word."""
    if mnemonic in _OP_IMM:
        return _i_type(OPCODE_OP_IMM, rd, _OP_IMM[mnemonic], rs1, imm)
    if mnemonic in _OP_IMM_SHIFT:
        f3, f6 = _OP_IMM_SHIFT[mnemonic]
        if not 0 <= imm < 64:
            raise EncodingError("shift amount %d out of range" % imm)
        return _i_type(OPCODE_OP_IMM, rd, f3, rs1, f6 << 6 | imm)
    if mnemonic in _OP:
        f3, f7 = _OP[mnemonic]
        return _r_type(OPCODE_OP, rd, f3, rs1, rs2, f7)
    if mnemonic in _OP_32:
        f3, f7 = _OP_32[mnemonic]
        return _r_type(OPCODE_OP_32, rd, f3, rs1, rs2, f7)
    if mnemonic == "addiw":
        return _i_type(OPCODE_OP_IMM_32, rd, 0, rs1, imm)
    if mnemonic in _OP_IMM_32_SHIFT:
        f3, f7 = _OP_IMM_32_SHIFT[mnemonic]
        if not 0 <= imm < 32:
            raise EncodingError("word shift amount %d out of range" % imm)
        return _i_type(OPCODE_OP_IMM_32, rd, f3, rs1, f7 << 5 | imm)
    if mnemonic in _LOAD:
        return _i_type(OPCODE_LOAD, rd, _LOAD[mnemonic], rs1, imm)
    if mnemonic in _STORE:
        return _s_type(OPCODE_STORE, _STORE[mnemonic], rs1, rs2, imm)
    if mnemonic in _BRANCH:
        return _b_type(OPCODE_BRANCH, _BRANCH[mnemonic], rs1, rs2, imm)
    if mnemonic in _CSR:
        return _i_type(OPCODE_SYSTEM, rd, _CSR[mnemonic], rs1, csr)
    if mnemonic in _CUSTOM:
        return _r_type(OPCODE_CUSTOM0, rd, _CUSTOM[mnemonic], rs1, rs2, 0)
    if mnemonic == "lui":
        return _u_type(OPCODE_LUI, rd, imm)
    if mnemonic == "auipc":
        return _u_type(OPCODE_AUIPC, rd, imm)
    if mnemonic == "jal":
        return _j_type(OPCODE_JAL, rd, imm)
    if mnemonic == "jalr":
        return _i_type(OPCODE_JALR, rd, 0, rs1, imm)
    if mnemonic == "fence":
        return _i_type(OPCODE_MISC_MEM, 0, 0, 0, 0)
    if mnemonic == "fence.i":
        return _i_type(OPCODE_MISC_MEM, 0, 1, 0, 0)
    if mnemonic == "ecall":
        return _i_type(OPCODE_SYSTEM, 0, 0, 0, 0)
    if mnemonic == "ebreak":
        return _i_type(OPCODE_SYSTEM, 0, 0, 0, 1)
    if mnemonic == "sret":
        return _i_type(OPCODE_SYSTEM, 0, 0, 0, 0x102)
    if mnemonic == "mret":
        return _i_type(OPCODE_SYSTEM, 0, 0, 0, 0x302)
    if mnemonic == "wfi":
        return _i_type(OPCODE_SYSTEM, 0, 0, 0, 0x105)
    if mnemonic == "sfence.vma":
        return _r_type(OPCODE_SYSTEM, 0, 0, rs1, rs2, 0x09)
    raise EncodingError("unknown mnemonic %r" % mnemonic)


# ---------------------------------------------------------------------------
# Decoder.
# ---------------------------------------------------------------------------
_OP_IMM_BY_F3 = {v: k for k, v in _OP_IMM.items()}
_OP_BY_KEY = {v: k for k, v in _OP.items()}
_OP_32_BY_KEY = {v: k for k, v in _OP_32.items()}
_LOAD_BY_F3 = {v: k for k, v in _LOAD.items()}
_STORE_BY_F3 = {v: k for k, v in _STORE.items()}
_BRANCH_BY_F3 = {v: k for k, v in _BRANCH.items()}
_CSR_BY_F3 = {v: k for k, v in _CSR.items()}
_CUSTOM_BY_F3 = {v: k for k, v in _CUSTOM.items()}


def _make(mnemonic: str, word: int, **fields) -> Instruction:
    return Instruction(mnemonic, instruction_class(mnemonic), word=word, **fields)


def decode(word: int) -> Instruction:
    """Decode a 32-bit word; raises :class:`EncodingError` if illegal."""
    opcode = word & 0x7F
    rd = word >> 7 & 0x1F
    f3 = word >> 12 & 0x7
    rs1 = word >> 15 & 0x1F
    rs2 = word >> 20 & 0x1F
    f7 = word >> 25 & 0x7F

    if opcode == OPCODE_OP_IMM:
        if f3 in (1, 5):
            f6 = word >> 26 & 0x3F
            shamt = word >> 20 & 0x3F
            if f3 == 1 and f6 == 0:
                return _make("slli", word, rd=rd, rs1=rs1, imm=shamt)
            if f3 == 5 and f6 == 0:
                return _make("srli", word, rd=rd, rs1=rs1, imm=shamt)
            if f3 == 5 and f6 == 0x10:
                return _make("srai", word, rd=rd, rs1=rs1, imm=shamt)
            raise EncodingError("bad shift encoding 0x%08x" % word)
        mnemonic = _OP_IMM_BY_F3.get(f3)
        if mnemonic is None:
            raise EncodingError("bad OP-IMM funct3 %d" % f3)
        return _make(mnemonic, word, rd=rd, rs1=rs1, imm=sign_extend(word >> 20, 12))
    if opcode == OPCODE_OP:
        mnemonic = _OP_BY_KEY.get((f3, f7))
        if mnemonic is None:
            raise EncodingError("bad OP encoding 0x%08x" % word)
        return _make(mnemonic, word, rd=rd, rs1=rs1, rs2=rs2)
    if opcode == OPCODE_OP_32:
        mnemonic = _OP_32_BY_KEY.get((f3, f7))
        if mnemonic is None:
            raise EncodingError("bad OP-32 encoding 0x%08x" % word)
        return _make(mnemonic, word, rd=rd, rs1=rs1, rs2=rs2)
    if opcode == OPCODE_OP_IMM_32:
        if f3 == 0:
            return _make("addiw", word, rd=rd, rs1=rs1, imm=sign_extend(word >> 20, 12))
        shamt = word >> 20 & 0x1F
        f7w = word >> 25 & 0x7F
        for mnemonic, (mf3, mf7) in _OP_IMM_32_SHIFT.items():
            if f3 == mf3 and f7w == mf7:
                return _make(mnemonic, word, rd=rd, rs1=rs1, imm=shamt)
        raise EncodingError("bad OP-IMM-32 encoding 0x%08x" % word)
    if opcode == OPCODE_LOAD:
        mnemonic = _LOAD_BY_F3.get(f3)
        if mnemonic is None:
            raise EncodingError("bad LOAD funct3 %d" % f3)
        return _make(mnemonic, word, rd=rd, rs1=rs1, imm=sign_extend(word >> 20, 12))
    if opcode == OPCODE_STORE:
        mnemonic = _STORE_BY_F3.get(f3)
        if mnemonic is None:
            raise EncodingError("bad STORE funct3 %d" % f3)
        imm = (word >> 25) << 5 | rd
        return _make(mnemonic, word, rs1=rs1, rs2=rs2, imm=sign_extend(imm, 12))
    if opcode == OPCODE_BRANCH:
        mnemonic = _BRANCH_BY_F3.get(f3)
        if mnemonic is None:
            raise EncodingError("bad BRANCH funct3 %d" % f3)
        imm = (
            (word >> 31 & 1) << 12 | (word >> 7 & 1) << 11
            | (word >> 25 & 0x3F) << 5 | (word >> 8 & 0xF) << 1
        )
        return _make(mnemonic, word, rs1=rs1, rs2=rs2, imm=sign_extend(imm, 13))
    if opcode == OPCODE_LUI:
        return _make("lui", word, rd=rd, imm=sign_extend(word & 0xFFFFF000, 32))
    if opcode == OPCODE_AUIPC:
        return _make("auipc", word, rd=rd, imm=sign_extend(word & 0xFFFFF000, 32))
    if opcode == OPCODE_JAL:
        imm = (
            (word >> 31 & 1) << 20 | (word >> 12 & 0xFF) << 12
            | (word >> 20 & 1) << 11 | (word >> 21 & 0x3FF) << 1
        )
        return _make("jal", word, rd=rd, imm=sign_extend(imm, 21))
    if opcode == OPCODE_JALR:
        if f3 != 0:
            raise EncodingError("bad JALR funct3 %d" % f3)
        return _make("jalr", word, rd=rd, rs1=rs1, imm=sign_extend(word >> 20, 12))
    if opcode == OPCODE_MISC_MEM:
        if f3 == 0:
            return _make("fence", word)
        if f3 == 1:
            return _make("fence.i", word)
        raise EncodingError("bad MISC-MEM funct3 %d" % f3)
    if opcode == OPCODE_SYSTEM:
        if f3 == 0:
            imm12 = word >> 20 & 0xFFF
            if f7 == 0x09:
                return _make("sfence.vma", word, rs1=rs1, rs2=rs2)
            if imm12 == 0:
                return _make("ecall", word)
            if imm12 == 1:
                return _make("ebreak", word)
            if imm12 == 0x102:
                return _make("sret", word)
            if imm12 == 0x302:
                return _make("mret", word)
            if imm12 == 0x105:
                return _make("wfi", word)
            raise EncodingError("bad SYSTEM encoding 0x%08x" % word)
        mnemonic = _CSR_BY_F3.get(f3)
        if mnemonic is None:
            raise EncodingError("bad CSR funct3 %d" % f3)
        return _make(mnemonic, word, rd=rd, rs1=rs1, csr=word >> 20 & 0xFFF)
    if opcode == OPCODE_CUSTOM0:
        mnemonic = _CUSTOM_BY_F3.get(f3)
        if mnemonic is None or f7 != 0:
            raise EncodingError("bad custom-0 encoding 0x%08x" % word)
        return _make(mnemonic, word, rd=rd, rs1=rs1, rs2=rs2)
    raise EncodingError("unknown opcode 0x%02x (word 0x%08x)" % (opcode, word))
