"""RISC-V instruction classes and CSRs known to ISA-Grid.

The HPT's instruction bitmap is indexed by *instruction type*, derived
from the opcode (Section 4.1).  For the RV64 prototype we group the base
ISA the way the Rocket prototype does: all general-computation opcodes
in a handful of always-granted classes, and every system-level opcode in
its own class so domains can be granted them individually.

The CSR list covers the supervisor-mode registers the decomposed kernel
touches (Section 6.1), machine-mode registers, the user counters, and
the ISA-Grid ``domain``/``pdomain`` registers of Table 2.  ``sstatus``
is the bitwise-controlled register of the RISC-V prototype (Section 7).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.isa_extension import CsrDescriptor, IsaGridIsaMap

# ---------------------------------------------------------------------------
# Instruction classes (instruction-bitmap indices).
# ---------------------------------------------------------------------------
INST_CLASSES: List[str] = [
    "alu",         # OP / OP-IMM / LUI / AUIPC
    "mul",         # M extension
    "load",
    "store",
    "branch",      # conditional branches
    "jump",        # jal / jalr
    "fence",       # fence / fence.i
    "ecall",
    "ebreak",
    "csr",         # csrrw/csrrs/csrrc (+imm) — register check follows
    "sret",
    "mret",
    "wfi",
    "sfence_vma",  # TLB maintenance
    "hccall",
    "hccalls",
    "hcrets",
    "pfch",
    "pflh",
    "halt",        # simulation-only: stop the machine
]

#: Classes every domain doing ordinary computation needs.
BASE_COMPUTE_CLASSES = ("alu", "mul", "load", "store", "branch", "jump", "fence")

#: Gate instructions are executable from every domain (Section 4.2); the
#: decoders route them to the switching engine instead of the bitmap check.
GATE_CLASSES = ("hccall", "hccalls", "hcrets")

# ---------------------------------------------------------------------------
# Control and status registers.
# ---------------------------------------------------------------------------
#: (name, architectural CSR address, min privilege, bitwise?)  Index 0 is
#: reserved so a zero ``pfch`` operand can mean "prefetch everything".
_CSR_TABLE = [
    ("reserved", 0x000, 3, False),
    ("sstatus", 0x100, 1, True),
    ("sie", 0x104, 1, False),
    ("stvec", 0x105, 1, False),
    ("scounteren", 0x106, 1, False),
    ("sscratch", 0x140, 1, False),
    ("sepc", 0x141, 1, False),
    ("scause", 0x142, 1, False),
    ("stval", 0x143, 1, False),
    ("sip", 0x144, 1, False),
    ("satp", 0x180, 1, False),
    ("mstatus", 0x300, 3, False),
    ("medeleg", 0x302, 3, False),
    ("mideleg", 0x303, 3, False),
    ("mie", 0x304, 3, False),
    ("mtvec", 0x305, 3, False),
    ("mscratch", 0x340, 3, False),
    ("mepc", 0x341, 3, False),
    ("mcause", 0x342, 3, False),
    ("mtval", 0x343, 3, False),
    ("mip", 0x344, 3, False),
    ("pmpcfg0", 0x3A0, 3, False),
    ("pmpaddr0", 0x3B0, 3, False),
    ("domain", 0x5C0, 1, False),    # ISA-Grid: current domain id (read-only)
    ("pdomain", 0x5C1, 1, False),   # ISA-Grid: previous domain id (read-only)
    ("hcsp", 0x5C2, 1, False),      # ISA-Grid: trusted stack pointer (Table 2)
    ("hcsb", 0x5C3, 1, False),      # ISA-Grid: trusted stack base
    ("hcsl", 0x5C4, 1, False),      # ISA-Grid: trusted stack limit
    ("cycle", 0xC00, 0, False),
    ("time", 0xC01, 0, False),
    ("instret", 0xC02, 0, False),
    ("mhartid", 0xF14, 3, False),
]

#: CSR name -> architectural address (used by the assembler and CPU).
CSR_ADDRESS: Dict[str, int] = {name: addr for name, addr, _, _ in _CSR_TABLE}

#: architectural address -> bitmap index.
CSR_INDEX_BY_ADDRESS: Dict[int, int] = {
    addr: i for i, (_, addr, _, _) in enumerate(_CSR_TABLE)
}

#: architectural address -> minimum privilege level (0=U, 1=S, 3=M).
CSR_MIN_PRIV: Dict[int, int] = {addr: priv for _, addr, priv, _ in _CSR_TABLE}

#: CSRs that ordinary CSR-write instructions can never modify (the
#: ``domain``/``pdomain`` registers only change through gates, Table 2).
READ_ONLY_CSRS = {CSR_ADDRESS["domain"], CSR_ADDRESS["pdomain"],
                  CSR_ADDRESS["cycle"], CSR_ADDRESS["time"],
                  CSR_ADDRESS["instret"], CSR_ADDRESS["mhartid"]}

#: The ISA-Grid map for the RV64 prototype.
RISCV_ISA_MAP = IsaGridIsaMap(
    "riscv64",
    INST_CLASSES,
    [
        CsrDescriptor(name, index, width=64, bitwise=bitwise)
        for index, (name, _, _, bitwise) in enumerate(_CSR_TABLE)
    ],
)

# ---------------------------------------------------------------------------
# sstatus fields (the bitwise-controlled CSR of the RISC-V prototype).
# ---------------------------------------------------------------------------
SSTATUS_SIE = 1 << 1
SSTATUS_SPIE = 1 << 5
SSTATUS_SPP = 1 << 8
SSTATUS_FS = 0b11 << 13
SSTATUS_SUM = 1 << 18
SSTATUS_MXR = 1 << 19

# ---------------------------------------------------------------------------
# Register names.
# ---------------------------------------------------------------------------
ABI_REGISTERS = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
]

REGISTER_NUMBER: Dict[str, int] = {name: i for i, name in enumerate(ABI_REGISTERS)}
REGISTER_NUMBER.update({"x%d" % i: i for i in range(32)})
REGISTER_NUMBER["fp"] = 8
