"""Tenant-churn workload: Zipf-popular tenants, bursty arrivals.

Conformance fuzzing and the fault campaigns exercise a *fixed* set of
domains; this generator models the deployment the domain-virtualization
layer exists for (DESIGN §3.17): an unbounded stream of short-lived
logical tenants multiplexed over a small physical slot pool, with

* **Zipf-distributed popularity** — a handful of long-lived tenants
  absorb most gate traffic while a long tail is visited once and
  evicted, which is exactly the access pattern that makes LRU slot
  recycling (and its use-after-free hazards) interesting;
* **bursty arrivals** — tenant spawns cluster in bursts, so the slot
  pool saturates in waves and ``slot_exhausted`` backpressure fires for
  real rather than as a contrived corner case;
* **interleaved reconfiguration** — SYS_DCONF-style grant/revoke
  transactions are issued while the core sits *inside* a tenant domain,
  so commit windows finally overlap live check traffic instead of
  always running from a quiesced domain-0.

The generator is pure and deterministic (``random.Random(seed)``), and
speaks only in abstract handles and slot numbers: tenant handles are
dense spawn-order indices, instruction/CSR slots are small ints the
churn campaign maps onto a concrete backend.  It never touches the
core models, so the same op stream drives both lockstep sides.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

#: One privilege probe inside a visit: (inst_slot, csr_slot, read, write).
#: ``csr_slot == -1`` means an instruction-only check; CSR probes always
#: carry a real instruction slot too (biased toward granted ones).
CheckSpec = Tuple[int, int, bool, bool]


@dataclass(frozen=True)
class ChurnOp:
    """One step of a churn campaign.

    ``kind`` is one of:

    ``spawn``
        Create tenant ``tenant`` (handles are dense spawn-order
        indices) with the manifest carried in ``insts`` /
        ``csr_reads`` / ``csr_writes``.
    ``retire``
        Destroy tenant ``tenant``, recycling its slot if bound.
    ``reconfig``
        Apply ``verb`` (``allow_inst`` / ``deny_inst`` / ``grant_csr``
        / ``revoke_csr`` / ``seal``) to tenant ``tenant`` — issued from wherever
        the core currently sits, overlapping gate traffic.
    ``visit``
        Activate ``tenant`` (binding a slot, possibly evicting),
        ``hccalls`` into it, retire the probes in ``checks``, and
        ``hcrets`` home.
    ``migrate``
        Re-home the workload: activate ``tenant`` and ``hccall`` the
        core into it; subsequent ops run from there.
    ``check``
        Retire the probes in ``checks`` without leaving the current
        home domain.
    """

    kind: str
    tenant: int = -1
    verb: str = ""
    inst: int = -1
    csr: int = -1
    read: bool = False
    write: bool = False
    insts: Tuple[int, ...] = ()
    csr_reads: Tuple[int, ...] = ()
    csr_writes: Tuple[int, ...] = ()
    checks: Tuple[CheckSpec, ...] = ()


@dataclass
class ChurnTrace:
    """The generated op stream plus its bookkeeping totals."""

    ops: List[ChurnOp] = field(default_factory=list)
    spawned: int = 0
    retired: int = 0
    visits: int = 0
    reconfigs: int = 0
    migrations: int = 0


class TenantChurnGenerator:
    """Deterministic churn-op stream over abstract tenant handles."""

    def __init__(
        self,
        seed: int,
        n_inst_slots: int,
        n_csr_slots: int,
        *,
        zipf_s: float = 1.1,
        burst_chance: float = 0.05,
        burst_lo: int = 6,
        burst_hi: int = 18,
    ):
        self.rng = random.Random(seed)
        self.n_inst_slots = n_inst_slots
        self.n_csr_slots = n_csr_slots
        self.zipf_s = zipf_s
        self.burst_chance = burst_chance
        self.burst_lo = burst_lo
        self.burst_hi = burst_hi
        #: alive tenant handles, in spawn order (rank == popularity rank)
        self.alive: List[int] = []
        #: handle -> manifest mirror, for drawing granted-vs-probe checks
        self.manifests: Dict[int, Tuple[Set[int], Set[int], Set[int]]] = {}
        self.home = -1
        self._next_handle = 0

    # ------------------------------------------------------------------
    def generate(self, n_ops: int) -> ChurnTrace:
        trace = ChurnTrace()
        # Seed the world: a home tenant (entered via migrate) plus a
        # small starting population so early visits have targets.
        self._spawn(trace, rich=True)
        trace.ops.append(ChurnOp(kind="migrate", tenant=self.home))
        trace.migrations += 1
        for _ in range(3):
            self._spawn(trace)
        while len(trace.ops) < n_ops:
            roll = self.rng.random()
            if roll < self.burst_chance:
                for _ in range(self.rng.randrange(self.burst_lo, self.burst_hi)):
                    if len(trace.ops) >= n_ops:
                        break
                    self._spawn(trace)
            elif roll < 0.23:
                self._spawn(trace)
            elif roll < 0.40:
                self._retire(trace)
            elif roll < 0.55:
                self._reconfig(trace)
            elif roll < 0.60:
                self._migrate(trace)
            elif roll < 0.72:
                self._home_check(trace)
            else:
                self._visit(trace)
        del trace.ops[n_ops:]
        return trace

    # ------------------------------------------------------------------
    def _zipf_pick(self) -> int:
        """Pick an alive handle, rank-weighted: earlier spawns dominate."""
        weights = [1.0 / (rank + 1) ** self.zipf_s for rank in range(len(self.alive))]
        point = self.rng.random() * sum(weights)
        for handle, weight in zip(self.alive, weights):
            point -= weight
            if point <= 0:
                return handle
        return self.alive[-1]

    def _draw_manifest(self, rich: bool) -> Tuple[Set[int], Set[int], Set[int]]:
        rng = self.rng
        n_inst = rng.randrange(2, self.n_inst_slots) if rich else rng.randrange(
            1, max(2, self.n_inst_slots // 2) + 1
        )
        insts = set(rng.sample(range(self.n_inst_slots), n_inst))
        reads: Set[int] = set()
        writes: Set[int] = set()
        for slot in range(self.n_csr_slots):
            roll = rng.random()
            if roll < 0.25:
                reads.add(slot)
            elif roll < 0.40:
                reads.add(slot)
                writes.add(slot)
        return insts, reads, writes

    def _spawn(self, trace: ChurnTrace, rich: bool = False) -> None:
        handle = self._next_handle
        self._next_handle += 1
        manifest = self._draw_manifest(rich)
        self.manifests[handle] = manifest
        self.alive.append(handle)
        if self.home < 0:
            self.home = handle
        insts, reads, writes = manifest
        trace.ops.append(
            ChurnOp(
                kind="spawn",
                tenant=handle,
                insts=tuple(sorted(insts)),
                csr_reads=tuple(sorted(reads)),
                csr_writes=tuple(sorted(writes)),
            )
        )
        trace.spawned += 1

    def _retire(self, trace: ChurnTrace) -> None:
        victims = [h for h in self.alive if h != self.home]
        if not victims:
            return
        # Retire from the unpopular tail half, biasing churn toward the
        # short-lived tenants the Zipf head never was.
        tail = victims[len(victims) // 2 :]
        handle = self.rng.choice(tail)
        self.alive.remove(handle)
        del self.manifests[handle]
        trace.ops.append(ChurnOp(kind="retire", tenant=handle))
        trace.retired += 1

    def _reconfig(self, trace: ChurnTrace) -> None:
        handle = self._zipf_pick()
        insts, reads, writes = self.manifests[handle]
        rng = self.rng
        verb = rng.choice(("allow_inst", "deny_inst", "grant_csr",
                           "revoke_csr", "seal"))
        if verb == "allow_inst":
            slot = rng.randrange(self.n_inst_slots)
            insts.add(slot)
            op = ChurnOp(kind="reconfig", tenant=handle, verb=verb, inst=slot)
        elif verb == "deny_inst":
            if not insts:
                return
            slot = rng.choice(sorted(insts))
            insts.discard(slot)
            op = ChurnOp(kind="reconfig", tenant=handle, verb=verb, inst=slot)
        elif verb == "grant_csr":
            slot = rng.randrange(self.n_csr_slots)
            read, write = True, rng.random() < 0.5
            reads.add(slot)
            if write:
                writes.add(slot)
            op = ChurnOp(
                kind="reconfig", tenant=handle, verb=verb, csr=slot,
                read=read, write=write,
            )
        elif verb == "revoke_csr":
            if not reads:
                return
            slot = rng.choice(sorted(reads))
            reads.discard(slot)
            writes.discard(slot)
            op = ChurnOp(
                kind="reconfig", tenant=handle, verb=verb, csr=slot,
                read=True, write=True,
            )
        else:  # seal: drop the privilege from the mirror too — it is
            # gone for this slot incarnation, so checks bias away.
            if insts and rng.random() < 0.6:
                slot = rng.choice(sorted(insts))
                insts.discard(slot)
                op = ChurnOp(kind="reconfig", tenant=handle, verb=verb,
                             inst=slot)
            elif reads:
                slot = rng.choice(sorted(reads))
                reads.discard(slot)
                writes.discard(slot)
                op = ChurnOp(kind="reconfig", tenant=handle, verb=verb,
                             csr=slot, read=True, write=True)
            else:
                return
        trace.ops.append(op)
        trace.reconfigs += 1

    def _draw_checks(self, handle: int) -> Tuple[CheckSpec, ...]:
        insts, reads, writes = self.manifests[handle]
        rng = self.rng
        checks: List[CheckSpec] = []
        for _ in range(rng.randrange(2, 7)):
            if rng.random() < 0.6:
                # Instruction check; ~1/4 of them probe an ungranted slot.
                probe = rng.random() < 0.25
                pool = (
                    sorted(set(range(self.n_inst_slots)) - insts)
                    if probe
                    else sorted(insts)
                )
                if not pool:
                    pool = list(range(self.n_inst_slots))
                checks.append((rng.choice(pool), -1, False, False))
            else:
                # CSR probe riding on a (usually granted) instruction,
                # so the CSR verdict — not an inst fault — decides it.
                inst = rng.choice(sorted(insts)) if insts else \
                    rng.randrange(self.n_inst_slots)
                slot = rng.randrange(self.n_csr_slots)
                write = rng.random() < 0.4
                checks.append((inst, slot, not write, write))
        return tuple(checks)

    def _visit(self, trace: ChurnTrace) -> None:
        handle = self._zipf_pick()
        if handle == self.home:
            self._home_check(trace)
            return
        trace.ops.append(
            ChurnOp(kind="visit", tenant=handle, checks=self._draw_checks(handle))
        )
        trace.visits += 1

    def _home_check(self, trace: ChurnTrace) -> None:
        trace.ops.append(
            ChurnOp(kind="check", tenant=self.home, checks=self._draw_checks(self.home))
        )

    def _migrate(self, trace: ChurnTrace) -> None:
        candidates = [h for h in self.alive if h != self.home]
        if not candidates:
            return
        handle = self.rng.choice(candidates[: max(1, len(candidates) // 3)])
        self.home = handle
        trace.ops.append(ChurnOp(kind="migrate", tenant=handle))
        trace.migrations += 1


def generate_churn_ops(
    seed: int, n_ops: int, n_inst_slots: int, n_csr_slots: int
) -> ChurnTrace:
    """Convenience wrapper used by the churn campaign."""
    generator = TenantChurnGenerator(seed, n_inst_slots, n_csr_slots)
    return generator.generate(n_ops)
