"""LMbench-style microbenchmarks (Figure 5 and Table 4 substrate).

Each microbenchmark is a tight user-mode loop around one kernel
operation, the way ``lat_syscall``/``lat_sig``/``lat_select`` work.
The runner executes the loop on a booted MiniKernel and reports cycles
per operation; Figure 5 normalizes decomposed-kernel times against the
native kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.kernel.syscalls import (
    SYS_CLOSE,
    SYS_DUP,
    SYS_EXIT,
    SYS_FSTAT,
    SYS_GETPID,
    SYS_GETTIME,
    SYS_MMAP,
    SYS_OPEN,
    SYS_READ,
    SYS_SELECT,
    SYS_SIGACTION,
    SYS_STAT,
    SYS_WRITE,
    SYS_YIELD,
)
from repro.riscv import USER_BASE as RISCV_USER_BASE
from repro.riscv import assemble as riscv_assemble
from repro.x86 import USER_BASE as X86_USER_BASE
from repro.x86 import USER_STACK_TOP
from repro.x86 import assemble as x86_assemble


@dataclass(frozen=True)
class MicroBenchmark:
    """One LMbench-style operation: a sequence of syscalls per iteration."""

    name: str
    syscalls: Sequence[Tuple[int, int, int]]
    iterations: int = 400


#: The Figure-5 benchmark set.
LMBENCH_SUITE: List[MicroBenchmark] = [
    MicroBenchmark("lat_null", ((SYS_GETPID, 0, 0),)),
    MicroBenchmark("lat_read", ((SYS_READ, 0x620000, 64),)),
    MicroBenchmark("lat_write", ((SYS_WRITE, 0x620000, 64),)),
    MicroBenchmark("lat_stat", ((SYS_STAT, 0, 0),)),
    MicroBenchmark("lat_fstat", ((SYS_FSTAT, 0, 0),)),
    MicroBenchmark("lat_openclose", ((SYS_OPEN, 0xABCD, 0), (SYS_CLOSE, 3, 0)), 250),
    MicroBenchmark("lat_sig_install", ((SYS_SIGACTION, 5, 0x620100),)),
    MicroBenchmark("lat_select", ((SYS_SELECT, 0, 0),)),
    MicroBenchmark("lat_mmap", ((SYS_MMAP, 0x5000, 0),), 250),
    MicroBenchmark("lat_ctx", ((SYS_YIELD, 0, 0),)),
    MicroBenchmark("lat_dup", ((SYS_DUP, 3, 0),)),
    MicroBenchmark("lat_gettime", ((SYS_GETTIME, 0, 0),)),
]


def riscv_loop_source(bench: MicroBenchmark) -> str:
    lines = [
        "user_entry:",
        "    li sp, 0x6f0000",
        "    li s2, %d" % bench.iterations,
        "outer:",
    ]
    for number, arg0, arg1 in bench.syscalls:
        lines += [
            "    li a7, %d" % number,
            "    li a0, %d" % arg0,
            "    li a1, %d" % arg1,
            "    ecall",
        ]
    lines += [
        "    addi s2, s2, -1",
        "    bnez s2, outer",
        "    li a7, %d" % SYS_EXIT,
        "    li a0, 0",
        "    ecall",
    ]
    return "\n".join(lines) + "\n"


def x86_loop_source(bench: MicroBenchmark) -> str:
    lines = [
        "user_entry:",
        "    mov rsp, %d" % USER_STACK_TOP,
        "    mov r12, %d" % bench.iterations,
        "outer:",
    ]
    for number, arg0, arg1 in bench.syscalls:
        lines += [
            "    mov rax, %d" % number,
            "    mov rdi, %d" % arg0,
            "    mov rsi, %d" % arg1,
            "    syscall",
        ]
    lines += [
        "    sub r12, 1",
        "    jne outer",
        "    mov rax, %d" % SYS_EXIT,
        "    mov rdi, 0",
        "    syscall",
    ]
    return "\n".join(lines) + "\n"


def run_riscv(bench: MicroBenchmark, kernel, max_steps: int = 3_000_000) -> float:
    """Cycles per operation on a booted :class:`RiscvKernel`."""
    program = riscv_assemble(riscv_loop_source(bench), base=RISCV_USER_BASE)
    stats = kernel.run(program, max_steps=max_steps)
    return stats.cycles / bench.iterations


def run_x86(bench: MicroBenchmark, kernel, max_steps: int = 3_000_000) -> float:
    """Cycles per operation on a booted :class:`X86Kernel`."""
    program = x86_assemble(x86_loop_source(bench), base=X86_USER_BASE)
    stats = kernel.run(program, max_steps=max_steps)
    return stats.cycles / bench.iterations


def benchmark_by_name(name: str) -> MicroBenchmark:
    for bench in LMBENCH_SUITE:
        if bench.name == name:
            return bench
    raise KeyError("unknown LMbench benchmark %r" % name)
