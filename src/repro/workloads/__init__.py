"""Synthetic workloads: LMbench microbenchmarks, application profiles
and the multi-tenant churn generator."""

from .apps import AppRunResult, normalized_time, run_riscv_app, run_x86_app
from .tenant_churn import (
    ChurnOp,
    ChurnTrace,
    TenantChurnGenerator,
    generate_churn_ops,
)
from .generator import (
    USER_BUFFER,
    riscv_user_program,
    riscv_user_source,
    x86_user_program,
    x86_user_source,
)
from .lmbench import (
    LMBENCH_SUITE,
    MicroBenchmark,
    benchmark_by_name,
    riscv_loop_source,
    run_riscv,
    run_x86,
    x86_loop_source,
)
from .profiles import (
    APPLICATIONS,
    GATE_STRESS,
    GZIP,
    MBEDTLS,
    SQLITE,
    TAR,
    WorkloadProfile,
)

__all__ = [
    "APPLICATIONS",
    "AppRunResult",
    "ChurnOp",
    "ChurnTrace",
    "GATE_STRESS",
    "GZIP",
    "LMBENCH_SUITE",
    "MBEDTLS",
    "MicroBenchmark",
    "TenantChurnGenerator",
    "SQLITE",
    "TAR",
    "USER_BUFFER",
    "WorkloadProfile",
    "benchmark_by_name",
    "generate_churn_ops",
    "normalized_time",
    "riscv_loop_source",
    "riscv_user_program",
    "riscv_user_source",
    "run_riscv",
    "run_riscv_app",
    "run_x86",
    "run_x86_app",
    "x86_loop_source",
    "x86_user_program",
    "x86_user_source",
]
