"""Workload profiles: instruction mix + syscall density descriptors.

ISA-Grid's runtime overhead is a function of how often the kernel
crosses ISA domains and touches privileged registers per unit of user
computation.  Real applications cannot run on the functional subset
simulators, so each paper workload is modelled by a profile that
reproduces its *syscall-density shape*:

* **SQLite speed benchmark** — storage-engine style: hashing and
  B-tree-ish pointer chasing with regular read/write/open syscalls.
* **Mbedtls benchmark** — cryptographic kernels: very heavy ALU/MUL,
  almost no syscalls.
* **gzip (kernel image)** — compression: byte crunching over a large
  buffer, periodic read/write.
* **tar (source tree)** — archival: per-file open/stat/read/write/close
  bursts, metadata heavy.

The LMbench microbenchmarks are separate (see ``lmbench.py``): each is
a tight loop around one kernel operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.kernel.syscalls import (
    SYS_CLOSE,
    SYS_GETPID,
    SYS_GETTIME,
    SYS_MMAP,
    SYS_OPEN,
    SYS_READ,
    SYS_SELECT,
    SYS_SIGACTION,
    SYS_STAT,
    SYS_WRITE,
    SYS_YIELD,
)

#: One syscall in a profile's per-iteration schedule: (number, arg0, arg1).
SyscallSpec = Tuple[int, int, int]


@dataclass(frozen=True)
class WorkloadProfile:
    """A deterministic synthetic workload description.

    Attributes
    ----------
    name:
        Report label.
    outer_iterations:
        Number of outer-loop iterations.
    compute_ops:
        Instructions in the generated compute block per iteration.
    mix:
        Weights for the compute block: alu / mul / load / store / branch.
    working_set:
        Bytes of user buffer the load/store stream walks over (cache
        behaviour knob).
    syscalls:
        Syscalls issued each iteration, in order.
    seed:
        Generator seed (the block is deterministic given the seed).
    """

    name: str
    outer_iterations: int
    compute_ops: int
    mix: Dict[str, float]
    working_set: int
    syscalls: Sequence[SyscallSpec] = ()
    seed: int = 7

    @property
    def approx_instructions(self) -> int:
        """Rough dynamic instruction count (for budget sanity checks)."""
        per_iter = self.compute_ops + 80 * len(self.syscalls) + 4
        return self.outer_iterations * per_iter


SQLITE = WorkloadProfile(
    name="SQLite",
    outer_iterations=220,
    compute_ops=260,
    mix={"alu": 0.42, "mul": 0.04, "load": 0.26, "store": 0.18, "branch": 0.10},
    working_set=96 * 1024,
    syscalls=(
        (SYS_OPEN, 0x1234, 0),
        (SYS_READ, 0, 128),
        (SYS_WRITE, 0, 128),
        (SYS_READ, 0, 64),
        (SYS_CLOSE, 3, 0),
    ),
    seed=11,
)

MBEDTLS = WorkloadProfile(
    name="Mbedtls",
    outer_iterations=140,
    compute_ops=700,
    mix={"alu": 0.58, "mul": 0.22, "load": 0.08, "store": 0.06, "branch": 0.06},
    working_set=8 * 1024,
    syscalls=((SYS_GETTIME, 0, 0),),
    seed=23,
)

GZIP = WorkloadProfile(
    name="gzip",
    outer_iterations=170,
    compute_ops=420,
    mix={"alu": 0.40, "mul": 0.02, "load": 0.28, "store": 0.22, "branch": 0.08},
    working_set=256 * 1024,
    syscalls=(
        (SYS_READ, 0, 248),
        (SYS_WRITE, 0, 248),
    ),
    seed=31,
)

TAR = WorkloadProfile(
    name="tar",
    outer_iterations=150,
    compute_ops=180,
    mix={"alu": 0.38, "mul": 0.02, "load": 0.28, "store": 0.22, "branch": 0.10},
    working_set=128 * 1024,
    syscalls=(
        (SYS_OPEN, 0x77AA, 0),
        (SYS_STAT, 0, 0),
        (SYS_READ, 0, 248),
        (SYS_WRITE, 0, 248),
        (SYS_CLOSE, 2, 0),
    ),
    seed=43,
)

#: The application set of Figures 6 and 7.
APPLICATIONS: List[WorkloadProfile] = [SQLITE, MBEDTLS, GZIP, TAR]


def scaled(profile: WorkloadProfile, factor: int) -> WorkloadProfile:
    """The same workload, ``factor`` times longer (for measurement runs
    where one-time cold costs must not dominate)."""
    import dataclasses

    return dataclasses.replace(
        profile, outer_iterations=profile.outer_iterations * factor
    )

#: A syscall-stressing profile used by the cache-hit-rate experiment:
#: exercises every gated kernel path so all privilege caches see traffic.
GATE_STRESS = WorkloadProfile(
    name="gate-stress",
    outer_iterations=300,
    compute_ops=60,
    mix={"alu": 0.5, "mul": 0.05, "load": 0.2, "store": 0.15, "branch": 0.10},
    working_set=16 * 1024,
    syscalls=(
        (SYS_MMAP, 0x5000, 0),
        (SYS_SIGACTION, 3, 0x400500),
        (SYS_YIELD, 0, 0),
        (SYS_GETPID, 0, 0),
        (SYS_SELECT, 0, 0),
    ),
    seed=5,
)
