"""Deterministic user-program synthesis from a workload profile.

Given a :class:`~repro.workloads.profiles.WorkloadProfile`, the
generators emit an assembly program for either architecture: an outer
loop whose body is a seeded-random compute block (ALU/MUL/load/store/
branch in the profile's proportions, walking the profile's working set)
followed by the profile's syscall schedule, terminated by ``SYS_EXIT``.

The same seed always yields the same program, so native-vs-decomposed
comparisons run identical instruction streams.
"""

from __future__ import annotations

import random
from typing import List

from repro.kernel.syscalls import SYS_EXIT
from repro.riscv import USER_BASE as RISCV_USER_BASE
from repro.riscv import assemble as riscv_assemble
from repro.riscv.assembler import Program as RiscvProgram
from repro.x86 import USER_BASE as X86_USER_BASE
from repro.x86 import USER_STACK_TOP
from repro.x86 import assemble as x86_assemble
from repro.x86.assembler import Program as X86Program

from .profiles import WorkloadProfile

#: User scratch buffer base (shared by both memory maps).
USER_BUFFER = 0x0062_0000


def _pick_ops(profile: WorkloadProfile) -> List[str]:
    rng = random.Random(profile.seed)
    kinds = list(profile.mix)
    weights = [profile.mix[k] for k in kinds]
    return rng.choices(kinds, weights=weights, k=profile.compute_ops)


def _offsets(profile: WorkloadProfile, count: int) -> List[int]:
    """Deterministic stream of 8-aligned offsets inside the working set."""
    rng = random.Random(profile.seed ^ 0xBEEF)
    span = max(8, profile.working_set - 8)
    return [rng.randrange(0, span // 8) * 8 for _ in range(count)]


# ---------------------------------------------------------------------------
# RISC-V
# ---------------------------------------------------------------------------
def riscv_user_source(profile: WorkloadProfile) -> str:
    """Generate RISC-V user-mode assembly for a profile."""
    ops = _pick_ops(profile)
    offsets = iter(_offsets(profile, profile.compute_ops))
    lines: List[str] = []
    emit = lines.append
    emit("user_entry:")
    emit("    li sp, 0x6f0000")
    emit("    li s1, %d" % USER_BUFFER)
    emit("    li s2, %d" % profile.outer_iterations)
    emit("    li s3, 0")
    emit("    li t4, 12345")
    emit("    li t5, 777")
    emit("outer:")
    branch_id = 0
    for op in ops:
        if op == "alu":
            emit("    add t4, t4, t5")
            continue
        if op == "mul":
            emit("    mul t5, t5, t4")
            continue
        offset = next(offsets)
        if offset >= 2048:
            # Out of I-immediate range: form the address explicitly.
            emit("    li t6, %d" % offset)
            emit("    add t6, s1, t6")
            if op == "load":
                emit("    ld t4, 0(t6)")
            elif op == "store":
                emit("    sd t5, 0(t6)")
            else:
                emit("    andi t6, t4, 1")
                emit("    beqz t6, wskip_%d" % branch_id)
                emit("    addi s3, s3, 1")
                emit("wskip_%d:" % branch_id)
                branch_id += 1
            continue
        if op == "load":
            emit("    ld t4, %d(s1)" % offset)
        elif op == "store":
            emit("    sd t5, %d(s1)" % offset)
        else:  # branch
            emit("    andi t6, t4, 1")
            emit("    beqz t6, wskip_%d" % branch_id)
            emit("    addi s3, s3, 1")
            emit("wskip_%d:" % branch_id)
            branch_id += 1
    for number, arg0, arg1 in profile.syscalls:
        emit("    li a7, %d" % number)
        emit("    li a0, %d" % arg0)
        emit("    li a1, %d" % arg1)
        emit("    ecall")
    emit("    addi s2, s2, -1")
    emit("    bnez s2, outer_far")
    emit("    li a7, %d" % SYS_EXIT)
    emit("    li a0, 0")
    emit("    ecall")
    # Trampoline for loop bodies larger than the B-type branch range.
    emit("outer_far:")
    emit("    j outer")
    return "\n".join(lines) + "\n"


def riscv_user_program(profile: WorkloadProfile) -> RiscvProgram:
    return riscv_assemble(riscv_user_source(profile), base=RISCV_USER_BASE)


# ---------------------------------------------------------------------------
# x86
# ---------------------------------------------------------------------------
def x86_user_source(profile: WorkloadProfile) -> str:
    """Generate x86 ring-3 assembly for a profile."""
    ops = _pick_ops(profile)
    offsets = iter(_offsets(profile, profile.compute_ops))
    lines: List[str] = []
    emit = lines.append
    emit("user_entry:")
    emit("    mov rsp, %d" % USER_STACK_TOP)
    emit("    mov r13, %d" % USER_BUFFER)
    emit("    mov r12, %d" % profile.outer_iterations)
    emit("    mov r14, 12345")
    emit("    mov r15, 777")
    emit("outer:")
    branch_id = 0
    for op in ops:
        if op == "alu":
            emit("    add r14, r15")
            continue
        if op == "mul":
            emit("    add r15, r14")
            emit("    shl r15, 1")
            continue
        offset = next(offsets)
        if op == "load":
            emit("    mov r14, [r13+%d]" % offset)
        elif op == "store":
            emit("    mov [r13+%d], r15" % offset)
        else:  # branch
            emit("    mov rbx, r14")
            emit("    and rbx, 1")
            emit("    je wskip_%d" % branch_id)
            emit("    add r15, 1")
            emit("wskip_%d:" % branch_id)
            branch_id += 1
    for number, arg0, arg1 in profile.syscalls:
        emit("    mov rax, %d" % number)
        emit("    mov rdi, %d" % arg0)
        emit("    mov rsi, %d" % arg1)
        emit("    syscall")
    emit("    sub r12, 1")
    emit("    jne outer")
    emit("    mov rax, %d" % SYS_EXIT)
    emit("    mov rdi, 0")
    emit("    syscall")
    return "\n".join(lines) + "\n"


def x86_user_program(profile: WorkloadProfile) -> X86Program:
    return x86_assemble(x86_user_source(profile), base=X86_USER_BASE)
