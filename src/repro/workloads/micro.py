"""Latency microbenchmarks (Table 4).

Methodology matches the paper's: tight loops around the operation under
test, minus an identical loop with the operation replaced by ``nop``,
divided by the iteration count.  Gates loop by registering each gate's
destination as its own fall-through instruction (a domain can legally
switch to itself).

Single-instruction latencies for ``hccalls``/``hcrets`` cannot be
isolated by differencing (they must balance the trusted stack), so the
loop measures the *pair* — which is exactly the paper's "X-domain call"
row — and :func:`instruction_latencies` additionally reports the
per-instruction costs straight from the pipeline model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core import CONFIG_8E, PcuConfig
from repro.core.isa_extension import GateKind
from repro.kernel.riscv_kernel import RiscvKernel
from repro.riscv import KERNEL_BASE as RISCV_KERNEL_BASE
from repro.riscv import USER_BASE as RISCV_USER_BASE
from repro.riscv import assemble as riscv_assemble
from repro.riscv import build_riscv_system
from repro.sim.pipeline import StepInfo
from repro.x86 import KERNEL_BASE as X86_KERNEL_BASE
from repro.x86 import assemble as x86_assemble
from repro.x86 import build_x86_system

#: Literature comparison rows quoted in Table 4 (cycles).
LITERATURE_ROWS = {
    "CHERI cross-domain (CHERI MIPS)": 400,
    "Donky memory-permission switch (Ariane)": 2136,
    "Empty VM call (virtualization trap)": 1700,
}

_RISCV_GATE_LOOP = """
entry:
    li t0, 0
g_d0:
    hccall t0
bench_start:
    li t0, 1
    li s2, %(iters)d
loop:
%(body)s
    addi s2, s2, -1
    bnez s2, loop
    halt
%(tail)s
"""


def _riscv_loop_cycles(
    body: str, gates, iterations: int, config: PcuConfig, tail: str = "",
    totals: Dict[str, float] = None,
) -> float:
    """Cycles of one RISC-V loop; ``gates`` = [(gate_label, dest_label)].

    The preamble gate (id 0) leaves domain-0 so the measured gates run
    between ordinary domains; body gates get ids 1, 2, ...  When
    ``totals`` is passed, the run's instruction and cycle counts are
    accumulated into it (the bench trajectory needs work totals, not
    just latency deltas).
    """
    system = build_riscv_system(config)
    manager = system.manager
    domain = manager.create_domain("bench")
    manager.allow_all_instructions(domain.domain_id)
    manager.allocate_trusted_stack(frames=16)
    source = _RISCV_GATE_LOOP % {"iters": iterations, "body": body, "tail": tail}
    program = riscv_assemble(source, base=RISCV_KERNEL_BASE)
    system.load(program)
    manager.register_gate(
        program.symbol("g_d0"), program.symbol("bench_start"), domain.domain_id
    )
    for gate_label, dest_label in gates:
        manager.register_gate(
            program.symbol(gate_label), program.symbol(dest_label), domain.domain_id
        )
    system.run(program.symbol("entry"), max_steps=60 * iterations + 1000)
    stats = system.machine.stats
    if totals is not None:
        totals["instructions"] = totals.get("instructions", 0) + stats.instructions
        totals["cycles"] = totals.get("cycles", 0.0) + stats.cycles
    return stats.cycles


def measure_riscv_gates(
    config: PcuConfig = CONFIG_8E, iterations: int = 2000,
    totals: Dict[str, float] = None,
) -> Dict[str, float]:
    """Measured RISC-V gate latencies (Table 4 rows, cycles/op)."""
    baseline = _riscv_loop_cycles("    nop", [], iterations, config,
                                  totals=totals)
    hccall = _riscv_loop_cycles(
        "g0:\n    hccall t0\nafter0:", [("g0", "after0")], iterations, config,
        totals=totals,
    )
    pair = _riscv_loop_cycles(
        "g0:\n    hccalls t0\nafter0:",
        [("g0", "fn")], iterations, config,
        tail="fn:\n    hcrets",
        totals=totals,
    )
    two_hccall = _riscv_loop_cycles(
        "g0:\n    hccall t0\nmid:\n    li t1, 2\ng1:\n    hccall t1\nafter1:",
        [("g0", "mid"), ("g1", "after1")], iterations, config,
        totals=totals,
    )
    two_baseline = _riscv_loop_cycles(
        "    nop\n    li t1, 2\n    nop", [], iterations, config,
        totals=totals,
    )
    return {
        "hccall": (hccall - baseline) / iterations,
        "hccalls+hcrets": (pair - baseline) / iterations,
        "xdomain_two_hccall": (two_hccall - two_baseline) / iterations,
    }


_X86_GATE_LOOP = """
entry:
    mov rsp, 0x6e0000
    mov r10, 0
g_d0:
    hccall r10
bench_start:
    mov r10, 1
    mov r12, %(iters)d
loop:
%(body)s
    sub r12, 1
    jne loop
    hlt
%(tail)s
"""


def _x86_loop_cycles(
    body: str, gates, iterations: int, config: PcuConfig, tail: str = "",
    totals: Dict[str, float] = None,
) -> float:
    system = build_x86_system(config)
    manager = system.manager
    domain = manager.create_domain("bench")
    manager.allow_all_instructions(domain.domain_id)
    manager.allocate_trusted_stack(frames=16)
    source = _X86_GATE_LOOP % {"iters": iterations, "body": body, "tail": tail}
    program = x86_assemble(source, base=X86_KERNEL_BASE)
    system.load(program)
    manager.register_gate(
        program.symbol("g_d0"), program.symbol("bench_start"), domain.domain_id
    )
    for gate_label, dest_label in gates:
        manager.register_gate(
            program.symbol(gate_label), program.symbol(dest_label), domain.domain_id
        )
    system.run(program.symbol("entry"), max_steps=60 * iterations + 1000)
    stats = system.machine.stats
    if totals is not None:
        totals["instructions"] = totals.get("instructions", 0) + stats.instructions
        totals["cycles"] = totals.get("cycles", 0.0) + stats.cycles
    return stats.cycles


def measure_x86_gates(
    config: PcuConfig = CONFIG_8E, iterations: int = 2000,
    totals: Dict[str, float] = None,
) -> Dict[str, float]:
    """Measured x86 gate latencies (Table 4 rows, cycles/op)."""
    baseline = _x86_loop_cycles("    nop", [], iterations, config,
                                totals=totals)
    hccall = _x86_loop_cycles(
        "g0:\n    hccall r10\nafter0:", [("g0", "after0")], iterations, config,
        totals=totals,
    )
    pair = _x86_loop_cycles(
        "g0:\n    hccalls r10\nafter0:",
        [("g0", "fn")], iterations, config,
        tail="fn:\n    hcrets",
        totals=totals,
    )
    return {
        "hccall": (hccall - baseline) / iterations,
        "xdomain_hccalls_hcrets": (pair - baseline) / iterations,
    }


def instruction_latencies() -> Dict[str, Dict[str, float]]:
    """Per-instruction gate costs straight from the pipeline models
    (the Table 4 "Instruction / Cycles" rows)."""
    from repro.sim import (
        InOrderPipelineModel,
        OutOfOrderPipelineModel,
        gem5_o3_hierarchy,
        rocket_hierarchy,
    )

    out: Dict[str, Dict[str, float]] = {}
    inorder = InOrderPipelineModel(rocket_hierarchy())
    inorder.hierarchy.access_instruction(0x1000)
    out["riscv"] = {
        kind.name.lower(): inorder.instruction_cycles(
            StepInfo(pc=0x1000, is_gate=True, gate_kind=kind)
        )
        for kind in (GateKind.HCCALL, GateKind.HCCALLS, GateKind.HCRETS)
    }
    o3 = OutOfOrderPipelineModel(gem5_o3_hierarchy())
    o3.hierarchy.access_instruction(0x1000)
    o3.hierarchy.access_instruction(0x1000)
    out["x86"] = {}
    for kind in (GateKind.HCCALL, GateKind.HCCALLS, GateKind.HCRETS):
        # fresh model per kind so forwarding state doesn't leak
        model = OutOfOrderPipelineModel(gem5_o3_hierarchy())
        model.hierarchy.access_instruction(0x1000)
        model.hierarchy.access_instruction(0x1000)
        out["x86"][kind.name.lower()] = model.instruction_cycles(
            StepInfo(pc=0x1000, is_gate=True, gate_kind=kind)
        )
    return out


_SYSCALL_LOOP = """
user_entry:
    li s2, %(iters)d
loop:
    li a7, 1
    ecall
    addi s2, s2, -1
    bnez s2, loop
    li a7, 0
    li a0, 0
    ecall
"""

_EMPTY_LOOP = """
user_entry:
    li s2, %(iters)d
loop:
    li a7, 99
    nop
    addi s2, s2, -1
    bnez s2, loop
    li a7, 0
    li a0, 0
    ecall
"""


def measure_riscv_syscall(*, pti: bool = False, iterations: int = 500) -> float:
    """Empty system call latency on the native RISC-V kernel (cycles)."""
    kernel = RiscvKernel("native", pti=pti)
    program = riscv_assemble(_SYSCALL_LOOP % {"iters": iterations}, base=RISCV_USER_BASE)
    stats = kernel.run(program, max_steps=400 * iterations + 2000)
    loop_cycles = stats.cycles

    baseline_kernel = RiscvKernel("native", pti=pti)
    baseline_program = riscv_assemble(
        _EMPTY_LOOP % {"iters": iterations}, base=RISCV_USER_BASE
    )
    baseline = baseline_kernel.run(
        baseline_program, max_steps=400 * iterations + 2000
    ).cycles
    return (loop_cycles - baseline) / iterations


_SUPERVISOR_CALL_LOOP = """
entry:
    la t0, trap
    csrw stvec, t0
    li s2, %(iters)d
loop:
    ecall
back:
    addi s2, s2, -1
    bnez s2, loop
    halt
trap:
    csrr t1, sepc
    addi t1, t1, 4
    csrw sepc, t1
    sret
"""


def measure_riscv_supervisor_call(iterations: int = 500) -> float:
    """Empty S-mode ecall round-trip on bare metal (cycles/op)."""
    system = build_riscv_system(with_isagrid=False)
    program = riscv_assemble(
        _SUPERVISOR_CALL_LOOP % {"iters": iterations}, base=RISCV_KERNEL_BASE
    )
    system.load(program)
    system.run(program.symbol("entry"), max_steps=100 * iterations + 1000)
    cycles = system.machine.stats.cycles

    baseline_system = build_riscv_system(with_isagrid=False)
    baseline_source = (_SUPERVISOR_CALL_LOOP % {"iters": iterations}).replace(
        "    ecall\nback:", "    nop\nback:"
    )
    baseline_program = riscv_assemble(baseline_source, base=RISCV_KERNEL_BASE)
    baseline_system.load(baseline_program)
    baseline_system.run(baseline_program.symbol("entry"), max_steps=100 * iterations + 1000)
    return (cycles - baseline_system.machine.stats.cycles) / iterations
