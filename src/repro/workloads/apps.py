"""Application-workload runners (Figures 6, 7 and 8).

Each runner boots a fresh MiniKernel, runs the profile's generated user
program, and returns total cycles.  ``normalized_time`` is the paper's
metric: decomposed (or monitored) cycles divided by native cycles for
the identical instruction stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import CONFIG_8E, PcuConfig
from repro.kernel.riscv_kernel import RiscvKernel
from repro.kernel.x86_kernel import X86Kernel

from .generator import riscv_user_program, x86_user_program
from .profiles import WorkloadProfile


@dataclass
class AppRunResult:
    """One workload execution on one kernel configuration."""

    workload: str
    arch: str
    mode: str
    variant: str
    cycles: float
    instructions: int
    syscalls: int
    faults: int

    @property
    def valid(self) -> bool:
        return self.faults == 0


def run_riscv_app(
    profile: WorkloadProfile,
    mode: str,
    config: PcuConfig = CONFIG_8E,
    max_steps: int = 8_000_000,
) -> AppRunResult:
    kernel = RiscvKernel(mode, config)
    stats = kernel.run(riscv_user_program(profile), max_steps=max_steps)
    return AppRunResult(
        workload=profile.name,
        arch="riscv",
        mode=mode,
        variant="plain",
        cycles=stats.cycles,
        instructions=stats.instructions,
        syscalls=kernel.syscall_count,
        faults=kernel.fault_count,
    )


def run_x86_app(
    profile: WorkloadProfile,
    mode: str,
    config: PcuConfig = CONFIG_8E,
    *,
    variant: str = "plain",
    max_steps: int = 8_000_000,
) -> AppRunResult:
    kernel = X86Kernel(mode, config, variant=variant)
    stats = kernel.run(x86_user_program(profile), max_steps=max_steps)
    return AppRunResult(
        workload=profile.name,
        arch="x86",
        mode=mode,
        variant=variant,
        cycles=stats.cycles,
        instructions=stats.instructions,
        syscalls=kernel.syscall_count,
        faults=kernel.fault_count,
    )


def normalized_time(protected: AppRunResult, native: AppRunResult) -> float:
    """The paper's normalized execution time (1.0 = no overhead)."""
    if native.cycles <= 0:
        raise ValueError("native run has no cycles")
    return protected.cycles / native.cycles
