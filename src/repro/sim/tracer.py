"""Execution tracing for debugging simulated programs.

Attach a :class:`Tracer` to a :class:`~repro.sim.machine.Machine` and
every retired instruction produces one :class:`TraceRecord` (ring-
buffered) — pc, current ISA domain, memory/gate/trap flags, running
cycle count.  ``render_tail`` pretty-prints the last N records, which is
usually what you want when a simulated kernel dies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from .machine import Machine
from .pipeline import StepInfo


@dataclass(frozen=True)
class TraceRecord:
    """One retired instruction."""

    index: int
    pc: int
    domain: int
    cycles: float
    is_gate: bool = False
    is_load: bool = False
    is_store: bool = False
    mem_address: Optional[int] = None
    trapped: bool = False
    halted: bool = False

    def render(self) -> str:
        flags = "".join((
            "G" if self.is_gate else "-",
            "L" if self.is_load else "-",
            "S" if self.is_store else "-",
            "T" if self.trapped else "-",
            "H" if self.halted else "-",
        ))
        memory = " mem=0x%x" % self.mem_address if self.mem_address is not None else ""
        return "%8d  pc=0x%08x  dom=%-3d %s  cyc=%10.1f%s" % (
            self.index, self.pc, self.domain, flags, self.cycles, memory,
        )


class Tracer:
    """Ring-buffered per-instruction trace of one machine.

    Wraps ``machine.step`` non-invasively; detach with :meth:`detach`.
    An optional ``watch`` callback fires on every record (return ``True``
    from it to stop collecting further records).
    """

    def __init__(
        self,
        machine: Machine,
        *,
        capacity: int = 4096,
        watch: Optional[Callable[[TraceRecord], Optional[bool]]] = None,
    ):
        self.machine = machine
        self.capacity = capacity
        self.watch = watch
        self.records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._count = 0
        self._active = True
        self._original_step = machine.step
        machine.step = self._traced_step  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def _traced_step(self) -> StepInfo:
        info = self._original_step()
        if self._active:
            record = TraceRecord(
                index=self._count,
                pc=info.pc,
                domain=(
                    self.machine.pcu.current_domain
                    if self.machine.pcu is not None
                    else 0
                ),
                cycles=self.machine.stats.cycles,
                is_gate=info.is_gate,
                is_load=info.is_load,
                is_store=info.is_store,
                mem_address=info.mem_address,
                trapped=info.trapped,
                halted=info.halted,
            )
            self.records.append(record)
            self._count += 1
            if self.watch is not None and self.watch(record):
                self._active = False
        return info

    def detach(self) -> None:
        """Restore the machine's original step function."""
        self.machine.step = self._original_step  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    @property
    def total_records(self) -> int:
        return self._count

    def tail(self, count: int = 20) -> List[TraceRecord]:
        return list(self.records)[-count:]

    def render_tail(self, count: int = 20) -> str:
        lines = ["   index  pc          domain flags  cycles"]
        lines += [record.render() for record in self.tail(count)]
        return "\n".join(lines)

    def domains_visited(self) -> List[int]:
        """Distinct domains in buffer order of first appearance."""
        seen: List[int] = []
        for record in self.records:
            if record.domain not in seen:
                seen.append(record.domain)
        return seen
