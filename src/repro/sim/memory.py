"""Sparse byte-addressable physical memory.

Backs both CPU loads/stores and the trusted-memory structures (it
satisfies the :class:`repro.core.trusted_memory.WordBacking` protocol).
Pages are allocated lazily so a 1 GB address space costs nothing until
it is touched.
"""

from __future__ import annotations

from typing import Dict

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

# Truncation masks for the scalar store widths.
_WIDTH_MASKS = {width: (1 << 8 * width) - 1 for width in range(1, 9)}


class MemoryAccessError(Exception):
    """Unaligned or out-of-range physical access."""


class PhysicalMemory:
    """Little-endian sparse physical memory of ``size`` bytes."""

    def __init__(self, size: int = 1 << 30, base: int = 0):
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.base = base
        self.size = size
        self.limit = base + size
        self._pages: Dict[int, bytearray] = {}

    def _page(self, address: int) -> bytearray:
        page = self._pages.get(address >> PAGE_SHIFT)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[address >> PAGE_SHIFT] = page
        return page

    def _check(self, address: int, width: int) -> None:
        if not self.base <= address <= self.limit - width:
            raise MemoryAccessError(
                "physical access at 0x%x (+%d) out of range [0x%x, 0x%x)"
                % (address, width, self.base, self.limit)
            )

    # ------------------------------------------------------------------
    # Scalar accessors.
    # ------------------------------------------------------------------
    def load(self, address: int, width: int = 8) -> int:
        """Load ``width`` bytes (1/2/4/8), little-endian, unsigned.

        ``_check`` and ``_page`` are inlined here (and in :meth:`store`):
        these two methods sit on the per-instruction hot path.
        """
        if not self.base <= address <= self.limit - width:
            self._check(address, width)  # raises with the full message
        offset = address & PAGE_MASK
        if offset + width <= PAGE_SIZE:
            page = self._pages.get(address >> PAGE_SHIFT)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[address >> PAGE_SHIFT] = page
            return int.from_bytes(page[offset : offset + width], "little")
        return int.from_bytes(self.load_bytes(address, width), "little")

    def store(self, address: int, value: int, width: int = 8) -> None:
        """Store ``width`` bytes (1/2/4/8), little-endian."""
        if not self.base <= address <= self.limit - width:
            self._check(address, width)  # raises with the full message
        data = (value & _WIDTH_MASKS[width]).to_bytes(width, "little")
        offset = address & PAGE_MASK
        if offset + width <= PAGE_SIZE:
            page = self._pages.get(address >> PAGE_SHIFT)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[address >> PAGE_SHIFT] = page
            page[offset : offset + width] = data
        else:
            self.store_bytes(address, data)

    # ------------------------------------------------------------------
    # Bulk accessors (program loading, byte-level decoding).
    # ------------------------------------------------------------------
    def load_bytes(self, address: int, length: int) -> bytes:
        self._check(address, max(length, 1))
        out = bytearray()
        while length:
            page = self._page(address)
            offset = address & PAGE_MASK
            chunk = min(length, PAGE_SIZE - offset)
            out += page[offset : offset + chunk]
            address += chunk
            length -= chunk
        return bytes(out)

    def store_bytes(self, address: int, data: bytes) -> None:
        self._check(address, max(len(data), 1))
        position = 0
        while position < len(data):
            page = self._page(address)
            offset = address & PAGE_MASK
            chunk = min(len(data) - position, PAGE_SIZE - offset)
            page[offset : offset + chunk] = data[position : position + chunk]
            address += chunk
            position += chunk

    # ------------------------------------------------------------------
    # WordBacking protocol (trusted memory storage).
    # ------------------------------------------------------------------
    def load_word(self, address: int) -> int:
        if address % 8:
            raise MemoryAccessError("unaligned word load at 0x%x" % address)
        return self.load(address, 8)

    def store_word(self, address: int, value: int) -> None:
        if address % 8:
            raise MemoryAccessError("unaligned word store at 0x%x" % address)
        self.store(address, value, 8)

    @property
    def pages_allocated(self) -> int:
        return len(self._pages)
