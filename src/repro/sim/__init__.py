"""Simulation substrate: memory, cache hierarchy, pipelines, machines."""

from .branch import BranchStats, TournamentPredictor
from .machine import Core, Machine, MachineStats, SimulationLimitExceeded
from .memhier import (
    CacheLevel,
    CacheLevelStats,
    MemoryHierarchy,
    gem5_o3_hierarchy,
    rocket_hierarchy,
)
from .memory import MemoryAccessError, PhysicalMemory
from .pipeline import InOrderPipelineModel, OutOfOrderPipelineModel, PipelineModel, StepInfo
from .tracer import TraceRecord, Tracer
from .trap import Trap, TrapKind

__all__ = [
    "BranchStats",
    "CacheLevel",
    "CacheLevelStats",
    "Core",
    "InOrderPipelineModel",
    "Machine",
    "MachineStats",
    "MemoryAccessError",
    "MemoryHierarchy",
    "OutOfOrderPipelineModel",
    "PhysicalMemory",
    "PipelineModel",
    "SimulationLimitExceeded",
    "StepInfo",
    "TournamentPredictor",
    "TraceRecord",
    "Tracer",
    "Trap",
    "TrapKind",
    "gem5_o3_hierarchy",
    "rocket_hierarchy",
]
