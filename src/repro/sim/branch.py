"""Tournament branch predictor (timing only).

The paper's Gem5 configuration uses a tournament predictor (Table 3).
This is a compact functional model: a local 2-bit-counter table indexed
by PC, a global 2-bit-counter table indexed by history, and a chooser
that learns which of the two to trust per branch.  Only the predicted
taken/not-taken bit feeds back into the pipeline model (mispredict =>
flush penalty); targets are assumed BTB-resident.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BranchStats:
    predictions: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


def _update_counter(counter: int, taken: bool) -> int:
    """Saturating 2-bit counter update."""
    if taken:
        return min(3, counter + 1)
    return max(0, counter - 1)


class TournamentPredictor:
    """Local + global predictor with a per-branch chooser."""

    def __init__(self, local_bits: int = 10, global_bits: int = 10):
        self.local_size = 1 << local_bits
        self.global_size = 1 << global_bits
        self._local = [1] * self.local_size     # weakly not-taken
        self._global = [1] * self.global_size
        self._chooser = [2] * self.local_size   # weakly prefer global
        self._history = 0
        # Sizes are powers of two, so ``% size`` == ``& mask`` for the
        # non-negative indices used here; update() runs once per branch.
        self._local_mask = self.local_size - 1
        self._global_mask = self.global_size - 1

    def _indices(self, pc: int) -> "tuple[int, int]":
        # XOR-fold the upper PC bits into the index (as real predictors
        # do) so code regions a power-of-two apart don't alias head-on.
        folded = (pc >> 2) ^ (pc >> 13) ^ (pc >> 21)
        local_index = folded % self.local_size
        global_index = (self._history ^ folded) % self.global_size
        return local_index, global_index

    def predict(self, pc: int) -> bool:
        local_index, global_index = self._indices(pc)
        if self._chooser[local_index] >= 2:
            return self._global[global_index] >= 2
        return self._local[local_index] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Record the outcome; returns True if the prediction was wrong.

        This runs once per simulated branch, so ``_indices`` and
        ``_update_counter`` are inlined with mask arithmetic; the
        resulting counters and history are bit-identical to the
        readable versions above.
        """
        folded = (pc >> 2) ^ (pc >> 13) ^ (pc >> 21)
        local_index = folded & self._local_mask
        global_index = (self._history ^ folded) & self._global_mask
        local = self._local
        global_ = self._global
        chooser = self._chooser
        local_counter = local[local_index]
        global_counter = global_[global_index]
        local_prediction = local_counter >= 2
        global_prediction = global_counter >= 2
        if chooser[local_index] >= 2:
            prediction = global_prediction
        else:
            prediction = local_prediction

        # Chooser learns toward whichever component was right.
        if local_prediction != global_prediction:
            choice = chooser[local_index]
            if global_prediction == taken:
                if choice < 3:
                    chooser[local_index] = choice + 1
            elif choice > 0:
                chooser[local_index] = choice - 1

        if taken:
            if local_counter < 3:
                local[local_index] = local_counter + 1
            if global_counter < 3:
                global_[global_index] = global_counter + 1
            self._history = ((self._history << 1) | 1) & self._global_mask
        else:
            if local_counter:
                local[local_index] = local_counter - 1
            if global_counter:
                global_[global_index] = global_counter - 1
            self._history = (self._history << 1) & self._global_mask
        return prediction != taken
