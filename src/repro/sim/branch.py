"""Tournament branch predictor (timing only).

The paper's Gem5 configuration uses a tournament predictor (Table 3).
This is a compact functional model: a local 2-bit-counter table indexed
by PC, a global 2-bit-counter table indexed by history, and a chooser
that learns which of the two to trust per branch.  Only the predicted
taken/not-taken bit feeds back into the pipeline model (mispredict =>
flush penalty); targets are assumed BTB-resident.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BranchStats:
    predictions: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


def _update_counter(counter: int, taken: bool) -> int:
    """Saturating 2-bit counter update."""
    if taken:
        return min(3, counter + 1)
    return max(0, counter - 1)


class TournamentPredictor:
    """Local + global predictor with a per-branch chooser."""

    def __init__(self, local_bits: int = 10, global_bits: int = 10):
        self.local_size = 1 << local_bits
        self.global_size = 1 << global_bits
        self._local = [1] * self.local_size     # weakly not-taken
        self._global = [1] * self.global_size
        self._chooser = [2] * self.local_size   # weakly prefer global
        self._history = 0

    def _indices(self, pc: int) -> "tuple[int, int]":
        # XOR-fold the upper PC bits into the index (as real predictors
        # do) so code regions a power-of-two apart don't alias head-on.
        folded = (pc >> 2) ^ (pc >> 13) ^ (pc >> 21)
        local_index = folded % self.local_size
        global_index = (self._history ^ folded) % self.global_size
        return local_index, global_index

    def predict(self, pc: int) -> bool:
        local_index, global_index = self._indices(pc)
        if self._chooser[local_index] >= 2:
            return self._global[global_index] >= 2
        return self._local[local_index] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Record the outcome; returns True if the prediction was wrong."""
        local_index, global_index = self._indices(pc)
        local_prediction = self._local[local_index] >= 2
        global_prediction = self._global[global_index] >= 2
        used_global = self._chooser[local_index] >= 2
        prediction = global_prediction if used_global else local_prediction

        # Chooser learns toward whichever component was right.
        if local_prediction != global_prediction:
            if global_prediction == taken:
                self._chooser[local_index] = min(3, self._chooser[local_index] + 1)
            else:
                self._chooser[local_index] = max(0, self._chooser[local_index] - 1)

        self._local[local_index] = _update_counter(self._local[local_index], taken)
        self._global[global_index] = _update_counter(self._global[global_index], taken)
        self._history = ((self._history << 1) | int(taken)) % self.global_size
        return prediction != taken
