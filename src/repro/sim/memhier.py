"""Cache hierarchy timing model (Table 3 of the paper).

Functional correctness is handled by :class:`~repro.sim.memory.
PhysicalMemory`; this module only models *latency*: each level keeps a
set-associative LRU tag array, and an access walks down the hierarchy
accumulating the latency of every level it misses in, plus the DRAM
latency on a full miss.

The x86 prototype uses the paper's Gem5 parameters (32 KB 4-way L1s,
256 KB 16-way L2, 2 MB 16-way L3, 30 ns DRAM); the Rocket prototype uses
a two-level arrangement so that a load/store miss costs >120 cycles as
reported in Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class CacheLevelStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 1.0


class CacheLevel:
    """One set-associative, LRU, write-allocate cache level (timing only)."""

    def __init__(self, name: str, size: int, line: int, ways: int, latency: int):
        if size % (line * ways):
            raise ValueError("%s: size must be a multiple of line*ways" % name)
        self.name = name
        self.size = size
        self.line = line
        self.ways = ways
        self.latency = latency
        self.n_sets = size // (line * ways)
        # set index -> list of tags, most-recently-used last
        self._sets: Dict[int, List[int]] = {}
        self.stats = CacheLevelStats()

    def access(self, address: int) -> bool:
        """Touch one line; returns True on hit, inserts on miss."""
        line_address = address // self.line
        set_index = line_address % self.n_sets
        tag = line_address // self.n_sets
        ways = self._sets.get(set_index)
        if ways is None:
            ways = []
            self._sets[set_index] = ways
        elif ways[-1] == tag:
            # MRU hit: re-promoting the last element is a no-op, and
            # sequential fetch makes this the overwhelmingly common case.
            self.stats.hits += 1
            return True
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(ways) >= self.ways:
            ways.pop(0)
        ways.append(tag)
        return False

    def flush(self) -> None:
        self._sets.clear()


class MemoryHierarchy:
    """I-side and D-side L1s in front of a shared L2/L3/DRAM chain."""

    def __init__(
        self,
        l1i: CacheLevel,
        l1d: CacheLevel,
        shared: Optional[List[CacheLevel]] = None,
        dram_latency: int = 90,
    ):
        self.l1i = l1i
        self.l1d = l1d
        self.shared = shared or []
        self.dram_latency = dram_latency
        # Hot-path handles for the inline L1 MRU checks below.  Safe to
        # cache: ``CacheLevel.flush`` clears ``_sets`` in place and
        # nothing replaces a level's ``stats`` object after construction.
        self._l1i_sets_get = l1i._sets.get
        self._l1i_stats = l1i.stats
        self._l1i_line = l1i.line
        self._l1i_n_sets = l1i.n_sets
        self._l1i_latency = l1i.latency
        self._l1d_sets_get = l1d._sets.get
        self._l1d_stats = l1d.stats
        self._l1d_line = l1d.line
        self._l1d_n_sets = l1d.n_sets
        self._l1d_latency = l1d.latency

    def _walk(self, first: CacheLevel, address: int) -> int:
        """Latency of an access starting at ``first``."""
        cycles = first.latency
        if first.access(address):
            return cycles
        for level in self.shared:
            cycles += level.latency
            if level.access(address):
                return cycles
        return cycles + self.dram_latency

    def access_instruction(self, address: int) -> int:
        """Fetch-side latency in cycles for one instruction address.

        The L1 MRU hit is checked inline (same arithmetic and stats as
        :meth:`CacheLevel.access`) so the per-instruction fetch — the
        single hottest call in the simulator — usually costs one frame
        instead of three.
        """
        line_address = address // self._l1i_line
        n_sets = self._l1i_n_sets
        ways = self._l1i_sets_get(line_address % n_sets)
        if ways is not None and ways[-1] == line_address // n_sets:
            self._l1i_stats.hits += 1
            return self._l1i_latency
        return self._walk(self.l1i, address)

    def access_data(self, address: int, write: bool = False) -> int:
        """Data-side latency in cycles (write-allocate, so same walk)."""
        line_address = address // self._l1d_line
        n_sets = self._l1d_n_sets
        ways = self._l1d_sets_get(line_address % n_sets)
        if ways is not None and ways[-1] == line_address // n_sets:
            self._l1d_stats.hits += 1
            return self._l1d_latency
        return self._walk(self.l1d, address)

    @property
    def miss_path_latency(self) -> int:
        """Full L1-to-DRAM miss latency (the ">120 / >200 cycles" rows)."""
        return (
            self.l1d.latency
            + sum(level.latency for level in self.shared)
            + self.dram_latency
        )

    def flush(self) -> None:
        self.l1i.flush()
        self.l1d.flush()
        for level in self.shared:
            level.flush()


def rocket_hierarchy() -> MemoryHierarchy:
    """Rocket-like: 16 KB L1s straight to DDR3 (~120-cycle miss path)."""
    return MemoryHierarchy(
        l1i=CacheLevel("L1I", size=16 * 1024, line=64, ways=4, latency=1),
        l1d=CacheLevel("L1D", size=16 * 1024, line=64, ways=4, latency=2),
        shared=[],
        dram_latency=120,
    )


def gem5_o3_hierarchy() -> MemoryHierarchy:
    """The paper's Table 3 hierarchy (x86 Gem5 O3 prototype)."""
    return MemoryHierarchy(
        l1i=CacheLevel("L1I", size=32 * 1024, line=64, ways=4, latency=2),
        l1d=CacheLevel("L1D", size=32 * 1024, line=64, ways=4, latency=2),
        shared=[
            CacheLevel("L2", size=256 * 1024, line=64, ways=16, latency=20),
            CacheLevel("L3", size=2 * 1024 * 1024, line=64, ways=16, latency=32),
        ],
        dram_latency=150,  # 30 ns DRAM at the simulated clock, >200-cycle path
    )
