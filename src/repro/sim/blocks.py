"""Superblock cache scaffolding: privilege summaries for basic blocks.

DESIGN §3.18.  The per-pc decode caches resolve one instruction at a
time; the block cache extends them with straight-line *superblocks* —
maximal runs of block-eligible decoded instructions ending at the first
control transfer — each carrying a :class:`BlockSummary` of every
privilege the run needs.  A warm block for the current domain and
generation then costs one
:meth:`~repro.core.pcu.PrivilegeCheckUnit.check_block_summary` probe
instead of N per-instruction checks, and its members execute through
pre-fused closures that fold the work and the pipeline-timing model of
each instruction into a single call.

The containers here are shared by both backends; the formation rules,
member closures and executor loops live with their CPUs
(:mod:`repro.riscv.cpu`, :mod:`repro.x86.cpu`) because both are
ISA- and pipeline-specific.  The coherence contract — what may be in a
block, when a probe must refuse, and why the fallback path is always
the reference semantics — is documented in DESIGN §3.18 and enforced
by the block lockstep test suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

#: Blocks shorter than this are not worth the probe + accounting
#: overhead; the per-instruction path serves them.
MIN_BLOCK_LEN = 3

#: Formation stops after this many members: caps compile time per block
#: and bounds how far a partial-block fault has to be attributed.
MAX_BLOCK_LEN = 64

#: Cache sentinel for a pc where formation was refused (head instruction
#: ineligible, block too short, undecodable tail...): the executor takes
#: one ordinary ``step()`` and re-probes at the next pc.
NO_BLOCK = False


class BlockSummary:
    """Union of every privilege a block's members need.

    ``class_words`` holds the inst-bitmap union as sparse
    ``(word_index, bit_mask)`` pairs, matching the bypass register's
    word layout so the probe is one AND-compare per touched word.
    ``csrs`` is the tuple of CSR indices the block would access —
    always empty for blocks the CPUs form today (CSR instructions are
    never block members), but carried so the probe can refuse any
    future summary that does carry them instead of silently skipping
    the read/write/mask checks.  ``touches_memory`` records whether any
    member performs a load or store; those members keep their *live*
    ``check_data_access`` call (trusted-memory ranges and generations
    are enforced per access, not summarized — addresses are dynamic).
    """

    __slots__ = ("class_words", "csrs", "touches_memory")

    def __init__(
        self,
        class_words: Tuple[Tuple[int, int], ...],
        csrs: Tuple[int, ...] = (),
        touches_memory: bool = False,
    ):
        self.class_words = class_words
        self.csrs = csrs
        self.touches_memory = touches_memory

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BlockSummary(words=%r, csrs=%r, mem=%r)" % (
            self.class_words, self.csrs, self.touches_memory
        )


def summarize_classes(inst_classes: Iterable[int]) -> Tuple[Tuple[int, int], ...]:
    """Fold instruction-class indices into sparse bypass-word masks."""
    words: Dict[int, int] = {}
    for inst_class in inst_classes:
        index = inst_class >> 6
        words[index] = words.get(index, 0) | 1 << (inst_class & 63)
    return tuple(sorted(words.items()))


class CompiledBlock:
    """One formed superblock: summary + fused member closures.

    ``ops[i]()`` performs member ``i``'s architectural work *and* its
    pipeline-timing accounting (instruction fetch, data access, branch
    prediction) in the exact operation order of the per-instruction
    path, returning the float cycle cost — so accumulating the returns
    sequentially is bit-identical to the reference loop's
    ``stats.cycles += instruction_cycles(info)`` adds.  ``pcs`` and
    ``sizes`` attribute a mid-block fault to its member; ``sets_pc``
    records that the final member is a control transfer which wrote
    ``cpu.pc`` itself (otherwise the executor stores ``end_pc`` once).
    """

    __slots__ = ("summary", "ops", "pcs", "sizes", "n", "end_pc", "sets_pc")

    def __init__(
        self,
        summary: BlockSummary,
        ops: Sequence,
        pcs: Sequence[int],
        sizes: Sequence[int],
        end_pc: int,
        sets_pc: bool,
    ):
        self.summary = summary
        self.ops = list(ops)
        self.pcs = tuple(pcs)
        self.sizes = tuple(sizes)
        self.n = len(self.ops)
        self.end_pc = end_pc
        self.sets_pc = sets_pc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CompiledBlock(n=%d, pc=0x%x..0x%x, sets_pc=%r)" % (
            self.n, self.pcs[0], self.pcs[-1], self.sets_pc
        )
