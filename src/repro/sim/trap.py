"""Architecture-neutral trap descriptions.

Both simulated CPUs vector traps through their own mechanisms (RISC-V
``stvec``/``scause``, x86 IDT); this module only provides the shared
vocabulary so kernels, attacks and tests can reason about trap causes
without caring which ISA produced them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Optional


class TrapKind(Enum):
    """Why the CPU vectored to a handler."""

    SYSCALL = auto()            # ecall / int 0x80-style system call
    ILLEGAL_INSTRUCTION = auto()  # undecodable or privilege-level violation
    ISA_GRID_FAULT = auto()     # PCU rejected an instruction / register / gate
    TRUSTED_MEMORY_FAULT = auto()  # load/store touched trusted memory
    BREAKPOINT = auto()
    PAGE_FAULT = auto()
    INTERRUPT = auto()


@dataclass
class Trap(Exception):
    """An architectural trap in flight.

    CPUs raise this internally and catch it at the top of ``step`` to
    vector to the registered handler; it escapes the CPU only when no
    handler is installed (a triple-fault analogue, which ends simulation).
    """

    kind: TrapKind
    cause: int = 0
    value: int = 0
    pc: int = 0
    message: str = ""
    fault: Optional[BaseException] = None  # originating PrivilegeFault, if any

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "Trap(%s, cause=%d, pc=0x%x%s)" % (
            self.kind.name,
            self.cause,
            self.pc,
            ", %s" % self.message if self.message else "",
        )
