"""Pipeline timing models.

Functional execution is exact; timing is an analytic per-instruction
model calibrated against the latencies the paper reports (Table 4):

===============================  ======  =====================
Event                            Rocket  Gem5 O3
===============================  ======  =====================
``hccall``                       5       34
``hccalls`` / ``hcrets``         12/12   52/44
X-domain call (hccalls+hcrets)   32      74 (< 52+44, store-to-
                                         load forwarding)
load/store full miss             >120    >200
===============================  ======  =====================

:class:`InOrderPipelineModel` approximates the 5-stage in-order Rocket
core; :class:`OutOfOrderPipelineModel` approximates the paper's 8-wide,
192-entry-ROB Gem5 O3 core.  Both consume :class:`StepInfo` records
produced by the functional CPUs and return the cycle cost of each
retired instruction.
"""

from __future__ import annotations

from typing import Optional

from repro.core.isa_extension import GateKind

from .branch import BranchStats, TournamentPredictor
from .memhier import MemoryHierarchy


class StepInfo:
    """What one retired instruction did, for timing purposes.

    Deliberately a plain class rather than a dataclass: one StepInfo is
    built per simulated instruction, and a generated ``__init__`` that
    stores all fifteen fields dominated the construction cost.  Defaults
    live on the class; ``__init__`` stores only the fields a step
    actually passes, and reads fall through to the class attributes.
    """

    pc: int = 0
    size: int = 4
    is_load: bool = False
    is_store: bool = False
    mem_address: Optional[int] = None
    is_branch: bool = False
    branch_taken: bool = False
    is_gate: bool = False
    gate_kind: Optional[GateKind] = None
    is_csr: bool = False        # explicit CSR access (serializing)
    pcu_stall: int = 0          # cycles added by privilege-structure fetches
    trapped: bool = False       # this step vectored to a trap handler
    trap_return: bool = False   # sret / iret
    halted: bool = False
    extra_cycles: int = 0       # instruction-specific cost (wbinvd, rdtsc...)

    def __init__(self, pc: int = 0, size: int = 4, **fields):
        self.pc = pc
        self.size = size
        if fields:
            self.__dict__.update(fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "StepInfo(%s)" % ", ".join(
            "%s=%r" % kv for kv in sorted(self.__dict__.items())
        )


class PipelineModel:
    """Base class: shared bookkeeping for both timing models."""

    def __init__(self, hierarchy: MemoryHierarchy, predictor: Optional[TournamentPredictor] = None):
        self.hierarchy = hierarchy
        self.predictor = predictor or TournamentPredictor()
        self.branch_stats = BranchStats()
        # Bound-method handles for the per-instruction hot path.
        self._access_instruction = hierarchy.access_instruction
        self._access_data = hierarchy.access_data
        self._predictor_update = self.predictor.update
        self._mispredict_penalty = float(getattr(self, "MISPREDICT_PENALTY", 0))

    def instruction_cycles(self, info: StepInfo) -> float:
        raise NotImplementedError

    def _branch_penalty(self, info: StepInfo, penalty: int) -> float:
        self.branch_stats.predictions += 1
        mispredicted = self.predictor.update(info.pc, info.branch_taken)
        if mispredicted:
            self.branch_stats.mispredictions += 1
            return float(penalty)
        return 0.0


class InOrderPipelineModel(PipelineModel):
    """Rocket-like 5-stage in-order scalar pipeline.

    Component costs calibrated so the microbenchmarks land on the
    paper's Table 4 rows: a gate is a 3-cycle front-end flush plus a
    1-cycle SGT lookup plus a 1-cycle redirect (= 5 for ``hccall``);
    the extended gate adds two trusted-stack word accesses at
    ~3.5 cycles each (= 12).
    """

    MISPREDICT_PENALTY = 3
    TRAP_ENTRY = 36        # flush + privilege change + vector fetch
    TRAP_RETURN = 30
    SERIALIZE = 2          # CSR access drains the short pipeline
    GATE_FLUSH = 2
    GATE_SGT_LOOKUP = 1
    GATE_REDIRECT = 1
    TSTACK_WORD = 3.5      # trusted-stack push/pop per word
    RET_BOUND_CHECK = 1    # hcrets hcsb/hcsl bound check

    def instruction_cycles(self, info: StepInfo) -> float:
        cycles = 1.0
        # Front end: extra fetch cycles beyond the pipelined hit.
        fetch = self._access_instruction(info.pc)
        if fetch > 1:
            cycles += fetch - 1
        if info.is_gate:
            return cycles + self._gate_cycles(info)
        mem_address = info.mem_address
        if mem_address is not None:
            # A D-cache hit (2 cycles) costs one extra cycle over ALU ops.
            data = self._access_data(mem_address, info.is_store)
            if data > 1:
                cycles += data - 1
        if info.is_branch:
            # _branch_penalty, inlined for the per-branch hot path.
            stats = self.branch_stats
            stats.predictions += 1
            if self._predictor_update(info.pc, info.branch_taken):
                stats.mispredictions += 1
                cycles += self._mispredict_penalty
        if info.is_csr:
            cycles += self.SERIALIZE
        if info.trapped:
            cycles += self.TRAP_ENTRY
        if info.trap_return:
            cycles += self.TRAP_RETURN
        cycles += info.pcu_stall + info.extra_cycles
        return cycles

    def _gate_cycles(self, info: StepInfo) -> float:
        cycles = float(self.GATE_FLUSH + self.GATE_REDIRECT)
        if info.gate_kind in (GateKind.HCCALL, GateKind.HCCALLS):
            cycles += self.GATE_SGT_LOOKUP
        if info.gate_kind in (GateKind.HCCALLS, GateKind.HCRETS):
            cycles += 2 * self.TSTACK_WORD
        if info.gate_kind is GateKind.HCRETS:
            cycles += self.RET_BOUND_CHECK
        return cycles + info.pcu_stall


class OutOfOrderPipelineModel(PipelineModel):
    """Gem5-O3-like 8-wide out-of-order pipeline (Table 3 parameters).

    An O3 core hides most latencies, so the model charges fractional
    base cost per instruction (1/width), partial costs for memory misses
    (overlapped by the 4-20 MSHRs), and full squash costs only for
    serializing events.  Gate costs are calibrated to Table 4: the
    squash-and-drain dominates (``hccall`` = 34); ``hccalls`` adds two
    store-queue pushes, ``hcrets`` two loads.  When ``hcrets`` executes
    while the matching push is still in the 32-entry store queue, the
    loads forward from it and the squash overlaps the drain, saving 22
    cycles — which is why the paper's measured X-domain call (74) is
    cheaper than ``hccalls`` + ``hcrets`` (96).
    """

    WIDTH = 8
    MISPREDICT_PENALTY = 14
    TRAP_ENTRY = 120       # full squash + mode change + vector fetch
    TRAP_RETURN = 90
    SERIALIZE = 10         # non-renamed CSR access drains the ROB
    ICACHE_MISS_FACTOR = 0.5
    LOAD_MISS_FACTOR = 0.35
    STORE_MISS_FACTOR = 0.05
    GATE_SQUASH = 30       # full pipeline squash + refetch
    GATE_SGT_LOOKUP = 4
    TSTACK_PUSH_WORD = 9   # store-queue allocate + trusted-range store
    TSTACK_POP_WORD = 7
    FORWARDING_SAVING = 22
    STORE_QUEUE_WINDOW = 32  # instructions a push survives in the SQ

    def __init__(self, hierarchy: MemoryHierarchy, predictor: Optional[TournamentPredictor] = None):
        # Gem5's O3 tournament predictor uses multi-K-entry tables;
        # size them accordingly so unrelated branches rarely alias.
        if predictor is None:
            predictor = TournamentPredictor(local_bits=14, global_bits=14)
        super().__init__(hierarchy, predictor)
        self._instructions_since_push: Optional[int] = None
        self._inv_width = 1.0 / self.WIDTH

    def instruction_cycles(self, info: StepInfo) -> float:
        if self._instructions_since_push is not None:
            self._instructions_since_push += 1
        cycles = self._inv_width
        fetch = self._access_instruction(info.pc)
        if fetch > 2:  # beyond the pipelined L1 hit
            cycles += (fetch - 2) * self.ICACHE_MISS_FACTOR
        if info.is_gate:
            return cycles + self._gate_cycles(info)
        mem_address = info.mem_address
        if mem_address is not None:
            data = self._access_data(mem_address, info.is_store)
            if data > 2:
                factor = self.STORE_MISS_FACTOR if info.is_store else self.LOAD_MISS_FACTOR
                cycles += (data - 2) * factor
        if info.is_branch:
            # _branch_penalty, inlined for the per-branch hot path.
            stats = self.branch_stats
            stats.predictions += 1
            if self._predictor_update(info.pc, info.branch_taken):
                stats.mispredictions += 1
                cycles += self._mispredict_penalty
        if info.is_csr:
            cycles += self.SERIALIZE
        if info.trapped:
            cycles += self.TRAP_ENTRY
        if info.trap_return:
            cycles += self.TRAP_RETURN
        cycles += info.pcu_stall + info.extra_cycles
        return cycles

    def _gate_cycles(self, info: StepInfo) -> float:
        cycles = float(self.GATE_SQUASH)
        if info.gate_kind in (GateKind.HCCALL, GateKind.HCCALLS):
            cycles += self.GATE_SGT_LOOKUP
        if info.gate_kind is GateKind.HCCALLS:
            cycles += 2 * self.TSTACK_PUSH_WORD
            self._instructions_since_push = 0
        elif info.gate_kind is GateKind.HCRETS:
            cycles += 2 * self.TSTACK_POP_WORD
            if (
                self._instructions_since_push is not None
                and self._instructions_since_push <= self.STORE_QUEUE_WINDOW
            ):
                cycles -= self.FORWARDING_SAVING
            self._instructions_since_push = None
        return cycles + info.pcu_stall
