"""The Machine: one core + memory + hierarchy + PCU + timing model.

The machine owns everything an experiment needs: the functional CPU
(attached by the architecture packages), the physical memory with its
trusted region, the cache-hierarchy and pipeline timing models, and the
optional Privilege Check Unit.  ``run`` drives the fetch-execute loop
and accumulates instruction and cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.core.pcu import PrivilegeCheckUnit

from .memhier import MemoryHierarchy
from .memory import PhysicalMemory
from .pipeline import PipelineModel, StepInfo


class Core(Protocol):
    """What the Machine requires of a functional CPU model."""

    pc: int

    def step(self) -> StepInfo: ...


@dataclass
class MachineStats:
    """Aggregate run statistics."""

    instructions: int = 0
    cycles: float = 0.0
    traps: int = 0
    halted: bool = False

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def reset(self) -> None:
        self.instructions = 0
        self.cycles = 0.0
        self.traps = 0
        self.halted = False


class SimulationLimitExceeded(Exception):
    """``run`` hit ``max_steps`` without the program halting."""


class Machine:
    """A single-core simulated machine."""

    def __init__(
        self,
        memory: PhysicalMemory,
        hierarchy: MemoryHierarchy,
        pipeline: PipelineModel,
        pcu: Optional[PrivilegeCheckUnit] = None,
    ):
        self.memory = memory
        self.hierarchy = hierarchy
        self.pipeline = pipeline
        self.pcu = pcu
        self.cpu: Optional[Core] = None
        self.stats = MachineStats()
        #: Optional per-step observation hook (fault campaigns, probes):
        #: called after every retired instruction with its StepInfo; a
        #: truthy return stops ``run`` early (stats stay consistent).
        #: ``None`` (the default) keeps the hoisted hot loop untouched —
        #: the hook branch is selected once per ``run`` call, so a
        #: hook-free run pays nothing per instruction.
        self.step_hook: Optional[Callable[[StepInfo], bool]] = None
        #: Master switch for the block-summary executor (DESIGN §3.18).
        #: The system builders copy ``PcuConfig.block_summaries`` here so
        #: native (PCU-less) machines honour ``--no-block-cache`` too;
        #: tests flip it to pin a run to the per-instruction loop.
        self.block_summaries = True

    def attach_cpu(self, cpu: Core) -> None:
        self.cpu = cpu

    # ------------------------------------------------------------------
    # Trusted-memory software filter (Section 4.5): every load/store the
    # CPU performs on behalf of software goes through this check.
    # ------------------------------------------------------------------
    def check_data_access(self, address: int, pc: int = 0) -> None:
        if self.pcu is not None:
            self.pcu.check_memory_access(address, pc)

    # ------------------------------------------------------------------
    # Run loop.
    # ------------------------------------------------------------------
    def step(self) -> StepInfo:
        """Execute one instruction and account its cycles."""
        if self.cpu is None:
            raise RuntimeError("no CPU attached")
        info = self.cpu.step()
        self.stats.instructions += 1
        self.stats.cycles += self.pipeline.instruction_cycles(info)
        if info.trapped:
            self.stats.traps += 1
        if info.halted:
            self.stats.halted = True
        return info

    def run(self, max_steps: int = 2_000_000, *, require_halt: bool = True) -> MachineStats:
        """Run until the program halts (or ``max_steps`` instructions).

        With ``require_halt`` (the default), exceeding the budget raises
        :class:`SimulationLimitExceeded` — runaway programs are a bug in
        the experiment, not a result.

        This is the simulator's hottest loop, so :meth:`step` is inlined
        with the per-instruction lookups hoisted into locals.  The
        ``instructions`` and ``cycles`` counters must stay live on
        ``self.stats`` every iteration — the CPUs serve them
        architecturally mid-run (RISC-V ``cycle``/``instret`` CSRs, x86
        ``rdtsc``) — so only the trap count, which nothing reads mid-run,
        is accumulated in a local and flushed on every exit path.
        """
        cpu = self.cpu
        if cpu is None:
            raise RuntimeError("no CPU attached")
        hook = self.step_hook
        if "step" in self.__dict__:
            # Something (the Tracer) wrapped ``step`` on this instance;
            # honour the wrapper instead of the inlined loop.
            for _ in range(max_steps):
                info = self.step()
                if info.halted:
                    return self.stats
                if hook is not None and hook(info):
                    return self.stats
            if require_halt:
                raise SimulationLimitExceeded(
                    "no halt after %d instructions (pc=0x%x)"
                    % (max_steps, cpu.pc)
                )
            return self.stats
        if hook is None and self.block_summaries:
            # Block-summary executor (DESIGN §3.18): warm straight-line
            # blocks retire under one PCU probe instead of N checks.
            # Only taken when the CPU formed its member closures against
            # this pipeline model and its PCU (if any) was configured
            # block-capable; the executor itself falls back to the
            # reference ``step()`` per instruction whenever a probe
            # refuses, so results are bit-identical to the loops below.
            run_blocks = getattr(cpu, "run_blocks", None)
            if (
                run_blocks is not None
                and cpu.blocks_supported
                and (cpu.pcu is None or cpu.pcu._block_capable)
            ):
                stats = self.stats
                run_blocks(max_steps, stats, self.pipeline.instruction_cycles)
                if stats.halted:
                    return stats
                if require_halt:
                    raise SimulationLimitExceeded(
                        "no halt after %d instructions (pc=0x%x)"
                        % (max_steps, cpu.pc)
                    )
                return stats
        cpu_step = cpu.step
        instruction_cycles = self.pipeline.instruction_cycles
        stats = self.stats
        traps = 0
        try:
            if hook is None:
                for _ in range(max_steps):
                    info = cpu_step()
                    stats.instructions += 1
                    stats.cycles += instruction_cycles(info)
                    if info.trapped:
                        traps += 1
                    if info.halted:
                        stats.halted = True
                        return stats
            else:
                # Same loop with the hook call appended.  Kept as a
                # separate branch so the hook-free hot path stays free
                # of the extra call and None test per instruction.
                for _ in range(max_steps):
                    info = cpu_step()
                    stats.instructions += 1
                    stats.cycles += instruction_cycles(info)
                    if info.trapped:
                        traps += 1
                    if info.halted:
                        stats.halted = True
                        return stats
                    if hook(info):
                        return stats
        finally:
            stats.traps += traps
        if require_halt:
            raise SimulationLimitExceeded(
                "no halt after %d instructions (pc=0x%x)" % (max_steps, cpu.pc)
            )
        return stats

    def reset_stats(self) -> None:
        """Clear run statistics (not architectural or cache state)."""
        self.stats.reset()
        if self.pcu is not None:
            self.pcu.stats.reset()
