"""ISA-Grid reproduction: fine-grained privilege control for ISA resources.

A Python reproduction of *ISA-Grid: Architecture of Fine-grained
Privilege Control for Instructions and Registers* (ISCA 2023).

Subpackages
-----------
``repro.core``
    The architecture-neutral Privilege Check Unit, Hybrid Privilege
    Table, Switching Gate Table, trusted memory and domain-0 runtime.
``repro.sim``
    Simulation substrate: physical memory, cache hierarchy, pipeline
    timing models, the Machine that couples a CPU with a PCU.
``repro.riscv`` / ``repro.x86``
    Functional CPU models with ISA-Grid integrated (the paper's Rocket
    and Gem5 prototypes, respectively).
``repro.kernel``
    MiniKernel and the four use cases (Linux decomposition, Nested
    Kernel, PKS trampoline, multi-service protection).
``repro.attacks``
    The ISA-abuse-based attacks of Table 1 plus gate-forgery attacks.
``repro.baselines``
    Privilege-level-only, trap-and-emulate and binary-scanning baselines.
``repro.workloads``
    Synthetic LMbench/SQLite/Mbedtls/compression workload generators.
``repro.hwcost``
    Analytic FPGA resource model (Table 6).
``repro.analysis``
    Table rendering and experiment report helpers.
"""

__version__ = "1.0.0"

from . import analysis, attacks, baselines, core, hwcost, kernel, riscv, sim, workloads, x86

__all__ = [
    "analysis",
    "attacks",
    "baselines",
    "core",
    "hwcost",
    "kernel",
    "riscv",
    "sim",
    "workloads",
    "x86",
    "__version__",
]
