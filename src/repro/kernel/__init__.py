"""MiniKernel and the paper's use cases.

* :class:`RiscvKernel` / :class:`X86Kernel` — bootable kernels in
  ``native`` (baseline) and ``decomposed`` (use case 1) modes; the x86
  kernel additionally supports the Nested-Kernel monitor variants
  (use case 2) and hosts the Table-5 service modules (use case 4).
* :mod:`repro.kernel.pks` — the PKS/wrpkrs trampoline (use case 3).
"""

from .conformance_layer import MiniKernelSyscallLayer
from .pks import (
    Case3Estimate,
    PksDemoResult,
    estimate_case3,
    measure_two_hccall,
    run_pks_demo,
)
from .sandbox import SANDBOX_CLASSES, SandboxResult, run_sandbox
from .riscv_kernel import RiscvKernel
from .riscv_kernel import kernel_source as riscv_kernel_source
from .syscalls import (
    MAX_SYSCALL,
    SYS_DCONF,
    SYS_MMAP2,
    SYS_PCHECK,
    SYS_PFCH,
    SYS_PFLH,
    SYS_PGATE,
    SYS_PMEM,
    SYS_REGISTER,
    SYS_SCRUB,
    SYS_CLOSE,
    SYS_DUP,
    SYS_EXIT,
    SYS_FSTAT,
    SYS_GETPID,
    SYS_GETPPID,
    SYS_GETTIME,
    SYS_IOCTL,
    SYS_MMAP,
    SYS_OPEN,
    SYS_READ,
    SYS_SELECT,
    SYS_SIGACTION,
    SYS_STAT,
    SYS_VULN,
    SYS_WRITE,
    SYS_YIELD,
    SYSCALL_NAMES,
)
from .x86_kernel import (
    SERVICE_CPUID,
    SERVICE_MTRR,
    SERVICE_PMC_IRQ,
    SERVICE_PMC_MISS,
    SERVICE_VOLTAGE,
    X86Kernel,
)
from .x86_kernel import kernel_source as x86_kernel_source

__all__ = [
    "Case3Estimate",
    "SANDBOX_CLASSES",
    "SandboxResult",
    "SYS_MMAP2",
    "SYS_REGISTER",
    "run_sandbox",
    "MAX_SYSCALL",
    "MiniKernelSyscallLayer",
    "PksDemoResult",
    "RiscvKernel",
    "SYS_DCONF",
    "SYS_PCHECK",
    "SYS_PFCH",
    "SYS_PFLH",
    "SYS_PGATE",
    "SYS_PMEM",
    "SYS_SCRUB",
    "SERVICE_CPUID",
    "SERVICE_MTRR",
    "SERVICE_PMC_IRQ",
    "SERVICE_PMC_MISS",
    "SERVICE_VOLTAGE",
    "SYSCALL_NAMES",
    "SYS_CLOSE",
    "SYS_DUP",
    "SYS_EXIT",
    "SYS_FSTAT",
    "SYS_GETPID",
    "SYS_GETPPID",
    "SYS_GETTIME",
    "SYS_IOCTL",
    "SYS_MMAP",
    "SYS_OPEN",
    "SYS_READ",
    "SYS_SELECT",
    "SYS_SIGACTION",
    "SYS_STAT",
    "SYS_VULN",
    "SYS_WRITE",
    "SYS_YIELD",
    "X86Kernel",
    "estimate_case3",
    "measure_two_hccall",
    "riscv_kernel_source",
    "run_pks_demo",
    "x86_kernel_source",
]
