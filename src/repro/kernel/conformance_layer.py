"""Kernel-layer conformance surface.

The bare-PCU conformance fuzzer calls ``pcu.check(...)`` directly; a real
deployment reaches the PCU through kernel entry points.  This module is
the MiniKernel's *syscall-shaped* dispatch over one PCU + DomainManager
pair, mirroring how ``riscv_kernel``/``x86_kernel`` route service
requests: a numbered handler table, per-syscall accounting, and faults
surfacing as the privilege exceptions the trap handler would see.

``python -m repro conformance --layer kernel`` replays every abstract
event through this table on the cached side (the oracle stays bare — it
is the spec, not a deployment), so the differential diff also covers the
dispatch plumbing: argument marshalling, handler routing and fault
propagation.  ``SYS_SCRUB`` is the domain-0 entry point a production
kernel would expose for the integrity watchdog of :mod:`repro.faults`.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Optional

from repro.core import CacheId, DomainManager, GateKind, PrivilegeCheckUnit
from repro.core.errors import PrivilegeFault

from .syscalls import (
    SYS_DCONF,
    SYS_PCHECK,
    SYS_PFCH,
    SYS_PFLH,
    SYS_PGATE,
    SYS_PMEM,
    SYS_SCRUB,
    SYSCALL_NAMES,
)

#: DomainManager methods reachable through SYS_DCONF.  A closed set: the
#: dispatch layer must not become a generic RPC into domain-0.
_DCONF_OPS = frozenset((
    "create_domain", "destroy_domain",
    "allow_instructions", "deny_instruction",
    "grant_register", "revoke_register", "set_register_mask",
    "seal_privileges",
    "register_gate", "unregister_gate",
    "create_thread_stack",
))


class MiniKernelSyscallLayer:
    """Syscall-numbered dispatch over one PCU/DomainManager pair."""

    def __init__(self, pcu: PrivilegeCheckUnit, manager: DomainManager):
        self.pcu = pcu
        self.manager = manager
        self.syscall_counts: "Counter[str]" = Counter()
        self.fault_counts: "Counter[str]" = Counter()
        self._handlers: Dict[int, Callable] = {
            SYS_PCHECK: self._sys_pcheck,
            SYS_PGATE: self._sys_pgate,
            SYS_PMEM: self._sys_pmem,
            SYS_PFCH: self._sys_pfch,
            SYS_PFLH: self._sys_pflh,
            SYS_DCONF: self._sys_dconf,
            SYS_SCRUB: self._sys_scrub,
        }

    def syscall(self, number: int, *args, **kwargs):
        """Dispatch one numbered syscall; privilege faults re-raise so
        the caller (the trap handler, or the lockstep differ) sees the
        same architectural exception the bare PCU would deliver."""
        try:
            handler = self._handlers[number]
        except KeyError:
            raise ValueError("not a conformance-surface syscall: %d" % number)
        self.syscall_counts[SYSCALL_NAMES[number]] += 1
        try:
            return handler(*args, **kwargs)
        except PrivilegeFault as fault:
            self.fault_counts[type(fault).__name__] += 1
            raise

    # -- PCU data path --------------------------------------------------
    def _sys_pcheck(self, access) -> int:
        return self.pcu.check(access)

    def _sys_pgate(self, kind: GateKind, gate_id: int, pc: int,
                   return_address: Optional[int] = None):
        target, _stall = self.pcu.execute_gate(kind, gate_id, pc,
                                               return_address)
        return target

    def _sys_pmem(self, address: int) -> None:
        self.pcu.check_memory_access(address)

    def _sys_pfch(self, csr: int = 0) -> None:
        self.pcu.prefetch(csr)

    def _sys_pflh(self, cache: int = 0) -> None:
        self.pcu.flush(CacheId(cache))

    # -- domain-0 services ---------------------------------------------
    def _sys_dconf(self, op: str, *args, **kwargs):
        if op not in _DCONF_OPS:
            raise ValueError("SYS_DCONF does not expose %r" % op)
        return getattr(self.manager, op)(*args, **kwargs)

    def _sys_scrub(self):
        """Domain-0 integrity scrub; halts (IntegrityFault) when the
        trusted stack is corrupt, otherwise returns the scrub report."""
        from repro.faults.scrub import IntegrityScrubber

        return IntegrityScrubber(self.pcu, self.manager).scrub_or_halt()
