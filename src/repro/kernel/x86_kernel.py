"""The x86 MiniKernel and its ISA-Grid decomposition (Section 6.1).

The x86 variant follows the paper's x86 prototype: IDTR/GDTR/LSTAR and
the speculation-control MSRs are written once during boot (in domain-0)
and frozen afterwards — no runtime domain can write them.  Each function
that modifies LDTR, CR0.TS/CR0.NE, CR3, or one of the runtime MSRs lives
in its own ISA domain; the basic kernel domain may flip *only* the
CR4.SMAP bit (bit-level control), which it does around user-memory
copies.

Domains (decomposed mode):

==========  =============================================  ===========
domain      extra privilege                                 used by
==========  =============================================  ===========
``kernel``  CR4.SMAP bit only; CR reads; rdtsc              all syscalls
``vm``      write CR3, invlpg                               sys_mmap
``fpu``     CR0.TS/CR0.NE bits, clts                        sys_yield
``ldt``     write LDTR                                      sys_sigaction
``power``   MSR 0x150 read/write                            ioctl 5
``mtrr``    MTRR MSR reads                                  ioctl 2
``cpuid``   cpuid                                           ioctl 1
``pmu``     rdpmc, PMC reads                                ioctl 3, 4
``debug``   DR0-DR7 read/write                              sys_vuln (the
                                                            hijackable
                                                            module)
==========  =============================================  ===========

ISA-Grid faults (and #GP/#UD) vector through the IDT, gate into the
basic domain, bump the fault counter, and redirect the interrupted
context to a caller-provided abort continuation (x86 instructions have
variable length, so skip-and-continue is not possible the way it is on
RISC-V); with no abort continuation configured the machine halts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core import CONFIG_8E, PcuConfig
from repro.sim.machine import MachineStats
from repro.x86 import (
    DATA_BASE,
    IDT_BASE,
    KERNEL_BASE,
    KERNEL_STACK_TOP,
    MSR_LSTAR,
    Program,
    TRUSTED_BASE,
    TRUSTED_SIZE,
    USER_BASE,
    VEC_GP,
    VEC_ISA_GRID,
    VEC_TRUSTED_MEMORY,
    VEC_UD,
    X86System,
    assemble,
    build_x86_system,
)
from repro.x86.registers import (
    CR0_NE,
    CR0_TS,
    CR0_WP,
    CR4_SMAP,
    EFER_SCE,
    MSR_EFER,
    MSR_SPEC_CTRL,
)

from .syscalls import (
    SYS_CLOSE,
    SYS_DUP,
    SYS_EXIT,
    SYS_FSTAT,
    SYS_GETPID,
    SYS_GETPPID,
    SYS_GETTIME,
    SYS_IOCTL,
    SYS_MMAP,
    SYS_MMAP2,
    SYS_OPEN,
    SYS_READ,
    SYS_REGISTER,
    SYS_SELECT,
    SYS_SIGACTION,
    SYS_STAT,
    SYS_VULN,
    SYS_WRITE,
    SYS_YIELD,
)

# Kernel-data layout (offsets from DATA_BASE).
OFF_FAULT_COUNT = 0x00
OFF_LAST_CAUSE = 0x08
OFF_SAVED_RSP = 0x10
OFF_SYSCALL_COUNT = 0x18
OFF_SAVED_RCX = 0x28
OFF_ABORT_RIP = 0x30
OFF_DTR_SCRATCH = 0x40
OFF_MON_LOG_IDX = 0x38
OFF_SIG_TABLE = 0x400
OFF_KBUF = 0x800
OFF_FD_TABLE = 0xA00
OFF_STAT = 0xE00
OFF_PT_AREA = 0x1000      # the "page table" the nested monitor guards
OFF_MON_LOG = 0x1200      # Nest.Mon.Log circular buffer (256 frames)
OFF_CTX_AREA = 0x2800     # register-context area used by sys_yield
OFF_PTE_WORK = 0x3000     # page-table pages populated by sys_mmap
OFF_RT_GATE = 0x20        # gate id returned by runtime registration (§5.2)

# Runtime-registration metadata at the top of trusted memory (see the
# RISC-V kernel for the protocol).
META_NEXT_GATE = TRUSTED_BASE + TRUSTED_SIZE - 8
META_SGT_BASE = TRUSTED_BASE + TRUSTED_SIZE - 16

# Representative work sizes (see the RISC-V kernel for rationale).
PTE_ENTRIES = 192
SIGFRAME_WORDS = 96
CTX_SAVE_WORDS = 112

SERVICE_CPUID = 1
SERVICE_MTRR = 2
SERVICE_PMC_IRQ = 3
SERVICE_PMC_MISS = 4
SERVICE_VOLTAGE = 5

#: sys_vuln module selectors (the rsi argument).
VULN_MODULES = {
    "debug": 0, "power": 1, "mtrr": 2, "cpuid": 3,
    "pmu": 4, "vm": 5, "fpu": 6, "ldt": 7,
}


@dataclass
class GateSite:
    name: str
    gate_label: str
    dest_label: str
    domain: str


def _privileged_call(
    decomposed: bool, gate_index: int, gate_label: str, dest_label: str
) -> List[str]:
    if decomposed:
        return [
            "    mov r10, %d" % gate_index,
            "%s:" % gate_label,
            "    hccalls r10",
        ]
    return ["    call %s" % dest_label]


def _privileged_return(decomposed: bool) -> List[str]:
    return ["    hcrets"] if decomposed else ["    ret"]


def kernel_source(
    decomposed: bool, variant: str = "plain"
) -> Tuple[str, List[GateSite]]:
    """Generate the x86 MiniKernel assembly and its gate plan.

    ``variant`` selects how page-table updates are handled:

    * ``"plain"`` — ``sys_mmap`` writes CR3 via the vm domain (§6.1);
    * ``"nested"`` — a Nested-Kernel monitor mediates all page-table
      writes behind entry/exit gates, toggling CR0.WP (§6.2, Nest.Mon.);
    * ``"nested_log"`` — as ``"nested"`` plus a circular log of recent
      page-table modifications (Nest.Mon.Log).
    """
    if variant not in ("plain", "nested", "nested_log"):
        raise ValueError("unknown kernel variant %r" % variant)
    gates: List[GateSite] = []

    def gate(name: str, gate_label: str, dest_label: str, domain: str) -> int:
        gates.append(GateSite(name, gate_label, dest_label, domain))
        return len(gates) - 1

    lines: List[str] = []
    emit = lines.append

    # ------------------------------------------------------------------
    # Boot (domain-0): IDT, IDTR, LSTAR, EFER.SCE, spec-ctrl hardening.
    # These registers are frozen after boot — no runtime domain can
    # write them (Section 6.1).
    # ------------------------------------------------------------------
    emit("boot:")
    emit("    mov rsp, %d" % KERNEL_STACK_TOP)
    emit("    mov rax, %d" % IDT_BASE)
    for vector, label in (
        (VEC_UD, "vec_ud"),
        (VEC_GP, "vec_gp"),
        (VEC_ISA_GRID, "vec_isagrid"),
        (VEC_TRUSTED_MEMORY, "vec_tmem"),
    ):
        emit("    mov rbx, %s" % label)
        emit("    mov [rax+%d], rbx" % (8 * vector))
    emit("    mov rbx, %d" % DATA_BASE)
    emit("    mov rcx, %d" % IDT_BASE)
    emit("    mov [rbx+%d], rcx" % OFF_DTR_SCRATCH)
    emit("    mov rcx, 4095")
    emit("    mov [rbx+%d], rcx" % (OFF_DTR_SCRATCH + 8))
    emit("    lidt [rbx+%d]" % OFF_DTR_SCRATCH)
    emit("    mov rcx, %d" % MSR_LSTAR)
    emit("    mov rax, syscall_entry")
    emit("    mov rdx, 0")
    emit("    wrmsr")
    emit("    mov rcx, %d" % MSR_EFER)
    emit("    mov rax, %d" % EFER_SCE)
    emit("    mov rdx, 0")
    emit("    wrmsr")
    emit("    mov rcx, %d" % MSR_SPEC_CTRL)  # SgxPectre hardening at init
    emit("    mov rax, 1")
    emit("    mov rdx, 0")
    emit("    wrmsr")
    if decomposed:
        index = gate("leave_d0", "g_leave_d0", "kernel_init", "kernel")
        emit("    mov r10, %d" % index)
        emit("g_leave_d0:")
        emit("    hccall r10")
    emit("kernel_init:")
    emit("    mov rcx, %d" % USER_BASE)
    emit("    sysret")

    # ------------------------------------------------------------------
    # Fault vectors: record which vector fired, then take the common
    # fault path (gate into the basic domain when decomposed).
    # ------------------------------------------------------------------
    for label, vector in (
        ("vec_ud", VEC_UD),
        ("vec_gp", VEC_GP),
        ("vec_isagrid", VEC_ISA_GRID),
        ("vec_tmem", VEC_TRUSTED_MEMORY),
    ):
        emit("%s:" % label)
        emit("    mov r8, %d" % DATA_BASE)
        emit("    mov r9, %d" % vector)
        emit("    mov [r8+%d], r9" % OFF_LAST_CAUSE)
        emit("    jmp fault_path")
    emit("fault_path:")
    if decomposed:
        index = gate("fault", "g_fault", "fault_body", "kernel")
        emit("    mov r10, %d" % index)
        emit("g_fault:")
        emit("    hccall r10")
    emit("    .align 64")
    emit("fault_body:")
    emit("    mov r8, %d" % DATA_BASE)
    emit("    mov r9, [r8+%d]" % OFF_FAULT_COUNT)
    emit("    add r9, 1")
    emit("    mov [r8+%d], r9" % OFF_FAULT_COUNT)
    emit("    mov r9, [r8+%d]" % OFF_ABORT_RIP)
    emit("    test r9, r9")
    emit("    jne fault_redirect")
    emit("    hlt")  # no abort continuation: stop the machine visibly
    emit("fault_redirect:")
    emit("    mov rbx, rsp")      # rsp-based operands need SIB; copy first
    emit("    mov [rbx+8], r9")   # rewrite the interrupt frame's rip
    emit("    mov r9, 3")
    emit("    mov [rbx+0], r9")   # resume in ring 3
    emit("    iret")

    # ------------------------------------------------------------------
    # Syscall entry (LSTAR target).
    # ------------------------------------------------------------------
    emit("    .align 64")
    emit("syscall_entry:")
    emit("    mov r8, %d" % DATA_BASE)
    emit("    mov [r8+%d], rsp" % OFF_SAVED_RSP)
    emit("    mov [r8+%d], rcx" % OFF_SAVED_RCX)
    emit("    mov rsp, %d" % (KERNEL_STACK_TOP - 64))
    emit("    mov r9, [r8+%d]" % OFF_SYSCALL_COUNT)
    emit("    add r9, 1")
    emit("    mov [r8+%d], r9" % OFF_SYSCALL_COUNT)
    # Syscall jump table (like Linux's sys_call_table): index into a
    # table of 8-byte jmp trampolines, enter via push+ret (the encoder
    # subset has no indirect jmp).
    dispatch = {
        SYS_EXIT: "sys_exit",
        SYS_GETPID: "sys_getpid",
        SYS_READ: "sys_read",
        SYS_WRITE: "sys_write",
        SYS_STAT: "sys_stat",
        SYS_FSTAT: "sys_stat",
        SYS_OPEN: "sys_open",
        SYS_CLOSE: "sys_close",
        SYS_SIGACTION: "sys_sigaction",
        SYS_MMAP: "sys_mmap",
        SYS_GETPPID: "sys_getpid",
        SYS_DUP: "sys_dup",
        SYS_IOCTL: "sys_ioctl",
        SYS_YIELD: "sys_yield",
        SYS_GETTIME: "sys_gettime",
        SYS_SELECT: "sys_select",
        SYS_VULN: "sys_vuln",
        SYS_REGISTER: "sys_register",
        SYS_MMAP2: "sys_mmap2",
    }
    table_size = max(dispatch) + 1
    emit("    cmp rax, %d" % table_size)
    emit("    jae bad_syscall")
    emit("    mov r9, rax")
    emit("    shl r9, 3")
    emit("    add r9, syscall_table")
    emit("    push r9")
    emit("    ret")
    emit("bad_syscall:")
    emit("    mov rax, -1")
    emit("    jmp syscall_exit")
    emit("    .align 64")
    emit("syscall_table:")
    for number in range(table_size):
        emit("    jmp %s" % dispatch.get(number, "bad_syscall"))
        emit("    .align 8")

    # ------------------------------------------------------------------
    # Syscall bodies.
    # ------------------------------------------------------------------
    emit("    .align 64")
    emit("sys_exit:")
    emit("    mov rax, rdi")
    emit("    hlt")

    emit("    .align 64")
    emit("sys_getpid:")
    emit("    mov rax, 42")
    emit("    jmp syscall_exit")

    # read(buf, len): SMAP-opened copy from the kernel buffer.  The
    # CR4 writes flip only the SMAP bit — the basic domain's entire
    # write privilege on CR4 (bit-level control in action).
    for name, src_is_kernel in (("read", True), ("write", False)):
        emit("sys_%s:" % name)
        emit("    mov rax, cr4")
        emit("    or rax, %d" % CR4_SMAP)
        emit("    mov cr4, rax")
        if src_is_kernel:
            emit("    mov r9, %d" % (DATA_BASE + OFF_KBUF))
            emit("    mov r10, rdi")
        else:
            emit("    mov r9, rdi")
            emit("    mov r10, %d" % (DATA_BASE + OFF_KBUF))
        emit("    mov r11, rsi")
        emit("    and r11, 248")
        emit("%s_loop:" % name)
        emit("    cmp r11, 0")
        emit("    je %s_done" % name)
        emit("    mov rbx, [r9+0]")
        emit("    mov [r10+0], rbx")
        emit("    add r9, 8")
        emit("    add r10, 8")
        emit("    sub r11, 8")
        emit("    jmp %s_loop" % name)
        emit("%s_done:" % name)
        emit("    mov rax, cr4")
        emit("    and rax, %d" % -(CR4_SMAP + 1))
        emit("    mov cr4, rax")
        emit("    mov rax, 0")
        emit("    jmp syscall_exit")

    emit("    .align 64")
    emit("sys_stat:")
    emit("    mov r9, %d" % (DATA_BASE + OFF_STAT))
    emit("    mov r10, 16")
    emit("stat_loop:")
    emit("    mov [r9+0], r10")
    emit("    add r9, 8")
    emit("    sub r10, 1")
    emit("    jne stat_loop")
    emit("    mov rax, 0")
    emit("    jmp syscall_exit")

    emit("    .align 64")
    emit("sys_open:")
    emit("    mov r9, rdi")
    emit("    mov r10, 0")
    emit("    mov r11, 8")
    emit("open_hash:")
    emit("    shl r10, 5")
    emit("    add r10, r9")
    emit("    shr r9, 3")
    emit("    sub r11, 1")
    emit("    jne open_hash")
    emit("    and r10, 63")
    emit("    mov r9, %d" % (DATA_BASE + OFF_FD_TABLE))
    emit("    mov rbx, r10")
    emit("    shl rbx, 3")
    emit("    add r9, rbx")
    emit("    mov rbx, 1")
    emit("    mov [r9+0], rbx")
    emit("    mov rax, r10")
    emit("    jmp syscall_exit")

    emit("    .align 64")
    emit("sys_close:")
    emit("    mov r9, rdi")
    emit("    and r9, 63")
    emit("    shl r9, 3")
    emit("    add r9, %d" % (DATA_BASE + OFF_FD_TABLE))
    emit("    mov rbx, 0")
    emit("    mov [r9+0], rbx")
    emit("    mov rax, 0")
    emit("    jmp syscall_exit")

    emit("    .align 64")
    emit("sys_dup:")
    emit("    mov r9, rdi")
    emit("    and r9, 63")
    emit("    shl r9, 3")
    emit("    add r9, %d" % (DATA_BASE + OFF_FD_TABLE))
    emit("    mov rbx, [r9+0]")
    emit("    mov [r9+8], rbx")
    emit("    mov rax, 0")
    emit("    jmp syscall_exit")

    # sigaction(sig, handler): store handler, build the sigframe, then
    # refresh the LDT (the LDTR write lives in the ldt domain).
    emit("    .align 64")
    emit("sys_sigaction:")
    emit("    mov r9, rdi")
    emit("    and r9, 63")
    emit("    shl r9, 3")
    emit("    add r9, %d" % (DATA_BASE + OFF_SIG_TABLE))
    emit("    mov [r9+0], rsi")
    emit("    mov r9, %d" % (DATA_BASE + OFF_STAT))
    emit("    mov r10, %d" % SIGFRAME_WORDS)
    emit("sig_frame_loop:")
    emit("    mov [r9+0], rsi")
    emit("    add r9, 8")
    emit("    sub r10, 1")
    emit("    jne sig_frame_loop")
    index = gate("set_ldt", "g_set_ldt", "fn_set_ldt", "ldt")
    lines.extend(_privileged_call(decomposed, index, "g_set_ldt", "fn_set_ldt"))
    emit("    mov rax, 0")
    emit("    jmp syscall_exit")

    # mmap: a page-table update.  Plain variant: the CR3 write lives in
    # the vm domain.  Nested variants: the monitor mediates the
    # page-table-entry writes behind entry/exit gates (Section 6.2).
    emit("    .align 64")
    emit("sys_mmap:")
    # Populate the page-table entries first (the bulk of a real mmap).
    emit("    mov r9, %d" % (DATA_BASE + OFF_PTE_WORK))
    emit("    mov r10, %d" % PTE_ENTRIES)
    emit("mmap_pte_loop:")
    emit("    mov rbx, r10")
    emit("    shl rbx, 10")
    emit("    or rbx, rdi")
    emit("    mov [r9+0], rbx")
    emit("    add r9, 8")
    emit("    sub r10, 1")
    emit("    jne mmap_pte_loop")
    if variant == "plain":
        index = gate("write_cr3", "g_write_cr3", "fn_write_cr3", "vm")
        lines.extend(_privileged_call(decomposed, index, "g_write_cr3", "fn_write_cr3"))
    elif decomposed:
        index = gate("mon_enter", "g_mon_enter", "monitor_entry", "monitor")
        emit("    mov r10, %d" % index)
        emit("g_mon_enter:")
        emit("    hccall r10")
    else:
        emit("    jmp monitor_entry")
    emit("mmap_done:")
    emit("    mov rax, 0")
    emit("    jmp syscall_exit")

    # yield: context-switch work — full register-context save/restore
    # plus a runqueue scan; the CR0.TS flip lives in the fpu domain.
    emit("    .align 64")
    emit("sys_yield:")
    emit("    mov r9, %d" % (DATA_BASE + OFF_CTX_AREA))
    emit("    mov r10, %d" % CTX_SAVE_WORDS)
    emit("yield_save:")
    emit("    mov [r9+0], r10")
    emit("    add r9, 8")
    emit("    sub r10, 1")
    emit("    jne yield_save")
    emit("    mov r9, %d" % (DATA_BASE + OFF_CTX_AREA))
    emit("    mov r10, %d" % CTX_SAVE_WORDS)
    emit("yield_restore:")
    emit("    mov rbx, [r9+0]")
    emit("    add r9, 8")
    emit("    sub r10, 1")
    emit("    jne yield_restore")
    index = gate("fpu_switch", "g_fpu_switch", "fn_fpu_switch", "fpu")
    lines.extend(_privileged_call(decomposed, index, "g_fpu_switch", "fn_fpu_switch"))
    emit("    mov rax, 0")
    emit("    jmp syscall_exit")

    emit("    .align 64")
    emit("sys_gettime:")
    emit("    rdtsc")
    emit("    jmp syscall_exit")

    emit("    .align 64")
    emit("sys_select:")
    emit("    mov r9, %d" % (DATA_BASE + OFF_FD_TABLE))
    emit("    mov r10, 64")
    emit("    mov rax, 0")
    emit("select_loop:")
    emit("    mov rbx, [r9+0]")
    emit("    add rax, rbx")
    emit("    add r9, 8")
    emit("    sub r10, 1")
    emit("    jne select_loop")
    emit("    jmp syscall_exit")

    # ioctl(service, arg): the Table-5 path.  Mirrors a VFS ioctl: fd
    # lookup, permission scan, argument staging, then dispatch into the
    # service module's domain.
    emit("    .align 64")
    emit("sys_ioctl:")
    emit("    mov r9, %d" % (DATA_BASE + OFF_FD_TABLE))
    emit("    mov r10, 16")
    emit("ioctl_fd_scan:")
    emit("    mov rbx, [r9+0]")
    emit("    add r9, 8")
    emit("    sub r10, 1")
    emit("    jne ioctl_fd_scan")
    emit("    mov r9, %d" % (DATA_BASE + OFF_STAT))
    emit("    mov r10, 8")
    emit("ioctl_arg_copy:")
    emit("    mov rbx, [r9+0]")
    emit("    mov [r9+64], rbx")
    emit("    add r9, 8")
    emit("    sub r10, 1")
    emit("    jne ioctl_arg_copy")
    services = [
        (SERVICE_CPUID, "svc_cpuid", "fn_svc_cpuid", "cpuid"),
        (SERVICE_MTRR, "svc_mtrr", "fn_svc_mtrr", "mtrr"),
        (SERVICE_PMC_IRQ, "svc_pmc_irq", "fn_svc_pmc_irq", "pmu"),
        (SERVICE_PMC_MISS, "svc_pmc_miss", "fn_svc_pmc_miss", "pmu"),
        (SERVICE_VOLTAGE, "svc_voltage", "fn_svc_voltage", "power"),
    ]
    for number, name, fn_label, _domain in services:
        emit("    cmp rdi, %d" % number)
        emit("    je ioctl_%s" % name)
    emit("    mov rax, -1")
    emit("    jmp syscall_exit")
    for number, name, fn_label, domain in services:
        emit("ioctl_%s:" % name)
        index = gate(name, "g_%s" % name, fn_label, domain)
        lines.extend(_privileged_call(decomposed, index, "g_%s" % name, fn_label))
        emit("    jmp syscall_exit")

    # vuln(target, module): a hijackable entry point per kernel module —
    # jumps to a caller-chosen address inside that module's ISA domain
    # (attacker model: control-flow hijack in an unrelated module).
    # rdi = target address, rsi = module selector.
    vuln_modules = ("debug", "power", "mtrr", "cpuid", "pmu", "vm", "fpu", "ldt")
    emit("    .align 64")
    emit("sys_vuln:")
    for module_index, module in enumerate(vuln_modules):
        emit("    cmp rsi, %d" % module_index)
        emit("    je vuln_%s" % module)
    emit("    mov rax, -1")
    emit("    jmp syscall_exit")
    for module in vuln_modules:
        emit("vuln_%s:" % module)
        index = gate(
            "vuln_%s" % module, "g_vuln_%s" % module, "fn_vuln_%s" % module, module
        )
        lines.extend(
            _privileged_call(
                decomposed, index, "g_vuln_%s" % module, "fn_vuln_%s" % module
            )
        )
        emit("    mov rax, 0")
        emit("    jmp syscall_exit")

    # Runtime gate registration (§5.2): gate into domain-0, whose
    # software appends an SGT entry in trusted memory (rdi = gate
    # address, rsi = destination, rdx = destination domain).
    emit("    .align 64")
    emit("sys_register:")
    if decomposed:
        index = gate("register", "g_register", "fn_register_d0", "domain-0")
        lines.extend(_privileged_call(decomposed, index, "g_register", "fn_register_d0"))
    else:
        emit("    mov rax, -1")
    emit("    mov r8, %d" % DATA_BASE)
    emit("    mov [r8+%d], rax" % OFF_RT_GATE)
    emit("    jmp syscall_exit")

    # mmap2: identical to mmap's CR3 write but through the runtime gate.
    emit("    .align 64")
    emit("sys_mmap2:")
    if decomposed:
        emit("    mov r8, %d" % DATA_BASE)
        emit("    mov r10, [r8+%d]" % OFF_RT_GATE)
        emit("g_mmap2:")
        emit("    hccalls r10")
    else:
        emit("    call fn_write_cr3")
    emit("    mov rax, 0")
    emit("    jmp syscall_exit")

    # ------------------------------------------------------------------
    # Privileged helpers (own domains when decomposed).
    # ------------------------------------------------------------------
    if decomposed:
        emit("    .align 64")
        emit("fn_register_d0:")
        emit("    mov r8, %d" % META_NEXT_GATE)
        emit("    mov r9, [r8+0]")         # next free gate id
        emit("    mov r11, %d" % META_SGT_BASE)
        emit("    mov r11, [r11+0]")       # SGT base address
        emit("    mov rbx, r9")
        emit("    shl rbx, 5")             # 4 words = 32 bytes per entry
        emit("    add r11, rbx")
        emit("    mov [r11+0], rdi")       # gate address
        emit("    mov [r11+8], rsi")       # destination address
        emit("    mov [r11+16], rdx")      # destination domain
        emit("    mov rbx, 1")
        emit("    mov [r11+24], rbx")      # valid
        emit("    mov rax, r9")            # return the new gate id
        emit("    inc r9")
        emit("    mov [r8+0], r9")
        emit("    hcrets")

    emit("    .align 64")
    emit("fn_write_cr3:")
    emit("    mov cr3, rdi")
    emit("    mov rbx, %d" % DATA_BASE)
    emit("    invlpg [rbx+0]")
    lines.extend(_privileged_return(decomposed))

    emit("    .align 64")
    emit("fn_fpu_switch:")
    emit("    mov rbx, cr0")
    emit("    or rbx, %d" % CR0_TS)
    emit("    mov cr0, rbx")
    emit("    clts")
    lines.extend(_privileged_return(decomposed))

    emit("    .align 64")
    emit("fn_set_ldt:")
    emit("    mov rbx, 8")
    emit("    lldt rbx")
    lines.extend(_privileged_return(decomposed))

    emit("    .align 64")
    emit("fn_svc_cpuid:")
    emit("    mov rax, 1")
    emit("    cpuid")
    lines.extend(_privileged_return(decomposed))

    emit("    .align 64")
    emit("fn_svc_mtrr:")
    emit("    mov rcx, 0x200")
    emit("    rdmsr")
    emit("    and rax, 255")
    lines.extend(_privileged_return(decomposed))

    emit("    .align 64")
    emit("fn_svc_pmc_irq:")
    emit("    mov rcx, 0")
    emit("    rdpmc")
    lines.extend(_privileged_return(decomposed))

    emit("    .align 64")
    emit("fn_svc_pmc_miss:")
    emit("    mov rcx, 1")
    emit("    rdpmc")
    lines.extend(_privileged_return(decomposed))

    emit("    .align 64")
    emit("fn_svc_voltage:")
    emit("    mov rcx, 0x150")
    emit("    rdmsr")
    lines.extend(_privileged_return(decomposed))

    # Nested-Kernel monitor (Section 6.2): clears CR0.WP, validates and
    # writes the page-table entries, optionally logs, restores WP and
    # exits through the registered exit gate.
    if variant != "plain":
        emit("    .align 64")
        emit("monitor_entry:")
        emit("    mov rbx, cr0")
        emit("    and rbx, %d" % -(CR0_WP + 1))
        emit("    mov cr0, rbx")
        emit("    mov r9, %d" % (DATA_BASE + OFF_PT_AREA))
        emit("    mov r11, 4")
        emit("mon_pt_loop:")
        emit("    mov [r9+0], rdi")
        emit("    add r9, 8")
        emit("    sub r11, 1")
        emit("    jne mon_pt_loop")
        if variant == "nested_log":
            emit("    mov r8, %d" % DATA_BASE)
            emit("    mov r9, [r8+%d]" % OFF_MON_LOG_IDX)
            emit("    mov r11, r9")
            emit("    shl r11, 4")
            emit("    add r11, %d" % (DATA_BASE + OFF_MON_LOG))
            emit("    mov [r11+0], rdi")
            emit("    mov [r11+8], r9")
            emit("    add r9, 1")
            emit("    and r9, 255")
            emit("    mov [r8+%d], r9" % OFF_MON_LOG_IDX)
        emit("    mov rbx, cr0")
        emit("    or rbx, %d" % CR0_WP)
        emit("    mov cr0, rbx")
        if decomposed:
            index = gate("mon_exit", "g_mon_exit", "mmap_done", "kernel")
            emit("    mov r10, %d" % index)
            emit("g_mon_exit:")
            emit("    hccall r10")
        else:
            emit("    jmp mmap_done")

    # The hijackable module bodies: call the attacker-controlled target
    # (no indirect call in the encoder subset, so push-target-and-ret).
    for module in vuln_modules:
        emit("fn_vuln_%s:" % module)
        emit("    mov rbx, rdi")
        emit("    call vuln_dispatch")
        lines.extend(_privileged_return(decomposed))
    emit("vuln_dispatch:")
    emit("    push rbx")
    emit("    ret")

    # ------------------------------------------------------------------
    # Syscall exit.
    # ------------------------------------------------------------------
    emit("    .align 64")
    emit("syscall_exit:")
    emit("    mov r8, %d" % DATA_BASE)
    emit("    mov rcx, [r8+%d]" % OFF_SAVED_RCX)
    emit("    mov rsp, [r8+%d]" % OFF_SAVED_RSP)
    emit("    sysret")

    return "\n".join(lines) + "\n", gates


#: Instruction classes of the basic kernel domain.
BASIC_CLASSES = (
    "alu", "mov", "stack", "branch", "call", "nop", "string",
    "syscall", "sysret", "int", "iret", "rdtsc", "hlt", "pfch", "pflh",
    "mov_cr",
)
BASIC_READABLE = ("cr0", "cr2", "cr3", "cr4", "tsc", "domain", "pdomain")

#: Every module domain's baseline.
MODULE_CLASSES = ("alu", "mov", "stack", "branch", "call", "nop", "string", "hlt")

#: Per-module extra grants: name -> (extra classes, [(csr, read, write)],
#: [(csr, bitmask)]).
MODULE_GRANTS = {
    "vm": (("mov_cr", "invlpg"), [("cr3", True, True)], []),
    "fpu": (("mov_cr", "clts"), [("cr0", True, False)], [("cr0", CR0_TS | CR0_NE)]),
    "ldt": (("lldt",), [("ldtr", True, True)], []),
    "power": (("rdmsr", "wrmsr"), [("msr_voltage", True, True)], []),
    "mtrr": (("rdmsr",), [
        ("msr_mtrrcap", True, False),
        ("msr_mtrr_physbase0", True, False),
        ("msr_mtrr_physmask0", True, False),
        ("msr_mtrr_def_type", True, False),
    ], []),
    "cpuid": (("cpuid",), [], []),
    "pmu": (("rdpmc",), [("pmc0", True, False), ("pmc1", True, False)], []),
    "debug": (("mov_dr",), [
        ("dr0", True, True), ("dr1", True, True), ("dr2", True, True),
        ("dr3", True, True), ("dr6", True, True), ("dr7", True, True),
    ], []),
    # The Nested-Kernel monitor: "runs in an ISA domain with the
    # privilege of writing the MSRs and control registers" (§6.2).
    "monitor": (("mov_cr", "invlpg", "rdmsr", "wrmsr"), [
        ("cr0", True, False), ("cr3", True, True), ("msr_efer", True, True),
    ], [("cr0", CR0_WP)]),
}


class X86Kernel:
    """A booted x86 MiniKernel (native or decomposed)."""

    def __init__(
        self,
        mode: str = "decomposed",
        config: PcuConfig = CONFIG_8E,
        *,
        variant: str = "plain",
    ):
        if mode not in ("native", "decomposed"):
            raise ValueError("mode must be 'native' or 'decomposed'")
        self.mode = mode
        self.variant = variant
        self.decomposed = mode == "decomposed"
        self.system = build_x86_system(config, with_isagrid=self.decomposed)
        source, gate_plan = kernel_source(self.decomposed, variant)
        self.program = assemble(source, base=KERNEL_BASE)
        self.gate_plan = gate_plan
        self.domains: Dict[str, int] = {}
        self.system.load(self.program)
        if self.decomposed:
            self._configure_domains()

    # ------------------------------------------------------------------
    def _configure_domains(self) -> None:
        manager = self.system.manager
        assert manager is not None
        kernel = manager.create_domain("kernel")
        manager.allow_instructions(kernel.domain_id, BASIC_CLASSES)
        for name in BASIC_READABLE:
            manager.grant_register(kernel.domain_id, name, read=True)
        manager.grant_register_bits(kernel.domain_id, "cr4", CR4_SMAP)
        self.domains["kernel"] = kernel.domain_id

        for name, (classes, csrs, masks) in MODULE_GRANTS.items():
            domain = manager.create_domain(name)
            manager.allow_instructions(domain.domain_id, MODULE_CLASSES)
            manager.allow_instructions(domain.domain_id, classes)
            for csr, read, write in csrs:
                manager.grant_register(domain.domain_id, csr, read=read, write=write)
            for csr, mask in masks:
                manager.grant_register_bits(domain.domain_id, csr, mask)
            self.domains[name] = domain.domain_id

        self.domains["domain-0"] = 0
        manager.allocate_trusted_stack(frames=128)
        for site in self.gate_plan:
            manager.register_gate(
                self.program.symbol(site.gate_label),
                self.program.symbol(site.dest_label),
                self.domains[site.domain],
            )
        # Publish the SGT base and next-free gate id for domain-0's
        # runtime registration service (§5.2).
        pcu = self.system.pcu
        self.memory.store_word(META_SGT_BASE, pcu.sgt.base)
        self.memory.store_word(META_NEXT_GATE, pcu.sgt.gate_nr)

    # ------------------------------------------------------------------
    @property
    def cpu(self):
        return self.system.cpu

    @property
    def memory(self):
        return self.system.machine.memory

    @property
    def fault_count(self) -> int:
        return self.memory.load(DATA_BASE + OFF_FAULT_COUNT, 8)

    @property
    def last_fault_vector(self) -> int:
        return self.memory.load(DATA_BASE + OFF_LAST_CAUSE, 8)

    @property
    def syscall_count(self) -> int:
        return self.memory.load(DATA_BASE + OFF_SYSCALL_COUNT, 8)

    def set_abort_continuation(self, address: int) -> None:
        """Where faulted contexts resume (attack programs set this)."""
        self.memory.store(DATA_BASE + OFF_ABORT_RIP, address, 8)

    def load_user(self, user: Program) -> None:
        if user.base != USER_BASE:
            raise ValueError("user programs must be assembled at USER_BASE")
        self.system.load(user)

    def run(self, user: Optional[Program] = None, max_steps: int = 5_000_000) -> MachineStats:
        if user is not None:
            self.load_user(user)
        return self.system.run(self.program.symbol("boot"), max_steps)

    def symbol(self, name: str) -> int:
        return self.program.symbol(name)
