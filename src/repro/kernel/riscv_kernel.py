"""The RISC-V MiniKernel and its ISA-Grid decomposition (Section 6.1).

The kernel is real simulated code: boot, supervisor trap entry, a
syscall dispatcher covering the LMbench operation set, and a handful of
privileged helper functions that touch CSRs.  It builds in two modes:

``native``
    The baseline: no ISA-Grid hardware, privileged helpers are plain
    function calls, every CSR is writable from anywhere in S mode.

``decomposed``
    The paper's use case 1.  The bulk of the kernel runs in a
    de-privileged *basic* domain that can execute general computation,
    read the exception CSRs, and flip only the SPP/SPIE/SIE bits of
    ``sstatus``.  Each CSR-writing helper lives in its own ISA domain
    reachable only through registered gates:

    ================  =======================  =====================
    domain            privilege                 caller
    ================  =======================  =====================
    ``vm``            write SATP, sfence.vma    ``sys_mmap``
    ``irq``           write SIE/SIP             ``sys_sigaction``
    ``ctx``           sstatus.FS bits           ``sys_yield``
    ``misc``          write scounteren only     ``sys_vuln`` (the
                                                hijackable module)
    ================  =======================  =====================

ISA-Grid faults vector to the shared trap entry, gate into the basic
domain, bump a fault counter in kernel data, skip the faulting
instruction and resume — so attack programs run to completion and the
evaluation reads the counter afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import CONFIG_8E, PcuConfig
from repro.riscv import (
    DATA_BASE,
    KERNEL_BASE,
    KERNEL_STACK_TOP,
    TRUSTED_BASE,
    TRUSTED_SIZE,
    USER_BASE,
    Program,
    RiscvSystem,
    assemble,
    build_riscv_system,
)
from repro.sim.machine import MachineStats

from .syscalls import (
    SYS_CLOSE,
    SYS_DUP,
    SYS_EXIT,
    SYS_FSTAT,
    SYS_GETPID,
    SYS_GETPPID,
    SYS_GETTIME,
    SYS_IOCTL,
    SYS_MMAP,
    SYS_MMAP2,
    SYS_OPEN,
    SYS_READ,
    SYS_REGISTER,
    SYS_SELECT,
    SYS_SIGACTION,
    SYS_STAT,
    SYS_VULN,
    SYS_WRITE,
    SYS_YIELD,
)

# Kernel-data layout (offsets from DATA_BASE).
OFF_FAULT_COUNT = 0x00
OFF_LAST_CAUSE = 0x08
OFF_SYSCALL_COUNT = 0x18
OFF_SIG_TABLE = 0x400
OFF_KBUF = 0x800
OFF_FD_TABLE = 0xA00
OFF_STAT = 0xE00
OFF_PT_AREA = 0x1000   # page-table pages populated by sys_mmap
OFF_CTX_AREA = 0x2000  # register-context area used by sys_yield
OFF_RT_GATE = 0x20     # gate id returned by runtime registration (§5.2)

# Runtime-registration metadata kept at the top of trusted memory:
# domain-0's registration function (assembly) reads the SGT base and
# bumps the next-free gate id here.  Only domain-0 can touch these
# words — they live inside the trusted region.
META_NEXT_GATE = TRUSTED_BASE + TRUSTED_SIZE - 8
META_SGT_BASE = TRUSTED_BASE + TRUSTED_SIZE - 16

# Representative work sizes for the heavyweight syscalls, sized so the
# native latencies approximate LMbench-on-Linux ratios (a real mmap or
# context switch costs thousands of cycles; the gate adds ~23).
PTE_ENTRIES = 192
SIGFRAME_WORDS = 96
CTX_SAVE_WORDS = 112

SSTATUS_BASIC_MASK = 0x122   # SPP | SPIE | SIE
SSTATUS_FS_MASK = 0x6000     # FS field

#: sys_vuln module selectors (the a1 argument).
VULN_MODULES = {"misc": 0, "vm": 1, "irq": 2, "ctx": 3}


@dataclass
class GateSite:
    """One gate call site in the kernel source."""

    name: str
    gate_label: str
    dest_label: str
    domain: str


def _privileged_call(
    decomposed: bool, gate_index: int, gate_label: str, dest_label: str
) -> List[str]:
    """Emit either a gated cross-domain call or a plain function call."""
    if decomposed:
        return [
            "    li t0, %d" % gate_index,
            "%s:" % gate_label,
            "    hccalls t0",
        ]
    return ["    jal ra, %s" % dest_label]


def _privileged_return(decomposed: bool) -> List[str]:
    return ["    hcrets"] if decomposed else ["    ret"]


def kernel_source(decomposed: bool, *, pti: bool = False) -> Tuple[str, List[GateSite]]:
    """Generate the MiniKernel assembly and its gate plan.

    With ``pti`` the syscall path switches SATP on entry and exit, the
    page-table-isolation cost of the Table 4 "w/ PTI" row (only
    meaningful in native mode).
    """
    gates: List[GateSite] = []

    def gate(name: str, gate_label: str, dest_label: str, domain: str) -> int:
        gates.append(GateSite(name, gate_label, dest_label, domain))
        return len(gates) - 1

    lines: List[str] = []
    emit = lines.append

    # ------------------------------------------------------------------
    # Boot (domain-0 on the decomposed kernel).
    # ------------------------------------------------------------------
    emit("boot:")
    emit("    li sp, %d" % KERNEL_STACK_TOP)
    # sscratch holds the top of the unused trap-stack region; the trap
    # entry swaps it with sp, which keeps nested traps re-entrant.
    emit("    li t0, %d" % KERNEL_STACK_TOP)
    emit("    csrw sscratch, t0")
    emit("    la t0, trap_entry")
    emit("    csrw stvec, t0")
    emit("    li t1, 7")
    emit("    csrw scounteren, t1")
    if decomposed:
        index = gate("leave_d0", "g_leave_d0", "kernel_init", "kernel")
        emit("    li t0, %d" % index)
        emit("g_leave_d0:")
        emit("    hccall t0")
    emit("kernel_init:")
    emit("    la t0, %d" % USER_BASE)
    emit("    csrw sepc, t0")
    emit("    li t1, 0x100")
    emit("    csrrc x0, sstatus, t1")
    emit("    sret")

    # ------------------------------------------------------------------
    # Trap entry.
    # ------------------------------------------------------------------
    # Re-entrant trap frame: swap sp with the trap-stack top held in
    # sscratch, save the interrupted sp and sepc in the frame, then move
    # sscratch down so a nested trap gets its own frame.
    emit("    .align 64")
    emit("trap_entry:")
    emit("    csrrw sp, sscratch, sp")
    emit("    addi sp, sp, -64")
    emit("    sd ra, 0(sp)")
    emit("    sd t0, 8(sp)")
    emit("    sd t1, 16(sp)")
    emit("    sd t2, 24(sp)")
    emit("    sd t3, 32(sp)")
    emit("    csrr t0, sscratch")
    emit("    sd t0, 40(sp)")
    emit("    csrr t0, sepc")
    emit("    sd t0, 48(sp)")
    emit("    csrw sscratch, sp")
    emit("    csrr t0, scause")
    emit("    li t1, 8")
    emit("    beq t0, t1, do_syscall")
    emit("    li t1, 9")
    emit("    beq t0, t1, do_syscall")
    emit("fault_path:")
    if decomposed:
        index = gate("fault", "g_fault", "fault_handler", "kernel")
        emit("    li t0, %d" % index)
        emit("g_fault:")
        emit("    hccall t0")
    else:
        emit("    j fault_handler")
    emit("    .align 64")
    emit("fault_handler:")
    emit("    la t1, %d" % DATA_BASE)
    emit("    ld t2, %d(t1)" % OFF_FAULT_COUNT)
    emit("    addi t2, t2, 1")
    emit("    sd t2, %d(t1)" % OFF_FAULT_COUNT)
    emit("    csrr t2, scause")
    emit("    sd t2, %d(t1)" % OFF_LAST_CAUSE)
    # Skip the faulting instruction: bump the sepc saved in this frame.
    emit("    ld t2, 48(sp)")
    emit("    addi t2, t2, 4")
    emit("    sd t2, 48(sp)")
    emit("    j trap_exit")

    # ------------------------------------------------------------------
    # Syscall dispatch.
    # ------------------------------------------------------------------
    emit("    .align 64")
    emit("do_syscall:")
    emit("    ld t0, 48(sp)")
    emit("    addi t0, t0, 4")
    emit("    sd t0, 48(sp)")
    emit("    la t1, %d" % DATA_BASE)
    emit("    ld t2, %d(t1)" % OFF_SYSCALL_COUNT)
    emit("    addi t2, t2, 1")
    emit("    sd t2, %d(t1)" % OFF_SYSCALL_COUNT)
    if pti:
        emit("    jal ra, fn_pti_enter")
    # Syscall jump table (like Linux's sys_call_table): one indirect
    # jump through a table of `j` trampolines instead of a compare chain.
    dispatch = {
        SYS_EXIT: "sys_exit",
        SYS_GETPID: "sys_getpid",
        SYS_READ: "sys_read",
        SYS_WRITE: "sys_write",
        SYS_STAT: "sys_stat",
        SYS_FSTAT: "sys_stat",
        SYS_OPEN: "sys_open",
        SYS_CLOSE: "sys_close",
        SYS_SIGACTION: "sys_sigaction",
        SYS_MMAP: "sys_mmap",
        SYS_GETPPID: "sys_getpid",
        SYS_DUP: "sys_dup",
        SYS_IOCTL: "sys_ioctl",
        SYS_YIELD: "sys_yield",
        SYS_GETTIME: "sys_gettime",
        SYS_SELECT: "sys_select",
        SYS_VULN: "sys_vuln",
        SYS_REGISTER: "sys_register",
        SYS_MMAP2: "sys_mmap2",
    }
    table_size = max(dispatch) + 1
    emit("    li t0, %d" % table_size)
    emit("    bgeu a7, t0, trap_exit_far")
    emit("    slli t0, a7, 2")
    emit("    la t1, syscall_table")
    emit("    add t1, t1, t0")
    emit("    jr t1")
    emit("trap_exit_far:")
    emit("    j trap_exit")
    emit("    .align 64")
    emit("syscall_table:")
    for number in range(table_size):
        emit("    j %s" % dispatch.get(number, "trap_exit"))

    # ------------------------------------------------------------------
    # Syscall bodies.
    # ------------------------------------------------------------------
    emit("    .align 64")
    emit("sys_exit:")
    emit("    halt")

    emit("    .align 64")
    emit("sys_getpid:")
    emit("    li a0, 42")
    emit("    j trap_exit")

    # read(buf, len): copy from the kernel buffer (len capped at 256,
    # rounded to 8).
    emit("    .align 64")
    emit("sys_read:")
    emit("    la t0, %d" % (DATA_BASE + OFF_KBUF))
    emit("    andi a1, a1, 248")
    emit("    mv t2, a0")
    emit("read_loop:")
    emit("    beqz a1, read_done")
    emit("    ld t1, 0(t0)")
    emit("    sd t1, 0(t2)")
    emit("    addi t0, t0, 8")
    emit("    addi t2, t2, 8")
    emit("    addi a1, a1, -8")
    emit("    j read_loop")
    emit("read_done:")
    emit("    mv a0, a1")
    emit("    j trap_exit")

    emit("    .align 64")
    emit("sys_write:")
    emit("    la t0, %d" % (DATA_BASE + OFF_KBUF))
    emit("    andi a1, a1, 248")
    emit("    mv t2, a0")
    emit("write_loop:")
    emit("    beqz a1, write_done")
    emit("    ld t1, 0(t2)")
    emit("    sd t1, 0(t0)")
    emit("    addi t0, t0, 8")
    emit("    addi t2, t2, 8")
    emit("    addi a1, a1, -8")
    emit("    j write_loop")
    emit("write_done:")
    emit("    mv a0, a1")
    emit("    j trap_exit")

    # stat/fstat: fill a 16-word record.
    emit("    .align 64")
    emit("sys_stat:")
    emit("    la t0, %d" % (DATA_BASE + OFF_STAT))
    emit("    li t1, 16")
    emit("stat_loop:")
    emit("    sd t1, 0(t0)")
    emit("    addi t0, t0, 8")
    emit("    addi t1, t1, -1")
    emit("    bnez t1, stat_loop")
    emit("    li a0, 0")
    emit("    j trap_exit")

    # open(path-hash): hash the argument, claim an fd slot.
    emit("    .align 64")
    emit("sys_open:")
    emit("    mv t0, a0")
    emit("    li t1, 0")
    emit("    li t2, 8")
    emit("open_hash:")
    emit("    slli t1, t1, 5")
    emit("    add t1, t1, t0")
    emit("    srli t0, t0, 3")
    emit("    addi t2, t2, -1")
    emit("    bnez t2, open_hash")
    emit("    andi t1, t1, 63")
    emit("    la t0, %d" % (DATA_BASE + OFF_FD_TABLE))
    emit("    slli t2, t1, 3")
    emit("    add t0, t0, t2")
    emit("    li t3, 1")
    emit("    sd t3, 0(t0)")
    emit("    mv a0, t1")
    emit("    j trap_exit")

    emit("    .align 64")
    emit("sys_close:")
    emit("    andi a0, a0, 63")
    emit("    la t0, %d" % (DATA_BASE + OFF_FD_TABLE))
    emit("    slli t2, a0, 3")
    emit("    add t0, t0, t2")
    emit("    sd zero, 0(t0)")
    emit("    li a0, 0")
    emit("    j trap_exit")

    emit("    .align 64")
    emit("sys_dup:")
    emit("    andi a0, a0, 63")
    emit("    la t0, %d" % (DATA_BASE + OFF_FD_TABLE))
    emit("    slli t2, a0, 3")
    emit("    add t2, t0, t2")
    emit("    ld t3, 0(t2)")
    emit("    addi a0, a0, 1")
    emit("    andi a0, a0, 63")
    emit("    slli t2, a0, 3")
    emit("    add t2, t0, t2")
    emit("    sd t3, 0(t2)")
    emit("    j trap_exit")

    # sigaction(sig, handler): store the handler, build the sigframe
    # bookkeeping a real kernel does, then enable the interrupt line —
    # the SIE write lives in the irq domain.
    emit("    .align 64")
    emit("sys_sigaction:")
    emit("    andi a0, a0, 63")
    emit("    la t0, %d" % (DATA_BASE + OFF_SIG_TABLE))
    emit("    slli t2, a0, 3")
    emit("    add t0, t0, t2")
    emit("    sd a1, 0(t0)")
    emit("    la t0, %d" % (DATA_BASE + OFF_STAT))
    emit("    li t1, %d" % SIGFRAME_WORDS)
    emit("sig_frame_loop:")
    emit("    sd a1, 0(t0)")
    emit("    addi t0, t0, 8")
    emit("    addi t1, t1, -1")
    emit("    bnez t1, sig_frame_loop")
    index = gate("enable_irq", "g_enable_irq", "fn_enable_irq", "irq")
    lines.extend(_privileged_call(decomposed, index, "g_enable_irq", "fn_enable_irq"))
    emit("    li a0, 0")
    emit("    j trap_exit")

    # mmap(satp-value): populate the page-table entries (the bulk of a
    # real mmap), then install the root via the vm domain's SATP write.
    emit("    .align 64")
    emit("sys_mmap:")
    emit("    la t0, %d" % (DATA_BASE + OFF_PT_AREA))
    emit("    li t1, %d" % PTE_ENTRIES)
    emit("    mv t2, a0")
    emit("mmap_pte_loop:")
    emit("    slli t3, t1, 10")
    emit("    or t3, t3, t2")
    emit("    sd t3, 0(t0)")
    emit("    addi t0, t0, 8")
    emit("    addi t1, t1, -1")
    emit("    bnez t1, mmap_pte_loop")
    index = gate("set_satp", "g_set_satp", "fn_set_satp", "vm")
    lines.extend(_privileged_call(decomposed, index, "g_set_satp", "fn_set_satp"))
    emit("    li a0, 0")
    emit("    j trap_exit")

    emit("    .align 64")
    emit("sys_ioctl:")
    emit("    li a0, 0")
    emit("    j trap_exit")

    # yield: context-switch work — save and restore a full register
    # context plus a runqueue scan, the way a real scheduler tick does;
    # FPU-state handling lives in the ctx domain (sstatus.FS bits).
    emit("    .align 64")
    emit("sys_yield:")
    emit("    la t0, %d" % (DATA_BASE + OFF_CTX_AREA))
    emit("    li t1, %d" % CTX_SAVE_WORDS)
    emit("yield_save:")
    emit("    sd t1, 0(t0)")
    emit("    addi t0, t0, 8")
    emit("    addi t1, t1, -1")
    emit("    bnez t1, yield_save")
    emit("    la t0, %d" % (DATA_BASE + OFF_CTX_AREA))
    emit("    li t1, %d" % CTX_SAVE_WORDS)
    emit("yield_restore:")
    emit("    ld t2, 0(t0)")
    emit("    addi t0, t0, 8")
    emit("    addi t1, t1, -1")
    emit("    bnez t1, yield_restore")
    index = gate("ctx_fpu", "g_ctx_fpu", "fn_ctx_fpu", "ctx")
    lines.extend(_privileged_call(decomposed, index, "g_ctx_fpu", "fn_ctx_fpu"))
    emit("    li a0, 0")
    emit("    j trap_exit")

    emit("    .align 64")
    emit("sys_gettime:")
    emit("    csrr a0, time")
    emit("    j trap_exit")

    emit("    .align 64")
    emit("sys_select:")
    emit("    la t0, %d" % (DATA_BASE + OFF_FD_TABLE))
    emit("    li t1, 64")
    emit("    li a0, 0")
    emit("select_loop:")
    emit("    ld t2, 0(t0)")
    emit("    add a0, a0, t2")
    emit("    addi t0, t0, 8")
    emit("    addi t1, t1, -1")
    emit("    bnez t1, select_loop")
    emit("    j trap_exit")

    # vuln(target, module): a hijackable entry point per kernel module —
    # jumps to a caller-controlled address *inside that module's ISA
    # domain* (the attacker model of §6.1: a control-flow hijack in an
    # unrelated module).  a0 = target address, a1 = module selector.
    vuln_modules = ("misc", "vm", "irq", "ctx")
    emit("    .align 64")
    emit("sys_vuln:")
    for module_index, module in enumerate(vuln_modules):
        emit("    li t0, %d" % module_index)
        emit("    beq a1, t0, vuln_%s" % module)
    emit("    j trap_exit")
    for module in vuln_modules:
        emit("vuln_%s:" % module)
        index = gate(
            "vuln_%s" % module, "g_vuln_%s" % module, "fn_vuln_%s" % module, module
        )
        lines.extend(
            _privileged_call(
                decomposed, index, "g_vuln_%s" % module, "fn_vuln_%s" % module
            )
        )
        emit("    li a0, 0")
        emit("    j trap_exit")

    # Runtime gate registration (§5.2): gate into domain-0, whose
    # software writes the new SGT entry directly into trusted memory —
    # only domain-0 loads/stores may touch that region.  a0 = gate
    # address, a1 = destination address, a2 = destination domain.
    emit("    .align 64")
    emit("sys_register:")
    if decomposed:
        index = gate("register", "g_register", "fn_register_d0", "domain-0")
        lines.extend(_privileged_call(decomposed, index, "g_register", "fn_register_d0"))
    else:
        emit("    li a0, -1")  # no gates to register on the native kernel
    emit("    la t1, %d" % DATA_BASE)
    emit("    sd a0, %d(t1)" % OFF_RT_GATE)
    emit("    j trap_exit")

    # mmap2: identical to mmap but through the runtime-registered gate.
    emit("    .align 64")
    emit("sys_mmap2:")
    if decomposed:
        emit("    la t1, %d" % DATA_BASE)
        emit("    ld t0, %d(t1)" % OFF_RT_GATE)
        emit("g_mmap2:")
        emit("    hccalls t0")
    else:
        emit("    jal ra, fn_set_satp")
    emit("    li a0, 0")
    emit("    j trap_exit")

    # ------------------------------------------------------------------
    # Privileged helper functions (their own domains when decomposed).
    # ------------------------------------------------------------------
    if decomposed:
        # Domain-0's registration service: append one SGT entry.
        emit("    .align 64")
        emit("fn_register_d0:")
        emit("    li t1, %d" % META_NEXT_GATE)
        emit("    ld t2, 0(t1)")           # next free gate id
        emit("    li t3, %d" % META_SGT_BASE)
        emit("    ld t3, 0(t3)")           # SGT base address
        emit("    slli t4, t2, 5")         # 4 words = 32 bytes per entry
        emit("    add t3, t3, t4")
        emit("    sd a0, 0(t3)")           # gate address
        emit("    sd a1, 8(t3)")           # destination address
        emit("    sd a2, 16(t3)")          # destination domain
        emit("    li t4, 1")
        emit("    sd t4, 24(t3)")          # valid
        emit("    addi t4, t2, 1")
        emit("    sd t4, 0(t1)")
        emit("    mv a0, t2")              # return the new gate id
        emit("    hcrets")

    emit("    .align 64")
    emit("fn_set_satp:")
    emit("    csrw satp, a0")
    emit("    sfence.vma")
    lines.extend(_privileged_return(decomposed))

    emit("    .align 64")
    emit("fn_enable_irq:")
    emit("    li t3, 2")
    emit("    csrrs x0, sie, t3")
    lines.extend(_privileged_return(decomposed))

    emit("    .align 64")
    emit("fn_ctx_fpu:")
    emit("    li t3, 0x2000")
    emit("    csrrs x0, sstatus, t3")
    emit("    csrrc x0, sstatus, t3")
    lines.extend(_privileged_return(decomposed))

    for module in vuln_modules:
        emit("fn_vuln_%s:" % module)
        emit("    addi sp, sp, -8")
        emit("    sd ra, 0(sp)")
        emit("    mv t3, a0")
        emit("    jalr ra, t3")
        emit("    ld ra, 0(sp)")
        emit("    addi sp, sp, 8")
        lines.extend(_privileged_return(decomposed))

    if pti:
        emit("fn_pti_enter:")
        emit("    csrr t3, satp")
        emit("    csrw satp, t3")
        emit("    sfence.vma")
        emit("    ret")

    # ------------------------------------------------------------------
    # Trap exit.
    # ------------------------------------------------------------------
    emit("    .align 64")
    emit("trap_exit:")
    if pti:
        emit("    csrr t3, satp")
        emit("    csrw satp, t3")
        emit("    sfence.vma")
    emit("    ld t0, 48(sp)")
    emit("    csrw sepc, t0")
    emit("    addi t1, sp, 64")
    emit("    csrw sscratch, t1")
    emit("    ld ra, 0(sp)")
    emit("    ld t0, 8(sp)")
    emit("    ld t1, 16(sp)")
    emit("    ld t2, 24(sp)")
    emit("    ld t3, 32(sp)")
    emit("    ld sp, 40(sp)")
    emit("    sret")

    return "\n".join(lines) + "\n", gates


#: CSR privileges of the basic kernel domain (read, write sets).
BASIC_READABLE = (
    "sstatus", "sie", "stvec", "scounteren", "sscratch", "sepc", "scause",
    "stval", "sip", "satp", "domain", "pdomain", "cycle", "time", "instret",
)
BASIC_WRITABLE = ("sscratch", "sepc", "stval", "scounteren")

#: Instruction classes for the basic kernel domain.
BASIC_CLASSES = (
    "alu", "mul", "load", "store", "branch", "jump", "fence",
    "ecall", "ebreak", "csr", "sret", "wfi", "halt", "pfch", "pflh",
)

#: Every module domain needs the trap-entry footprint.
MODULE_READABLE = ("scause", "sepc", "stval", "sscratch", "cycle", "domain", "pdomain")
MODULE_WRITABLE = ("sscratch",)
MODULE_CLASSES = (
    "alu", "mul", "load", "store", "branch", "jump", "fence", "csr", "halt",
)


class RiscvKernel:
    """A booted MiniKernel on a RISC-V system.

    Parameters
    ----------
    mode:
        ``"native"`` (no ISA-Grid hardware) or ``"decomposed"``
        (use case 1).
    config:
        PCU configuration for the decomposed mode.
    pti:
        Add page-table-isolation work to the syscall path (Table 4).
    """

    def __init__(
        self,
        mode: str = "decomposed",
        config: PcuConfig = CONFIG_8E,
        *,
        pti: bool = False,
    ):
        if mode not in ("native", "decomposed"):
            raise ValueError("mode must be 'native' or 'decomposed'")
        self.mode = mode
        self.decomposed = mode == "decomposed"
        self.system = build_riscv_system(config, with_isagrid=self.decomposed)
        source, gate_plan = kernel_source(self.decomposed, pti=pti)
        self.program = assemble(source, base=KERNEL_BASE)
        self.gate_plan = gate_plan
        self.domains: Dict[str, int] = {}
        self.system.load(self.program)
        if self.decomposed:
            self._configure_domains()

    # ------------------------------------------------------------------
    def _configure_domains(self) -> None:
        manager = self.system.manager
        assert manager is not None
        kernel = manager.create_domain("kernel")
        manager.allow_instructions(kernel.domain_id, BASIC_CLASSES)
        for name in BASIC_READABLE:
            manager.grant_register(kernel.domain_id, name, read=True)
        for name in BASIC_WRITABLE:
            manager.grant_register(kernel.domain_id, name, write=True)
        manager.grant_register_bits(kernel.domain_id, "sstatus", SSTATUS_BASIC_MASK)
        manager.grant_register(kernel.domain_id, "sstatus", read=True)
        self.domains["kernel"] = kernel.domain_id

        for name in ("vm", "irq", "ctx", "misc"):
            domain = manager.create_domain(name)
            manager.allow_instructions(domain.domain_id, MODULE_CLASSES)
            for csr in MODULE_READABLE:
                manager.grant_register(domain.domain_id, csr, read=True)
            for csr in MODULE_WRITABLE:
                manager.grant_register(domain.domain_id, csr, write=True)
            self.domains[name] = domain.domain_id

        manager.allow_instructions(self.domains["vm"], ("sfence_vma",))
        manager.grant_register(self.domains["vm"], "satp", read=True, write=True)
        manager.grant_register(self.domains["irq"], "sie", read=True, write=True)
        manager.grant_register(self.domains["irq"], "sip", read=True, write=True)
        manager.grant_register_bits(self.domains["ctx"], "sstatus", SSTATUS_FS_MASK)
        manager.grant_register(self.domains["ctx"], "sstatus", read=True)
        manager.grant_register(self.domains["misc"], "scounteren", read=True, write=True)

        self.domains["domain-0"] = 0
        manager.allocate_trusted_stack(frames=128)
        for site in self.gate_plan:
            manager.register_gate(
                self.program.symbol(site.gate_label),
                self.program.symbol(site.dest_label),
                self.domains[site.domain],
            )
        # Publish the SGT base and next-free gate id for domain-0's
        # runtime registration service (§5.2).
        pcu = self.system.pcu
        self.memory.store_word(META_SGT_BASE, pcu.sgt.base)
        self.memory.store_word(META_NEXT_GATE, pcu.sgt.gate_nr)

    # ------------------------------------------------------------------
    @property
    def cpu(self):
        return self.system.cpu

    @property
    def memory(self):
        return self.system.machine.memory

    @property
    def fault_count(self) -> int:
        return self.memory.load(DATA_BASE + OFF_FAULT_COUNT, 8)

    @property
    def last_fault_cause(self) -> int:
        return self.memory.load(DATA_BASE + OFF_LAST_CAUSE, 8)

    @property
    def syscall_count(self) -> int:
        return self.memory.load(DATA_BASE + OFF_SYSCALL_COUNT, 8)

    def load_user(self, user: Program) -> None:
        if user.base != USER_BASE:
            raise ValueError("user programs must be assembled at USER_BASE")
        self.system.load(user)

    def run(self, user: Optional[Program] = None, max_steps: int = 5_000_000) -> MachineStats:
        """Boot the kernel (entering the user program) and run to halt."""
        if user is not None:
            self.load_user(user)
        return self.system.run(self.program.symbol("boot"), max_steps)

    def symbol(self, name: str) -> int:
        return self.program.symbol(name)
