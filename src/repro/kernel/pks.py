"""Use case 3: guarding Intel PKS's ``wrpkrs`` with ISA-Grid (§6.3, §7.2).

Two artifacts:

* :func:`run_pks_demo` — a functional demonstration on the simulated
  x86 machine: the trampoline domain may execute ``wrpkrs``; everywhere
  else the instruction faults, so memory-permission changes can only
  happen through the registered trampoline (the property MPK/PKS lack).

* :func:`estimate_case3` — the paper's Case-3 arithmetic: a protected
  domain switch costs ``wrpkru`` (26 cycles, Hodor's number) + the MPK
  trampoline (105 cycles) + two measured ``hccall`` executions, and is
  compared against page-table switching (938 / 577 cycles with/without
  PTI) and ``vmfunc`` EPT switching (268 cycles), all quoted from Hodor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core import CONFIG_8E, PcuConfig
from repro.x86 import KERNEL_BASE, assemble, build_x86_system

# Constants the paper quotes from Hodor [29].
WRPKRU_CYCLES = 26
MPK_TRAMPOLINE_CYCLES = 105
PAGE_TABLE_SWITCH_WITH_PTI = 938
PAGE_TABLE_SWITCH_NO_PTI = 577
VMFUNC_SWITCH = 268

_DEMO_SOURCE = """
entry:
    mov rsp, 0x6e0000
    mov r10, 0
g_enter:
    hccall r10            # enter the trampoline domain
trampoline:
    mov rax, 5            # open protection key 5
    wrpkrs
    mov rbx, 1            # ... protected work would run here ...
    mov rax, 0
    wrpkrs                # close again
    mov r10, 1
g_exit:
    hccall r10            # leave the trampoline domain
back:
    mov rax, 7
    wrpkrs                # ILLEGAL: wrpkrs outside the trampoline
    hlt
"""


@dataclass
class PksDemoResult:
    """Outcome of the functional wrpkrs-guard demonstration."""

    trampoline_writes_succeeded: bool
    outside_write_blocked: bool
    pkrs_value: int
    fault_message: str = ""

    @property
    def guarded(self) -> bool:
        return self.trampoline_writes_succeeded and self.outside_write_blocked


def run_pks_demo(config: PcuConfig = CONFIG_8E) -> PksDemoResult:
    """Run the wrpkrs-guard demo; see the module docstring."""
    from repro.x86 import CpuPanic

    system = build_x86_system(config)
    manager = system.manager
    kernel = manager.create_domain("kernel")
    manager.allow_instructions(
        kernel.domain_id,
        ("alu", "mov", "stack", "branch", "call", "nop", "hlt"),
    )
    trampoline = manager.create_domain("pks-trampoline")
    manager.allow_instructions(
        trampoline.domain_id,
        ("alu", "mov", "stack", "branch", "call", "nop", "wrpkrs", "rdpkrs"),
    )
    manager.grant_register(trampoline.domain_id, "pkrs", read=True, write=True)

    program = assemble(_DEMO_SOURCE, base=KERNEL_BASE)
    system.load(program)
    manager.register_gate(
        program.symbol("g_enter"), program.symbol("trampoline"), trampoline.domain_id
    )
    manager.register_gate(
        program.symbol("g_exit"), program.symbol("back"), kernel.domain_id
    )

    # Boot straight into the kernel domain (skip domain-0 formality by
    # registering a boot gate at `entry`'s hccall).  `entry` starts in
    # domain-0, which may do anything; the first hccall moves us into
    # the trampoline domain.
    blocked = False
    message = ""
    try:
        system.run(program.symbol("entry"), max_steps=10_000)
    except CpuPanic as panic:  # wrpkrs outside the trampoline faulted
        blocked = True
        message = str(panic)
    # Both in-trampoline writes executed iff pkrs went 5 -> 0.
    wrote = system.cpu.sys.pkrs == 0 and system.pcu.stats.csr_write_checks >= 2
    return PksDemoResult(
        trampoline_writes_succeeded=wrote,
        outside_write_blocked=blocked,
        pkrs_value=system.cpu.sys.pkrs,
        fault_message=message,
    )


_HCCALL_PAIR_SOURCE = """
entry:
    mov rsp, 0x6e0000
    mov r12, %(iters)d
loop:
    mov r10, 0
g_enter:
    hccall r10
inside:
    mov r10, 1
g_exit:
    hccall r10
outside:
    sub r12, 1
    jne loop
    hlt
"""


def measure_two_hccall(config: PcuConfig = CONFIG_8E, iterations: int = 2000) -> float:
    """Measured cost (cycles) of an enter+exit ``hccall`` pair on x86.

    Matches the paper's methodology for Case 3: "Switching to an ISA
    domain where wrpkrs is enabled and back with two hccall".
    """
    system = build_x86_system(config)
    manager = system.manager
    a = manager.create_domain("a")
    b = manager.create_domain("b")
    for domain in (a, b):
        manager.allow_instructions(
            domain.domain_id, ("alu", "mov", "stack", "branch", "call", "nop", "hlt")
        )
    source = _HCCALL_PAIR_SOURCE % {"iters": iterations}
    program = assemble(source, base=KERNEL_BASE)
    system.load(program)
    manager.register_gate(program.symbol("g_enter"), program.symbol("inside"), b.domain_id)
    manager.register_gate(program.symbol("g_exit"), program.symbol("outside"), a.domain_id)

    # Warm-up round to fill the SGT cache, then measure.
    system.run(program.symbol("entry"), max_steps=50 * iterations)
    loop_cycles = system.machine.stats.cycles

    # Baseline: the same loop without gates.
    baseline_system = build_x86_system(config)
    baseline_source = source.replace("hccall r10", "nop")
    baseline_program = assemble(baseline_source, base=KERNEL_BASE)
    baseline_system.load(baseline_program)
    baseline_system.run(baseline_program.symbol("entry"), max_steps=50 * iterations)
    baseline_cycles = baseline_system.machine.stats.cycles

    return (loop_cycles - baseline_cycles) / iterations


@dataclass
class Case3Estimate:
    """The Case-3 comparison row set (paper §7.2)."""

    two_hccall_cycles: float
    wrpkru_cycles: int = WRPKRU_CYCLES
    mpk_trampoline_cycles: int = MPK_TRAMPOLINE_CYCLES
    alternatives: Dict[str, int] = field(
        default_factory=lambda: {
            "page table switch w/ PTI": PAGE_TABLE_SWITCH_WITH_PTI,
            "page table switch w/o PTI": PAGE_TABLE_SWITCH_NO_PTI,
            "vmfunc EPT switch": VMFUNC_SWITCH,
        }
    )

    @property
    def pks_with_isagrid_cycles(self) -> float:
        """MPK trampoline + the two gate switches (the paper's 175)."""
        return self.mpk_trampoline_cycles + self.two_hccall_cycles

    @property
    def faster_than_all_alternatives(self) -> bool:
        return all(
            self.pks_with_isagrid_cycles < cost
            for cost in self.alternatives.values()
        )


def estimate_case3(config: PcuConfig = CONFIG_8E) -> Case3Estimate:
    """Build the paper's Case-3 estimate from a measured hccall pair."""
    return Case3Estimate(two_hccall_cycles=measure_two_hccall(config))
