"""Use case §6.4: in-kernel sandboxes and Dune-style processes.

PrivBox runs application code inside the kernel for fast syscalls;
Colony builds software TEEs around a trusted monitor; Dune gives
processes ring-0 access to privileged hardware.  All three must ensure
the hosted code cannot execute privileged instructions — which, without
ISA-Grid, requires fragile binary scanning (§2.3).

:func:`run_sandbox` executes guest code *in supervisor mode* inside a
compute-only ISA domain: the code enjoys kernel-speed execution while
every privileged instruction class (and every CSR) stays dead, enforced
by the PCU rather than by scanning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core import CONFIG_8E, PcuConfig
from repro.riscv import CSR_ADDRESS, KERNEL_BASE, assemble, build_riscv_system

#: Instruction classes a sandboxed guest may use: pure computation.
#: No ecall — PrivBox turns syscalls into direct calls.
SANDBOX_CLASSES: Sequence[str] = (
    "alu", "mul", "load", "store", "branch", "jump", "fence", "halt",
)

_HARNESS = """
entry:                       # domain-0: install the fault handler, enter
    la t0, handler
    csrw stvec, t0
    li t0, 0
g_enter:
    hccall t0                # -> guest code inside the sandbox domain
handler:                     # ISA-Grid faults land here (in the sandbox
    csrr t0, scause          # domain; scause read is granted)
    la t1, %(fault_cell)d
    ld t2, 0(t1)
    addi t2, t2, 1
    sd t2, 0(t1)
    csrr t2, sepc            # skip the faulting instruction
    addi t2, t2, 4
    csrw sepc, t2
    sret
guest:
%(guest)s
"""

FAULT_CELL = 0x0063_8000


@dataclass
class SandboxResult:
    """Outcome of one sandboxed guest execution."""

    exit_code: Optional[int]
    blocked_attempts: int
    instructions: int
    cycles: float
    registers: List[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """The guest never tried (or never managed) anything privileged."""
        return self.blocked_attempts == 0


def run_sandbox(
    guest_source: str,
    config: PcuConfig = CONFIG_8E,
    *,
    max_steps: int = 500_000,
    extra_readable_csrs: Sequence[str] = (),
) -> SandboxResult:
    """Run guest assembly inside a compute-only ISA domain at S-mode.

    The guest starts at its first instruction (label ``guest``) and must
    finish with ``halt`` (the PrivBox exit).  Privileged instructions
    fault, are counted, and are skipped — the guest cannot break out,
    and the host survives every attempt.
    """
    system = build_riscv_system(config)
    manager = system.manager
    sandbox = manager.create_domain("sandbox")
    manager.allow_instructions(sandbox.domain_id, SANDBOX_CLASSES)
    # The fault path needs exception-CSR access (csr class + reads);
    # grant the minimum and nothing else.
    manager.allow_instructions(sandbox.domain_id, ("csr", "sret"))
    for name in ("scause", "sepc", "stval"):
        manager.grant_register(sandbox.domain_id, name, read=True)
    manager.grant_register(sandbox.domain_id, "sepc", write=True)
    manager.grant_register(sandbox.domain_id, "sscratch", read=True, write=True)
    manager.grant_register_bits(sandbox.domain_id, "sstatus", 0x122)
    for name in extra_readable_csrs:
        manager.grant_register(sandbox.domain_id, name, read=True)

    guest_body = "\n".join(
        "    %s" % line.strip() if not line.strip().endswith(":") else line.strip()
        for line in guest_source.strip().splitlines()
    )
    source = _HARNESS % {"guest": guest_body, "fault_cell": FAULT_CELL}
    program = assemble(source, base=KERNEL_BASE)
    system.load(program)
    manager.register_gate(
        program.symbol("g_enter"), program.symbol("guest"), sandbox.domain_id
    )
    stats = system.run(program.symbol("entry"), max_steps=max_steps)
    return SandboxResult(
        exit_code=system.cpu.exit_code,
        blocked_attempts=system.machine.memory.load(FAULT_CELL, 8),
        instructions=stats.instructions,
        cycles=stats.cycles,
        registers=list(system.cpu.regs),
    )
