"""The MiniKernel system-call ABI (shared by both architectures).

The syscall set mirrors the low-level operations LMbench measures
(Section 7: null call, read, write, stat, open/close, signal install,
mmap, context switch) plus an ``ioctl`` used by the Table-5 service
modules and a deliberately vulnerable entry point used by the attack
evaluation (it simulates a control-flow hijack inside a kernel module,
the attacker model of Section 6.1).

Calling convention:

* RISC-V: number in ``a7``, args in ``a0``-``a2``, result in ``a0``.
* x86: number in ``rax``, args in ``rdi``/``rsi``/``rdx``, result ``rax``.
"""

from __future__ import annotations

SYS_EXIT = 0          # halt the simulated machine; a0 = exit code
SYS_GETPID = 1        # the LMbench "null call"
SYS_READ = 2          # copy from the kernel buffer to user memory
SYS_WRITE = 3         # copy from user memory to the kernel buffer
SYS_STAT = 4          # fill a stat record
SYS_FSTAT = 5
SYS_OPEN = 6          # hash the path, allocate an fd slot
SYS_CLOSE = 7
SYS_SIGACTION = 8     # install a handler; touches interrupt-enable state
SYS_MMAP = 9          # address-space change; writes SATP / CR3
SYS_GETPPID = 10
SYS_DUP = 11
SYS_IOCTL = 12        # dispatch to a service module (Table 5)
SYS_YIELD = 13        # context-switch work; touches FPU/context state
SYS_GETTIME = 14      # read the cycle counter
SYS_SELECT = 15       # scan the fd table
SYS_VULN = 16         # simulated hijackable module entry (attack eval)
SYS_REGISTER = 17     # runtime gate registration through domain-0 (§5.2)
SYS_MMAP2 = 18        # mmap through a gate that only exists after SYS_REGISTER
SYS_SCRUB = 19        # domain-0 integrity scrub over the trusted state

# Conformance surface: the kernel-layer differential fuzzer drives the
# PCU through these instead of bare method calls, so event replay pays
# the same dispatch path a real kernel service would (see
# repro.kernel.conformance_layer).
SYS_PCHECK = 20       # privilege-check one issued instruction
SYS_PGATE = 21        # execute a gate instruction (hccall/hccalls/hcrets)
SYS_PMEM = 22         # trusted-memory access filter
SYS_PFCH = 23         # pfch: warm the privilege caches
SYS_PFLH = 24         # pflh: flush one privilege-cache module
SYS_DCONF = 25        # domain-0 reconfiguration (DomainManager dispatch)

SYSCALL_NAMES = {
    SYS_EXIT: "exit",
    SYS_GETPID: "getpid",
    SYS_READ: "read",
    SYS_WRITE: "write",
    SYS_STAT: "stat",
    SYS_FSTAT: "fstat",
    SYS_OPEN: "open",
    SYS_CLOSE: "close",
    SYS_SIGACTION: "sigaction",
    SYS_MMAP: "mmap",
    SYS_GETPPID: "getppid",
    SYS_DUP: "dup",
    SYS_IOCTL: "ioctl",
    SYS_YIELD: "yield",
    SYS_GETTIME: "gettime",
    SYS_SELECT: "select",
    SYS_VULN: "vuln",
    SYS_REGISTER: "register_gate",
    SYS_MMAP2: "mmap2",
    SYS_SCRUB: "scrub",
    SYS_PCHECK: "pcheck",
    SYS_PGATE: "pgate",
    SYS_PMEM: "pmem",
    SYS_PFCH: "pfch",
    SYS_PFLH: "pflh",
    SYS_DCONF: "dconf",
}

MAX_SYSCALL = max(SYSCALL_NAMES)
