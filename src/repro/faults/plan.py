"""Seeded fault plans.

A :class:`FaultSpec` names one simulated hardware fault in the abstract
vocabulary of the conformance model (domain *slots*, instruction/CSR
*slots*, gate *slots*), so the same spec is meaningful on every backend;
the injector resolves slots to concrete HPT/SGT bit positions at trigger
time.  A :class:`FaultPlan` deterministically derives one spec per
campaign from a base seed, cycling through every fault kind so a modest
campaign count still covers the whole injectable surface.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Dict, List

from repro.conformance.events import (
    MASKED_CSR_SLOT,
    N_CSR_SLOTS,
    N_DOMAIN_SLOTS,
    N_GATE_SLOTS,
    N_INST_SLOTS,
)

#: Every injectable fault kind, in the order the plan cycles through.
FAULT_KINDS = (
    "hpt_inst_bit",     # flip a bit of an instruction bitmap word in memory
    "hpt_reg_bit",      # flip a R/W bit of a register bitmap word in memory
    "hpt_mask_bit",     # flip a bit of a bit-mask array word in memory
    "sgt_word",         # flip a bit of one SGT entry word in memory
    "stack_word",       # flip a bit of a trusted-stack word in memory
    "cache_corrupt",    # flip a bit of a resident privilege-cache payload
    "cache_stale_pin",  # stick a cache line so coherence sweeps miss it
    "drop_invalidate",  # swallow the next invalidate_privileges sweep
    "bypass_corrupt",   # flip a bit of the bypass instruction-privilege reg
    "store_fault",      # fail the next trusted-memory store mid-reconfig
    "seal_word_flip",   # flip a bit of a one-way seal word in memory
    "seal_store_fault",  # fail the trusted-memory store of the next seal
)

#: Machine-level campaigns add two commit-window kinds on top: both arm
#: the word backing to fail the Nth journalled store inside a
#: ``DomainManager`` transaction (``resource`` is N, 1-based), directly
#: exercising ``abort_transaction``'s newest-first replay; the ``flip``
#: variant additionally mutates a bit *under* an already-journalled word
#: first, so the replay also repairs a raw hardware flip.
MACHINE_FAULT_KINDS = FAULT_KINDS + (
    "commit_store_fault",     # fail the Nth journalled store in a window
    "commit_flip_journalled",  # same, plus a bit flip the replay repairs
)

#: Churn campaigns aim at the domain-virtualization recycle window
#: (DESIGN §3.17): fail a trusted-memory store mid-bind/recycle, flip a
#: slot's generation word behind the mirror, or swallow the
#: flush-on-reuse so a rebound slot inherits its prior tenant's grants —
#: plus a core subset of the general kinds so churn worlds also face the
#: classic HPT/cache/coherence faults.
CHURN_FAULT_KINDS = (
    "recycle_store_fault",  # fail a store inside the next bind/recycle window
    "generation_flip",      # flip a slot-generation word under the mirror
    "drop_reuse_flush",     # swallow the flush-on-reuse of the next rebind
    "hpt_inst_bit",
    "hpt_reg_bit",
    "cache_corrupt",
    "drop_invalidate",
    "store_fault",
    "seal_reset_drop",      # swallow the seal retirement of the next recycle
)

#: When a machine-level fault fires: at a reconfiguration-pulse index
#: (``event``, mirroring the abstract campaigns), at a retired-
#: instruction count (``inst``), or at a simulated-cycle count
#: (``cycle``).  Commit-window kinds use their trigger as the *arming*
#: point; the fault itself fires on the Nth journalled store after that.
TRIGGER_KINDS = ("event", "inst", "cycle")

#: Cache modules a cache_* fault can target.
CACHE_MODULES = ("inst", "reg", "mask", "sgt")

#: Kinds that are privilege-widening regardless of bit direction: a stale
#: or half-applied privilege structure can only be trusted to *narrow* if
#: proven so, and these tamper with structures whose entire job is to
#: withhold privilege (gates, return frames, coherence, atomicity).
_ALWAYS_WIDENING = {
    "sgt_word", "stack_word", "cache_stale_pin", "drop_invalidate",
    "store_fault", "commit_store_fault", "commit_flip_journalled",
    "recycle_store_fault", "generation_flip", "drop_reuse_flush",
    # A cleared seal bit un-seals (widening); a mid-seal store fault
    # leaves the seal half-landed.  Both must never diverge silently.
    # ``seal_reset_drop`` is the exception: an *inherited* seal can only
    # deny, so it keeps the direction-based default.
    "seal_word_flip", "seal_store_fault",
}


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault, in abstract-slot vocabulary."""

    kind: str
    trigger: int          # event index the fault fires at
    domain_slot: int = 1  # abstract domain slot the fault targets
    resource: int = 0     # inst/CSR/gate slot (kind-dependent)
    bit: int = 0          # raw bit index for word-granular kinds
    bit_op: str = "set"   # "set" (widening direction), "clear", or "flip"
    module: str = "inst"  # cache module for cache_* kinds
    #: What ``trigger`` counts: conformance/pulse event index ("event"),
    #: retired instructions ("inst") or simulated cycles ("cycle").  The
    #: abstract campaigns only ever use the default, which keeps their
    #: serialized specs and report bytes unchanged.
    trigger_kind: str = "event"

    @property
    def widening(self) -> bool:
        """Could this fault grant privilege the configuration withheld?"""
        if self.kind in _ALWAYS_WIDENING:
            return True
        return self.bit_op != "clear"

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["widening"] = self.widening
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        data = dict(data)
        data.pop("widening", None)
        return cls(**data)


class FaultPlan:
    """Deterministic per-campaign fault specs from one base seed."""

    def __init__(self, seed: int):
        self.seed = seed
        self.rng = random.Random(0xFA017 ^ seed)

    def draw(self, campaign: int, n_events: int) -> FaultSpec:
        """Spec for campaign ``campaign`` over an ``n_events`` stream.

        The kind cycles round-robin so every K >= len(FAULT_KINDS)
        campaign matrix exercises the full injectable surface; all other
        parameters are drawn from the plan's seeded RNG.
        """
        return self._draw_one(FAULT_KINDS[campaign % len(FAULT_KINDS)],
                              n_events)

    def draw_specs(self, campaign: int, n_events: int,
                   count: int = 1) -> List[FaultSpec]:
        """Specs for one campaign, optionally several concurrent faults.

        ``count=1`` consumes the plan's RNG exactly as :meth:`draw`
        does, so single-fault campaigns are unchanged by this API.  For
        ``count>1`` the extra kinds are offset-cycled against the
        primary one (campaign ``c``, extra ``i`` pairs kind ``c mod K``
        with kind ``(c + c//K + i) mod K``), so a full cycle of dual
        campaigns sweeps *changing* kind pairs rather than re-testing
        one pairing.
        """
        specs = [self.draw(campaign, n_events)]
        n_kinds = len(FAULT_KINDS)
        for extra in range(1, count):
            kind = FAULT_KINDS[
                (campaign + campaign // n_kinds + extra) % n_kinds]
            specs.append(self._draw_one(kind, n_events))
        return specs

    def draw_machine_specs(self, campaign: int, n_steps: int,
                           n_pulses: int, count: int = 1) -> List[FaultSpec]:
        """Specs for one *machine-level* campaign (see ``faults.machine``).

        Machine campaigns draw from a private per-campaign RNG derived
        from ``(seed, campaign)`` rather than the plan's shared stream:
        existing abstract-campaign seeds stay byte-identical no matter
        how many machine campaigns run, and an orchestrator worker can
        draw campaign ``k`` without replaying campaigns ``0..k-1``.

        ``n_steps`` bounds instruction/cycle triggers, ``n_pulses`` the
        reconfiguration-pulse indices event triggers land on.  Kinds
        cycle through :data:`MACHINE_FAULT_KINDS`; ``count > 1`` offset-
        cycles the extra kinds exactly like :meth:`draw_specs`.
        """
        rng = random.Random((0xFA017 ^ self.seed) * 0x9E3779B1 + campaign)
        n_kinds = len(MACHINE_FAULT_KINDS)
        kinds = [MACHINE_FAULT_KINDS[campaign % n_kinds]]
        for extra in range(1, count):
            kinds.append(MACHINE_FAULT_KINDS[
                (campaign + campaign // n_kinds + extra) % n_kinds])
        return [self._draw_machine_one(rng, kind, n_steps, n_pulses)
                for kind in kinds]

    def draw_churn_specs(self, campaign: int, n_ops: int,
                         count: int = 1) -> List[FaultSpec]:
        """Specs for one tenant-churn campaign (see ``faults.churn``).

        Like :meth:`draw_machine_specs`, churn campaigns use a private
        per-campaign RNG — salted differently, so churn plans neither
        disturb nor depend on the abstract and machine plans — and cycle
        kinds through :data:`CHURN_FAULT_KINDS`.  ``n_ops`` bounds the
        workload-op index the trigger lands on.
        """
        rng = random.Random((0xC4012 ^ self.seed) * 0x9E3779B1 + campaign)
        n_kinds = len(CHURN_FAULT_KINDS)
        kinds = [CHURN_FAULT_KINDS[campaign % n_kinds]]
        for extra in range(1, count):
            kinds.append(CHURN_FAULT_KINDS[
                (campaign + campaign // n_kinds + extra) % n_kinds])
        specs = []
        for kind in kinds:
            lo = min(16, max(1, n_ops // 4))
            hi = max(lo + 1, (3 * n_ops) // 4)
            specs.append(FaultSpec(
                kind=kind,
                trigger=rng.randrange(lo, hi),
                domain_slot=rng.randrange(1, N_DOMAIN_SLOTS + 1),
                resource=self._resource_from(rng, kind),
                bit=rng.randrange(64),
                bit_op=rng.choice(("set", "set", "clear", "flip")),
                module=rng.choice(CACHE_MODULES),
            ))
        return specs

    def _draw_machine_one(self, rng: random.Random, kind: str,
                          n_steps: int, n_pulses: int) -> FaultSpec:
        lo = max(1, n_steps // 4)
        hi = max(lo + 1, (3 * n_steps) // 4)
        if kind in ("commit_store_fault", "commit_flip_journalled"):
            # Arm at an instruction count; the fault itself fires on the
            # Nth journalled store of a later commit window.
            trigger_kind = "inst"
            trigger = rng.randrange(lo, hi)
        else:
            trigger_kind = rng.choice(TRIGGER_KINDS)
            if trigger_kind == "event":
                trigger = rng.randrange(max(1, n_pulses))
            elif trigger_kind == "inst":
                trigger = rng.randrange(lo, hi)
            else:
                # CPI straddles 1.0 across the backends (~1.7 RISC-V,
                # ~0.9 x86), so the instruction-count window is reused
                # unscaled: early-body on a slow machine, late-body on a
                # fast one, inside the run either way.
                trigger = rng.randrange(lo, hi)
        bit_op = rng.choice(("set", "set", "clear", "flip"))
        if kind == "commit_flip_journalled":
            # The under-journal mutation must change the word, or there
            # is nothing for the rollback replay to repair.
            bit_op = "flip"
        resource = (rng.randrange(1, 5) if kind.startswith("commit_")
                    else self._resource_from(rng, kind))
        return FaultSpec(
            kind=kind,
            trigger=trigger,
            domain_slot=rng.randrange(1, N_DOMAIN_SLOTS + 1),
            resource=resource,
            bit=rng.randrange(64),
            bit_op=bit_op,
            module=rng.choice(CACHE_MODULES),
            trigger_kind=trigger_kind,
        )

    def _draw_one(self, kind: str, n_events: int) -> FaultSpec:
        rng = self.rng
        # Fire somewhere in the fuzz body, past the setup prologue, with
        # enough tail left for the fault to matter and a scrub to run.
        lo = min(16, max(1, n_events // 4))
        hi = max(lo + 1, (3 * n_events) // 4)
        trigger = rng.randrange(lo, hi)
        bit_op = rng.choice(("set", "set", "clear", "flip"))
        return FaultSpec(
            kind=kind,
            trigger=trigger,
            domain_slot=rng.randrange(1, N_DOMAIN_SLOTS + 1),
            resource=self._resource(kind),
            bit=rng.randrange(64),
            bit_op=bit_op,
            module=rng.choice(CACHE_MODULES),
        )

    def _resource(self, kind: str) -> int:
        return self._resource_from(self.rng, kind)

    @staticmethod
    def _resource_from(rng: random.Random, kind: str) -> int:
        if kind in ("hpt_inst_bit", "bypass_corrupt", "seal_word_flip"):
            return rng.randrange(N_INST_SLOTS)
        if kind == "hpt_reg_bit":
            return rng.randrange(N_CSR_SLOTS)
        if kind == "hpt_mask_bit":
            return MASKED_CSR_SLOT
        if kind == "sgt_word":
            return rng.randrange(N_GATE_SLOTS)
        if kind == "stack_word":
            return rng.randrange(4)  # frame index within the stack window
        return rng.randrange(4)
