"""Seeded fault plans.

A :class:`FaultSpec` names one simulated hardware fault in the abstract
vocabulary of the conformance model (domain *slots*, instruction/CSR
*slots*, gate *slots*), so the same spec is meaningful on every backend;
the injector resolves slots to concrete HPT/SGT bit positions at trigger
time.  A :class:`FaultPlan` deterministically derives one spec per
campaign from a base seed, cycling through every fault kind so a modest
campaign count still covers the whole injectable surface.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Dict, List

from repro.conformance.events import (
    MASKED_CSR_SLOT,
    N_CSR_SLOTS,
    N_DOMAIN_SLOTS,
    N_GATE_SLOTS,
    N_INST_SLOTS,
)

#: Every injectable fault kind, in the order the plan cycles through.
FAULT_KINDS = (
    "hpt_inst_bit",     # flip a bit of an instruction bitmap word in memory
    "hpt_reg_bit",      # flip a R/W bit of a register bitmap word in memory
    "hpt_mask_bit",     # flip a bit of a bit-mask array word in memory
    "sgt_word",         # flip a bit of one SGT entry word in memory
    "stack_word",       # flip a bit of a trusted-stack word in memory
    "cache_corrupt",    # flip a bit of a resident privilege-cache payload
    "cache_stale_pin",  # stick a cache line so coherence sweeps miss it
    "drop_invalidate",  # swallow the next invalidate_privileges sweep
    "bypass_corrupt",   # flip a bit of the bypass instruction-privilege reg
    "store_fault",      # fail the next trusted-memory store mid-reconfig
)

#: Cache modules a cache_* fault can target.
CACHE_MODULES = ("inst", "reg", "mask", "sgt")

#: Kinds that are privilege-widening regardless of bit direction: a stale
#: or half-applied privilege structure can only be trusted to *narrow* if
#: proven so, and these tamper with structures whose entire job is to
#: withhold privilege (gates, return frames, coherence, atomicity).
_ALWAYS_WIDENING = {
    "sgt_word", "stack_word", "cache_stale_pin", "drop_invalidate",
    "store_fault",
}


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault, in abstract-slot vocabulary."""

    kind: str
    trigger: int          # event index the fault fires at
    domain_slot: int = 1  # abstract domain slot the fault targets
    resource: int = 0     # inst/CSR/gate slot (kind-dependent)
    bit: int = 0          # raw bit index for word-granular kinds
    bit_op: str = "set"   # "set" (widening direction), "clear", or "flip"
    module: str = "inst"  # cache module for cache_* kinds

    @property
    def widening(self) -> bool:
        """Could this fault grant privilege the configuration withheld?"""
        if self.kind in _ALWAYS_WIDENING:
            return True
        return self.bit_op != "clear"

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["widening"] = self.widening
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        data = dict(data)
        data.pop("widening", None)
        return cls(**data)


class FaultPlan:
    """Deterministic per-campaign fault specs from one base seed."""

    def __init__(self, seed: int):
        self.seed = seed
        self.rng = random.Random(0xFA017 ^ seed)

    def draw(self, campaign: int, n_events: int) -> FaultSpec:
        """Spec for campaign ``campaign`` over an ``n_events`` stream.

        The kind cycles round-robin so every K >= len(FAULT_KINDS)
        campaign matrix exercises the full injectable surface; all other
        parameters are drawn from the plan's seeded RNG.
        """
        return self._draw_one(FAULT_KINDS[campaign % len(FAULT_KINDS)],
                              n_events)

    def draw_specs(self, campaign: int, n_events: int,
                   count: int = 1) -> List[FaultSpec]:
        """Specs for one campaign, optionally several concurrent faults.

        ``count=1`` consumes the plan's RNG exactly as :meth:`draw`
        does, so single-fault campaigns are unchanged by this API.  For
        ``count>1`` the extra kinds are offset-cycled against the
        primary one (campaign ``c``, extra ``i`` pairs kind ``c mod K``
        with kind ``(c + c//K + i) mod K``), so a full cycle of dual
        campaigns sweeps *changing* kind pairs rather than re-testing
        one pairing.
        """
        specs = [self.draw(campaign, n_events)]
        n_kinds = len(FAULT_KINDS)
        for extra in range(1, count):
            kind = FAULT_KINDS[
                (campaign + campaign // n_kinds + extra) % n_kinds]
            specs.append(self._draw_one(kind, n_events))
        return specs

    def _draw_one(self, kind: str, n_events: int) -> FaultSpec:
        rng = self.rng
        # Fire somewhere in the fuzz body, past the setup prologue, with
        # enough tail left for the fault to matter and a scrub to run.
        lo = min(16, max(1, n_events // 4))
        hi = max(lo + 1, (3 * n_events) // 4)
        trigger = rng.randrange(lo, hi)
        bit_op = rng.choice(("set", "set", "clear", "flip"))
        return FaultSpec(
            kind=kind,
            trigger=trigger,
            domain_slot=rng.randrange(1, N_DOMAIN_SLOTS + 1),
            resource=self._resource(kind),
            bit=rng.randrange(64),
            bit_op=bit_op,
            module=rng.choice(CACHE_MODULES),
        )

    def _resource(self, kind: str) -> int:
        rng = self.rng
        if kind in ("hpt_inst_bit", "bypass_corrupt"):
            return rng.randrange(N_INST_SLOTS)
        if kind == "hpt_reg_bit":
            return rng.randrange(N_CSR_SLOTS)
        if kind == "hpt_mask_bit":
            return MASKED_CSR_SLOT
        if kind == "sgt_word":
            return rng.randrange(N_GATE_SLOTS)
        if kind == "stack_word":
            return rng.randrange(4)  # frame index within the stack window
        return rng.randrange(4)
