"""Integrity scrubbing over the trusted privilege state.

The scrubber is domain-0 software (plus a PCU assist for the stack
digest).  One ``scrub()`` pass:

1. **Memory vs mirror** — per-domain checksums of the HPT regions
   (instruction bitmap, register bitmap, bit-mask array) and of every SGT
   entry against domain-0's python-side mirrors.  A mismatching word is
   *repairable*: the mirror is the configuration domain-0 intended, so
   the word is rewritten from it.
2. **Cache vs memory** — every resident payload of the three HPT caches
   and the SGT cache, the bypass instruction-privilege register, and
   every Draco proven-legal tuple is re-verified against the (freshly
   repaired) trusted-memory words.  Any mismatch means the PCU may have
   been serving wrong answers: the PCU enters **degraded mode** (all
   caches flushed and distrusted, checks served by direct HPT walks)
   until a later scrub passes clean.
3. **Trusted stack** — the PCU's running XOR digest of live frames is
   recomputed from memory.  A mismatch is *unrepairable* (stack frames
   have no software mirror) and reported for the caller to halt on.

Ordering matters: memory is repaired before caches are verified, so a
shared-word fault does not masquerade as cache divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core import DomainManager, PrivilegeCheckUnit
from repro.core.errors import GateFault, IntegrityFault
from repro.core.trusted_memory import WORD_BYTES


@dataclass
class ScrubReport:
    """Everything one scrub pass found (and fixed)."""

    memory_repairs: int = 0
    cache_detections: List[str] = field(default_factory=list)
    unrepairable: List[str] = field(default_factory=list)
    entered_degraded: bool = False
    exited_degraded: bool = False
    # Which structures pass 1 rewrote — the targets of the single-pass
    # confirmation check (see IntegrityScrubber.verify_repaired).
    repaired_domains: List[int] = field(default_factory=list)
    repaired_gates: List[int] = field(default_factory=list)
    # Domain-virtualization repairs: slots whose generation word was
    # rewritten from the mirror, and bound slots whose descriptor was
    # flushed and replayed from the tenant manifest.
    repaired_generations: List[int] = field(default_factory=list)
    repaired_slots: List[int] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return bool(self.memory_repairs or self.cache_detections
                    or self.unrepairable)

    @property
    def clean(self) -> bool:
        return not self.detected

    def to_dict(self) -> Dict[str, object]:
        return {
            "memory_repairs": self.memory_repairs,
            "cache_detections": list(self.cache_detections),
            "unrepairable": list(self.unrepairable),
            "entered_degraded": self.entered_degraded,
            "exited_degraded": self.exited_degraded,
        }


def _fold(words) -> int:
    """Order-sensitive checksum of a word sequence."""
    digest = 0
    for word in words:
        digest = (digest * 0x100000001B3 ^ word) & (1 << 64) - 1
    return digest


class IntegrityScrubber:
    """Domain-0's integrity-verification pass over one PCU's state."""

    def __init__(self, pcu: PrivilegeCheckUnit, manager: DomainManager):
        self.pcu = pcu
        self.manager = manager

    # ------------------------------------------------------------------
    # Expected (mirror-derived) words.
    # ------------------------------------------------------------------
    def _domains_to_scrub(self) -> List[int]:
        hpt = self.pcu.hpt
        domains = set(hpt._inst) | set(hpt._regs) | set(hpt._masks)
        domains |= set(self.manager.domains)
        return sorted(d for d in domains if 0 <= d < hpt.max_domains)

    def _expected_seal_inst(self, domain: int) -> List[int]:
        hpt = self.pcu.hpt
        words = hpt._seal_inst.get(domain)
        if words is None:
            return [0] * hpt.inst_words_per_domain
        return list(words)

    def _expected_seal_regs(self, domain: int) -> List[int]:
        hpt = self.pcu.hpt
        words = hpt._seal_regs.get(domain)
        if words is None:
            return [0] * hpt.reg_words_per_domain
        return list(words)

    def _expected_seal_masks(self, domain: int) -> List[int]:
        hpt = self.pcu.hpt
        words = hpt._seal_masks.get(domain)
        if words is None:
            return [0] * hpt.mask_words_per_domain
        return list(words)

    def _expected_inst_words(self, domain: int) -> List[int]:
        hpt = self.pcu.hpt
        bitmap = hpt._inst.get(domain)
        seal = self._expected_seal_inst(domain)
        if bitmap is None:
            return [0] * hpt.inst_words_per_domain
        # The read path ANDs seals out, so the expectation must too —
        # otherwise a seal under a live grant would look like permanent
        # corruption and the scrubber would "repair" forever.
        return [bitmap.word(i) & ~seal[i]
                for i in range(hpt.inst_words_per_domain)]

    def _expected_reg_words(self, domain: int) -> List[int]:
        hpt = self.pcu.hpt
        bitmap = hpt._regs.get(domain)
        seal = self._expected_seal_regs(domain)
        if bitmap is None:
            return [0] * hpt.reg_words_per_domain
        return [bitmap.word(i) & ~seal[i]
                for i in range(hpt.reg_words_per_domain)]

    def _expected_masks(self, domain: int) -> List[int]:
        hpt = self.pcu.hpt
        masks = hpt._masks.get(domain)
        seal = self._expected_seal_masks(domain)
        if masks is None:
            return [0] * hpt.mask_words_per_domain
        return [masks.get_mask(s) & ~seal[s]
                for s in range(hpt.mask_words_per_domain)]

    def domain_checksum(self, domain: int) -> int:
        """Checksum of one domain's HPT regions as held in trusted memory.

        Covers the seal overlay too (raw seal words): a flipped seal bit
        has no lockstep signature — both PCU and oracle read the same
        flipped word — so this audit is the detector of record for
        un-seal attempts against trusted memory.
        """
        hpt = self.pcu.hpt
        words = [hpt.read_inst_word(domain, i)
                 for i in range(hpt.inst_words_per_domain)]
        words += [hpt.read_reg_word(domain, i)
                  for i in range(hpt.reg_words_per_domain)]
        words += [hpt.read_mask(domain, s)
                  for s in range(hpt.mask_words_per_domain)]
        words += [hpt.read_seal_inst_word(domain, i)
                  for i in range(hpt.inst_words_per_domain)]
        words += [hpt.read_seal_reg_word(domain, i)
                  for i in range(hpt.reg_words_per_domain)]
        words += [hpt.read_seal_mask(domain, s)
                  for s in range(hpt.mask_words_per_domain)]
        return _fold(words)

    def expected_domain_checksum(self, domain: int) -> int:
        """The same checksum derived from domain-0's mirrors."""
        return _fold(self._expected_inst_words(domain)
                     + self._expected_reg_words(domain)
                     + self._expected_masks(domain)
                     + self._expected_seal_inst(domain)
                     + self._expected_seal_regs(domain)
                     + self._expected_seal_masks(domain))

    # ------------------------------------------------------------------
    # Pass 1: memory vs mirrors (repairable).
    # ------------------------------------------------------------------
    def _scrub_hpt_memory(self, report: ScrubReport, repair: bool) -> None:
        hpt = self.pcu.hpt
        memory = self.pcu.trusted_memory
        for domain in self._domains_to_scrub():
            if self.domain_checksum(domain) == self.expected_domain_checksum(domain):
                continue
            regions = (
                (hpt.inst_word_address, self._expected_inst_words(domain),
                 hpt.read_inst_word),
                (hpt.reg_word_address, self._expected_reg_words(domain),
                 hpt.read_reg_word),
                (hpt.mask_address, self._expected_masks(domain),
                 hpt.read_mask),
                (hpt.seal_inst_address, self._expected_seal_inst(domain),
                 hpt.read_seal_inst_word),
                (hpt.seal_reg_address, self._expected_seal_regs(domain),
                 hpt.read_seal_reg_word),
                (hpt.seal_mask_address, self._expected_seal_masks(domain),
                 hpt.read_seal_mask),
            )
            for address_of, expected, read in regions:
                for index, want in enumerate(expected):
                    if read(domain, index) == want:
                        continue
                    if repair:
                        memory.store_word(address_of(domain, index), want,
                                          origin="scrub")
                        self.pcu.stats.scrub_repairs += 1
                    report.memory_repairs += 1
            report.repaired_domains.append(domain)
            # The PCU may have cached the corrupt word already.
            if repair:
                self.pcu.invalidate_privileges(domain)

    def _scrub_sgt_memory(self, report: ScrubReport, repair: bool) -> None:
        sgt = self.pcu.sgt
        memory = self.pcu.trusted_memory
        for gate_id in range(sgt.gate_nr):
            address = sgt.entry_address(gate_id)
            entry = self.manager.gates.get(gate_id)
            if entry is not None:
                expected = [entry.gate_address, entry.destination_address,
                            entry.destination_domain, 1]
            else:
                # Unregistered slot: only the valid word is architectural
                # (register() rewrites the triple before setting valid).
                expected = [None, None, None, 0]
            for offset, want in enumerate(expected):
                if want is None:
                    continue
                word_address = address + offset * WORD_BYTES
                if memory.load_word(word_address) == want:
                    continue
                if repair:
                    memory.store_word(word_address, want, origin="scrub")
                    self.pcu.stats.scrub_repairs += 1
                    self.pcu.sgt_cache.invalidate(gate_id)
                report.memory_repairs += 1
                if gate_id not in report.repaired_gates:
                    report.repaired_gates.append(gate_id)

    def _scrub_virtualizer(self, report: ScrubReport, repair: bool) -> None:
        """Domain-virtualization state (DESIGN §3.17), two checks.

        * Every slot's trusted-memory generation word against the
          domain-0 mirror the PCU guards with — a flipped word is
          repairable from the mirror.
        * Every *bound* slot's descriptor against its tenant's manifest —
          a mismatch means a flush-on-reuse (or grant replay) was lost
          and the slot carries a prior tenant's grants; the repair
          flushes the slot and replays the manifest.
        """
        virtualizer = getattr(self.manager, "virtualizer", None)
        if virtualizer is None:
            return
        memory = self.pcu.trusted_memory
        for physical in sorted(virtualizer._slot_index):
            address = virtualizer.generation_address_of(physical)
            want = virtualizer.generations.get(physical, 0)
            if memory.load_word(address) == want:
                continue
            if repair:
                memory.store_word(address, want, origin="scrub")
                self.pcu.stats.scrub_repairs += 1
            report.memory_repairs += 1
            report.repaired_generations.append(physical)
        for physical in sorted(virtualizer.slot_owner):
            if virtualizer.slot_conforms(physical):
                continue
            if repair:
                virtualizer.refresh_slot(physical)
                self.pcu.stats.scrub_repairs += 1
            report.memory_repairs += 1
            report.repaired_slots.append(physical)

    # ------------------------------------------------------------------
    # Pass 2: cache layer vs (repaired) memory.
    # ------------------------------------------------------------------
    def _verify_hpt_caches(self, report: ScrubReport) -> None:
        hpt = self.pcu.hpt
        modules = (
            ("inst", self.pcu.hpt_cache.inst, hpt.read_inst_word),
            ("reg", self.pcu.hpt_cache.reg, hpt.read_reg_word),
            ("mask", self.pcu.hpt_cache.mask, hpt.read_mask),
        )
        for name, cache, read in modules:
            for tag, payload in cache.items():
                domain, index = tag
                try:
                    want = read(domain, index)
                except Exception:
                    report.cache_detections.append(
                        "%s cache holds out-of-range tag %r" % (name, tag))
                    continue
                if payload != want:
                    report.cache_detections.append(
                        "%s cache entry %r holds 0x%x, memory says 0x%x"
                        % (name, tag, payload, want))

    def _verify_sgt_cache(self, report: ScrubReport) -> None:
        cache = self.pcu.sgt_cache._cache
        if cache is None:
            return
        for gate_id, payload in cache.items():
            try:
                want = self.pcu.sgt.read_entry(gate_id)
            except GateFault:
                report.cache_detections.append(
                    "SGT cache holds unregistered gate %d" % gate_id)
                continue
            if payload != want:
                report.cache_detections.append(
                    "SGT cache entry %d diverges from memory" % gate_id)

    def _verify_bypass(self, report: ScrubReport) -> None:
        bypass = self.pcu.bypass
        domain = bypass.loaded_domain
        if domain is None:
            return
        if bypass._words != self.pcu.hpt.read_inst_words(domain):
            report.cache_detections.append(
                "bypass instruction-privilege register diverges from HPT "
                "(domain %d)" % domain)

    def _draco_key_legal(self, key) -> bool:
        """Re-derive one proven-legal tuple from the HPT memory words."""
        domain, inst_class, csr, csr_read, csr_write, value, old = key
        hpt = self.pcu.hpt
        word = hpt.read_inst_word(domain, inst_class // 64)
        if not word >> (inst_class % 64) & 1:
            return False
        if csr is None:
            return True
        reg_word = hpt.read_reg_word(domain, (2 * csr) // 64)
        if csr_read and not reg_word >> ((2 * csr) % 64) & 1:
            return False
        if csr_write:
            slot = self.pcu.isa_map.mask_slot(csr)
            if slot is not None:
                if value is None or old is None:
                    return False
                if (old ^ value) & ~hpt.read_mask(domain, slot):
                    return False
            elif not reg_word >> ((2 * csr) % 64 + 1) & 1:
                return False
        return True

    def _verify_draco(self, report: ScrubReport) -> None:
        draco = self.pcu.draco
        if draco is None:
            return
        for key, _ in draco.items():
            try:
                legal = self._draco_key_legal(key)
            except Exception:
                legal = False
            if not legal:
                report.cache_detections.append(
                    "Draco cache proves a now-illegal tuple %r" % (key,))

    # ------------------------------------------------------------------
    # Pass 3: trusted stack digest (unrepairable on mismatch).
    # ------------------------------------------------------------------
    def _verify_stack(self, report: ScrubReport) -> None:
        try:
            self.pcu.trusted_stack.verify_digest()
        except IntegrityFault as fault:
            report.unrepairable.append(str(fault))

    # ------------------------------------------------------------------
    # Entry points.
    # ------------------------------------------------------------------
    def scrub(self, repair: bool = True) -> ScrubReport:
        """One full integrity pass; repairs what has a good copy."""
        report = ScrubReport()
        self.pcu.stats.scrubs += 1
        self._scrub_hpt_memory(report, repair)
        self._scrub_sgt_memory(report, repair)
        self._scrub_virtualizer(report, repair)
        self._verify_hpt_caches(report)
        self._verify_sgt_cache(report)
        self._verify_bypass(report)
        self._verify_draco(report)
        self._verify_stack(report)
        if report.cache_detections:
            if repair:
                # The cache layer lied: unstick every line, flush, and
                # distrust caches until a later scrub comes back clean.
                for cache in (self.pcu.hpt_cache.inst, self.pcu.hpt_cache.reg,
                              self.pcu.hpt_cache.mask):
                    cache.unpin_all()
                if self.pcu.sgt_cache._cache is not None:
                    self.pcu.sgt_cache._cache.unpin_all()
                if self.pcu.draco is not None:
                    self.pcu.draco.unpin_all()
                self.pcu.enter_degraded_mode()
                report.entered_degraded = True
        elif self.pcu.degraded and not report.unrepairable:
            # Caches verified clean while degraded: trust them again.
            if repair:
                self.pcu.exit_degraded_mode()
                report.exited_degraded = True
        return report

    def verify_repaired(self, report: ScrubReport) -> bool:
        """Confirm one repairing scrub left the state clean — targeted.

        The recovery claim used to be backed by a *second* full scrub
        after the final audit; this re-checks only what that audit
        actually touched, at O(repaired) instead of O(whole state):

        * every domain whose HPT words were rewritten must now checksum
          against its mirror;
        * every rewritten SGT entry must match the registration record;
        * if the cache layer lied, the audit flushed everything and
          entered degraded mode — confirm the caches really are empty;
        * the trusted-stack digest (already recomputed by the audit)
          must not have flagged unrepairable corruption.

        Nothing else can have changed between the audit and this check
        (no events run in between), so passing here is equivalent to a
        full confirmation scrub coming back clean.
        """
        if report.unrepairable:
            return False
        for domain in report.repaired_domains:
            if self.domain_checksum(domain) != \
                    self.expected_domain_checksum(domain):
                return False
        memory = self.pcu.trusted_memory
        sgt = self.pcu.sgt
        for gate_id in report.repaired_gates:
            entry = self.manager.gates.get(gate_id)
            expected = ([entry.gate_address, entry.destination_address,
                         entry.destination_domain, 1]
                        if entry is not None else [None, None, None, 0])
            address = sgt.entry_address(gate_id)
            for offset, want in enumerate(expected):
                if want is not None and \
                        memory.load_word(address + offset * WORD_BYTES) != want:
                    return False
        virtualizer = getattr(self.manager, "virtualizer", None)
        if virtualizer is not None:
            for physical in report.repaired_generations:
                address = virtualizer.generation_address_of(physical)
                if memory.load_word(address) != \
                        virtualizer.generations.get(physical, 0):
                    return False
            for physical in report.repaired_slots:
                if not virtualizer.slot_conforms(physical):
                    return False
        if report.cache_detections:
            caches = [self.pcu.hpt_cache.inst, self.pcu.hpt_cache.reg,
                      self.pcu.hpt_cache.mask]
            if self.pcu.sgt_cache._cache is not None:
                caches.append(self.pcu.sgt_cache._cache)
            if self.pcu.draco is not None:
                caches.append(self.pcu.draco)
            if any(len(cache) for cache in caches):
                return False
            if not self.pcu.degraded:
                return False
        return True

    def scrub_or_halt(self, repair: bool = True) -> ScrubReport:
        """Scrub; raise IntegrityFault on unrepairable corruption."""
        report = self.scrub(repair=repair)
        if report.unrepairable:
            raise IntegrityFault("; ".join(report.unrepairable),
                                 region="trusted_stack")
        return report


def make_scrubber(world) -> IntegrityScrubber:
    """Scrubber for a conformance world (``pcu`` + ``manager`` holder)."""
    return IntegrityScrubber(world.pcu, world.manager)
