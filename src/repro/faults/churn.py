"""Tenant-churn campaigns: lockstep survival under slot recycling.

The conformance fuzzer and the abstract fault campaigns run a *fixed*
domain population; churn campaigns instead drive the
:class:`~repro.core.domain_virtualization.DomainVirtualizer` with a
:mod:`~repro.workloads.tenant_churn` op stream — thousands of logical
tenants multiplexed over a few dozen physical slots, with Zipf-popular
gate traffic, bursty arrivals, LRU eviction under ``slot_exhausted``
backpressure, and SYS_DCONF-style reconfiguration commit windows
overlapping live checks.

Every privilege-visible step (gate, check) still runs in lockstep
against the cache-free oracle over shared tables, the integrity
scrubber still runs as a periodic watchdog (now also auditing slot
generation words and bound-slot manifests), the universal contracts —
including ``no_stale_generation`` — judge the whole stream, and the
injected faults aim at the *recycle window* itself: a store fault
mid-bind/recycle, a generation word flipped behind the mirror, a
dropped flush-on-reuse.  Outcomes classify through the same
detected/benign/silent-divergence matrix as every other campaign.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.conformance.events import N_CSR_SLOTS, N_INST_SLOTS
from repro.conformance.generator import Backend, make_backend
from repro.conformance.runner import CONFORMANCE_CONFIGS, Outcome
from repro.core import (
    AccessInfo,
    DomainManager,
    DomainVirtualizer,
    GateKind,
    PrivilegeCheckUnit,
    SlotExhausted,
    TrustedMemory,
)
from repro.core.errors import InjectedFault, PrivilegeFault
from repro.conformance.oracle import OraclePcu
from repro.workloads.tenant_churn import ChurnOp, generate_churn_ops

from .campaign import CLASSIFICATIONS, DEFAULT_SCRUB_INTERVAL
from .injector import FaultInjector, FaultyWordBacking
from .plan import FaultPlan, FaultSpec
from .scrub import IntegrityScrubber

#: Trusted-memory window (matches the conformance worlds).
TMEM_BASE = 0x100000
TMEM_SIZE = 1 << 20

#: Deeper than the conformance stack: visits nest one frame, and the
#: eviction policy must see live frames to refuse recycling them.
STACK_FRAMES = 8

#: Default physical slot pool.  Well under the acceptance ceiling of 64
#: and far under ``max_domains``, so eviction pressure is constant.
DEFAULT_SLOTS = 48

DEFAULT_CHURN_OPS = 1200


class ChurnWorld:
    """Lockstep pair (cached PCU + oracle) driven by churn ops.

    Duck-typed to :class:`~repro.conformance.runner.ConformanceWorld`
    for the fault injector: exposes ``pcu``, ``manager``, ``backend``,
    ``trusted_memory`` and ``slot_ids``.
    """

    def __init__(self, backend: Backend, *, max_slots: int = DEFAULT_SLOTS,
                 config: str = "stress", fast_path: bool = True):
        import dataclasses

        self.backend = backend
        self.trusted_memory = TrustedMemory(base=TMEM_BASE, size=TMEM_SIZE)
        pcu_config = CONFORMANCE_CONFIGS[config]
        if not fast_path:
            pcu_config = dataclasses.replace(pcu_config, fast_path=False)
        self.pcu = PrivilegeCheckUnit(backend.isa_map, pcu_config,
                                      self.trusted_memory)
        self.manager = DomainManager(self.pcu)
        self.manager.allocate_trusted_stack(frames=STACK_FRAMES)
        self.virtualizer = DomainVirtualizer(self.manager, max_slots=max_slots)
        self.oracle = OraclePcu(backend.isa_map, self.pcu.hpt, self.pcu.sgt,
                                self.trusted_memory, STACK_FRAMES)
        # Both lockstep sides guard against the same generation mirror:
        # a recycle hard-faults identically on either implementation.
        self.oracle.generation_table = self.virtualizer.generations
        #: generator tenant handle -> live logical id (None once retired)
        self.logical_of: Dict[int, Optional[int]] = {}
        self.home_handle = -1
        #: check-stall histogram {stall cycles: count} for tail latency
        self.latency: "Counter[int]" = Counter()
        self.checks_run = 0
        self.backpressured = 0

    # -- injector surface ----------------------------------------------
    @property
    def slot_ids(self) -> Dict[int, Optional[int]]:
        ids: Dict[int, Optional[int]] = {0: 0}
        for index, physical in enumerate(sorted(self.virtualizer.slot_owner)):
            ids[index + 1] = physical
        return ids

    # -- lockstep helpers ----------------------------------------------
    def _outcome(self, status: str, pcu_side: bool, target: int = -1) -> Outcome:
        if pcu_side:
            return Outcome(status, self.pcu.current_domain,
                           self.pcu.previous_domain,
                           self.pcu.trusted_stack.depth, target)
        return Outcome(status, self.oracle.domain, self.oracle.pdomain,
                       self.oracle.depth, target)

    def _run_side(self, fn, pcu_side: bool) -> Outcome:
        try:
            target = fn()
        except PrivilegeFault as fault:
            return self._outcome(type(fault).__name__, pcu_side)
        return self._outcome("ok", pcu_side,
                             target if isinstance(target, int) else -1)

    def _check_pair(self, spec: Tuple[int, int, bool, bool]) -> Tuple[Outcome, Outcome]:
        inst_slot, csr_slot, read, write = spec
        access = AccessInfo(
            inst_class=self.backend.inst_class(max(inst_slot, 0)),
            csr=None if csr_slot < 0 else self.backend.csr_index(csr_slot),
            csr_read=read,
            csr_write=write,
            write_value=0 if write else None,
            old_value=0 if write else None,
        )

        def run_cached() -> None:
            stall = self.pcu.check(access)
            self.latency[stall] += 1

        cached = self._run_side(run_cached, True)
        oracle = self._run_side(lambda: self.oracle.check(access), False)
        self.checks_run += 1
        return cached, oracle

    def _gate_pair(self, kind: GateKind, gate_id: int, pc: int,
                   return_address: Optional[int]) -> Tuple[Outcome, Outcome]:
        def run_cached() -> int:
            target, _stall = self.pcu.execute_gate(kind, gate_id, pc,
                                                   return_address)
            return target

        cached = self._run_side(run_cached, True)
        oracle = self._run_side(
            lambda: self.oracle.execute_gate(kind, gate_id, pc,
                                             return_address),
            False)
        return cached, oracle

    # -- op application ------------------------------------------------
    def apply(self, op: ChurnOp, index: int) -> List[Tuple[Outcome, Outcome]]:
        """Apply one churn op; return its lockstep outcome pairs.

        Management ops (spawn/retire/reconfig) act on the *shared*
        tables through domain-0 transactions, so they produce no
        lockstep pairs of their own — the next check or gate is where
        any damage becomes architecturally visible.
        """
        kind = op.kind
        if kind == "spawn":
            return self._apply_spawn(op)
        if kind == "retire":
            return self._apply_retire(op)
        if kind == "reconfig":
            return self._apply_reconfig(op)
        if kind == "migrate":
            return self._apply_migrate(op)
        if kind == "visit":
            return self._apply_visit(op, index)
        if kind == "check":
            return [self._check_pair(spec) for spec in op.checks]
        raise ValueError("unknown churn op kind %r" % kind)

    def _logical(self, handle: int) -> Optional[int]:
        return self.logical_of.get(handle)

    def _apply_spawn(self, op: ChurnOp) -> List[Tuple[Outcome, Outcome]]:
        from repro.core import TenantManifest

        manifest = TenantManifest(
            instructions={self.backend.inst_name(s) for s in op.insts},
            readable_csrs={self.backend.csr_name(s) for s in op.csr_reads},
            writable_csrs={self.backend.csr_name(s) for s in op.csr_writes},
        )
        self.logical_of[op.tenant] = self.virtualizer.spawn(manifest)
        return []

    def _apply_retire(self, op: ChurnOp) -> List[Tuple[Outcome, Outcome]]:
        logical = self._logical(op.tenant)
        if logical is None:
            return []
        self.virtualizer.retire(logical)
        self.logical_of[op.tenant] = None
        return []

    def _apply_reconfig(self, op: ChurnOp) -> List[Tuple[Outcome, Outcome]]:
        logical = self._logical(op.tenant)
        if logical is None:
            return []
        virtualizer = self.virtualizer
        if op.verb == "allow_inst":
            virtualizer.allow_instructions(
                logical, [self.backend.inst_name(op.inst)])
        elif op.verb == "deny_inst":
            virtualizer.deny_instruction(
                logical, self.backend.inst_name(op.inst))
        elif op.verb == "grant_csr":
            virtualizer.grant_register(logical, self.backend.csr_name(op.csr),
                                       read=op.read, write=op.write)
        elif op.verb == "revoke_csr":
            virtualizer.revoke_register(logical, self.backend.csr_name(op.csr),
                                        read=op.read, write=op.write)
        elif op.verb == "seal":
            if op.inst >= 0:
                virtualizer.seal_privileges(
                    logical, instructions=[self.backend.inst_name(op.inst)])
            else:
                virtualizer.seal_privileges(
                    logical, csrs=[self.backend.csr_name(op.csr)],
                    read=op.read, write=op.write)
        else:
            raise ValueError("unknown reconfig verb %r" % op.verb)
        return []

    def _activate(self, logical: int) -> Optional[int]:
        try:
            return self.virtualizer.activate(logical)
        except SlotExhausted:
            # Bounded backpressure: the op is simply deferred (dropped,
            # in this open-loop workload) rather than crashing the run.
            self.backpressured += 1
            return None

    def _apply_migrate(self, op: ChurnOp) -> List[Tuple[Outcome, Outcome]]:
        logical = self._logical(op.tenant)
        if logical is None:
            return []
        self.virtualizer.pin(logical)
        physical = self._activate(logical)
        if physical is None:
            self.virtualizer.unpin(logical)
            return []
        pair = self._gate_pair(
            GateKind.HCCALL,
            self.virtualizer.gate_id_of(physical),
            self.virtualizer.gate_address_of(physical),
            None,
        )
        cached, oracle = pair
        if cached.status == "ok" and oracle.status == "ok":
            old = self._logical(self.home_handle)
            if old is not None and old != logical:
                self.virtualizer.unpin(old)
            self.home_handle = op.tenant
        else:
            self.virtualizer.unpin(logical)
        return [pair]

    def _apply_visit(self, op: ChurnOp,
                     index: int) -> List[Tuple[Outcome, Outcome]]:
        logical = self._logical(op.tenant)
        if logical is None:
            return []
        physical = self._activate(logical)
        if physical is None:
            return []
        return_address = 0x9000 + 4 * (index & 0x3FF)
        gate_id = self.virtualizer.gate_id_of(physical)
        pairs = [self._gate_pair(
            GateKind.HCCALLS,
            gate_id,
            self.virtualizer.gate_address_of(physical),
            return_address,
        )]
        cached, oracle = pairs[0]
        if cached != oracle or cached.status != "ok":
            return pairs  # no domain entered on either side: stay home
        for spec in op.checks:
            pairs.append(self._check_pair(spec))
        pairs.append(self._gate_pair(GateKind.HCRETS, gate_id,
                                     return_address, None))
        return pairs


@dataclass
class ChurnCampaignResult:
    """Outcome of one churn campaign (fault matrix + churn totals)."""

    campaign: int
    stream_seed: int
    spec: FaultSpec
    classification: str
    ops_run: int
    pairs_run: int
    fired: bool
    detail: str
    divergence_index: Optional[int] = None
    detections: List[str] = field(default_factory=list)
    rollbacks: int = 0
    escaped_faults: int = 0
    scrub_repairs: int = 0
    extra_specs: List[FaultSpec] = field(default_factory=list)
    contract_violations: int = 0
    unwaived_contract_violations: int = 0
    contract_counts: Dict[str, int] = field(default_factory=dict)
    #: Virtualizer lifetime counters (spawned/retired/binds/recycles/
    #: evictions/slot_exhausted) — the churn-specific half of the story.
    virtualizer: Dict[str, int] = field(default_factory=dict)
    checks_run: int = 0
    backpressured: int = 0
    #: Check-stall histogram {stall cycles: count}; percentiles derive
    #: from it without storing per-check samples.
    latency: Dict[int, int] = field(default_factory=dict)

    @property
    def widening(self) -> bool:
        return self.spec.widening or any(s.widening for s in self.extra_specs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign": self.campaign,
            "stream_seed": self.stream_seed,
            "spec": self.spec.to_dict(),
            "extra_specs": [s.to_dict() for s in self.extra_specs],
            "classification": self.classification,
            "ops_run": self.ops_run,
            "pairs_run": self.pairs_run,
            "fired": self.fired,
            "detail": self.detail,
            "divergence_index": self.divergence_index,
            "detections": list(self.detections),
            "rollbacks": self.rollbacks,
            "escaped_faults": self.escaped_faults,
            "scrub_repairs": self.scrub_repairs,
            "contract_violations": self.contract_violations,
            "unwaived_contract_violations": self.unwaived_contract_violations,
            "contract_counts": dict(self.contract_counts),
            "virtualizer": dict(self.virtualizer),
            "checks_run": self.checks_run,
            "backpressured": self.backpressured,
            "latency": {str(k): v for k, v in sorted(self.latency.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChurnCampaignResult":
        data = dict(data)
        data["spec"] = FaultSpec.from_dict(data["spec"])
        data["extra_specs"] = [FaultSpec.from_dict(s)
                               for s in data.get("extra_specs", [])]
        data["latency"] = {int(k): v
                           for k, v in data.get("latency", {}).items()}
        return cls(**data)


def latency_percentiles(histogram: Dict[int, int]) -> Dict[str, int]:
    """p50/p99 check stall from a {stall: count} histogram."""
    total = sum(histogram.values())
    if not total:
        return {"p50": 0, "p99": 0}
    out: Dict[str, int] = {}
    for name, fraction in (("p50", 0.50), ("p99", 0.99)):
        threshold = fraction * total
        seen = 0
        value = 0
        for stall in sorted(histogram):
            seen += histogram[stall]
            value = stall
            if seen >= threshold:
                break
        out[name] = value
    return out


def run_churn_campaign(
    backend_name: str,
    spec: FaultSpec,
    stream_seed: int,
    n_ops: int,
    *,
    max_slots: int = DEFAULT_SLOTS,
    config: str = "stress",
    scrub_interval: int = DEFAULT_SCRUB_INTERVAL,
    campaign: int = 0,
    extra_specs: Sequence[FaultSpec] = (),
    contracts: bool = True,
) -> ChurnCampaignResult:
    """Run one faulted churn stream in lockstep and classify the outcome.

    The classification ladder is deliberately identical to
    :func:`~repro.faults.campaign.run_campaign` — recycle-window faults
    answer to the same detected/benign/silent-divergence matrix as every
    other fault kind, they just get a richer world to do damage in.
    """
    backend = make_backend(backend_name)
    world = ChurnWorld(backend, max_slots=max_slots, config=config)
    backing = FaultyWordBacking(world.trusted_memory._backing,
                                trusted_memory=world.trusted_memory)
    world.trusted_memory._backing = backing
    injectors = [FaultInjector(world, backing, s)
                 for s in (spec, *extra_specs)]
    scrubber = IntegrityScrubber(world.pcu, world.manager)
    monitor = None
    if contracts:
        from repro.contracts import ContractMonitor

        def waiver_probe():
            if any(i.fired for i in injectors) or backing.store_faults_fired:
                return ("; ".join(i.detail for i in injectors if i.fired)
                        or backing.last_fired_detail or "injected fault")
            return None

        monitor = ContractMonitor(seed=stream_seed, campaign=campaign)
        monitor.attach(world.pcu, world.manager)
        monitor.waiver_probe = waiver_probe

    trace = generate_churn_ops(stream_seed, n_ops, N_INST_SLOTS, N_CSR_SLOTS)
    detections: List[str] = []
    divergence_index: Optional[int] = None
    halted = False
    ops_run = 0
    pairs_run = 0
    escaped_faults = 0
    stats = world.pcu.stats

    def fault_owner() -> FaultInjector:
        if backing.last_fired_owner is not None:
            return backing.last_fired_owner
        return next((i for i in injectors
                     if i.spec.kind in ("store_fault", "recycle_store_fault")),
                    injectors[0])

    def settle_injected_fault() -> None:
        nonlocal escaped_faults
        if stats.reconfig_rollbacks > rollbacks_before:
            fault_owner().note_rollback()
        else:
            fault_owner().note_escaped()
            escaped_faults += 1

    def note(report) -> None:
        if report.memory_repairs:
            detections.append("scrub repaired %d word(s)"
                              % report.memory_repairs)
        detections.extend(report.cache_detections)
        detections.extend("UNREPAIRABLE: " + u for u in report.unrepairable)

    def safe_scrub():
        nonlocal rollbacks_before
        rollbacks_before = stats.reconfig_rollbacks
        try:
            return scrubber.scrub()
        except InjectedFault:
            settle_injected_fault()
            return scrubber.scrub()

    rollbacks_before = stats.reconfig_rollbacks
    for index, op in enumerate(trace.ops):
        for injector in injectors:
            injector.on_event(index)
        rollbacks_before = stats.reconfig_rollbacks
        try:
            pairs = world.apply(op, index)
        except InjectedFault:
            settle_injected_fault()
            ops_run = index + 1
            continue
        ops_run = index + 1
        pairs_run += len(pairs)
        diverged = next((p for p in pairs if p[0] != p[1]), None)
        if diverged is not None:
            divergence_index = index
            break
        if scrub_interval and (index + 1) % scrub_interval == 0:
            report = safe_scrub()
            note(report)
            if report.unrepairable:
                halted = True
                break

    audit = safe_scrub()
    note(audit)
    if audit.unrepairable:
        halted = True

    rollbacks = sum(i.rollbacks_seen for i in injectors)
    detected = bool(detections) or rollbacks > 0
    if divergence_index is not None:
        classification = "detected_halted" if detected else "silent_divergence"
    elif halted:
        classification = "detected_halted"
    elif detected:
        classification = ("detected_recovered"
                          if audit.clean or scrubber.verify_repaired(audit)
                          else "detected_halted")
    else:
        classification = "benign"

    return ChurnCampaignResult(
        campaign=campaign,
        stream_seed=stream_seed,
        spec=spec,
        classification=classification,
        ops_run=ops_run,
        pairs_run=pairs_run,
        fired=any(i.fired for i in injectors),
        detail="; ".join(i.detail for i in injectors),
        divergence_index=divergence_index,
        detections=detections,
        rollbacks=rollbacks,
        escaped_faults=escaped_faults,
        scrub_repairs=stats.scrub_repairs,
        extra_specs=list(extra_specs),
        contract_violations=(0 if monitor is None
                             else monitor.total_violations),
        unwaived_contract_violations=(0 if monitor is None
                                      else monitor.unwaived_violations),
        contract_counts=({} if monitor is None
                         else monitor.nonzero_counts()),
        virtualizer=world.virtualizer.stats.to_dict(),
        checks_run=world.checks_run,
        backpressured=world.backpressured,
        latency=dict(world.latency),
    )


@dataclass
class ChurnMatrix:
    """All churn campaigns of one backend."""

    backend: str
    seed: int
    n_ops: int
    max_slots: int
    results: List[ChurnCampaignResult]

    @property
    def counts(self) -> Dict[str, int]:
        counter = Counter(r.classification for r in self.results)
        return {name: counter.get(name, 0) for name in CLASSIFICATIONS}

    @property
    def widening_silent(self) -> List[ChurnCampaignResult]:
        return [r for r in self.results
                if r.classification == "silent_divergence" and r.widening]

    @property
    def unwaived_contract_violations(self) -> int:
        return sum(r.unwaived_contract_violations for r in self.results)

    @property
    def logical_domains(self) -> int:
        return sum(r.virtualizer.get("spawned", 0) for r in self.results)

    @property
    def slot_exhausted(self) -> int:
        return sum(r.virtualizer.get("slot_exhausted", 0)
                   for r in self.results)

    @property
    def latency(self) -> Dict[int, int]:
        merged: "Counter[int]" = Counter()
        for result in self.results:
            merged.update(result.latency)
        return dict(merged)

    def to_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "seed": self.seed,
            "ops": self.n_ops,
            "max_slots": self.max_slots,
            "campaigns": len(self.results),
            "classification_counts": self.counts,
            "widening_silent_divergences": len(self.widening_silent),
            "unwaived_contract_violations": self.unwaived_contract_violations,
            "logical_domains": self.logical_domains,
            "slot_exhausted": self.slot_exhausted,
            "latency_percentiles": latency_percentiles(self.latency),
            "results": [r.to_dict() for r in self.results],
        }


def run_churn_campaigns(
    backend_name: str,
    seed: int,
    n_ops: int,
    n_campaigns: int,
    *,
    max_slots: int = DEFAULT_SLOTS,
    config: str = "stress",
    scrub_interval: int = DEFAULT_SCRUB_INTERVAL,
    contracts: bool = True,
    campaign_lo: int = 0,
    campaign_hi: Optional[int] = None,
) -> ChurnMatrix:
    """K churn campaigns, each with its own stream seed and fault."""
    plan = FaultPlan(seed)
    hi = n_campaigns if campaign_hi is None else campaign_hi
    results = []
    for campaign in range(campaign_lo, hi):
        specs = plan.draw_churn_specs(campaign, n_ops)
        results.append(run_churn_campaign(
            backend_name, specs[0],
            stream_seed=seed + campaign,
            n_ops=n_ops,
            max_slots=max_slots,
            config=config,
            scrub_interval=scrub_interval,
            campaign=campaign,
            extra_specs=specs[1:],
            contracts=contracts,
        ))
    return ChurnMatrix(backend_name, seed, n_ops, max_slots, results)


def write_churn_report(matrices: List[ChurnMatrix],
                       path: str) -> Dict[str, object]:
    """Aggregate churn matrices into one JSON report under ``results/``."""
    from repro.contracts import CONTRACT_NAMES

    totals: "Counter[str]" = Counter()
    contract_totals: "Counter[str]" = Counter()
    latency: "Counter[int]" = Counter()
    widening_silent = 0
    unwaived = 0
    logical_domains = 0
    slot_exhausted = 0
    max_slots = 0
    for matrix in matrices:
        totals.update(matrix.counts)
        widening_silent += len(matrix.widening_silent)
        unwaived += matrix.unwaived_contract_violations
        logical_domains += matrix.logical_domains
        slot_exhausted += matrix.slot_exhausted
        latency.update(matrix.latency)
        max_slots = max(max_slots, matrix.max_slots)
        for result in matrix.results:
            contract_totals.update(result.contract_counts)
    payload = {
        "format": "isagrid-churn-campaign-v1",
        "classification_counts": {name: totals.get(name, 0)
                                  for name in CLASSIFICATIONS},
        "widening_silent_divergences": widening_silent,
        "contract_counts": {name: contract_totals.get(name, 0)
                            for name in CONTRACT_NAMES},
        "unwaived_contract_violations": unwaived,
        "logical_domains": logical_domains,
        "max_slots": max_slots,
        "slot_exhausted": slot_exhausted,
        "latency_percentiles": latency_percentiles(dict(latency)),
        "matrices": [matrix.to_dict() for matrix in matrices],
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    return payload
