"""Machine-level fault campaigns: faults under a *running* kernel.

The abstract campaigns (:mod:`repro.faults.campaign`) replay generated
domain-0 event streams; this module injects the same fault vocabulary
under the PR-4 fetch-execute loop instead.  One campaign boots a
decomposed MiniKernel (RISC-V or x86), runs a gate-heavy user workload
through :meth:`repro.sim.machine.Machine.run`, and drives three things
against it:

* a **lockstep oracle** — the PCU's ``check`` / ``execute_gate`` /
  ``check_memory_access`` entry points are wrapped so every call the
  *CPU* makes is mirrored into a cache-free
  :class:`~repro.conformance.oracle.OraclePcu` sharing the same
  HPT/SGT/trusted memory, and the first disagreement (fault class,
  gate target, or post-gate domain/stack state) stops the machine;
* **reconfiguration pulses** — periodic domain-0 transactions (gate
  re-registration, instruction/CSR toggle pairs, mask rewrites) run
  while the machine is paused between instructions.  Each pulse is
  state-neutral when it commits, so pulses only change behaviour when
  a fault lands inside one — which is exactly what the commit-window
  fault kinds arm for;
* the **integrity-scrub watchdog** and a final audit, exactly like the
  abstract campaigns.

Triggers are machine-level: a fault fires at a retired-instruction
count (``inst``), a simulated-cycle count (``cycle``), or a pulse index
(``event``, the analogue of the abstract campaigns' event index).  The
commit-window kinds (``commit_store_fault``, ``commit_flip_journalled``)
use their trigger as the *arming* point and fire on the Nth journalled
store inside a later ``DomainManager`` transaction, exercising
``abort_transaction``'s newest-first replay directly.

Classification is the abstract campaigns' four-way split.  Two
machine-specific notes: a campaign whose workload exhausts its
instruction budget without halting counts as a *watchdog* detection
(the liveness monitor halts the core), and injected store faults that
fire outside any transaction are tallied as ``escaped_faults`` — they
are not detections and must earn their classification from the
lockstep diff and the audit.
"""

from __future__ import annotations

import dataclasses
import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.conformance.generator import make_backend
from repro.conformance.oracle import OraclePcu
from repro.core import CONFIG_8E
from repro.core.errors import InjectedFault, PrivilegeFault
from repro.core.trusted_memory import WORD_BYTES

from .campaign import CLASSIFICATIONS
from .injector import FaultInjector, FaultyWordBacking
from .plan import FaultPlan, FaultSpec
from .scrub import IntegrityScrubber

#: Backends a machine campaign can target.
MACHINE_BACKENDS = ("riscv", "x86")

#: Default workload size (GATE_STRESS outer iterations) per campaign.
DEFAULT_MACHINE_ITERATIONS = 12

#: Nominal reconfiguration pulses across one campaign run.
PULSES_PER_RUN = 16

#: Measured boot + per-iteration dynamic instruction counts of the
#: machine-campaign workload (GATE_STRESS), per backend.  These only
#: size the trigger windows and pulse cadence — a drift of +-30% from
#: future kernel changes is harmless, because triggers are drawn from
#: the middle half of the estimated run and the step budget is 4x.
_BOOT_INSTRUCTIONS = {"riscv": 57, "x86": 57}
_PER_ITERATION_INSTRUCTIONS = {"riscv": 3180, "x86": 3186}


@dataclass(frozen=True)
class MachineGeometry:
    """Derived campaign timing parameters (a pure function of inputs).

    Both the serial driver and the orchestrator workers derive specs
    from this geometry, so it must depend only on the backend name and
    the explicit knobs — never on anything measured at run time.
    """

    n_steps: int          # estimated boot-to-halt instruction count
    budget: int           # hard instruction budget (liveness watchdog)
    pulse_interval: int   # instructions between reconfiguration pulses
    scrub_interval: int   # instructions between watchdog scrubs
    n_pulses: int         # nominal pulse count (event-trigger range)


def machine_geometry(
    backend_name: str,
    iterations: int = DEFAULT_MACHINE_ITERATIONS,
    scrub_interval: Optional[int] = None,
    pulse_interval: Optional[int] = None,
) -> MachineGeometry:
    n_steps = (_BOOT_INSTRUCTIONS[backend_name]
               + iterations * _PER_ITERATION_INSTRUCTIONS[backend_name])
    if pulse_interval is None:
        pulse_interval = max(500, n_steps // PULSES_PER_RUN)
    if scrub_interval is None:
        scrub_interval = max(2 * pulse_interval, n_steps // 4)
    return MachineGeometry(
        n_steps=n_steps,
        budget=4 * n_steps + 100_000,
        pulse_interval=pulse_interval,
        scrub_interval=scrub_interval,
        n_pulses=max(1, n_steps // pulse_interval),
    )


def _build_kernel(backend_name: str):
    if backend_name == "riscv":
        from repro.kernel import RiscvKernel
        return RiscvKernel("decomposed", CONFIG_8E)
    if backend_name == "x86":
        from repro.kernel import X86Kernel
        return X86Kernel("decomposed", CONFIG_8E)
    raise ValueError("unknown machine backend %r" % backend_name)


def _workload(backend_name: str, iterations: int):
    from repro.workloads import GATE_STRESS
    from repro.workloads.generator import riscv_user_program, x86_user_program

    profile = dataclasses.replace(GATE_STRESS, outer_iterations=iterations)
    if backend_name == "riscv":
        return riscv_user_program(profile)
    return x86_user_program(profile)


class MachineWorld:
    """Duck-typed ConformanceWorld stand-in over a booted kernel.

    :class:`~repro.faults.injector.FaultInjector` needs ``pcu``,
    ``manager``, ``backend`` and ``slot_ids``; here the abstract domain
    slots resolve to the kernel's real module domains (slot 0 is always
    domain-0, slots 1..N the live domains in id order).
    """

    def __init__(self, kernel, backend_name: str):
        self.kernel = kernel
        self.backend_name = backend_name
        self.pcu = kernel.system.pcu
        self.manager = kernel.system.manager
        self.backend = make_backend(backend_name)
        self.trusted_memory = self.pcu.trusted_memory
        self.slot_ids: Dict[int, Optional[int]] = {0: 0}
        for index, domain_id in enumerate(
                sorted(d for d in self.manager.domains if d != 0)):
            self.slot_ids[index + 1] = domain_id


class LockstepMonitor:
    """Mirror every CPU-originated PCU call into a cache-free oracle.

    Installed by shadowing the PCU's bound methods with instance
    attributes — the CPUs look the methods up per call, so no core code
    changes.  The real PCU always runs *first*; an
    :class:`InjectedFault` from it propagates before the oracle is
    consulted, so both sides agree the instruction never executed and a
    retry stays in lockstep (the injected faults are one-shot).

    Only the first divergence is recorded: once the two models disagree
    their downstream states are incomparable, and the campaign driver
    stops the machine at the next step anyway.
    """

    def __init__(self, pcu, oracle: OraclePcu, stats):
        self.pcu = pcu
        self.oracle = oracle
        self.stats = stats
        self.divergence: Optional[str] = None
        self.divergence_instruction: Optional[int] = None
        self.checks = 0

    # -- lifecycle ------------------------------------------------------
    def install(self) -> None:
        pcu = self.pcu
        self._real_check = pcu.check
        self._real_gate = pcu.execute_gate
        self._real_mem = pcu.check_memory_access
        pcu.check = self._check
        pcu.execute_gate = self._execute_gate
        pcu.check_memory_access = self._check_memory_access

    def uninstall(self) -> None:
        for name in ("check", "execute_gate", "check_memory_access"):
            self.pcu.__dict__.pop(name, None)

    # -- helpers --------------------------------------------------------
    def _diverge(self, description: str) -> None:
        if self.divergence is None:
            self.divergence = description
            self.divergence_instruction = self.stats.instructions

    @staticmethod
    def _fault_name(fault) -> Optional[str]:
        return None if fault is None else type(fault).__name__

    # -- wrapped entry points ------------------------------------------
    def _check(self, access):
        self.checks += 1
        stall = 0
        real_fault = None
        try:
            stall = self._real_check(access)
        except PrivilegeFault as fault:
            real_fault = fault
        oracle_fault = None
        try:
            self.oracle.check(access)
        except PrivilegeFault as fault:
            oracle_fault = fault
        if self._fault_name(real_fault) != self._fault_name(oracle_fault):
            self._diverge(
                "check(class %d @0x%x): pcu=%s oracle=%s"
                % (access.inst_class, access.address,
                   self._fault_name(real_fault),
                   self._fault_name(oracle_fault)))
        if real_fault is not None:
            raise real_fault
        return stall

    def _execute_gate(self, kind, gate_id, pc, return_address=None):
        self.checks += 1
        target = stall = 0
        real_fault = None
        try:
            target, stall = self._real_gate(
                kind, gate_id, pc, return_address=return_address)
        except PrivilegeFault as fault:
            real_fault = fault
        oracle_fault = None
        oracle_target = None
        try:
            oracle_target = self.oracle.execute_gate(
                kind, gate_id, pc, return_address)
        except PrivilegeFault as fault:
            oracle_fault = fault
        pcu, oracle = self.pcu, self.oracle
        if self._fault_name(real_fault) != self._fault_name(oracle_fault):
            self._diverge(
                "%s(gate %d @0x%x): pcu=%s oracle=%s"
                % (kind.name.lower(), gate_id, pc,
                   self._fault_name(real_fault),
                   self._fault_name(oracle_fault)))
        elif real_fault is None:
            if target != oracle_target:
                self._diverge(
                    "%s(gate %d @0x%x): target pcu=0x%x oracle=0x%x"
                    % (kind.name.lower(), gate_id, pc, target, oracle_target))
            elif (pcu.current_domain != oracle.domain
                  or pcu.previous_domain != oracle.pdomain
                  or pcu.trusted_stack.depth != oracle.depth):
                self._diverge(
                    "%s(gate %d @0x%x): post state pcu=(d%d,p%d,depth %d) "
                    "oracle=(d%d,p%d,depth %d)"
                    % (kind.name.lower(), gate_id, pc,
                       pcu.current_domain, pcu.previous_domain,
                       pcu.trusted_stack.depth,
                       oracle.domain, oracle.pdomain, oracle.depth))
        if real_fault is not None:
            raise real_fault
        return target, stall

    def _check_memory_access(self, address, pc=0):
        real_fault = None
        try:
            self._real_mem(address, pc)
        except PrivilegeFault as fault:
            real_fault = fault
        oracle_fault = None
        try:
            self.oracle.check_memory_access(address, pc)
        except PrivilegeFault as fault:
            oracle_fault = fault
        if self._fault_name(real_fault) != self._fault_name(oracle_fault):
            self._diverge(
                "check_memory_access(0x%x @0x%x): pcu=%s oracle=%s"
                % (address, pc, self._fault_name(real_fault),
                   self._fault_name(oracle_fault)))
        if real_fault is not None:
            raise real_fault


class ReconfigPulser:
    """Domain-0 transactions fired between instructions.

    By default every pulse is *state-neutral* — it commits back to the
    configuration it started from: gate re-registration of the same
    triple, a deny/re-allow instruction pair, a revoke/re-grant CSR
    read pair, or rewriting a bit mask to its current value.  The point
    is the *commit windows* they open — journalled trusted-memory
    stores for the commit-window fault kinds to land in — plus the
    coherence sweeps they trigger (the surface the ``drop_invalidate``
    kind needs).

    With ``state_changing`` the pulse rotation additionally spawns and
    retires short-lived *scratch domains* (create + grant, then
    destroy), so the commit windows genuinely move the table state the
    workload's live checks run against — multi-tenant churn in
    miniature — instead of always netting out to a no-op.  The flag
    defaults off so existing campaign reports stay byte-identical.

    The kernel domain (where the user workload executes) is never the
    toggle target: an aborted pulse may legitimately leave a deny
    standing, and stranding the *workload's own* domain without its
    basic classes would turn every campaign into a fault storm.
    Stranding a module domain instead is survivable — the kernel's
    fault handler skips, which is itself interesting campaign surface.
    """

    OPS = ("gate_rewrite", "inst_toggle", "csr_toggle", "mask_rewrite")
    STATE_CHANGING_OPS = OPS + ("scratch_spawn", "scratch_retire")

    #: Scratch-domain population cap under ``state_changing`` — enough
    #: to keep churn alive, bounded so long runs never exhaust the
    #: domain-id space.
    MAX_SCRATCH = 4

    def __init__(self, manager, protected_domain: Optional[int], seed: int,
                 state_changing: bool = False):
        import random

        self.manager = manager
        self.protected = protected_domain
        self.rng = random.Random(0x9C1 ^ seed)
        self.pulses_run = 0
        self.state_changing = state_changing
        self.ops = self.STATE_CHANGING_OPS if state_changing else self.OPS
        self._scratch: List[int] = []
        self._scratch_seq = 0

    def _toggle_domains(self) -> List[int]:
        return sorted(d for d in self.manager.domains
                      if d != 0 and d != self.protected)

    def pulse(self) -> None:
        op = self.ops[self.pulses_run % len(self.ops)]
        self.pulses_run += 1
        getattr(self, "_" + op)()

    def _scratch_spawn(self) -> None:
        from repro.core.errors import ConfigurationError

        if len(self._scratch) >= self.MAX_SCRATCH:
            return self._scratch_retire()
        try:
            descriptor = self.manager.create_domain(
                "pulse-scratch%d" % self._scratch_seq)
        except ConfigurationError:
            return  # out of domain ids: stop spawning, keep retiring
        self._scratch_seq += 1
        self._scratch.append(descriptor.domain_id)
        # Grant the newcomer a class some live domain really holds, so
        # the spawn writes genuine HPT state (not an all-zero row).
        for domain in self._toggle_domains():
            if domain in self._scratch:
                continue
            classes = sorted(self.manager.domains[domain].instructions)
            if classes:
                self.manager.allow_instructions(
                    descriptor.domain_id,
                    (classes[self.rng.randrange(len(classes))],))
                return

    def _scratch_retire(self) -> None:
        if self._scratch:
            self.manager.destroy_domain(self._scratch.pop(0))

    def _gate_rewrite(self) -> None:
        gates = sorted(self.manager.gates)
        if not gates:
            return
        gate_id = gates[self.rng.randrange(len(gates))]
        entry = self.manager.gates[gate_id]
        self.manager.register_gate(
            entry.gate_address, entry.destination_address,
            entry.destination_domain, gate_id=gate_id)

    def _inst_toggle(self) -> None:
        for domain in self._pick_order():
            classes = sorted(self.manager.domains[domain].instructions)
            if not classes:
                continue
            name = classes[self.rng.randrange(len(classes))]
            self.manager.deny_instruction(domain, name)
            self.manager.allow_instructions(domain, (name,))
            return

    def _csr_toggle(self) -> None:
        for domain in self._pick_order():
            csrs = sorted(self.manager.domains[domain].readable_csrs)
            if not csrs:
                continue
            name = csrs[self.rng.randrange(len(csrs))]
            self.manager.revoke_register(domain, name, read=True)
            self.manager.grant_register(domain, name, read=True)
            return

    def _mask_rewrite(self) -> None:
        candidates = self._toggle_domains()
        if self.protected is not None:
            candidates.append(self.protected)  # masks are rewrite-safe
        for domain in candidates:
            grants = sorted(self.manager.domains[domain].bit_grants.items())
            if not grants:
                continue
            name, mask = grants[self.rng.randrange(len(grants))]
            self.manager.set_register_mask(domain, name, mask)
            return

    def _pick_order(self) -> List[int]:
        domains = self._toggle_domains()
        self.rng.shuffle(domains)
        return domains


@dataclass
class MachineCampaignResult:
    """Outcome of one machine-level fault campaign."""

    campaign: int
    backend: str
    spec: FaultSpec
    classification: str
    instructions: int
    cycles: float
    fired: bool
    detail: str
    pulses_run: int = 0
    divergence: Optional[str] = None
    divergence_instruction: Optional[int] = None
    detections: List[str] = field(default_factory=list)
    rollbacks: int = 0
    escaped_faults: int = 0
    scrub_repairs: int = 0
    degraded_entries: int = 0
    #: DomainManager transactions (committed + rolled back) during the
    #: run, and trusted-memory stores journalled inside them — the
    #: surface the commit-window fault kinds aim at.
    commit_windows: int = 0
    journalled_stores: int = 0
    workload_halted: bool = False
    kernel_faults: int = 0
    syscalls: int = 0
    lockstep_checks: int = 0
    extra_specs: List[FaultSpec] = field(default_factory=list)
    #: Universal-contract accounting (DESIGN §3.16): total violations,
    #: the must-be-zero unwaived subset, and nonzero per-contract counts.
    contract_violations: int = 0
    unwaived_contract_violations: int = 0
    contract_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def widening(self) -> bool:
        return self.spec.widening or any(s.widening for s in self.extra_specs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign": self.campaign,
            "backend": self.backend,
            "spec": self.spec.to_dict(),
            "extra_specs": [s.to_dict() for s in self.extra_specs],
            "classification": self.classification,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "fired": self.fired,
            "detail": self.detail,
            "pulses_run": self.pulses_run,
            "divergence": self.divergence,
            "divergence_instruction": self.divergence_instruction,
            "detections": list(self.detections),
            "rollbacks": self.rollbacks,
            "escaped_faults": self.escaped_faults,
            "scrub_repairs": self.scrub_repairs,
            "degraded_entries": self.degraded_entries,
            "commit_windows": self.commit_windows,
            "journalled_stores": self.journalled_stores,
            "workload_halted": self.workload_halted,
            "kernel_faults": self.kernel_faults,
            "syscalls": self.syscalls,
            "lockstep_checks": self.lockstep_checks,
            "contract_violations": self.contract_violations,
            "unwaived_contract_violations": self.unwaived_contract_violations,
            "contract_counts": dict(self.contract_counts),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MachineCampaignResult":
        data = dict(data)
        data["spec"] = FaultSpec.from_dict(data["spec"])
        data["extra_specs"] = [FaultSpec.from_dict(s)
                               for s in data.get("extra_specs", [])]
        return cls(**data)


class _StopGate:
    """Mutable stop thresholds the per-step hook reads."""

    __slots__ = ("inst", "cycle")

    def __init__(self):
        self.inst = float("inf")
        self.cycle = float("inf")


def run_machine_campaign(
    backend_name: str,
    specs: Sequence[FaultSpec],
    campaign: int = 0,
    *,
    pulse_seed: int = 0,
    iterations: int = DEFAULT_MACHINE_ITERATIONS,
    scrub_interval: Optional[int] = None,
    pulse_interval: Optional[int] = None,
    contracts: bool = True,
    state_changing_pulses: bool = False,
) -> MachineCampaignResult:
    """Run one faulted kernel workload in lockstep and classify it."""
    if not specs:
        raise ValueError("a machine campaign needs at least one FaultSpec")
    geometry = machine_geometry(backend_name, iterations,
                                scrub_interval, pulse_interval)
    kernel = _build_kernel(backend_name)
    world = MachineWorld(kernel, backend_name)
    trusted_memory = world.trusted_memory
    # Interpose the faulty backing after boot: the kernel's own domain
    # configuration is never the fault target, the running campaign is.
    backing = FaultyWordBacking(trusted_memory._backing,
                                trusted_memory=trusted_memory)
    trusted_memory._backing = backing
    injectors = [FaultInjector(world, backing, s) for s in specs]
    scrubber = IntegrityScrubber(world.pcu, world.manager)
    contract_monitor = None
    if contracts:
        from repro.contracts import ContractMonitor

        def waiver_probe():
            if any(i.fired for i in injectors) or backing.store_faults_fired:
                return ("; ".join(i.detail for i in injectors if i.fired)
                        or backing.last_fired_detail or "injected fault")
            return None

        # Attached after boot, so the monitor seeds its contract shadows
        # from the kernel's committed domain/gate configuration.  The
        # taps are inline in the PCU class methods, so the lockstep
        # monitor's instance-level shadowing below still routes every
        # check through them.
        contract_monitor = ContractMonitor(seed=pulse_seed,
                                           campaign=campaign)
        contract_monitor.attach(world.pcu, world.manager)
        contract_monitor.waiver_probe = waiver_probe

    pcu = world.pcu
    registers = pcu.registers
    frames = (registers.hcsl - registers.hcsb) // (2 * WORD_BYTES)
    machine = kernel.system.machine
    stats = machine.stats
    oracle = OraclePcu(pcu.isa_map, pcu.hpt, pcu.sgt, trusted_memory,
                       stack_frames=frames)
    monitor = LockstepMonitor(pcu, oracle, stats)
    monitor.install()
    pulser = ReconfigPulser(world.manager,
                            world.kernel.domains.get("kernel"),
                            seed=pulse_seed,
                            state_changing=state_changing_pulses)

    pcu_stats = pcu.stats
    base_commits = (world.manager.transactions_committed
                    + world.manager.transactions_rolled_back)
    base_journalled = trusted_memory.journalled_stores_total
    base_faults = kernel.fault_count

    detections: List[str] = []
    escaped_faults = 0
    rollbacks_before = pcu_stats.reconfig_rollbacks

    def fault_owner() -> FaultInjector:
        if backing.last_fired_owner is not None:
            return backing.last_fired_owner
        return next((i for i in injectors
                     if i.spec.kind in ("store_fault", "commit_store_fault",
                                        "commit_flip_journalled")),
                    injectors[0])

    def settle_injected_fault() -> None:
        # Same contract as the abstract campaigns: a rollback is only
        # credited when the DomainManager actually rolled one back.
        nonlocal escaped_faults
        if pcu_stats.reconfig_rollbacks > rollbacks_before:
            fault_owner().note_rollback()
        else:
            fault_owner().note_escaped()
            escaped_faults += 1

    def note(report) -> None:
        if report.memory_repairs:
            detections.append("scrub repaired %d word(s)"
                              % report.memory_repairs)
        detections.extend(report.cache_detections)
        detections.extend("UNREPAIRABLE: " + u for u in report.unrepairable)

    def safe_scrub():
        nonlocal rollbacks_before
        rollbacks_before = pcu_stats.reconfig_rollbacks
        try:
            return scrubber.scrub()
        except InjectedFault:
            settle_injected_fault()
            return scrubber.scrub()

    # Trigger bookkeeping: event triggers key on the pulse index, the
    # others fire at the first pause point past their threshold.
    event_pending: Dict[int, List[FaultInjector]] = {}
    inst_pending: List[Tuple[int, FaultInjector]] = []
    cycle_pending: List[Tuple[int, FaultInjector]] = []
    for injector in injectors:
        spec = injector.spec
        if spec.trigger_kind == "inst":
            inst_pending.append((spec.trigger, injector))
        elif spec.trigger_kind == "cycle":
            cycle_pending.append((spec.trigger, injector))
        else:
            event_pending.setdefault(spec.trigger, []).append(injector)

    kernel.load_user(_workload(backend_name, iterations))
    kernel.cpu.pc = kernel.symbol("boot")
    gate = _StopGate()

    def hook(_info, stats=stats, gate=gate, monitor=monitor) -> bool:
        return (stats.instructions >= gate.inst
                or stats.cycles >= gate.cycle
                or monitor.divergence is not None)

    machine.step_hook = hook

    next_pulse = geometry.pulse_interval
    next_scrub = geometry.scrub_interval
    pulse_index = 0
    halted_by_scrub = False
    budget = geometry.budget
    while True:
        gate.inst = min([next_pulse, next_scrub, budget]
                        + [t for t, _ in inst_pending])
        gate.cycle = min((t for t, _ in cycle_pending), default=float("inf"))
        rollbacks_before = pcu_stats.reconfig_rollbacks
        try:
            machine.run(max_steps=max(1, budget - stats.instructions),
                        require_halt=False)
        except InjectedFault:
            # The faulted instruction never retired; the fault is
            # one-shot, so resuming retries it cleanly on both sides.
            settle_injected_fault()
            continue
        if stats.halted or monitor.divergence is not None:
            break
        if stats.instructions >= budget:
            detections.append(
                "WATCHDOG: no halt after %d instructions (budget %dx nominal)"
                % (stats.instructions, 4))
            halted_by_scrub = True
            break
        for threshold, injector in list(inst_pending):
            if stats.instructions >= threshold:
                injector.fire()
                inst_pending.remove((threshold, injector))
        for threshold, injector in list(cycle_pending):
            if stats.cycles >= threshold:
                injector.fire()
                cycle_pending.remove((threshold, injector))
        if stats.instructions >= next_pulse:
            for injector in event_pending.pop(pulse_index, ()):
                injector.fire()
            rollbacks_before = pcu_stats.reconfig_rollbacks
            try:
                pulser.pulse()
            except InjectedFault:
                settle_injected_fault()
            pulse_index += 1
            next_pulse += geometry.pulse_interval
        if stats.instructions >= next_scrub:
            report = safe_scrub()
            note(report)
            next_scrub += geometry.scrub_interval
            if report.unrepairable:
                halted_by_scrub = True
                break

    machine.step_hook = None
    audit = safe_scrub()
    note(audit)
    if audit.unrepairable:
        halted_by_scrub = True

    rollbacks = sum(i.rollbacks_seen for i in injectors)
    detected = bool(detections) or rollbacks > 0
    if monitor.divergence is not None:
        classification = "detected_halted" if detected else "silent_divergence"
    elif halted_by_scrub:
        classification = "detected_halted"
    elif detected:
        classification = ("detected_recovered"
                          if audit.clean or scrubber.verify_repaired(audit)
                          else "detected_halted")
    else:
        classification = "benign"

    return MachineCampaignResult(
        campaign=campaign,
        backend=backend_name,
        spec=specs[0],
        classification=classification,
        instructions=stats.instructions,
        cycles=round(stats.cycles, 3),
        fired=any(i.fired for i in injectors),
        detail="; ".join(i.detail for i in injectors),
        pulses_run=pulser.pulses_run,
        divergence=monitor.divergence,
        divergence_instruction=monitor.divergence_instruction,
        detections=detections,
        rollbacks=rollbacks,
        escaped_faults=escaped_faults,
        scrub_repairs=pcu_stats.scrub_repairs,
        degraded_entries=pcu_stats.degraded_entries,
        commit_windows=(world.manager.transactions_committed
                        + world.manager.transactions_rolled_back
                        - base_commits),
        journalled_stores=(trusted_memory.journalled_stores_total
                           - base_journalled),
        workload_halted=stats.halted,
        kernel_faults=kernel.fault_count - base_faults,
        syscalls=kernel.syscall_count,
        lockstep_checks=monitor.checks,
        extra_specs=list(specs[1:]),
        contract_violations=(0 if contract_monitor is None
                             else contract_monitor.total_violations),
        unwaived_contract_violations=(
            0 if contract_monitor is None
            else contract_monitor.unwaived_violations),
        contract_counts=({} if contract_monitor is None
                         else contract_monitor.nonzero_counts()),
    )


def run_planned_machine_campaign(
    backend_name: str,
    seed: int,
    campaign: int,
    *,
    iterations: int = DEFAULT_MACHINE_ITERATIONS,
    faults_per_campaign: int = 1,
    scrub_interval: Optional[int] = None,
    pulse_interval: Optional[int] = None,
    contracts: bool = True,
    state_changing_pulses: bool = False,
) -> MachineCampaignResult:
    """Draw campaign ``campaign``'s specs from the plan and run it.

    This is the unit both the serial driver and the orchestrator
    workers call: specs come from :meth:`FaultPlan.draw_machine_specs`
    (a per-campaign RNG, so workers need not replay earlier campaigns)
    and every derived parameter is a pure function of the arguments —
    the foundation of the ``--jobs N`` byte-identity contract.
    """
    geometry = machine_geometry(backend_name, iterations,
                                scrub_interval, pulse_interval)
    specs = FaultPlan(seed).draw_machine_specs(
        campaign, geometry.n_steps, geometry.n_pulses, faults_per_campaign)
    return run_machine_campaign(
        backend_name, specs, campaign,
        pulse_seed=seed * 1_000_003 + campaign,
        iterations=iterations,
        scrub_interval=scrub_interval,
        pulse_interval=pulse_interval,
        contracts=contracts,
        state_changing_pulses=state_changing_pulses,
    )


@dataclass
class MachineCampaignMatrix:
    """All machine campaigns of one backend."""

    backend: str
    seed: int
    iterations: int
    results: List[MachineCampaignResult]

    @property
    def counts(self) -> Dict[str, int]:
        counter = Counter(r.classification for r in self.results)
        return {name: counter.get(name, 0) for name in CLASSIFICATIONS}

    @property
    def widening_silent(self) -> List[MachineCampaignResult]:
        return [r for r in self.results
                if r.classification == "silent_divergence" and r.widening]

    @property
    def rollbacks(self) -> int:
        return sum(r.rollbacks for r in self.results)

    @property
    def contract_violations(self) -> int:
        return sum(r.contract_violations for r in self.results)

    @property
    def unwaived_contract_violations(self) -> int:
        return sum(r.unwaived_contract_violations for r in self.results)

    def to_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "seed": self.seed,
            "iterations": self.iterations,
            "campaigns": len(self.results),
            "classification_counts": self.counts,
            "widening_silent_divergences": len(self.widening_silent),
            "reconfig_rollbacks": self.rollbacks,
            "contract_violations": self.contract_violations,
            "unwaived_contract_violations": self.unwaived_contract_violations,
            "results": [r.to_dict() for r in self.results],
        }


def run_machine_campaigns(
    backend_name: str,
    seed: int,
    n_campaigns: int,
    *,
    iterations: int = DEFAULT_MACHINE_ITERATIONS,
    faults_per_campaign: int = 1,
    scrub_interval: Optional[int] = None,
    pulse_interval: Optional[int] = None,
    contracts: bool = True,
    state_changing_pulses: bool = False,
) -> MachineCampaignMatrix:
    """K machine campaigns on one backend, serially."""
    results = [
        run_planned_machine_campaign(
            backend_name, seed, campaign,
            iterations=iterations,
            faults_per_campaign=faults_per_campaign,
            scrub_interval=scrub_interval,
            pulse_interval=pulse_interval,
            contracts=contracts,
            state_changing_pulses=state_changing_pulses,
        )
        for campaign in range(n_campaigns)
    ]
    return MachineCampaignMatrix(backend_name, seed, iterations, results)


def write_machine_report(matrices: List[MachineCampaignMatrix],
                         path: str) -> Dict[str, object]:
    """Aggregate machine matrices into one JSON report."""
    from repro.contracts import CONTRACT_NAMES

    totals: "Counter[str]" = Counter()
    contract_totals: "Counter[str]" = Counter()
    widening_silent = 0
    rollbacks = 0
    unwaived = 0
    for matrix in matrices:
        totals.update(matrix.counts)
        widening_silent += len(matrix.widening_silent)
        rollbacks += matrix.rollbacks
        unwaived += matrix.unwaived_contract_violations
        for result in matrix.results:
            contract_totals.update(result.contract_counts)
    payload = {
        "format": "isagrid-machine-fault-campaign-v1",
        "classification_counts": {name: totals.get(name, 0)
                                  for name in CLASSIFICATIONS},
        "widening_silent_divergences": widening_silent,
        "reconfig_rollbacks": rollbacks,
        "contract_counts": {name: contract_totals.get(name, 0)
                            for name in CONTRACT_NAMES},
        "unwaived_contract_violations": unwaived,
        "matrices": [matrix.to_dict() for matrix in matrices],
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    return payload
