"""Fault injection, integrity scrubbing and recovery (robustness layer).

The security argument of ISA-Grid assumes the HPT/SGT/trusted-stack
state is exactly what domain-0 configured.  This package stress-tests
that assumption: seeded :class:`FaultPlan` campaigns flip bits in
trusted memory, corrupt or stick privilege-cache lines, swallow
coherence sweeps and fail stores mid-reconfiguration, while the
:class:`IntegrityScrubber` (checksums + cache re-verification + stack
digest), the PCU's degraded mode and the DomainManager's transactional
reconfiguration try to detect and contain the damage.

CLI: ``python -m repro faults --events 2000 --seed 0 --campaign 50``.
"""

from .campaign import (
    CLASSIFICATIONS,
    DEFAULT_SCRUB_INTERVAL,
    CampaignMatrix,
    CampaignResult,
    run_campaign,
    run_campaigns,
    write_report,
)
from .injector import FaultInjector, FaultyWordBacking
from .plan import CACHE_MODULES, FAULT_KINDS, FaultPlan, FaultSpec
from .scrub import IntegrityScrubber, ScrubReport, make_scrubber

__all__ = [
    "CACHE_MODULES",
    "CLASSIFICATIONS",
    "CampaignMatrix",
    "CampaignResult",
    "DEFAULT_SCRUB_INTERVAL",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultyWordBacking",
    "IntegrityScrubber",
    "ScrubReport",
    "make_scrubber",
    "run_campaign",
    "run_campaigns",
    "write_report",
]
