"""Fault injection, integrity scrubbing and recovery (robustness layer).

The security argument of ISA-Grid assumes the HPT/SGT/trusted-stack
state is exactly what domain-0 configured.  This package stress-tests
that assumption: seeded :class:`FaultPlan` campaigns flip bits in
trusted memory, corrupt or stick privilege-cache lines, swallow
coherence sweeps and fail stores mid-reconfiguration, while the
:class:`IntegrityScrubber` (checksums + cache re-verification + stack
digest), the PCU's degraded mode and the DomainManager's transactional
reconfiguration try to detect and contain the damage.

CLI: ``python -m repro faults --events 2000 --seed 0 --campaign 50``.
"""

from .campaign import (
    CLASSIFICATIONS,
    DEFAULT_SCRUB_INTERVAL,
    CampaignMatrix,
    CampaignResult,
    run_campaign,
    run_campaigns,
    write_report,
)
from .injector import FaultInjector, FaultyWordBacking
from .machine import (
    DEFAULT_MACHINE_ITERATIONS,
    MACHINE_BACKENDS,
    LockstepMonitor,
    MachineCampaignMatrix,
    MachineCampaignResult,
    MachineWorld,
    ReconfigPulser,
    machine_geometry,
    run_machine_campaign,
    run_machine_campaigns,
    run_planned_machine_campaign,
    write_machine_report,
)
from .plan import (
    CACHE_MODULES,
    FAULT_KINDS,
    MACHINE_FAULT_KINDS,
    TRIGGER_KINDS,
    FaultPlan,
    FaultSpec,
)
from .scrub import IntegrityScrubber, ScrubReport, make_scrubber

__all__ = [
    "CACHE_MODULES",
    "CLASSIFICATIONS",
    "CampaignMatrix",
    "CampaignResult",
    "DEFAULT_MACHINE_ITERATIONS",
    "DEFAULT_SCRUB_INTERVAL",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultyWordBacking",
    "IntegrityScrubber",
    "LockstepMonitor",
    "MACHINE_BACKENDS",
    "MACHINE_FAULT_KINDS",
    "MachineCampaignMatrix",
    "MachineCampaignResult",
    "MachineWorld",
    "ReconfigPulser",
    "ScrubReport",
    "TRIGGER_KINDS",
    "machine_geometry",
    "make_scrubber",
    "run_campaign",
    "run_campaigns",
    "run_machine_campaign",
    "run_machine_campaigns",
    "run_planned_machine_campaign",
    "write_machine_report",
]
