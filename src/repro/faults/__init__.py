"""Fault injection, integrity scrubbing and recovery (robustness layer).

The security argument of ISA-Grid assumes the HPT/SGT/trusted-stack
state is exactly what domain-0 configured.  This package stress-tests
that assumption: seeded :class:`FaultPlan` campaigns flip bits in
trusted memory, corrupt or stick privilege-cache lines, swallow
coherence sweeps and fail stores mid-reconfiguration, while the
:class:`IntegrityScrubber` (checksums + cache re-verification + stack
digest), the PCU's degraded mode and the DomainManager's transactional
reconfiguration try to detect and contain the damage.

CLI: ``python -m repro faults --events 2000 --seed 0 --campaign 50``.
"""

from .campaign import (
    CLASSIFICATIONS,
    DEFAULT_SCRUB_INTERVAL,
    CampaignMatrix,
    CampaignResult,
    run_campaign,
    run_campaigns,
    write_report,
)
from .churn import (
    DEFAULT_CHURN_OPS,
    DEFAULT_SLOTS,
    ChurnCampaignResult,
    ChurnMatrix,
    ChurnWorld,
    latency_percentiles,
    run_churn_campaign,
    run_churn_campaigns,
    write_churn_report,
)
from .injector import FaultInjector, FaultyWordBacking
from .machine import (
    DEFAULT_MACHINE_ITERATIONS,
    MACHINE_BACKENDS,
    LockstepMonitor,
    MachineCampaignMatrix,
    MachineCampaignResult,
    MachineWorld,
    ReconfigPulser,
    machine_geometry,
    run_machine_campaign,
    run_machine_campaigns,
    run_planned_machine_campaign,
    write_machine_report,
)
from .plan import (
    CACHE_MODULES,
    CHURN_FAULT_KINDS,
    FAULT_KINDS,
    MACHINE_FAULT_KINDS,
    TRIGGER_KINDS,
    FaultPlan,
    FaultSpec,
)
from .scrub import IntegrityScrubber, ScrubReport, make_scrubber

__all__ = [
    "CACHE_MODULES",
    "CHURN_FAULT_KINDS",
    "CLASSIFICATIONS",
    "CampaignMatrix",
    "CampaignResult",
    "ChurnCampaignResult",
    "ChurnMatrix",
    "ChurnWorld",
    "DEFAULT_CHURN_OPS",
    "DEFAULT_MACHINE_ITERATIONS",
    "DEFAULT_SCRUB_INTERVAL",
    "DEFAULT_SLOTS",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultyWordBacking",
    "IntegrityScrubber",
    "LockstepMonitor",
    "MACHINE_BACKENDS",
    "MACHINE_FAULT_KINDS",
    "MachineCampaignMatrix",
    "MachineCampaignResult",
    "MachineWorld",
    "ReconfigPulser",
    "ScrubReport",
    "TRIGGER_KINDS",
    "latency_percentiles",
    "machine_geometry",
    "make_scrubber",
    "run_campaign",
    "run_campaigns",
    "run_churn_campaign",
    "run_churn_campaigns",
    "run_machine_campaign",
    "run_machine_campaigns",
    "run_planned_machine_campaign",
    "write_machine_report",
]
