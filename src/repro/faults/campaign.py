"""Seeded fault-injection campaigns over the conformance generator.

One *campaign* = one fault spec + one event stream, replayed through the
lockstep (cached PCU, oracle) pair with a periodic integrity-scrub
watchdog.  Each campaign classifies as exactly one of:

* ``detected_recovered`` — something fired (scrub repair, transactional
  rollback, degraded-mode entry) and the run finished lockstep-clean
  with a clean final audit;
* ``detected_halted`` — corruption was detected but could not be
  repaired (live stack frame) or was detected only after the
  implementations had already diverged: the core halts;
* ``benign`` — the fault landed somewhere architecture never looked (a
  dead stack word, an already-set bit, an evicted cache line): no
  divergence, nothing to detect, clean final audit;
* ``silent_divergence`` — the PCU and the oracle disagreed and *no*
  detection mechanism fired, then or at the post-divergence audit.  For
  privilege-widening faults this count must be zero: it would mean a
  fault can grant privilege invisibly.

Classification notes: faults in the *shared* trusted-memory words can
never show up as lockstep divergence (the oracle reads the same words),
so they must be caught by the scrub watchdog — that is precisely what
the memory-vs-mirror checksums are for.  Cache/bypass/Draco faults are
invisible to the scrubber's memory pass but diverge in lockstep, and the
post-divergence audit must then pin the blame on the cache layer.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.conformance.events import generate_events
from repro.conformance.generator import make_backend
from repro.conformance.runner import CONFORMANCE_CONFIGS, ConformanceWorld
from repro.core.errors import InjectedFault

from .injector import FaultInjector, FaultyWordBacking
from .plan import FaultPlan, FaultSpec
from .scrub import IntegrityScrubber

CLASSIFICATIONS = (
    "detected_recovered", "detected_halted", "benign", "silent_divergence",
)

#: Default watchdog period (events between scrubs).  Small enough that a
#: shared-memory fault is caught within one cache generation, large
#: enough that scrubbing stays a fraction of replay cost.
DEFAULT_SCRUB_INTERVAL = 64


@dataclass
class CampaignResult:
    """Outcome of one fault campaign."""

    campaign: int
    stream_seed: int
    spec: FaultSpec
    classification: str
    events_run: int
    fired: bool
    detail: str
    divergence_index: Optional[int] = None
    detections: List[str] = field(default_factory=list)
    rollbacks: int = 0
    scrub_repairs: int = 0
    degraded_entries: int = 0
    degraded_checks: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign": self.campaign,
            "stream_seed": self.stream_seed,
            "spec": self.spec.to_dict(),
            "classification": self.classification,
            "events_run": self.events_run,
            "fired": self.fired,
            "detail": self.detail,
            "divergence_index": self.divergence_index,
            "detections": list(self.detections),
            "rollbacks": self.rollbacks,
            "scrub_repairs": self.scrub_repairs,
            "degraded_entries": self.degraded_entries,
            "degraded_checks": self.degraded_checks,
        }


def run_campaign(
    backend_name: str,
    spec: FaultSpec,
    stream_seed: int,
    n_events: int,
    config: str = "stress",
    scrub_interval: int = DEFAULT_SCRUB_INTERVAL,
    campaign: int = 0,
) -> CampaignResult:
    """Replay one faulted stream in lockstep and classify the outcome."""
    backend = make_backend(backend_name)
    world = ConformanceWorld(backend, CONFORMANCE_CONFIGS[config])
    # Interpose the faulty backing *under* the already-initialised
    # trusted memory: existing words carry over untouched.
    backing = FaultyWordBacking(world.trusted_memory._backing)
    world.trusted_memory._backing = backing
    injector = FaultInjector(world, backing, spec)
    scrubber = IntegrityScrubber(world.pcu, world.manager)

    events = generate_events(stream_seed, n_events)
    detections: List[str] = []
    divergence_index: Optional[int] = None
    halted = False
    events_run = 0

    def note(report) -> None:
        if report.memory_repairs:
            detections.append("scrub repaired %d word(s)" % report.memory_repairs)
        detections.extend(report.cache_detections)
        detections.extend("UNREPAIRABLE: " + u for u in report.unrepairable)

    for index, event in enumerate(events):
        injector.on_event(index)
        try:
            cached, oracle = world.apply(event)
        except InjectedFault:
            # A trusted-memory store failed mid-reconfiguration; the
            # DomainManager transaction rolled the update back and the
            # tables are bit-identical to the pre-transaction state.
            injector.note_rollback()
            events_run = index + 1
            continue
        events_run = index + 1
        if cached != oracle:
            divergence_index = index
            break
        if scrub_interval and (index + 1) % scrub_interval == 0:
            report = scrubber.scrub()
            note(report)
            if report.unrepairable:
                halted = True
                break

    # Final audit: always run one more scrub.  After a divergence this is
    # the "why did we diverge" post-mortem; on a clean run it catches
    # anything the watchdog cadence missed.
    audit = scrubber.scrub()
    note(audit)
    if audit.unrepairable:
        halted = True

    detected = bool(detections) or injector.rollbacks_seen > 0
    if divergence_index is not None:
        classification = "detected_halted" if detected else "silent_divergence"
    elif halted:
        classification = "detected_halted"
    elif detected:
        # Recovery claim requires the final audit to have come back
        # clean apart from what it just repaired: one more pass must
        # find nothing.
        confirm = scrubber.scrub()
        classification = ("detected_recovered" if confirm.clean
                          else "detected_halted")
    else:
        classification = "benign"

    stats = world.pcu.stats
    return CampaignResult(
        campaign=campaign,
        stream_seed=stream_seed,
        spec=spec,
        classification=classification,
        events_run=events_run,
        fired=injector.fired,
        detail=injector.detail,
        divergence_index=divergence_index,
        detections=detections,
        rollbacks=injector.rollbacks_seen,
        scrub_repairs=stats.scrub_repairs,
        degraded_entries=stats.degraded_entries,
        degraded_checks=stats.degraded_checks,
    )


@dataclass
class CampaignMatrix:
    """All campaigns of one (backend, config) pair."""

    backend: str
    config: str
    seed: int
    n_events: int
    results: List[CampaignResult]

    @property
    def counts(self) -> Dict[str, int]:
        counter = Counter(r.classification for r in self.results)
        return {name: counter.get(name, 0) for name in CLASSIFICATIONS}

    @property
    def widening_silent(self) -> List[CampaignResult]:
        """The must-be-empty set: widening faults that diverged silently."""
        return [r for r in self.results
                if r.classification == "silent_divergence" and r.spec.widening]

    def to_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "config": self.config,
            "seed": self.seed,
            "events": self.n_events,
            "campaigns": len(self.results),
            "classification_counts": self.counts,
            "widening_silent_divergences": len(self.widening_silent),
            "results": [r.to_dict() for r in self.results],
        }


def run_campaigns(
    backend_name: str,
    seed: int,
    n_events: int,
    n_campaigns: int,
    config: str = "stress",
    scrub_interval: int = DEFAULT_SCRUB_INTERVAL,
) -> CampaignMatrix:
    """K campaigns, each with its own derived stream seed and fault."""
    plan = FaultPlan(seed)
    results = []
    for campaign in range(n_campaigns):
        spec = plan.draw(campaign, n_events)
        results.append(run_campaign(
            backend_name, spec,
            stream_seed=seed + campaign,
            n_events=n_events,
            config=config,
            scrub_interval=scrub_interval,
            campaign=campaign,
        ))
    return CampaignMatrix(backend_name, config, seed, n_events, results)


def write_report(matrices: List[CampaignMatrix], path: str) -> Dict[str, object]:
    """Aggregate matrices into one JSON report under ``results/``."""
    totals: "Counter[str]" = Counter()
    widening_silent = 0
    for matrix in matrices:
        totals.update(matrix.counts)
        widening_silent += len(matrix.widening_silent)
    payload = {
        "format": "isagrid-fault-campaign-v1",
        "classification_counts": {name: totals.get(name, 0)
                                  for name in CLASSIFICATIONS},
        "widening_silent_divergences": widening_silent,
        "matrices": [matrix.to_dict() for matrix in matrices],
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    return payload
