"""Seeded fault-injection campaigns over the conformance generator.

One *campaign* = one fault spec + one event stream, replayed through the
lockstep (cached PCU, oracle) pair with a periodic integrity-scrub
watchdog.  Each campaign classifies as exactly one of:

* ``detected_recovered`` — something fired (scrub repair, transactional
  rollback, degraded-mode entry) and the run finished lockstep-clean
  with a clean final audit;
* ``detected_halted`` — corruption was detected but could not be
  repaired (live stack frame) or was detected only after the
  implementations had already diverged: the core halts;
* ``benign`` — the fault landed somewhere architecture never looked (a
  dead stack word, an already-set bit, an evicted cache line): no
  divergence, nothing to detect, clean final audit;
* ``silent_divergence`` — the PCU and the oracle disagreed and *no*
  detection mechanism fired, then or at the post-divergence audit.  For
  privilege-widening faults this count must be zero: it would mean a
  fault can grant privilege invisibly.

Classification notes: faults in the *shared* trusted-memory words can
never show up as lockstep divergence (the oracle reads the same words),
so they must be caught by the scrub watchdog — that is precisely what
the memory-vs-mirror checksums are for.  Cache/bypass/Draco faults are
invisible to the scrubber's memory pass but diverge in lockstep, and the
post-divergence audit must then pin the blame on the cache layer.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.conformance.events import generate_events
from repro.conformance.generator import make_backend
from repro.conformance.runner import CONFORMANCE_CONFIGS, ConformanceWorld
from repro.core.errors import InjectedFault

from .injector import FaultInjector, FaultyWordBacking
from .plan import FaultPlan, FaultSpec
from .scrub import IntegrityScrubber

CLASSIFICATIONS = (
    "detected_recovered", "detected_halted", "benign", "silent_divergence",
)

#: Default watchdog period (events between scrubs).  Small enough that a
#: shared-memory fault is caught within one cache generation, large
#: enough that scrubbing stays a fraction of replay cost.
DEFAULT_SCRUB_INTERVAL = 64


@dataclass
class CampaignResult:
    """Outcome of one fault campaign."""

    campaign: int
    stream_seed: int
    spec: FaultSpec
    classification: str
    events_run: int
    fired: bool
    detail: str
    divergence_index: Optional[int] = None
    detections: List[str] = field(default_factory=list)
    rollbacks: int = 0
    #: Injected store faults that fired with no transaction open (e.g.
    #: on a gate-event trusted-stack push).  Nothing rolled back, so
    #: these are *not* detections — the classifier judges the damage on
    #: its own merits.
    escaped_faults: int = 0
    scrub_repairs: int = 0
    degraded_entries: int = 0
    degraded_checks: int = 0
    extra_specs: List[FaultSpec] = field(default_factory=list)
    #: Universal-contract accounting (DESIGN §3.16).  Violations the
    #: monitor attributed to a fired injected fault are *waived*; an
    #: unwaived violation is a genuine guarantee breach and fails the
    #: campaign report.
    contract_violations: int = 0
    unwaived_contract_violations: int = 0
    contract_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def widening(self) -> bool:
        """Could *any* fault in this campaign grant withheld privilege?"""
        return self.spec.widening or any(s.widening for s in self.extra_specs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign": self.campaign,
            "stream_seed": self.stream_seed,
            "spec": self.spec.to_dict(),
            "extra_specs": [s.to_dict() for s in self.extra_specs],
            "classification": self.classification,
            "events_run": self.events_run,
            "fired": self.fired,
            "detail": self.detail,
            "divergence_index": self.divergence_index,
            "detections": list(self.detections),
            "rollbacks": self.rollbacks,
            "escaped_faults": self.escaped_faults,
            "scrub_repairs": self.scrub_repairs,
            "degraded_entries": self.degraded_entries,
            "degraded_checks": self.degraded_checks,
            "contract_violations": self.contract_violations,
            "unwaived_contract_violations": self.unwaived_contract_violations,
            "contract_counts": dict(self.contract_counts),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignResult":
        data = dict(data)
        data["spec"] = FaultSpec.from_dict(data["spec"])
        data["extra_specs"] = [FaultSpec.from_dict(s)
                               for s in data.get("extra_specs", [])]
        return cls(**data)


def run_campaign(
    backend_name: str,
    spec: FaultSpec,
    stream_seed: int,
    n_events: int,
    config: str = "stress",
    scrub_interval: int = DEFAULT_SCRUB_INTERVAL,
    campaign: int = 0,
    extra_specs: Sequence[FaultSpec] = (),
    contracts: bool = True,
) -> CampaignResult:
    """Replay one faulted stream in lockstep and classify the outcome.

    ``extra_specs`` schedules additional concurrent faults over the same
    stream (each with its own trigger), modelling multi-event upsets;
    the classification then answers for the *combined* damage.

    With ``contracts`` (the default) the world runs under a
    :class:`~repro.contracts.monitor.ContractMonitor` whose waiver
    probe attributes violations to fired injected faults — an injected
    HPT flip legitimately makes verdicts disagree with the contract
    shadow, and that *is* the fault model working.  Unwaived violations
    are reported in the result and fail the campaign report.
    """
    backend = make_backend(backend_name)
    world = ConformanceWorld(backend, CONFORMANCE_CONFIGS[config])
    # Interpose the faulty backing *under* the already-initialised
    # trusted memory: existing words carry over untouched.
    backing = FaultyWordBacking(world.trusted_memory._backing,
                                trusted_memory=world.trusted_memory)
    world.trusted_memory._backing = backing
    injectors = [FaultInjector(world, backing, s)
                 for s in (spec, *extra_specs)]
    scrubber = IntegrityScrubber(world.pcu, world.manager)
    monitor = None
    if contracts:
        from repro.contracts import ContractMonitor

        def waiver_probe():
            if any(i.fired for i in injectors) or backing.store_faults_fired:
                return ("; ".join(i.detail for i in injectors if i.fired)
                        or backing.last_fired_detail or "injected fault")
            return None

        monitor = ContractMonitor(seed=stream_seed, campaign=campaign)
        monitor.attach(world.pcu, world.manager)
        monitor.waiver_probe = waiver_probe

    events = generate_events(stream_seed, n_events)
    detections: List[str] = []
    divergence_index: Optional[int] = None
    halted = False
    events_run = 0
    escaped_faults = 0
    stats = world.pcu.stats

    def fault_owner() -> FaultInjector:
        # The backing records which injector armed the fault that fired;
        # fall back to the first store-ish spec only for armings made
        # behind the injector's back (tests arming the backing directly).
        if backing.last_fired_owner is not None:
            return backing.last_fired_owner
        return next((i for i in injectors
                     if i.spec.kind in ("store_fault", "commit_store_fault",
                                        "commit_flip_journalled")),
                    injectors[0])

    def settle_injected_fault() -> None:
        # An injected store fault escaped to us.  Only credit a rollback
        # when the DomainManager actually rolled a transaction back —
        # a store can just as well fail outside any commit window (a
        # gate-event trusted-stack push, a scrub repair), and crediting
        # a phantom recovery there would upgrade genuine half-written
        # corruption to detected_recovered.
        nonlocal escaped_faults
        if stats.reconfig_rollbacks > rollbacks_before:
            fault_owner().note_rollback()
        else:
            fault_owner().note_escaped()
            escaped_faults += 1

    def note(report) -> None:
        if report.memory_repairs:
            detections.append("scrub repaired %d word(s)" % report.memory_repairs)
        detections.extend(report.cache_detections)
        detections.extend("UNREPAIRABLE: " + u for u in report.unrepairable)

    def safe_scrub():
        # A still-armed store fault can fire on a scrub *repair* store;
        # that interrupted pass is itself an escaped, non-transactional
        # fault.  The fault is one-shot, so the retry completes.
        nonlocal rollbacks_before
        rollbacks_before = stats.reconfig_rollbacks
        try:
            return scrubber.scrub()
        except InjectedFault:
            settle_injected_fault()
            return scrubber.scrub()

    rollbacks_before = stats.reconfig_rollbacks
    for index, event in enumerate(events):
        for injector in injectors:
            injector.on_event(index)
        rollbacks_before = stats.reconfig_rollbacks
        try:
            cached, oracle = world.apply(event)
        except InjectedFault:
            settle_injected_fault()
            events_run = index + 1
            continue
        events_run = index + 1
        if cached != oracle:
            divergence_index = index
            break
        if scrub_interval and (index + 1) % scrub_interval == 0:
            report = safe_scrub()
            note(report)
            if report.unrepairable:
                halted = True
                break

    # Final audit: always run one more scrub.  After a divergence this is
    # the "why did we diverge" post-mortem; on a clean run it catches
    # anything the watchdog cadence missed.
    audit = safe_scrub()
    note(audit)
    if audit.unrepairable:
        halted = True

    rollbacks = sum(i.rollbacks_seen for i in injectors)
    # Escaped (non-transactional) store faults are deliberately absent
    # here: nothing detected or recovered anything, so they only shape
    # the outcome through what the lockstep diff and the audit saw.
    detected = bool(detections) or rollbacks > 0
    if divergence_index is not None:
        classification = "detected_halted" if detected else "silent_divergence"
    elif halted:
        classification = "detected_halted"
    elif detected:
        # Recovery claim: the final audit must either have found nothing
        # (the watchdog already repaired everything) or its own repairs
        # must verify in place.  The targeted re-check replaces the full
        # confirmation scrub the classifier used to pay for — one pass
        # over the stream, one audit, no second replay of the state.
        classification = ("detected_recovered"
                          if audit.clean or scrubber.verify_repaired(audit)
                          else "detected_halted")
    else:
        classification = "benign"

    return CampaignResult(
        campaign=campaign,
        stream_seed=stream_seed,
        spec=spec,
        classification=classification,
        events_run=events_run,
        fired=any(i.fired for i in injectors),
        detail="; ".join(i.detail for i in injectors),
        divergence_index=divergence_index,
        detections=detections,
        rollbacks=rollbacks,
        escaped_faults=escaped_faults,
        scrub_repairs=stats.scrub_repairs,
        degraded_entries=stats.degraded_entries,
        degraded_checks=stats.degraded_checks,
        extra_specs=list(extra_specs),
        contract_violations=(0 if monitor is None
                             else monitor.total_violations),
        unwaived_contract_violations=(0 if monitor is None
                                      else monitor.unwaived_violations),
        contract_counts=({} if monitor is None
                         else monitor.nonzero_counts()),
    )


@dataclass
class CampaignMatrix:
    """All campaigns of one (backend, config) pair."""

    backend: str
    config: str
    seed: int
    n_events: int
    results: List[CampaignResult]

    @property
    def counts(self) -> Dict[str, int]:
        counter = Counter(r.classification for r in self.results)
        return {name: counter.get(name, 0) for name in CLASSIFICATIONS}

    @property
    def widening_silent(self) -> List[CampaignResult]:
        """The must-be-empty set: widening faults that diverged silently."""
        return [r for r in self.results
                if r.classification == "silent_divergence" and r.widening]

    @property
    def contract_violations(self) -> int:
        return sum(r.contract_violations for r in self.results)

    @property
    def unwaived_contract_violations(self) -> int:
        """The must-be-zero set: contract breaches no fault accounts for."""
        return sum(r.unwaived_contract_violations for r in self.results)

    def to_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "config": self.config,
            "seed": self.seed,
            "events": self.n_events,
            "campaigns": len(self.results),
            "classification_counts": self.counts,
            "widening_silent_divergences": len(self.widening_silent),
            "contract_violations": self.contract_violations,
            "unwaived_contract_violations": self.unwaived_contract_violations,
            "results": [r.to_dict() for r in self.results],
        }


def run_campaigns(
    backend_name: str,
    seed: int,
    n_events: int,
    n_campaigns: int,
    config: str = "stress",
    scrub_interval: int = DEFAULT_SCRUB_INTERVAL,
    faults_per_campaign: int = 1,
    contracts: bool = True,
) -> CampaignMatrix:
    """K campaigns, each with its own derived stream seed and fault(s)."""
    plan = FaultPlan(seed)
    results = []
    for campaign in range(n_campaigns):
        specs = plan.draw_specs(campaign, n_events, faults_per_campaign)
        results.append(run_campaign(
            backend_name, specs[0],
            stream_seed=seed + campaign,
            n_events=n_events,
            config=config,
            scrub_interval=scrub_interval,
            campaign=campaign,
            extra_specs=specs[1:],
            contracts=contracts,
        ))
    return CampaignMatrix(backend_name, config, seed, n_events, results)


def write_report(matrices: List[CampaignMatrix], path: str) -> Dict[str, object]:
    """Aggregate matrices into one JSON report under ``results/``."""
    from repro.contracts import CONTRACT_NAMES

    totals: "Counter[str]" = Counter()
    contract_totals: "Counter[str]" = Counter()
    widening_silent = 0
    unwaived = 0
    for matrix in matrices:
        totals.update(matrix.counts)
        widening_silent += len(matrix.widening_silent)
        unwaived += matrix.unwaived_contract_violations
        for result in matrix.results:
            contract_totals.update(result.contract_counts)
    payload = {
        "format": "isagrid-fault-campaign-v2",
        "classification_counts": {name: totals.get(name, 0)
                                  for name in CLASSIFICATIONS},
        "widening_silent_divergences": widening_silent,
        "contract_counts": {name: contract_totals.get(name, 0)
                            for name in CONTRACT_NAMES},
        "unwaived_contract_violations": unwaived,
        "matrices": [matrix.to_dict() for matrix in matrices],
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    return payload
