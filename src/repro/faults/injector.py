"""Fault injection against a live conformance world.

Two mechanisms, neither of which modifies core logic:

* :class:`FaultyWordBacking` wraps the ``WordBacking`` under a
  :class:`~repro.core.trusted_memory.TrustedMemory`, so trusted-memory
  words can be flipped *underneath* the journal and software mirrors
  (exactly what a hardware bit flip does), and so a domain-0 store can be
  made to fail mid-reconfiguration.
* The cache fault kinds use the injection hooks on
  :class:`~repro.core.cache.FullyAssociativeCache` (``corrupt``/``pin``)
  and one-shot method wrapping for the dropped coherence sweep.

Injection is a no-op when the planned target does not exist at trigger
time (dead domain slot, empty cache, unloaded bypass register): those
campaigns classify as *benign*, which is itself a useful data point.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.errors import InjectedFault
from repro.core.trusted_memory import WORD_BYTES, WordBacking

from .plan import FaultSpec

_MASK64 = (1 << 64) - 1


class FaultyWordBacking:
    """WordBacking wrapper: raw bit flips + one-shot store failures.

    ``trusted_memory`` (optional) is the :class:`TrustedMemory` the
    backing sits under; it is only needed for commit-window faults,
    which must know whether the store being intercepted is journalled
    and which other addresses the open journal covers.
    """

    def __init__(self, inner: WordBacking, trusted_memory=None):
        self.inner = inner
        self.trusted_memory = trusted_memory
        self._store_fault_armed = False
        self._store_fault_owner = None
        self._commit_countdown = 0
        self._commit_owner = None
        self._commit_flip = None      # (bit, op) to mutate under the journal
        self.store_faults_fired = 0
        #: The injector whose armed fault raised the most recent
        #: InjectedFault (None when armed without an owner).
        self.last_fired_owner = None
        #: Detail of the most recent fire, for campaign bookkeeping.
        self.last_fired_detail = ""

    def load_word(self, address: int) -> int:
        return self.inner.load_word(address)

    def store_word(self, address: int, value: int) -> None:
        if self._store_fault_armed:
            self._store_fault_armed = False
            self._fire(self._store_fault_owner,
                       "injected trusted-memory store fault at 0x%x" % address)
        if self._commit_countdown > 0 and self._in_commit_window():
            self._commit_countdown -= 1
            if self._commit_countdown == 0:
                self._fire_commit_fault(address)
        self.inner.store_word(address, value)

    def _in_commit_window(self) -> bool:
        return (self.trusted_memory is not None
                and self.trusted_memory.in_transaction)

    def _fire(self, owner, detail: str) -> None:
        self.store_faults_fired += 1
        self.last_fired_owner = owner
        self.last_fired_detail = detail
        raise InjectedFault(detail)

    def _fire_commit_fault(self, address: int) -> None:
        # TrustedMemory counts the store before handing it down, so the
        # counter already includes the one being failed.
        detail = ("injected commit-window store fault at 0x%x "
                  "(journalled store %d of the window)"
                  % (address, self.trusted_memory.transaction_stores))
        if self._commit_flip is not None:
            bit, op = self._commit_flip
            journalled = self.trusted_memory.journalled_addresses()
            if journalled:
                victim = journalled[0]
                self.mutate_word(victim, bit, op)
                detail += ("; %s bit %d flipped under journalled word 0x%x"
                           % (op, bit, victim))
        owner, self._commit_owner = self._commit_owner, None
        self._commit_flip = None
        self._fire(owner, detail)

    # -- injection API --------------------------------------------------
    def arm_store_fault(self, owner=None) -> None:
        """The next store through this backing raises InjectedFault.

        ``owner`` (typically the arming :class:`FaultInjector`) is
        recorded as :attr:`last_fired_owner` when the fault fires, so a
        multi-fault campaign can attribute the rollback to the injector
        whose fault actually tripped.
        """
        self._store_fault_armed = True
        self._store_fault_owner = owner

    def arm_commit_fault(self, nth_store: int, owner=None,
                         flip=None) -> None:
        """Fail the ``nth_store``-th journalled store after arming.

        Only stores executed while the trusted memory's transaction
        journal is open count, so the fault is guaranteed to land inside
        a ``DomainManager`` commit window and exercise the rollback
        replay.  ``flip`` is an optional ``(bit, op)`` pair: just before
        raising, mutate that bit of the *oldest* journalled word, so the
        newest-first replay must overwrite — and thereby repair — a raw
        hardware flip on its way back.
        """
        if nth_store < 1:
            raise ValueError("nth_store is 1-based")
        self._commit_countdown = nth_store
        self._commit_owner = owner
        self._commit_flip = flip

    @property
    def store_fault_armed(self) -> bool:
        return self._store_fault_armed

    @property
    def commit_fault_armed(self) -> bool:
        return self._commit_countdown > 0

    def mutate_word(self, address: int, bit: int, op: str) -> bool:
        """Apply a raw hardware bit flip, bypassing journal and mirrors.

        Returns True when the stored word actually changed.
        """
        old = self.inner.load_word(address)
        if op == "set":
            new = old | (1 << bit)
        elif op == "clear":
            new = old & ~(1 << bit) & _MASK64
        else:
            new = old ^ (1 << bit)
        if new == old:
            return False
        self.inner.store_word(address, new)
        return True


class FaultInjector:
    """Applies one :class:`FaultSpec` to a conformance world at trigger.

    ``world`` is duck-typed to
    :class:`~repro.conformance.runner.ConformanceWorld`: it must expose
    ``pcu``, ``manager``, ``backend`` and ``slot_ids``.
    """

    def __init__(self, world, backing: FaultyWordBacking, spec: FaultSpec):
        self.world = world
        self.backing = backing
        self.spec = spec
        self.fired = False    # the fault materially changed state
        self.detail = "not triggered"
        self.rollbacks_seen = 0

    # -- helpers --------------------------------------------------------
    def _target_domain(self) -> Optional[int]:
        """Resolve the abstract domain slot; fall back to any live slot."""
        domain = self.world.slot_ids.get(self.spec.domain_slot)
        if domain is not None:
            return domain
        for slot in sorted(self.world.slot_ids):
            if slot and self.world.slot_ids[slot] is not None:
                return self.world.slot_ids[slot]
        return None

    def _note(self, fired: bool, detail: str) -> None:
        self.fired = fired
        self.detail = detail

    # -- entry points ---------------------------------------------------
    def on_event(self, index: int) -> None:
        """Inject the planned fault when ``index`` hits the trigger."""
        if index != self.spec.trigger:
            return
        self.fire()

    def fire(self) -> None:
        """Inject the planned fault now (trigger policy is the caller's).

        The machine-level campaign driver uses this directly: it owns
        the instruction/cycle trigger bookkeeping, and calls ``fire``
        between steps once the trigger point is crossed.
        """
        handler = getattr(self, "_inject_" + self.spec.kind)
        handler()

    # -- trusted-memory word faults ------------------------------------
    def _inject_hpt_inst_bit(self) -> None:
        domain = self._target_domain()
        if domain is None:
            return self._note(False, "no live domain to target")
        hpt = self.world.pcu.hpt
        inst_class = self.world.backend.inst_class(
            self.spec.resource % len(self.world.backend.inst_slots))
        word, bit = divmod(inst_class, 64)
        address = hpt.inst_word_address(domain, word)
        changed = self.backing.mutate_word(address, bit, self.spec.bit_op)
        self._note(changed, "%s inst bit %d of domain %d (word 0x%x)"
                   % (self.spec.bit_op, inst_class, domain, address))

    def _inject_hpt_reg_bit(self) -> None:
        domain = self._target_domain()
        if domain is None:
            return self._note(False, "no live domain to target")
        hpt = self.world.pcu.hpt
        csr = self.world.backend.csr_index(
            self.spec.resource % len(self.world.backend.csr_slots))
        # Even bit = read, odd bit = write; widening specs hit the write
        # bit when the raw bit index is odd.
        bit_index = 2 * csr + (self.spec.bit & 1)
        word, bit = divmod(bit_index, 64)
        address = hpt.reg_word_address(domain, word)
        changed = self.backing.mutate_word(address, bit, self.spec.bit_op)
        self._note(changed, "%s reg bit %d of domain %d (word 0x%x)"
                   % (self.spec.bit_op, bit_index, domain, address))

    def _inject_hpt_mask_bit(self) -> None:
        domain = self._target_domain()
        if domain is None:
            return self._note(False, "no live domain to target")
        hpt = self.world.pcu.hpt
        if not hpt.mask_words_per_domain:
            return self._note(False, "backend has no bitwise CSRs")
        slot = self.spec.resource % hpt.mask_words_per_domain
        address = hpt.mask_address(domain, slot)
        changed = self.backing.mutate_word(address, self.spec.bit % 64,
                                           self.spec.bit_op)
        self._note(changed, "%s mask bit %d of domain %d slot %d"
                   % (self.spec.bit_op, self.spec.bit % 64, domain, slot))

    def _inject_sgt_word(self) -> None:
        sgt = self.world.pcu.sgt
        if not sgt.gate_nr:
            return self._note(False, "no gate slots allocated yet")
        gate = self.spec.resource % sgt.gate_nr
        # Which of the 4 entry words to hit: gate addr, dest addr, dest
        # domain, or the valid flag (bit 0 of word 3 is the nasty one).
        word_sel = self.spec.bit % 4
        address = sgt.entry_address(gate) + word_sel * WORD_BYTES
        bit = 0 if word_sel == 3 else self.spec.bit % 64
        changed = self.backing.mutate_word(address, bit, self.spec.bit_op)
        self._note(changed, "%s bit %d of SGT entry %d word %d"
                   % (self.spec.bit_op, bit, gate, word_sel))

    def _inject_stack_word(self) -> None:
        regs = self.world.pcu.registers
        frame_bytes = 2 * WORD_BYTES
        frames_total = (regs.hcsl - regs.hcsb) // frame_bytes
        if not frames_total:
            return self._note(False, "no trusted-stack window configured")
        frame = self.spec.resource % frames_total
        address = regs.hcsb + frame * frame_bytes + (self.spec.bit & 1) * WORD_BYTES
        live = address < regs.hcsp
        changed = self.backing.mutate_word(address, self.spec.bit % 64,
                                           self.spec.bit_op)
        self._note(changed, "%s bit %d of %s stack word 0x%x (depth %d)"
                   % (self.spec.bit_op, self.spec.bit % 64,
                      "LIVE" if live else "dead", address,
                      self.world.pcu.trusted_stack.depth))

    # -- cache-layer faults --------------------------------------------
    def _cache_module(self):
        pcu = self.world.pcu
        return {
            "inst": pcu.hpt_cache.inst,
            "reg": pcu.hpt_cache.reg,
            "mask": pcu.hpt_cache.mask,
            "sgt": pcu.sgt_cache._cache,
        }[self.spec.module]

    def _inject_cache_corrupt(self) -> None:
        cache = self._cache_module()
        if cache is None or not len(cache):
            return self._note(False, "cache %r empty" % self.spec.module)
        tags = cache.tags()
        tag = tags[self.spec.resource % len(tags)]
        if self.spec.module == "sgt":
            def transform(entry):
                # Corrupt the frozen triple: redirect the destination
                # domain (a widening fault if it lands on a richer one).
                return type(entry)(
                    entry.gate_id, entry.gate_address,
                    entry.destination_address,
                    entry.destination_domain ^ (1 << (self.spec.bit % 2)),
                )
        else:
            if self.spec.bit_op == "set":
                def transform(word):
                    return word | (1 << self.spec.bit % 64)
            elif self.spec.bit_op == "clear":
                def transform(word):
                    return word & ~(1 << self.spec.bit % 64) & _MASK64
            else:
                def transform(word):
                    return word ^ (1 << self.spec.bit % 64)
        before = cache.lookup(tag)
        cache.corrupt(tag, transform)
        changed = cache.lookup(tag) != before
        self._note(changed, "%s payload bit of %r cache entry %r"
                   % (self.spec.bit_op, self.spec.module, tag))

    def _inject_cache_stale_pin(self) -> None:
        cache = self._cache_module()
        if cache is None or not len(cache):
            return self._note(False, "cache %r empty" % self.spec.module)
        tags = cache.tags()
        tag = tags[self.spec.resource % len(tags)]
        cache.pin(tag)
        self._note(True, "pinned %r cache entry %r (stuck CAM line)"
                   % (self.spec.module, tag))

    def _inject_drop_invalidate(self) -> None:
        pcu = self.world.pcu
        original = pcu.invalidate_privileges
        injector = self

        def dropping(*args, **kwargs):
            pcu.invalidate_privileges = original  # one-shot
            injector._note(True, "dropped invalidate_privileges(%r, %r)"
                           % (args, kwargs))

        pcu.invalidate_privileges = dropping
        self._note(False, "armed invalidate drop (no sweep seen yet)")

    def _inject_bypass_corrupt(self) -> None:
        bypass = self.world.pcu.bypass
        if bypass.loaded_domain is None or not bypass._words:
            return self._note(False, "bypass register not loaded")
        word = self.spec.resource % len(bypass._words)
        bit = self.spec.bit % 64
        old = bypass._words[word]
        if self.spec.bit_op == "set":
            new = old | (1 << bit)
        elif self.spec.bit_op == "clear":
            new = old & ~(1 << bit) & _MASK64
        else:
            new = old ^ (1 << bit)
        bypass._words[word] = new
        self._note(new != old, "%s bypass word %d bit %d (domain %d)"
                   % (self.spec.bit_op, word, bit, bypass.loaded_domain))

    def _inject_store_fault(self) -> None:
        self.backing.arm_store_fault(owner=self)
        self._note(False, "armed one-shot trusted-memory store fault")

    # -- seal-window faults --------------------------------------------
    def _inject_seal_word_flip(self) -> None:
        """Flip a bit of a one-way seal word in trusted memory.

        ``module`` picks the seal region (inst / reg / mask); a *clear*
        silently un-seals, the widening direction the seal audit in the
        scrubber exists to catch (seal words are shared memory, so
        lockstep can never see this).
        """
        domain = self._target_domain()
        if domain is None:
            return self._note(False, "no live domain to target")
        hpt = self.world.pcu.hpt
        backend = self.world.backend
        if self.spec.module == "reg":
            csr = backend.csr_index(self.spec.resource % len(backend.csr_slots))
            bit_index = 2 * csr + (self.spec.bit & 1)
            word, bit = divmod(bit_index, 64)
            address = hpt.seal_reg_address(domain, word)
            what = "reg-seal bit %d" % bit_index
        elif self.spec.module == "mask" and hpt.mask_words_per_domain:
            slot = self.spec.resource % hpt.mask_words_per_domain
            address = hpt.seal_mask_address(domain, slot)
            bit = self.spec.bit % 64
            what = "mask-seal bit %d of slot %d" % (bit, slot)
        else:
            inst_class = backend.inst_class(
                self.spec.resource % len(backend.inst_slots))
            word, bit = divmod(inst_class, 64)
            address = hpt.seal_inst_address(domain, word)
            what = "inst-seal bit %d" % inst_class
        changed = self.backing.mutate_word(address, bit, self.spec.bit_op)
        self._note(changed, "%s %s of domain %d (word 0x%x)"
                   % (self.spec.bit_op, what, domain, address))

    def _inject_seal_store_fault(self) -> None:
        """Fail the first trusted-memory store of the next seal.

        Seal stores are mirror-first and journal-bypassed, so the fault
        leaves mirror ⊇ memory: the scrubber must repair *toward* the
        sealed state — a half-landed seal completes, never unwinds.
        """
        manager = self.world.manager
        original = manager.seal_privileges
        backing = self.backing
        injector = self

        def arming(*args, **kwargs):
            manager.seal_privileges = original  # one-shot
            backing.arm_store_fault(owner=injector)
            return original(*args, **kwargs)

        manager.seal_privileges = arming
        self._note(False, "armed seal-window store fault (no seal seen yet)")

    def _inject_seal_reset_drop(self) -> None:
        """Swallow the seal retirement of the next slot recycle, so the
        slot carries the retired tenant's seals until the bind-time
        flush (which must still clear them — defence in depth)."""
        virtualizer = self._virtualizer()
        if virtualizer is None:
            return self._note(False, "no domain virtualizer in this world")
        original = virtualizer._reset_seals
        injector = self

        def dropping(physical):
            virtualizer._reset_seals = original  # one-shot
            injector._note(True, "dropped seal retirement of slot %d"
                           % physical)

        virtualizer._reset_seals = dropping
        self._note(False, "armed seal-retirement drop (no recycle seen yet)")

    # -- recycle-window faults (domain virtualization) -----------------
    def _virtualizer(self):
        return getattr(self.world.manager, "virtualizer", None)

    def _inject_recycle_store_fault(self) -> None:
        """Arm a store fault that fires inside the next bind/recycle
        transaction — squarely in the slot-recycle commit window."""
        virtualizer = self._virtualizer()
        if virtualizer is None:
            return self._note(False, "no domain virtualizer in this world")
        original = virtualizer._recycle_window
        backing = self.backing
        injector = self

        def arming(physical):
            virtualizer._recycle_window = original  # one-shot
            backing.arm_store_fault(owner=injector)

        virtualizer._recycle_window = arming
        self._note(False, "armed recycle-window store fault "
                          "(no bind/recycle seen yet)")

    def _inject_generation_flip(self) -> None:
        """Flip a slot-generation word in trusted memory, under the
        domain-0 mirror the PCU guards with."""
        virtualizer = self._virtualizer()
        if virtualizer is None or not virtualizer._slot_index:
            return self._note(False, "no virtualized slots to target")
        slots = sorted(virtualizer._slot_index)
        physical = slots[self.spec.resource % len(slots)]
        address = virtualizer.generation_address_of(physical)
        # Low bits only: the flipped word should look like a plausible
        # nearby generation, not an astronomically large counter.
        bit = self.spec.bit % 4
        changed = self.backing.mutate_word(address, bit, self.spec.bit_op)
        self._note(changed, "%s generation bit %d of slot %d (word 0x%x)"
                   % (self.spec.bit_op, bit, physical, address))

    def _inject_drop_reuse_flush(self) -> None:
        """Swallow the flush-on-reuse of the next slot rebind, leaving
        the prior tenant's grants live under the new binding."""
        virtualizer = self._virtualizer()
        if virtualizer is None:
            return self._note(False, "no domain virtualizer in this world")
        original = virtualizer._flush_slot
        injector = self

        def dropping(physical):
            virtualizer._flush_slot = original  # one-shot
            injector._note(True, "dropped flush-on-reuse of slot %d"
                           % physical)

        virtualizer._flush_slot = dropping
        self._note(False, "armed flush-on-reuse drop (no rebind seen yet)")

    # -- commit-window faults (machine-level campaigns) ----------------
    def _inject_commit_store_fault(self) -> None:
        nth = max(1, self.spec.resource)
        self.backing.arm_commit_fault(nth, owner=self)
        self._note(False,
                   "armed commit-window store fault (journalled store %d)"
                   % nth)

    def _inject_commit_flip_journalled(self) -> None:
        nth = max(1, self.spec.resource)
        self.backing.arm_commit_fault(
            nth, owner=self, flip=(self.spec.bit % 64, self.spec.bit_op))
        self._note(False,
                   "armed commit-window store fault (journalled store %d) "
                   "with a %s of bit %d under the oldest journalled word"
                   % (nth, self.spec.bit_op, self.spec.bit % 64))

    # -- campaign bookkeeping ------------------------------------------
    def note_rollback(self) -> None:
        """A store fault fired and the reconfiguration rolled back."""
        self.rollbacks_seen += 1
        detail = self.backing.last_fired_detail or "store fault fired"
        self._note(True, detail + "; reconfiguration rolled back")

    def note_escaped(self) -> None:
        """A store fault fired outside any transaction (no journal).

        Nothing rolled back — the failed store simply never landed.  The
        campaign classifier must judge the damage on its own merits
        (lockstep, scrub, final audit) rather than crediting a recovery
        that never happened.
        """
        detail = self.backing.last_fired_detail or "store fault fired"
        self._note(True, detail + "; fired outside any transaction "
                                  "(no rollback)")
