"""Abstract conformance events.

The differential fuzzer works on an *abstract* privilege model so one
event stream can be replayed, bit-for-bit identically, against both the
x86 and RISC-V backends.  Events therefore never name concrete
instruction classes or CSR indices; they name *slots* of the abstract
model:

* domain slots ``1..N_DOMAIN_SLOTS`` (slot 0 is always domain-0),
* instruction slots ``0..N_INST_SLOTS-1``,
* CSR slots ``0..N_CSR_SLOTS-1`` (the last one is the backend's
  bitwise-controlled CSR),
* gate slots ``0..N_GATE_SLOTS-1`` (also used verbatim as SGT ids).

A :class:`~repro.conformance.generator.Backend` later binds each slot to
a concrete resource of its ISA map.  Generation is pure and seeded: the
same ``(seed, count)`` always yields the same stream, so a reproducer is
just the seed plus the (possibly shrunk) event list.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Dict, List, Set

MASK64 = (1 << 64) - 1

#: Abstract model sizes.  Small on purpose: a handful of resources under
#: a tiny privilege cache maximises evictions, refills and therefore
#: opportunities for stale-fill divergences.
N_DOMAIN_SLOTS = 4   # non-zero domains; slot 0 is domain-0
N_INST_SLOTS = 5
N_CSR_SLOTS = 5      # last slot is the bitwise-controlled CSR
N_GATE_SLOTS = 6
MASKED_CSR_SLOT = N_CSR_SLOTS - 1

#: Event operations.  ``check``/``gate``/``mem`` exercise the PCU data
#: path; ``pfch``/``pflh`` the cache-management instructions; the rest
#: are domain-0 reconfigurations.
CHECK_OPS = ("check", "gate", "mem", "pfch", "pflh")
RECONFIG_OPS = (
    "allow_inst", "deny_inst", "grant_csr", "revoke_csr", "set_mask",
    "register_gate", "unregister_gate", "create_domain", "destroy_domain",
    "seal",
)
#: Domain-0 scheduler operations on trusted-stack contexts (Section 5.2):
#: park the current (hcsp, hcsb, hcsl) window, switch onto another one,
#: or carve a fresh per-thread stack out of trusted memory.
CONTEXT_OPS = ("save_ctx", "restore_ctx", "thread_stack")

GATE_KINDS = ("hccall", "hccalls", "hcrets")


@dataclass
class Event:
    """One abstract conformance event (flat for easy JSON round-trips)."""

    op: str
    domain: int = 0      # abstract domain slot (reconfig target)
    inst: int = -1       # abstract instruction slot
    csr: int = -1        # abstract CSR slot; -1 = no CSR access
    read: bool = False
    write: bool = False
    value: int = 0       # CSR write value
    old: int = 0         # current CSR value (mask-rule operand)
    gate: int = -1       # gate slot == SGT gate id
    kind: str = ""       # gate kind: hccall / hccalls / hcrets
    site_ok: bool = True  # execute the gate at its registered address?
    bits: int = 0        # mask bits for set_mask
    cache: int = 0       # pflh operand (CacheId value)
    address: int = 0     # mem-event address / gate return address
    ctx: int = -1        # abstract trusted-stack context slot

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Event":
        return cls(**data)


class EventGenerator:
    """Seeded generator of abstract event streams.

    Tracks just enough abstract state (live domain slots, registered
    gate slots and their destinations) to keep the stream *mostly*
    meaningful — while still emitting a tail of hostile events
    (unregistered gates, wrong call sites, dead domains, underflows) that
    must fault identically in both implementations.
    """

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.seed = seed
        self.live: Set[int] = set(range(1, N_DOMAIN_SLOTS + 1))
        self.gate_dest: Dict[int, int] = {}  # gate slot -> domain slot
        # Trusted-stack context bookkeeping.  Context switches must be
        # emitted as atomic save+restore pairs and every saved context
        # restored exactly once: a window abandoned without a save, or a
        # context restored at a depth the window has since moved past,
        # would break the trusted stack's per-window integrity digest and
        # turn a fault-free stream into a scrub detection.  ``pending``
        # queues the tail of a pair so nothing lands in between.
        self.ctx_next = 0
        self.saved_ctx: List[int] = []
        self.pending: List[Event] = []

    # -- helpers -------------------------------------------------------
    def _value_pair(self) -> "tuple[int, int]":
        """(old, new) CSR values biased toward small, maskable diffs."""
        rng = self.rng
        old = rng.getrandbits(64)
        if rng.random() < 0.5:
            new = old ^ (1 << rng.randrange(64))     # single-bit flip
        elif rng.random() < 0.5:
            new = old ^ rng.getrandbits(8)           # low-bit churn
        else:
            new = rng.getrandbits(64)
        return old, new & MASK64

    def setup_events(self) -> List[Event]:
        """Initial domain configuration: every backend renders these to
        an equivalent per-ISA grant set (the "same abstract model")."""
        rng = self.rng
        events: List[Event] = []
        for slot in sorted(self.live):
            for inst in range(N_INST_SLOTS):
                if inst == 0 or rng.random() < 0.6:
                    events.append(Event("allow_inst", domain=slot, inst=inst))
            for csr in range(N_CSR_SLOTS):
                if rng.random() < 0.6:
                    events.append(Event(
                        "grant_csr", domain=slot, csr=csr,
                        read=True, write=rng.random() < 0.7,
                    ))
            events.append(Event(
                "set_mask", domain=slot, bits=rng.getrandbits(64)))
        for gate in range(N_GATE_SLOTS - 1):  # leave one slot unregistered
            dest = rng.choice(sorted(self.live))
            self.gate_dest[gate] = dest
            events.append(Event("register_gate", gate=gate, domain=dest))
        return events

    def next_event(self, index: int) -> Event:
        if self.pending:
            return self.pending.pop(0)
        rng = self.rng
        roll = rng.random()
        if roll < 0.50:
            return self._check_event()
        if roll < 0.72:
            return self._gate_event(index)
        if roll < 0.78:
            return Event("mem", address=rng.choice((
                0x100000 + rng.randrange(0, 1 << 20, 8),  # inside tmem
                rng.randrange(0, 1 << 20, 8),             # outside tmem
            )))
        if roll < 0.83:
            return Event("pfch", csr=rng.randrange(-1, N_CSR_SLOTS))
        if roll < 0.88:
            return Event("pflh", cache=rng.randrange(0, 5))
        if roll < 0.93:
            return self._context_event(index)
        return self._reconfig_event()

    def _fresh_ctx(self) -> int:
        self.ctx_next += 1
        return self.ctx_next - 1

    def _context_event(self, index: int) -> Event:
        """One thread switch: save the current trusted-stack context and
        restore another — either a previously parked one or a freshly
        created thread stack (optionally seeded with an entry frame a
        later ``hcrets`` "returns" into)."""
        rng = self.rng
        if self.saved_ctx and rng.random() < 0.5:
            target = self.saved_ctx.pop(rng.randrange(len(self.saved_ctx)))
            save = self._fresh_ctx()
            self.saved_ctx.append(save)
            self.pending.append(Event("restore_ctx", ctx=target))
            return Event("save_ctx", ctx=save)
        new = self._fresh_ctx()
        save = self._fresh_ctx()
        self.saved_ctx.append(save)
        domain = rng.choice(sorted(self.live)) if self.live else 1
        self.pending.append(Event("save_ctx", ctx=save))
        self.pending.append(Event("restore_ctx", ctx=new))
        return Event("thread_stack", ctx=new, domain=domain,
                     address=0xA000 + 0x40 * new)

    def _check_event(self) -> Event:
        rng = self.rng
        inst = rng.randrange(N_INST_SLOTS)
        if rng.random() < 0.45:
            return Event("check", inst=inst)
        csr = rng.randrange(N_CSR_SLOTS)
        read = rng.random() < 0.6
        write = rng.random() < 0.6 or not read
        old, new = self._value_pair()
        return Event("check", inst=inst, csr=csr, read=read, write=write,
                     old=old, value=new)

    def _gate_event(self, index: int) -> Event:
        rng = self.rng
        kind = rng.choices(GATE_KINDS, weights=(4, 4, 3))[0]
        gate = rng.randrange(N_GATE_SLOTS) if rng.random() < 0.9 else \
            rng.randrange(N_GATE_SLOTS, N_GATE_SLOTS + 2)
        return Event("gate", kind=kind, gate=gate,
                     site_ok=rng.random() < 0.85,
                     address=0x9000 + 4 * index)

    def _reconfig_event(self) -> Event:
        rng = self.rng
        op = rng.choice(RECONFIG_OPS)
        slot = rng.choice(sorted(self.live)) if self.live else 1
        if op == "allow_inst" or op == "deny_inst":
            return Event(op, domain=slot, inst=rng.randrange(N_INST_SLOTS))
        if op == "grant_csr":
            return Event(op, domain=slot, csr=rng.randrange(N_CSR_SLOTS),
                         read=rng.random() < 0.8, write=rng.random() < 0.6)
        if op == "revoke_csr":
            return Event(op, domain=slot, csr=rng.randrange(N_CSR_SLOTS),
                         read=rng.random() < 0.5, write=True)
        if op == "set_mask":
            return Event(op, domain=slot, bits=rng.getrandbits(64))
        if op == "seal":
            if rng.random() < 0.5:
                return Event(op, domain=slot,
                             inst=rng.randrange(N_INST_SLOTS))
            read = rng.random() < 0.5
            return Event(op, domain=slot, csr=rng.randrange(N_CSR_SLOTS),
                         read=read, write=rng.random() < 0.7 or not read)
        if op == "register_gate":
            gate = rng.randrange(N_GATE_SLOTS)
            self.gate_dest[gate] = slot
            return Event(op, gate=gate, domain=slot)
        if op == "unregister_gate":
            gate = rng.randrange(N_GATE_SLOTS)
            self.gate_dest.pop(gate, None)
            return Event(op, gate=gate)
        if op == "destroy_domain":
            if len(self.live) > 1:
                self.live.discard(slot)
                for gate, dest in list(self.gate_dest.items()):
                    if dest == slot:
                        del self.gate_dest[gate]
                return Event(op, domain=slot)
            return self._check_event()
        # create_domain: revive a dead slot (fresh incarnation) if any.
        dead = sorted(set(range(1, N_DOMAIN_SLOTS + 1)) - self.live)
        if not dead:
            return self._check_event()
        slot = rng.choice(dead)
        self.live.add(slot)
        return Event("create_domain", domain=slot)


def generate_events(seed: int, count: int) -> List[Event]:
    """The full stream: deterministic setup plus ``count`` fuzz events."""
    generator = EventGenerator(seed)
    events = generator.setup_events()
    events.extend(generator.next_event(i) for i in range(count))
    return events


# ---------------------------------------------------------------------------
# Canonicalization: slot-id renaming for reproducer dedup.
# ---------------------------------------------------------------------------
def canonicalize_events(events: List[Event]) -> List[Event]:
    """Rename abstract slot ids to first-use order.

    Two shrunk reproducers from different seeds frequently describe the
    *same* bug modulo which arbitrary slot numbers the RNG happened to
    pick.  Renaming domain, instruction, CSR and gate slots in order of
    first appearance maps such twins onto one canonical stream, so
    reproducer files dedupe by content.

    Invariants preserved: slot 0 stays domain-0; the masked CSR slot is
    pinned (it is positional, not interchangeable with plain CSR slots);
    hostile out-of-range gate ids (>= N_GATE_SLOTS) are left alone —
    their exact value is part of the behaviour under test.
    """
    domain_map: Dict[int, int] = {0: 0}
    inst_map: Dict[int, int] = {}
    csr_map: Dict[int, int] = {MASKED_CSR_SLOT: MASKED_CSR_SLOT}
    gate_map: Dict[int, int] = {}
    ctx_map: Dict[int, int] = {}

    def rename(mapping: Dict[int, int], slot: int, first: int) -> int:
        if slot not in mapping:
            used = set(mapping.values())
            fresh = first
            while fresh in used:
                fresh += 1
            mapping[slot] = fresh
        return mapping[slot]

    canonical: List[Event] = []
    for event in events:
        data = event.to_dict()
        if event.domain or event.op in RECONFIG_OPS:
            data["domain"] = rename(domain_map, event.domain, 1) \
                if event.domain else 0
        if event.inst >= 0:
            data["inst"] = rename(inst_map, event.inst, 0)
        if 0 <= event.csr < N_CSR_SLOTS and event.csr != MASKED_CSR_SLOT:
            data["csr"] = rename(csr_map, event.csr, 0)
        if 0 <= event.gate < N_GATE_SLOTS:
            data["gate"] = rename(gate_map, event.gate, 0)
        if event.ctx >= 0:
            data["ctx"] = rename(ctx_map, event.ctx, 0)
        canonical.append(Event(**data))
    return canonical


def stream_key(events: List[Event]) -> str:
    """Content hash of the canonicalized stream (reproducer dedup key)."""
    import hashlib

    digest = hashlib.sha256()
    for event in canonicalize_events(events):
        digest.update(repr(sorted(event.to_dict().items())).encode())
    return digest.hexdigest()[:16]
