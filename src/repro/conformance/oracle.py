"""The oracle PCU: a cache-free reference model of the privilege check.

:class:`OraclePcu` is the executable specification the cached
:class:`~repro.core.pcu.PrivilegeCheckUnit` is differentially tested
against.  It shares the HPT and SGT *data structures* (trusted-memory
words) with the real PCU but none of its machinery: no privilege caches,
no bypass register, no Draco cache, no prefetching — every check reads
the tables directly, so it can never observe a stale fill.

The contract (recorded in DESIGN.md):

* ``check`` — instruction bitmap first, then (for explicit CSR
  accesses) the read bit, then the write permission; bitwise-controlled
  CSRs use the mask rule ``(old ^ new) & ~mask == 0`` *instead of* the
  write bit.  Domain-0 always passes.  Fault subclasses must match the
  real PCU exactly.
* ``execute_gate`` — SGT entry validity, frozen call-site match,
  trusted-stack push/pop with the same overflow/underflow ordering, and
  the domain-0 return ban, with the same side effects on failure (an
  ``hcrets`` that faults on the domain-0 ban has still consumed the
  frame).
* ``check_memory_access`` — trusted memory is domain-0-only.

State the differential runner compares after every event: current
domain, previous domain, trusted-stack depth, and the
allowed/fault-subclass outcome (plus the target pc for gates).  Stall
cycles are *not* part of the contract — the oracle is stall-free by
construction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.errors import (
    BitMaskViolationFault,
    ConfigurationError,
    GateFault,
    InstructionPrivilegeFault,
    RegisterReadFault,
    RegisterWriteFault,
    StaleGenerationFault,
    TrustedMemoryFault,
    TrustedStackFault,
)
from repro.core.hpt import HybridPrivilegeTable
from repro.core.isa_extension import AccessInfo, GateKind, IsaGridIsaMap
from repro.core.pcu import DOMAIN_0
from repro.core.sgt import SwitchingGateTable
from repro.core.trusted_memory import TrustedMemory


class _StackWindow:
    """One trusted-stack window as the *memory* holds it.

    ``cells`` is the window's frame image: a pop moves the depth pointer
    but never truncates the image — exactly like the real trusted stack,
    where popped frames stay in trusted memory until overwritten.  The
    distinction is visible through thread switches: restoring a context
    whose window still holds deeper, previously-popped frames must let a
    later over-deep pop read those stale frames back, or the oracle and
    the PCU diverge on shrunk/reordered streams.
    """

    __slots__ = ("capacity", "cells")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.cells: List[Tuple[int, int]] = []


class OraclePcu:
    """Reference privilege-check semantics over the shared HPT/SGT."""

    def __init__(
        self,
        isa_map: IsaGridIsaMap,
        hpt: HybridPrivilegeTable,
        sgt: SwitchingGateTable,
        trusted_memory: TrustedMemory,
        stack_frames: int,
    ):
        self.isa_map = isa_map
        self.hpt = hpt
        self.sgt = sgt
        self.trusted_memory = trusted_memory
        self.stack_frames = stack_frames
        self.domain = DOMAIN_0
        self.pdomain = DOMAIN_0
        self.window = _StackWindow(stack_frames)
        self._depth = 0
        self.enabled = True
        # Slot-generation table mirror (domain virtualization): shared
        # with the real PCU by the churn world so both sides latch the
        # same generation on entry and fault identically on reuse.
        self.generation_table = None
        self._entry_generation = 0

    # ------------------------------------------------------------------
    # State.
    # ------------------------------------------------------------------
    @property
    def current_domain(self) -> int:
        return self.domain

    @property
    def depth(self) -> int:
        return self._depth

    def reset(self) -> None:
        self.domain = DOMAIN_0
        self.pdomain = DOMAIN_0
        self.window = _StackWindow(self.stack_frames)
        self._depth = 0
        self._entry_generation = 0

    def _switch(self, destination: int) -> None:
        self.pdomain = self.domain
        self.domain = destination
        table = self.generation_table
        if table is not None:
            self._entry_generation = table.get(destination, 0)

    def _check_generation(self, domain: int, address: int) -> None:
        """Mirror of the PCU's slot-generation guard (hard fault)."""
        table = self.generation_table
        if table is not None and table.get(domain, 0) != self._entry_generation:
            raise StaleGenerationFault(
                domain, table.get(domain, 0), self._entry_generation,
                address=address,
            )

    # ------------------------------------------------------------------
    # Trusted-stack contexts (the spec of save/restore_context and of
    # DomainManager.create_thread_stack, Section 5.2).
    # ------------------------------------------------------------------
    def save_context(self) -> Tuple[_StackWindow, int]:
        """Snapshot of (window, depth) — the oracle's (hcsp, hcsb, hcsl)."""
        return self.window, self._depth

    def restore_context(self, context: Tuple[_StackWindow, int]) -> None:
        self.window, self._depth = context

    def create_thread_context(
        self, frames: int, entry: Optional[Tuple[int, int]] = None,
    ) -> Tuple[_StackWindow, int]:
        """A fresh window, optionally seeded with one entry frame."""
        window = _StackWindow(frames)
        if entry is None:
            return window, 0
        window.cells.append(entry)
        return window, 1

    def _push(self, return_address: int, domain: int) -> None:
        if self._depth < len(self.window.cells):
            self.window.cells[self._depth] = (return_address, domain)
        else:
            self.window.cells.append((return_address, domain))
        self._depth += 1

    def _pop(self) -> Tuple[int, int]:
        self._depth -= 1
        return self.window.cells[self._depth]

    # ------------------------------------------------------------------
    # Hybrid-grained privilege check (the spec of PCU.check).
    # ------------------------------------------------------------------
    def check(self, access: AccessInfo) -> None:
        if not self.enabled:
            return
        domain = self.domain
        if domain == DOMAIN_0:
            return
        self._check_generation(domain, access.address)

        word = self.hpt.read_inst_word(domain, access.inst_class // 64)
        if not word >> (access.inst_class % 64) & 1:
            raise InstructionPrivilegeFault(
                access.inst_class, domain=domain, address=access.address
            )
        if access.csr is None:
            return

        csr = access.csr
        word = self.hpt.read_reg_word(domain, (2 * csr) // 64)
        read_bit = word >> ((2 * csr) % 64) & 1
        write_bit = word >> ((2 * csr) % 64 + 1) & 1
        if access.csr_read and not read_bit:
            raise RegisterReadFault(csr, domain=domain, address=access.address)
        if access.csr_write:
            slot = self.isa_map.mask_slot(csr)
            if slot is not None:
                if access.write_value is None or access.old_value is None:
                    raise ConfigurationError(
                        "bitwise CSR write check requires old and new values"
                    )
                mask = self.hpt.read_mask(domain, slot)
                if (access.old_value ^ access.write_value) & ~mask:
                    raise BitMaskViolationFault(
                        csr, access.old_value, access.write_value, mask,
                        domain=domain, address=access.address,
                    )
            elif not write_bit:
                raise RegisterWriteFault(
                    csr, domain=domain, address=access.address
                )

    # ------------------------------------------------------------------
    # Domain switching (the spec of PCU.execute_gate).
    # ------------------------------------------------------------------
    def execute_gate(
        self,
        kind: GateKind,
        gate_id: int,
        pc: int,
        return_address: Optional[int] = None,
    ) -> int:
        """Execute a gate; returns the target pc or raises a fault."""
        if self.domain != DOMAIN_0:
            self._check_generation(self.domain, pc)
        if kind is GateKind.HCRETS:
            if self._depth <= 0:
                raise TrustedStackFault(
                    "trusted stack underflow", 0, domain=self.domain, address=pc
                )
            target, domain = self._pop()
            if domain == DOMAIN_0:
                # The frame is consumed even though the return is banned —
                # matching the real PCU's pop-then-check ordering.
                raise GateFault(
                    "hcrets may not return to domain-0",
                    domain=self.domain, address=pc,
                )
            self._switch(domain)
            return target

        entry = self.sgt.read_entry(gate_id)  # GateFault if unregistered
        if not entry.matches_call_site(pc):
            raise GateFault(
                "gate %d called from 0x%x, registered at 0x%x"
                % (gate_id, pc, entry.gate_address),
                gate_id=gate_id, domain=self.domain, address=pc,
            )
        if kind is GateKind.HCCALLS:
            if return_address is None:
                raise ConfigurationError("hccalls requires a return address")
            if self._depth >= self.window.capacity:
                raise TrustedStackFault(
                    "trusted stack overflow", 0, domain=self.domain, address=pc
                )
            self._push(return_address, self.domain)
        self._switch(entry.destination_domain)
        return entry.destination_address

    # ------------------------------------------------------------------
    # Trusted memory enforcement.
    # ------------------------------------------------------------------
    def check_memory_access(self, address: int, pc: int = 0) -> None:
        if not self.enabled:
            return
        if self.domain == DOMAIN_0:
            return
        self._check_generation(self.domain, pc)
        if self.trusted_memory.contains(address):
            raise TrustedMemoryFault(address, domain=self.domain, address=pc)
