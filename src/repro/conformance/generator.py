"""Cross-ISA binding of the abstract conformance model.

A :class:`Backend` maps the abstract slots of
:mod:`repro.conformance.events` onto one architecture's concrete ISA-Grid
resources, so the *same* abstract event stream fuzzes the x86 and RISC-V
instances against the same privilege model:

* instruction slots bind to real instruction classes of the backend's
  :class:`~repro.core.isa_extension.IsaGridIsaMap` (a mix of compute and
  system classes),
* CSR slots bind to real CSR indices, the last slot always to the
  backend's bitwise-controlled register (``sstatus`` / ``cr0``),
* gate and destination addresses are fixed per gate slot.

Backends also render an event stream into a per-ISA pseudo-assembly
listing (for reproducer dumps) and a domain-configuration manifest, so a
dumped divergence names concrete instructions and registers rather than
abstract slot numbers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.isa_extension import IsaGridIsaMap

from .events import MASKED_CSR_SLOT, Event

#: Per-gate-slot frozen addresses (outside trusted memory).
GATE_BASE = 0x40_0000
DEST_BASE = 0x48_0000


def gate_address(slot: int) -> int:
    return GATE_BASE + slot * 0x40


def destination_address(slot: int) -> int:
    return DEST_BASE + slot * 0x40


class Backend:
    """One architecture's binding of the abstract conformance model."""

    def __init__(
        self,
        name: str,
        isa_map: IsaGridIsaMap,
        inst_classes: Sequence[str],
        plain_csrs: Sequence[str],
        masked_csr: str,
    ):
        self.name = name
        self.isa_map = isa_map
        self.inst_class_names = list(inst_classes)
        self.csr_names = list(plain_csrs) + [masked_csr]
        self.inst_slots = [isa_map.inst_class(n) for n in inst_classes]
        self.csr_slots = [isa_map.csr_index(n) for n in self.csr_names]
        if isa_map.mask_slot(self.csr_slots[MASKED_CSR_SLOT]) is None:
            raise ValueError(
                "%s: CSR %r bound to the masked slot is not bitwise" %
                (name, masked_csr)
            )

    # -- slot resolution ----------------------------------------------
    def inst_class(self, slot: int) -> int:
        return self.inst_slots[slot]

    def csr_index(self, slot: int) -> int:
        return self.csr_slots[slot]

    def inst_name(self, slot: int) -> str:
        return self.inst_class_names[slot]

    def csr_name(self, slot: int) -> str:
        return self.csr_names[slot]

    # -- reproducer rendering -----------------------------------------
    def render_event(self, event: Event) -> str:
        """One per-ISA pseudo-assembly line for a reproducer listing."""
        if event.op == "check":
            if event.csr < 0:
                return self._inst_line(event)
            return self._csr_line(event)
        if event.op == "gate":
            site = "" if event.site_ok else "   ; WRONG call site"
            if event.kind == "hcrets":
                return "hcrets%s" % site
            return "%s %d%s" % (event.kind, event.gate, site)
        if event.op == "mem":
            return "%s 0x%x" % ("load" if self.name == "riscv" else "mov rax,",
                                event.address)
        if event.op == "pfch":
            target = 0 if event.csr < 0 else self.csr_index(event.csr)
            return "pfch %d" % target
        if event.op == "pflh":
            return "pflh %d" % event.cache
        if event.op == "save_ctx":
            return "; domain-0: save_ctx %d (park hcsp/hcsb/hcsl)" % event.ctx
        if event.op == "restore_ctx":
            return "; domain-0: restore_ctx %d (switch stack window)" % event.ctx
        if event.op == "thread_stack":
            return ("; domain-0: thread_stack ctx %d entry 0x%x -> "
                    "domain slot %d" % (event.ctx, event.address, event.domain))
        return "; domain-0: %s %s" % (event.op, self.describe_reconfig(event))

    def _inst_line(self, event: Event) -> str:
        return "%-10s ; class %r" % (
            self.inst_name(event.inst), self.inst_name(event.inst))

    def _csr_line(self, event: Event) -> str:
        csr = self.csr_name(event.csr)
        if self.name == "riscv":
            mnemonic = "csrrw" if event.write else "csrrs"
            return "%s %s, %s ; old=0x%x new=0x%x" % (
                mnemonic, "t0" if event.read else "x0", csr,
                event.old, event.value)
        access = ("rdmsr " if event.read else "") + ("wrmsr" if event.write else "")
        return "%-12s ; %s old=0x%x new=0x%x" % (access or "rdmsr", csr,
                                                 event.old, event.value)

    def describe_reconfig(self, event: Event) -> str:
        if event.op in ("allow_inst", "deny_inst"):
            return "domain slot %d class %r" % (event.domain,
                                                self.inst_name(event.inst))
        if event.op in ("grant_csr", "revoke_csr"):
            return "domain slot %d csr %r r=%s w=%s" % (
                event.domain, self.csr_name(event.csr), event.read, event.write)
        if event.op == "set_mask":
            return "domain slot %d %s mask=0x%x" % (
                event.domain, self.csr_name(MASKED_CSR_SLOT), event.bits)
        if event.op in ("register_gate", "unregister_gate"):
            return "gate %d -> domain slot %d" % (event.gate, event.domain)
        if event.op == "seal":
            if event.csr < 0:
                return "domain slot %d seal class %r" % (
                    event.domain, self.inst_name(event.inst))
            return "domain slot %d seal csr %r r=%s w=%s" % (
                event.domain, self.csr_name(event.csr), event.read, event.write)
        return "domain slot %d" % event.domain

    def render_program(self, events: Sequence[Event]) -> List[str]:
        """The whole stream as an annotated per-ISA listing."""
        return ["%4d: %s" % (i, self.render_event(e))
                for i, e in enumerate(events)]

    def domain_manifest(self, events: Sequence[Event]) -> Dict[int, Dict[str, object]]:
        """Final per-domain-slot grant sets implied by the stream."""
        manifest: Dict[int, Dict[str, object]] = {}
        for event in events:
            slot = event.domain
            if event.op == "create_domain" or event.op == "destroy_domain":
                manifest[slot] = {"instructions": set(), "csrs": set(), "mask": 0}
                continue
            if event.op not in ("allow_inst", "deny_inst", "grant_csr",
                                "revoke_csr", "set_mask"):
                continue
            entry = manifest.setdefault(
                slot, {"instructions": set(), "csrs": set(), "mask": 0})
            if event.op == "allow_inst":
                entry["instructions"].add(self.inst_name(event.inst))
            elif event.op == "deny_inst":
                entry["instructions"].discard(self.inst_name(event.inst))
            elif event.op == "grant_csr":
                entry["csrs"].add(self.csr_name(event.csr))
            elif event.op == "revoke_csr":
                entry["csrs"].discard(self.csr_name(event.csr))
            else:
                entry["mask"] = event.bits
        return manifest


def make_backend(name: str) -> Backend:
    """Build the named backend binding (importing its ISA map lazily)."""
    if name == "riscv":
        from repro.riscv.isa import RISCV_ISA_MAP

        return Backend(
            "riscv", RISCV_ISA_MAP,
            inst_classes=("alu", "load", "csr", "sret", "sfence_vma"),
            plain_csrs=("satp", "stvec", "sepc", "scounteren"),
            masked_csr="sstatus",
        )
    if name == "x86":
        from repro.x86.isa import X86_ISA_MAP

        return Backend(
            "x86", X86_ISA_MAP,
            inst_classes=("alu", "mov", "rdmsr", "wrmsr", "mov_cr"),
            plain_csrs=("cr3", "msr_lstar", "pkru", "gdtr"),
            masked_csr="cr0",
        )
    raise ValueError("unknown conformance backend %r" % name)


BACKEND_NAMES = ("riscv", "x86")
