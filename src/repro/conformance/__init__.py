"""Differential conformance subsystem (the executable specification).

Layered caches make the PCU fast and make its bugs silent: a stale fill
can grant or deny a privilege without any functional test noticing.
This package is the defence:

* :mod:`~repro.conformance.oracle` — a cache-free, bypass-free reference
  PCU sharing only the HPT/SGT trusted-memory tables with the real one;
* :mod:`~repro.conformance.events` — seeded generation of abstract
  (instruction, CSR access, gate, prefetch/flush, reconfigure) streams;
* :mod:`~repro.conformance.generator` — cross-ISA bindings rendering one
  abstract stream onto both the x86 and RISC-V instances;
* :mod:`~repro.conformance.runner` — the lockstep differential runner
  with delta-shrinking and JSON reproducer dumps.

CLI: ``python -m repro conformance --events 5000 --seed 0``.
"""

from .events import (
    Event,
    EventGenerator,
    canonicalize_events,
    generate_events,
    stream_key,
)
from .generator import BACKEND_NAMES, Backend, make_backend
from .oracle import OraclePcu
from .runner import (
    CONFORMANCE_CONFIGS,
    DEFAULT_CONFIGS,
    ConformanceResult,
    ConformanceWorld,
    DifferentialRunner,
    Divergence,
    Outcome,
    fuzz_backend,
    load_reproducer,
)

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "CONFORMANCE_CONFIGS",
    "ConformanceResult",
    "ConformanceWorld",
    "DEFAULT_CONFIGS",
    "DifferentialRunner",
    "Divergence",
    "Event",
    "EventGenerator",
    "OraclePcu",
    "Outcome",
    "canonicalize_events",
    "fuzz_backend",
    "generate_events",
    "load_reproducer",
    "make_backend",
    "stream_key",
]
